"""Tests for the MFIBlocks algorithm (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.blocking import MFIBlocks, MFIBlocksConfig
from repro.blocking.scoring import BlockScorer, ScoringMethod
from repro.records.dataset import Dataset
from tests.conftest import make_record


def duplicate_heavy_dataset():
    """Five exact-duplicate pairs plus five singletons, distinct names."""
    records = []
    book_id = 1
    names = [("Guido", "Foa"), ("Massimo", "Levi"), ("Donato", "Segre"),
             ("Alberto", "Treves"), ("Bruna", "Artom")]
    for person_id, (first, last) in enumerate(names, start=1):
        for _ in range(2):
            records.append(
                make_record(
                    book_id=book_id,
                    first=(first,),
                    last=(last,),
                    birth_year=1900 + person_id,
                    person_id=person_id,
                )
            )
            book_id += 1
    singles = [("Elio", "Bachi"), ("Carla", "Diena"), ("Sergio", "Finzi"),
               ("Noemi", "Jona"), ("Aldo", "Pavia")]
    for person_id, (first, last) in enumerate(singles, start=100):
        records.append(
            make_record(
                book_id=book_id,
                first=(first,),
                last=(last,),
                birth_year=1880 + person_id % 20,
                person_id=person_id,
            )
        )
        book_id += 1
    return Dataset(records)


class TestConfigValidation:
    def test_max_minsup_floor(self):
        with pytest.raises(ValueError):
            MFIBlocksConfig(max_minsup=1)

    def test_ng_positive(self):
        with pytest.raises(ValueError):
            MFIBlocksConfig(ng=0)

    def test_min_block_size(self):
        with pytest.raises(ValueError):
            MFIBlocksConfig(min_block_size=1)

    def test_defaults(self):
        config = MFIBlocksConfig()
        assert config.max_minsup == 5
        assert config.ng == 3.0
        assert config.sn_mode == "skip"


class TestAlgorithm:
    def test_finds_exact_duplicates(self):
        dataset = duplicate_heavy_dataset()
        result = MFIBlocks(MFIBlocksConfig(max_minsup=3, ng=3.0)).run(dataset)
        gold = dataset.true_pairs()
        found = result.candidate_pairs & gold
        assert len(found) == len(gold)  # every duplicate pair recovered

    def test_blocks_respect_size_cap(self):
        dataset = duplicate_heavy_dataset()
        config = MFIBlocksConfig(max_minsup=4, ng=2.0)
        result = MFIBlocks(config).run(dataset)
        for block in result.blocks:
            assert len(block) <= int(config.max_minsup * config.ng)

    def test_blocks_have_keys_and_scores(self):
        dataset = duplicate_heavy_dataset()
        result = MFIBlocks(MFIBlocksConfig(max_minsup=3)).run(dataset)
        assert result.blocks
        for block in result.blocks:
            assert block.key  # MFIBlocks blocks carry their MFI
            assert block.score > 0.0

    def test_pair_scores_in_unit_interval(self):
        dataset = duplicate_heavy_dataset()
        result = MFIBlocks(MFIBlocksConfig(max_minsup=3)).run(dataset)
        for score in result.pair_scores.values():
            assert 0.0 < score <= 1.0

    def test_exact_duplicates_score_one(self):
        dataset = duplicate_heavy_dataset()
        result = MFIBlocks(MFIBlocksConfig(max_minsup=3)).run(dataset)
        gold = dataset.true_pairs()
        for pair in gold:
            assert result.pair_scores[pair] == pytest.approx(1.0)

    def test_empty_dataset(self):
        result = MFIBlocks().run(Dataset([]))
        assert result.blocks == []
        assert result.candidate_pairs == frozenset()

    def test_no_shared_items_no_blocks(self):
        records = [
            make_record(book_id=1, first=("Aaa",), last=("Bbb",), gender=None),
            make_record(book_id=2, first=("Ccc",), last=("Ddd",), gender=None),
        ]
        result = MFIBlocks(MFIBlocksConfig(max_minsup=2)).run(Dataset(records))
        assert result.candidate_pairs == frozenset()

    def test_deterministic(self):
        dataset = duplicate_heavy_dataset()
        result_a = MFIBlocks(MFIBlocksConfig()).run(dataset)
        result_b = MFIBlocks(MFIBlocksConfig()).run(dataset)
        assert result_a.pair_scores == result_b.pair_scores

    def test_prune_fraction_runs(self):
        dataset = duplicate_heavy_dataset()
        result = MFIBlocks(
            MFIBlocksConfig(prune_fraction=0.01)
        ).run(dataset)
        # gender (the most frequent item) was pruned from every bag, so
        # no block should be keyed solely by it.
        for block in result.blocks:
            assert {str(i).split()[0] for i in block.key} != {"G"}


class TestNGEffect:
    def test_larger_ng_more_candidates(self, small_corpus):
        dataset, _persons = small_corpus
        tight = MFIBlocks(MFIBlocksConfig(ng=1.5)).run(dataset)
        loose = MFIBlocks(MFIBlocksConfig(ng=4.0)).run(dataset)
        assert loose.comparisons() >= tight.comparisons()

    def test_recall_grows_with_ng(self, small_corpus, small_gold):
        dataset, _persons = small_corpus
        tight = MFIBlocks(MFIBlocksConfig(ng=1.5)).run(dataset)
        loose = MFIBlocks(MFIBlocksConfig(ng=4.5)).run(dataset)
        recall_tight = small_gold.evaluate(tight.candidate_pairs).recall
        recall_loose = small_gold.evaluate(loose.candidate_pairs).recall
        assert recall_loose >= recall_tight

    def test_neighborhoods_bounded(self, small_corpus):
        """SN property: neighborhood sizes stay within the NG cap."""
        dataset, _persons = small_corpus
        config = MFIBlocksConfig(max_minsup=5, ng=2.0)
        result = MFIBlocks(config).run(dataset)
        cap = int(config.ng * config.max_minsup)
        for size in result.neighborhoods().values():
            assert size <= cap


class TestScoringVariants:
    def test_expert_scoring_changes_pair_scores(self):
        dataset = duplicate_heavy_dataset()
        uniform = MFIBlocks(MFIBlocksConfig(max_minsup=3)).run(dataset)
        expert = MFIBlocks(
            MFIBlocksConfig(
                max_minsup=3,
                scoring=BlockScorer(method=ScoringMethod.EXPERT),
            )
        ).run(dataset)
        assert uniform.candidate_pairs  # sanity
        assert expert.candidate_pairs
