"""Tests for the 48 pairwise similarity features."""

from __future__ import annotations

import pytest

from repro.geo import GeoPoint
from repro.records.schema import Gender, Place, PlaceType
from repro.similarity.features import (
    FEATURE_NAMES,
    FEATURES,
    FeatureKind,
    extract_features,
    feature_spec,
    soundex,
)
from tests.conftest import make_record


class TestRegistry:
    def test_exactly_48_features(self):
        assert len(FEATURES) == 48
        assert len(FEATURE_NAMES) == 48

    def test_names_unique(self):
        assert len(set(FEATURE_NAMES)) == 48

    def test_paper_tree_features_exist(self):
        """Every feature named in Tables 7-8 must be in the registry."""
        for name in ("sameFFN", "MFNdist", "FFNdist", "sameFN", "FNdist",
                     "B3dist", "LNdist", "MNdist", "SNdist", "DPGeoDist"):
            assert name in FEATURE_NAMES, name

    def test_feature_spec_lookup(self):
        spec = feature_spec("sameFN")
        assert spec.kind is FeatureKind.CATEGORICAL
        with pytest.raises(ValueError):
            feature_spec("nope")

    def test_family_counts(self):
        categorical = [f for f in FEATURES if f.kind is FeatureKind.CATEGORICAL]
        numeric = [f for f in FEATURES if f.kind is FeatureKind.NUMERIC]
        assert len(categorical) + len(numeric) == 48
        # 7 sameXName + 16 samePlace + 3 provenance + 2 soundex = 28
        assert len(categorical) == 28
        assert len(numeric) == 20


class TestSameName:
    def test_yes_when_identical(self):
        a = make_record(book_id=1)
        b = make_record(book_id=2)
        assert extract_features(a, b)["sameFN"] == "yes"

    def test_partial_for_subset(self):
        """The paper's example: {John, Harris} vs {John} -> partial."""
        a = make_record(book_id=1, first=("John", "Harris"))
        b = make_record(book_id=2, first=("John",))
        assert extract_features(a, b)["sameFN"] == "partial"

    def test_no_when_disjoint(self):
        a = make_record(book_id=1, first=("Guido",))
        b = make_record(book_id=2, first=("Massimo",))
        assert extract_features(a, b)["sameFN"] == "no"

    def test_missing_when_either_empty(self):
        a = make_record(book_id=1, father=())
        b = make_record(book_id=2, father=("Donato",))
        assert extract_features(a, b)["sameFFN"] is None


class TestNameDist:
    def test_identical_is_one(self):
        a = make_record(book_id=1)
        b = make_record(book_id=2)
        assert extract_features(a, b)["FNdist"] == 1.0

    def test_typo_above_half(self):
        a = make_record(book_id=1, last=("Rosenberg",))
        b = make_record(book_id=2, last=("Rozenberg",))
        assert extract_features(a, b)["LNdist"] > 0.5

    def test_max_over_multiple_names(self):
        a = make_record(book_id=1, first=("Xyzzy", "Guido"))
        b = make_record(book_id=2, first=("Guido",))
        assert extract_features(a, b)["FNdist"] == 1.0

    def test_missing(self):
        a = make_record(book_id=1, spouse=())
        b = make_record(book_id=2, spouse=("Helena",))
        assert extract_features(a, b)["SNdist"] is None


class TestBirthDistances:
    def test_year_distance_raw(self):
        a = make_record(book_id=1, birth_year=1920)
        b = make_record(book_id=2, birth_year=1936)
        assert extract_features(a, b)["B3dist"] == 16.0

    def test_day_month_distances(self):
        a = make_record(book_id=1, birth_day=2, birth_month=8)
        b = make_record(book_id=2, birth_day=18, birth_month=11)
        features = extract_features(a, b)
        assert features["B1dist"] == 15.0  # cyclic: min(16, 31-16)
        assert features["B2dist"] == 3.0

    def test_missing_components(self):
        a = make_record(book_id=1, birth_year=1920)
        b = make_record(book_id=2)
        features = extract_features(a, b)
        assert features["B3dist"] is None
        assert features["B1dist"] is None

    def test_full_dob_needs_all_parts(self):
        a = make_record(book_id=1, birth_day=1, birth_month=1, birth_year=1920)
        b = make_record(book_id=2, birth_year=1920)
        assert extract_features(a, b)["fullDOBdist"] is None
        c = make_record(book_id=3, birth_day=1, birth_month=1, birth_year=1920)
        assert extract_features(a, c)["fullDOBdist"] == 0.0


class TestPlaces:
    torino = Place(city="Torino", county="Torino", region="Piemonte",
                   country="Italy", coords=GeoPoint(45.0703, 7.6869))
    moncalieri = Place(city="Moncalieri", county="Torino", region="Piemonte",
                       country="Italy", coords=GeoPoint(44.9997, 7.6822))

    def test_same_place_parts(self):
        a = make_record(book_id=1, places={PlaceType.BIRTH: (self.torino,)})
        b = make_record(book_id=2, places={PlaceType.BIRTH: (self.moncalieri,)})
        features = extract_features(a, b)
        assert features["sameBPCity"] == "no"
        assert features["sameBPCounty"] == "yes"
        assert features["sameBPRegion"] == "yes"
        assert features["sameBPCountry"] == "yes"

    def test_geo_distance_paper_example(self):
        """Turin-Moncalieri birth places -> ~9 km (Section 5.1)."""
        a = make_record(book_id=1, places={PlaceType.BIRTH: (self.torino,)})
        b = make_record(book_id=2, places={PlaceType.BIRTH: (self.moncalieri,)})
        assert extract_features(a, b)["BPGeoDist"] == pytest.approx(8.0, abs=1.5)

    def test_no_cross_type_comparison(self):
        a = make_record(book_id=1, places={PlaceType.BIRTH: (self.torino,)})
        b = make_record(book_id=2, places={PlaceType.DEATH: (self.torino,)})
        features = extract_features(a, b)
        assert features["sameBPCity"] is None
        assert features["sameDPCity"] is None
        assert features["BPGeoDist"] is None

    def test_min_distance_over_multiple_places(self):
        a = make_record(
            book_id=1,
            places={PlaceType.WARTIME: (self.torino, self.moncalieri)},
        )
        b = make_record(book_id=2, places={PlaceType.WARTIME: (self.moncalieri,)})
        assert extract_features(a, b)["WPGeoDist"] == 0.0

    def test_geo_missing_without_coords(self):
        bare = Place(city="Torino")
        a = make_record(book_id=1, places={PlaceType.BIRTH: (bare,)})
        b = make_record(book_id=2, places={PlaceType.BIRTH: (self.torino,)})
        assert extract_features(a, b)["BPGeoDist"] is None


class TestProvenanceAndExtras:
    def test_same_source(self):
        a = make_record(book_id=1, source=("list", "L1"))
        b = make_record(book_id=2, source=("list", "L1"))
        c = make_record(book_id=3, source=("list", "L2"))
        assert extract_features(a, b)["sameSource"] == "yes"
        assert extract_features(a, c)["sameSource"] == "no"

    def test_same_gender(self):
        a = make_record(book_id=1, gender=Gender.MALE)
        b = make_record(book_id=2, gender=Gender.FEMALE)
        assert extract_features(a, b)["sameGender"] == "no"
        c = make_record(book_id=3, gender=None)
        assert extract_features(a, c)["sameGender"] is None

    def test_same_profession(self):
        a = make_record(book_id=1, profession="tailor")
        b = make_record(book_id=2, profession="tailor")
        c = make_record(book_id=3, profession="baker")
        assert extract_features(a, b)["sameProfession"] == "yes"
        assert extract_features(a, c)["sameProfession"] == "no"

    def test_item_jaccard_bounds(self):
        a = make_record(book_id=1)
        b = make_record(book_id=2)
        assert extract_features(a, b)["itemJaccard"] == 1.0

    def test_n_shared_items(self):
        a = make_record(book_id=1, birth_year=1920)
        b = make_record(book_id=2, birth_year=1921)
        features = extract_features(a, b)
        assert features["nSharedItems"] == 3.0  # FN, LN, G


class TestSoundex:
    def test_classic_codes(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Ashcraft") == "A261"
        assert soundex("Tymczak") == "T522"

    def test_empty(self):
        assert soundex("") == ""

    def test_subset_extraction(self):
        a = make_record(book_id=1)
        b = make_record(book_id=2)
        features = extract_features(a, b, names=("sameFN", "LNdist"))
        assert set(features) == {"sameFN", "LNdist"}


class TestGuidoFoaScenario:
    """Feature behaviour on the paper's Table 1 records."""

    def test_father_records_strongly_similar(self, guido_records):
        _son, father_a, father_b, _decoy = guido_records
        features = extract_features(father_a, father_b)
        assert features["sameFN"] == "yes"
        assert features["sameLN"] == "no"       # Foa vs Foy
        assert features["LNdist"] > 0.3          # but the spelling is close
        assert features["B3dist"] == 0.0
        assert features["sameFFN"] == "yes"      # Donato
        assert features["sameMFN"] == "yes"      # Olga

    def test_father_vs_son_differ_on_dates(self, guido_records):
        son, father_a, _father_b, _decoy = guido_records
        features = extract_features(son, father_a)
        assert features["sameFN"] == "yes"
        assert features["sameLN"] == "yes"
        assert features["B3dist"] == 16.0        # 1936 vs 1920
        assert features["sameFFN"] == "no"       # Italo vs Donato
