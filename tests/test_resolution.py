"""Tests for ranked resolution and certainty queries."""

from __future__ import annotations

import pytest

from repro.core.resolution import (
    PairEvidence,
    ResolutionResult,
    connected_components,
)
from repro.evaluation.goldstandard import GoldStandard


def evidence_set():
    return [
        PairEvidence((1, 2), similarity=0.9, confidence=2.0),
        PairEvidence((2, 3), similarity=0.6, confidence=0.5),
        PairEvidence((4, 5), similarity=0.8, confidence=-1.0),
        PairEvidence((6, 7), similarity=0.4),
    ]


class TestConnectedComponents:
    def test_chain_merges(self):
        components = connected_components([(1, 2), (2, 3)])
        assert components == [frozenset({1, 2, 3})]

    def test_separate_components(self):
        components = connected_components([(1, 2), (4, 5)])
        assert frozenset({1, 2}) in components
        assert frozenset({4, 5}) in components

    def test_seeds_add_singletons(self):
        components = connected_components([(1, 2)], seeds=[1, 2, 9])
        assert frozenset({9}) in components

    def test_empty(self):
        assert connected_components([]) == []

    def test_large_chain(self):
        pairs = [(i, i + 1) for i in range(1, 100)]
        components = connected_components(pairs)
        assert len(components) == 1
        assert len(components[0]) == 100


class TestResolutionResult:
    def test_rejects_uncanonical(self):
        with pytest.raises(ValueError):
            ResolutionResult([PairEvidence((2, 1), 0.5)])

    def test_container_protocol(self):
        result = ResolutionResult(evidence_set())
        assert len(result) == 4
        assert (1, 2) in result
        assert result[(1, 2)].similarity == 0.9

    def test_ranking_key_prefers_confidence(self):
        with_confidence = PairEvidence((1, 2), 0.2, confidence=3.0)
        without = PairEvidence((3, 4), 0.9)
        assert with_confidence.ranking_key == 3.0
        assert without.ranking_key == 0.9

    def test_ranked_descending(self):
        result = ResolutionResult(evidence_set())
        keys = [evidence.ranking_key for evidence in result.ranked()]
        assert keys == sorted(keys, reverse=True)

    def test_top_k(self):
        result = ResolutionResult(evidence_set())
        top = result.top(2)
        assert len(top) == 2
        assert top[0].pair == (1, 2)
        with pytest.raises(ValueError):
            result.top(-1)

    def test_resolve_threshold(self):
        result = ResolutionResult(evidence_set())
        crisp = result.resolve(certainty=0.45)
        assert (1, 2) in crisp
        assert (2, 3) in crisp
        assert (4, 5) not in crisp  # confidence -1 ranks below threshold

    def test_resolve_monotone_in_certainty(self):
        result = ResolutionResult(evidence_set())
        sizes = [
            len(result.resolve(certainty=threshold))
            for threshold in (-2.0, 0.0, 0.5, 1.0, 3.0)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_entities_at_levels(self):
        result = ResolutionResult(evidence_set())
        loose = result.entities(certainty=-5.0)
        assert frozenset({1, 2, 3}) in loose
        tight = result.entities(certainty=1.0)
        assert frozenset({1, 2}) in tight
        assert not any(3 in entity for entity in tight)

    def test_entities_with_singletons(self):
        result = ResolutionResult(evidence_set())
        entities = result.entities(certainty=10.0, include_singletons=True)
        # every referenced record appears as its own singleton
        members = set().union(*entities)
        assert members == {1, 2, 3, 4, 5, 6, 7}

    def test_evaluate_and_sweep(self):
        result = ResolutionResult(evidence_set())
        gold = GoldStandard(frozenset({(1, 2), (4, 5)}))
        quality = result.evaluate(gold, certainty=0.0)
        assert quality.true_positives == 1  # (1,2); (4,5) filtered by confidence
        sweep = result.sweep(gold, [0.0, 1.0])
        assert len(sweep) == 2
        recalls = [q.recall for _, q in sweep]
        assert recalls == sorted(recalls, reverse=True)


class TestPersistence:
    def test_json_roundtrip(self, tmp_path):
        result = ResolutionResult(evidence_set(), n_records=9)
        path = tmp_path / "resolution.json"
        result.to_json(path)
        loaded = ResolutionResult.from_json(path)
        assert loaded.n_records == 9
        assert loaded.pairs == result.pairs
        for evidence in result:
            restored = loaded[evidence.pair]
            assert restored.similarity == evidence.similarity
            assert restored.confidence == evidence.confidence
            assert restored.same_source == evidence.same_source

    def test_roundtrip_preserves_ranking(self, tmp_path):
        result = ResolutionResult(evidence_set())
        path = tmp_path / "r.json"
        result.to_json(path)
        loaded = ResolutionResult.from_json(path)
        assert [e.pair for e in loaded.ranked()] == [
            e.pair for e in result.ranked()
        ]
