"""Tests for the ItalySet / RandomSet corpus builders and the gazetteer."""

from __future__ import annotations

import pytest

from repro.datagen.corpus import build_corpus, build_italy_set, build_random_set
from repro.datagen.names import COMMUNITIES
from repro.datagen.places import DEATH_PLACES, HOME_CITIES, build_gazetteer


class TestBuildCorpus:
    def test_returns_dataset_and_persons(self):
        dataset, persons = build_corpus(n_persons=40, seed=1)
        assert len(dataset) >= 40
        assert len(persons) == 40

    def test_single_community_restriction(self):
        _dataset, persons = build_corpus(
            n_persons=40, communities=("greece",), seed=1
        )
        assert {person.community for person in persons} == {"greece"}


class TestItalySet:
    def test_scaled_size_near_published(self):
        dataset, _persons = build_italy_set(scale=0.05, seed=2)
        # 5% of 9,499 is ~475; generation is stochastic, allow slack.
        assert 300 <= len(dataset) <= 700

    def test_mv_fraction(self):
        dataset, _persons = build_italy_set(scale=0.05, seed=2)
        mv = [r for r in dataset if r.source.identifier == "MV"]
        # published ratio: 1,400 / 9,499 ~ 15%
        assert 0.08 <= len(mv) / len(dataset) <= 0.25

    def test_italian_community_only(self):
        _dataset, persons = build_italy_set(scale=0.03, seed=2)
        assert {person.community for person in persons} == {"italy"}

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_italy_set(scale=0)


class TestRandomSet:
    def test_covers_six_communities(self):
        _dataset, persons = build_random_set(scale=0.005, seed=3)
        communities = {person.community for person in persons}
        assert communities == set(COMMUNITIES)

    def test_scaling(self):
        small, _ = build_random_set(scale=0.002, seed=3)
        large, _ = build_random_set(scale=0.004, seed=3)
        assert len(large) > len(small)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_random_set(scale=-1)


class TestGazetteer:
    def test_lookup_canonical_and_variant(self):
        gazetteer = build_gazetteer(["italy"])
        torino = gazetteer.lookup("Torino")
        turin = gazetteer.lookup("Turin")
        assert torino is not None
        assert torino == turin

    def test_lookup_case_insensitive(self):
        gazetteer = build_gazetteer(["poland"])
        assert gazetteer.lookup("warszawa") == gazetteer.lookup("WARSZAWA")

    def test_unknown_city(self):
        gazetteer = build_gazetteer(["italy"])
        assert gazetteer.lookup("Gotham") is None

    def test_death_places_always_included(self):
        gazetteer = build_gazetteer(["italy"])
        assert gazetteer.lookup("Auschwitz") is not None

    def test_unknown_community_rejected(self):
        with pytest.raises(ValueError):
            build_gazetteer(["narnia"])

    def test_all_coordinates_valid(self):
        for cities in HOME_CITIES.values():
            for city in cities:
                city.coords.validate()
        for city in DEATH_PLACES:
            city.coords.validate()

    def test_city_to_place_granularity(self):
        city = HOME_CITIES["italy"][0]
        full = city.to_place(granularity=4)
        assert full.city and full.coords
        country_only = city.to_place(granularity=1)
        assert country_only.city is None
        assert country_only.coords is None
        assert country_only.country == "Italy"
        with pytest.raises(ValueError):
            city.to_place(granularity=5)
