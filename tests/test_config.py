"""Tests for PipelineConfig condition composition."""

from __future__ import annotations

from repro.blocking.scoring import ScoringMethod
from repro.core.config import PipelineConfig


class TestScorerSelection:
    def test_base_is_uniform(self):
        assert PipelineConfig().scorer().method is ScoringMethod.UNIFORM

    def test_expert_weighting_selects_weighted(self):
        scorer = PipelineConfig(expert_weighting=True).scorer()
        assert scorer.method is ScoringMethod.WEIGHTED
        assert scorer.weights  # expert weights attached

    def test_expert_sim_wins_over_weighting(self):
        scorer = PipelineConfig(expert_weighting=True, expert_sim=True).scorer()
        assert scorer.method is ScoringMethod.EXPERT
        assert scorer.weights  # still composes with weighting

    def test_expert_sim_without_weighting(self):
        scorer = PipelineConfig(expert_sim=True).scorer()
        assert scorer.method is ScoringMethod.EXPERT
        assert scorer.weights is None


class TestBlockingConfig:
    def test_parameters_forwarded(self):
        config = PipelineConfig(max_minsup=6, ng=2.5, prune_fraction=0.01,
                                sn_mode="threshold")
        blocking = config.blocking_config()
        assert blocking.max_minsup == 6
        assert blocking.ng == 2.5
        assert blocking.prune_fraction == 0.01
        assert blocking.sn_mode == "threshold"

    def test_with_ng(self):
        config = PipelineConfig(ng=3.0, classify=True)
        swept = config.with_ng(4.0)
        assert swept.ng == 4.0
        assert swept.classify is True
        assert config.ng == 3.0  # original unchanged


class TestDescribe:
    def test_base(self):
        assert PipelineConfig().describe().startswith("Base")

    def test_flags_listed(self):
        label = PipelineConfig(
            expert_weighting=True, same_source_discard=True, classify=True
        ).describe()
        assert "ExpertWeighting" in label
        assert "SameSrc" in label
        assert "Cls" in label

    def test_parameters_shown(self):
        label = PipelineConfig(max_minsup=4, ng=3.5).describe()
        assert "MaxMinSup=4" in label
        assert "NG=3.5" in label
