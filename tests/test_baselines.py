"""Tests for the ten Table-10 baseline blocking techniques."""

from __future__ import annotations

import pytest

from repro.blocking.baselines import (
    ALL_BASELINES,
    AttributeClustering,
    CanopyClustering,
    ExtendedCanopyClustering,
    ExtendedQGramsBlocking,
    ExtendedSortedNeighborhood,
    ExtendedSuffixArraysBlocking,
    QGramsBlocking,
    StandardBlocking,
    SuffixArraysBlocking,
    TYPiMatch,
)
from repro.records.dataset import Dataset
from tests.conftest import make_record


@pytest.fixture(scope="module")
def tiny_dataset():
    """Two exact duplicates, one near-duplicate, one unrelated record."""
    return Dataset(
        [
            make_record(book_id=1, first=("Guido",), last=("Foa",),
                        birth_year=1920, person_id=1),
            make_record(book_id=2, first=("Guido",), last=("Foa",),
                        birth_year=1920, person_id=1),
            make_record(book_id=3, first=("Guido",), last=("Foy",),
                        birth_year=1920, person_id=1),
            make_record(book_id=4, first=("Zismund",), last=("Brockman",),
                        gender=None, person_id=2),
        ]
    )


class TestStandardBlocking:
    def test_exact_duplicates_blocked(self, tiny_dataset):
        result = StandardBlocking().run(tiny_dataset)
        assert (1, 2) in result.candidate_pairs

    def test_value_must_be_shared(self, tiny_dataset):
        result = StandardBlocking().run(tiny_dataset)
        # Record 4 shares no attribute value with anyone.
        assert not any(4 in pair for pair in result.candidate_pairs)

    def test_max_block_size_purging(self, small_corpus):
        dataset, _persons = small_corpus
        unpurged = StandardBlocking().run(dataset)
        purged = StandardBlocking(max_block_size=10).run(dataset)
        assert purged.comparisons() < unpurged.comparisons()
        for block in purged.blocks:
            assert len(block) <= 10


class TestAttributeClustering:
    def test_groups_similar_spellings(self, tiny_dataset):
        # Foa/Foy don't share an exact value, but ACl should cluster them
        # at a loose-enough threshold.
        result = AttributeClustering(threshold=0.4).run(tiny_dataset)
        assert (1, 3) in result.candidate_pairs

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AttributeClustering(threshold=0.0)

    def test_recall_at_least_standard(self, tiny_dataset):
        stbl = StandardBlocking().run(tiny_dataset).candidate_pairs
        acl = AttributeClustering(threshold=0.75).run(tiny_dataset).candidate_pairs
        assert stbl <= acl


class TestQGrams:
    def test_typo_tolerance(self, tiny_dataset):
        result = QGramsBlocking(q=2).run(tiny_dataset)
        # 'Foa' and 'Foy' share the bigram 'fo'.
        assert (1, 3) in result.candidate_pairs

    def test_q_validation(self):
        with pytest.raises(ValueError):
            QGramsBlocking(q=0)

    def test_recall_superset_of_standard(self, tiny_dataset):
        stbl = StandardBlocking().run(tiny_dataset).candidate_pairs
        qgbl = QGramsBlocking(q=2).run(tiny_dataset).candidate_pairs
        assert stbl <= qgbl

    def test_extended_more_precise_keys(self, small_corpus):
        dataset, _persons = small_corpus
        plain = QGramsBlocking(q=3).run(dataset)
        extended = ExtendedQGramsBlocking(q=3).run(dataset)
        # Extended q-grams build more discriminative keys -> fewer pairs.
        assert extended.comparisons() <= plain.comparisons()

    def test_extended_threshold_validation(self):
        with pytest.raises(ValueError):
            ExtendedQGramsBlocking(threshold=0.0)


class TestSortedNeighborhood:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            ExtendedSortedNeighborhood(window=1)

    def test_adjacent_values_blocked(self, tiny_dataset):
        result = ExtendedSortedNeighborhood(window=3).run(tiny_dataset)
        # Foa and Foy are alphabetically adjacent values.
        assert (1, 3) in result.candidate_pairs

    def test_larger_window_weakly_more_pairs(self, tiny_dataset):
        small = ExtendedSortedNeighborhood(window=2).run(tiny_dataset)
        large = ExtendedSortedNeighborhood(window=5).run(tiny_dataset)
        assert small.comparisons() <= large.comparisons()


class TestSuffixArrays:
    def test_shared_suffix_blocks(self):
        dataset = Dataset(
            [
                make_record(book_id=1, last=("Rosenberg",)),
                make_record(book_id=2, last=("Rozenberg",)),
            ]
        )
        result = SuffixArraysBlocking(min_length=4).run(dataset)
        assert (1, 2) in result.candidate_pairs  # share 'enberg' suffixes

    def test_extended_catches_infix_variants(self):
        dataset = Dataset(
            [
                make_record(book_id=1, first=("A",), last=("Jakubowicz",), gender=None),
                make_record(book_id=2, first=("B",), last=("Jakubowiczer",), gender=None),
            ]
        )
        suffix_only = SuffixArraysBlocking(min_length=6).run(dataset)
        extended = ExtendedSuffixArraysBlocking(min_length=6).run(dataset)
        # 'jakubowicz' is an infix of 'jakubowiczer' but their suffixes differ.
        assert (1, 2) not in suffix_only.candidate_pairs
        assert (1, 2) in extended.candidate_pairs

    def test_min_length_validation(self):
        with pytest.raises(ValueError):
            SuffixArraysBlocking(min_length=0)

    def test_frequency_cap_enforced(self, small_corpus):
        dataset, _persons = small_corpus
        result = SuffixArraysBlocking(min_length=4, max_frequency=10).run(dataset)
        for block in result.blocks:
            assert len(block) <= 10


class TestCanopy:
    def test_threshold_ordering_validation(self):
        with pytest.raises(ValueError):
            CanopyClustering(t1=0.8, t2=0.5)

    def test_blocks_non_overlapping_on_tight_threshold(self, tiny_dataset):
        result = CanopyClustering(t1=0.99, t2=0.99).run(tiny_dataset)
        seen = set()
        for block in result.blocks:
            assert not (block.records & seen)
            seen |= block.records

    def test_finds_duplicates(self, tiny_dataset):
        result = CanopyClustering(t1=0.3, t2=0.7).run(tiny_dataset)
        assert (1, 2) in result.candidate_pairs

    def test_extended_assigns_leftovers(self, small_corpus):
        dataset, _persons = small_corpus
        plain = CanopyClustering(t1=0.5, t2=0.8, seed=7).run(dataset)
        extended = ExtendedCanopyClustering(t1=0.5, t2=0.8, seed=7).run(dataset)
        assert extended.comparisons() >= plain.comparisons()

    def test_deterministic_given_seed(self, tiny_dataset):
        a = CanopyClustering(seed=5).run(tiny_dataset).candidate_pairs
        b = CanopyClustering(seed=5).run(tiny_dataset).candidate_pairs
        assert a == b


class TestTYPiMatch:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            TYPiMatch(epsilon=0.0)

    def test_runs_and_finds_duplicates(self, tiny_dataset):
        result = TYPiMatch(epsilon=0.3).run(tiny_dataset)
        assert (1, 2) in result.candidate_pairs


class TestAllBaselinesContract:
    @pytest.mark.parametrize("algorithm_class", ALL_BASELINES)
    def test_runs_on_corpus_and_returns_canonical_pairs(
        self, algorithm_class, small_corpus
    ):
        dataset, _persons = small_corpus
        result = algorithm_class().run(dataset)
        for a, b in result.candidate_pairs:
            assert a < b
            assert a in dataset and b in dataset

    @pytest.mark.parametrize("algorithm_class", ALL_BASELINES)
    def test_has_distinct_name(self, algorithm_class):
        assert algorithm_class.name != "blocking"

    def test_names_unique(self):
        names = [cls.name for cls in ALL_BASELINES]
        assert len(names) == len(set(names)) == 10
