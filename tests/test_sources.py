"""Tests for the source-template model."""

from __future__ import annotations

import random

import pytest

from repro.datagen.sources import (
    FIELDS,
    LIST_TEMPLATES,
    MV_TEMPLATE,
    SourceTemplate,
    TESTIMONY_TEMPLATE,
)


class TestSourceTemplateValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            SourceTemplate("bad", {"shoe_size": 1.0})

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError):
            SourceTemplate("bad", {"first": 1.5})

    def test_probability_accessor_default(self):
        template = SourceTemplate("t", {"first": 0.5})
        assert template.probability("first") == 0.5
        assert template.probability("spouse") == 0.0


class TestSampling:
    def test_pinned_fields_always_present(self):
        rng = random.Random(1)
        for _ in range(20):
            fields = MV_TEMPLATE.sample_fields(rng)
            assert fields == frozenset(
                {"first", "last", "father", "birth_place", "death_place"}
            )

    def test_zero_probability_fields_never_present(self):
        rng = random.Random(2)
        for _ in range(50):
            fields = MV_TEMPLATE.sample_fields(rng)
            assert "gender" not in fields
            assert "profession" not in fields

    def test_month_conditional_on_year(self):
        rng = random.Random(3)
        for _ in range(200):
            fields = TESTIMONY_TEMPLATE.sample_fields(rng)
            if "birth_month" in fields:
                assert "birth_year" in fields
            if "birth_day" in fields:
                assert "birth_month" in fields

    def test_sampling_respects_probabilities(self):
        rng = random.Random(4)
        template = SourceTemplate("t", {"first": 1.0, "profession": 0.2})
        hits = sum(
            "profession" in template.sample_fields(rng) for _ in range(1000)
        )
        assert 120 < hits < 280

    def test_fields_subset_of_registry(self):
        rng = random.Random(5)
        for template in (TESTIMONY_TEMPLATE, *LIST_TEMPLATES.values()):
            fields = template.sample_fields(rng)
            assert fields <= set(FIELDS)


class TestTemplateCatalogue:
    def test_four_list_flavors(self):
        assert set(LIST_TEMPLATES) == {
            "deportation", "camp", "ghetto", "memorial"
        }

    def test_names_match_keys(self):
        for flavor, template in LIST_TEMPLATES.items():
            assert template.name == flavor

    def test_lists_always_record_names(self):
        """Victim lists always have name columns; missing names would be
        illegible entries, not missing columns."""
        for template in LIST_TEMPLATES.values():
            assert template.probability("first") == 1.0
            assert template.probability("last") == 1.0

    def test_camp_records_dates_most(self):
        camp = LIST_TEMPLATES["camp"].probability("birth_year")
        for flavor, template in LIST_TEMPLATES.items():
            if flavor != "camp":
                assert template.probability("birth_year") <= camp
