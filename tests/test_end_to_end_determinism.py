"""Determinism and cross-stage consistency of the full system.

Reproducibility is a first-class requirement for a reproduction repo:
every stage, seeded identically, must produce byte-identical outcomes,
and artifacts must stay mutually consistent across stages.
"""

from __future__ import annotations

import pytest

from repro.blocking import MFIBlocks, MFIBlocksConfig
from repro.classify import ADTreeLearner, render_tree
from repro.classify.training import pair_features
from repro.cli import main as cli_main
from repro.core import PipelineConfig, UncertainERPipeline
from repro.core.pipeline import PIPELINE_STAGES
from repro.datagen import ExpertTagger, build_corpus, simplify_tags
from repro.evaluation import GoldStandard
from repro.resilience import (
    CheckpointMiss,
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
)


@pytest.fixture(scope="module")
def twin_corpora():
    a = build_corpus(n_persons=80, communities=("germany",), seed=3)
    b = build_corpus(n_persons=80, communities=("germany",), seed=3)
    return a, b


class TestDeterminism:
    def test_corpora_identical(self, twin_corpora):
        (dataset_a, persons_a), (dataset_b, persons_b) = twin_corpora
        assert persons_a == persons_b
        assert list(dataset_a) == list(dataset_b)

    def test_blocking_identical(self, twin_corpora):
        (dataset_a, _), (dataset_b, _) = twin_corpora
        config = MFIBlocksConfig(max_minsup=4, ng=3.0)
        result_a = MFIBlocks(config).run(dataset_a)
        result_b = MFIBlocks(config).run(dataset_b)
        assert result_a.pair_scores == result_b.pair_scores
        assert [b.records for b in result_a.blocks] == [
            b.records for b in result_b.blocks
        ]

    def test_tags_identical(self, twin_corpora):
        (dataset_a, _), (dataset_b, _) = twin_corpora
        pairs = sorted(
            MFIBlocks(MFIBlocksConfig(max_minsup=4)).run(dataset_a).candidate_pairs
        )
        tags_a = ExpertTagger(dataset_a, seed=9).tag_pairs(pairs)
        tags_b = ExpertTagger(dataset_b, seed=9).tag_pairs(pairs)
        assert tags_a == tags_b

    def test_trained_tree_identical(self, twin_corpora):
        (dataset_a, _), (dataset_b, _) = twin_corpora
        pairs = sorted(
            MFIBlocks(MFIBlocksConfig(max_minsup=4)).run(dataset_a).candidate_pairs
        )[:400]
        labels = simplify_tags(
            ExpertTagger(dataset_a, seed=9).tag_pairs(pairs), maybe_as=False
        )
        def train(dataset):
            ordered = sorted(labels)
            return ADTreeLearner(n_rounds=6).fit(
                pair_features(dataset, ordered),
                [labels[p] for p in ordered],
            )
        assert render_tree(train(dataset_a)) == render_tree(train(dataset_b))

    def test_full_pipeline_identical(self, twin_corpora):
        (dataset_a, _), (dataset_b, _) = twin_corpora
        config = PipelineConfig(max_minsup=4, ng=3.0, expert_weighting=True)
        resolution_a = UncertainERPipeline(config).run(dataset_a)
        resolution_b = UncertainERPipeline(config).run(dataset_b)
        assert resolution_a.pairs == resolution_b.pairs
        assert [e.similarity for e in resolution_a.ranked()] == [
            e.similarity for e in resolution_b.ranked()
        ]


class TestByteIdenticalSerialization:
    """The reprolint contract, end to end: same seed, same bytes.

    Object-level equality (above) would miss ordering bugs that only
    surface at serialization — a ranked CSV whose equal-scoring rows
    swap places between runs compares equal as a *set* of pairs but not
    as bytes. These tests pin the strongest form of the claim.
    """

    def _run_ranked_json(self, tmp_path, tag, seed):
        dataset, _ = build_corpus(
            n_persons=60, communities=("italy",), seed=seed
        )
        pipeline = UncertainERPipeline(
            PipelineConfig(max_minsup=4, ng=3.0, expert_weighting=True)
        )
        resolution = pipeline.run(dataset)
        out = tmp_path / f"resolution_{tag}.json"
        resolution.to_json(out)
        return out.read_bytes()

    def test_ranked_json_byte_identical(self, tmp_path):
        first = self._run_ranked_json(tmp_path, "first", seed=23)
        second = self._run_ranked_json(tmp_path, "second", seed=23)
        assert first == second

    def test_different_seed_changes_bytes(self, tmp_path):
        # Guard against the vacuous pass where serialization ignores
        # the data (an empty resolution is byte-identical too).
        first = self._run_ranked_json(tmp_path, "first", seed=23)
        other = self._run_ranked_json(tmp_path, "other", seed=24)
        assert first != other

    def test_cli_resolve_csv_byte_identical(self, tmp_path, capsys):
        """generate -> resolve --classify twice; ranked CSVs match."""
        corpus = tmp_path / "corpus.json"
        assert cli_main([
            "generate", "--persons", "60", "--communities", "italy",
            "--seed", "23", "--out", str(corpus),
        ]) == 0
        outputs = []
        for tag in ("first", "second"):
            out = tmp_path / f"matches_{tag}.csv"
            assert cli_main([
                "resolve", str(corpus), "--ng", "3.0",
                "--max-minsup", "4", "--expert-weighting",
                "--classify", "--tag-seed", "7", "--out", str(out),
            ]) == 0
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]
        assert outputs[0]  # the ranked list is non-empty


class TestDeterminismUnderInstrumentation:
    """Observability must be a read-only observer of the pipeline.

    Two claims, both part of the obs acceptance contract
    (docs/OBSERVABILITY.md): (1) attaching a tracer does not perturb
    the resolution — ranked artifacts are byte-identical with tracing
    on or off; (2) the trace itself is deterministic — two identical
    runs emit identical event streams once the declared timestamp
    fields are stripped.
    """

    @pytest.fixture()
    def corpus_path(self, tmp_path):
        path = tmp_path / "corpus.json"
        assert cli_main([
            "generate", "--persons", "60", "--communities", "italy",
            "--seed", "23", "--out", str(path),
        ]) == 0
        return path

    def test_csv_byte_identical_with_tracing_on_vs_off(
        self, corpus_path, tmp_path, capsys
    ):
        outputs = {}
        for tag, extra in (
            ("off", []),
            ("on", ["--trace", str(tmp_path / "trace.jsonl"),
                    "--report", str(tmp_path / "report.json")]),
        ):
            out = tmp_path / f"matches_{tag}.csv"
            assert cli_main([
                "resolve", str(corpus_path), "--ng", "3.0",
                "--max-minsup", "4", "--expert-weighting",
                "--out", str(out), *extra,
            ]) == 0
            outputs[tag] = out.read_bytes()
        assert outputs["off"] == outputs["on"]
        assert outputs["off"]
        assert (tmp_path / "trace.jsonl").is_file()
        assert (tmp_path / "report.json").is_file()

    def test_resolution_json_byte_identical_traced_vs_untraced(
        self, twin_corpora, tmp_path
    ):
        from repro.obs import Tracer

        (dataset, _), _ = twin_corpora
        config = PipelineConfig(max_minsup=4, ng=3.0, expert_weighting=True)
        payloads = []
        for tag, tracer in (("off", None), ("on", Tracer())):
            resolution = UncertainERPipeline(config, tracer=tracer).run(
                dataset
            )
            out = tmp_path / f"resolution_{tag}.json"
            resolution.to_json(out)
            payloads.append(out.read_bytes())
        assert payloads[0] == payloads[1]

    def test_trace_events_identical_across_runs_modulo_timestamps(
        self, corpus_path, tmp_path, capsys
    ):
        import json

        from repro.obs import TIMESTAMP_FIELDS, strip_timestamps

        traces = []
        for tag in ("first", "second"):
            trace = tmp_path / f"trace_{tag}.jsonl"
            assert cli_main([
                "resolve", str(corpus_path), "--ng", "3.0",
                "--max-minsup", "4", "--expert-weighting",
                "--trace", str(trace),
            ]) == 0
            traces.append([
                json.loads(line)
                for line in trace.read_text().splitlines()
            ])
        first, second = traces
        assert len(first) == len(second)
        assert first != second  # wall-clock readings differ...
        stripped_first = [strip_timestamps(e) for e in first]
        stripped_second = [strip_timestamps(e) for e in second]
        assert stripped_first == stripped_second  # ...and nothing else
        # The declared timestamp fields really are the only divergence.
        for a, b in zip(first, second):
            for key in a:
                if key not in TIMESTAMP_FIELDS:
                    assert a[key] == b[key]


class TestResumeDeterminism:
    """Kill-and-resume must never change the bytes (docs/RESILIENCE.md).

    The chaos contract: for every stage boundary, a pipeline crashed
    right after that stage's checkpoint and then resumed from disk
    produces a ranked CSV byte-identical to an uninterrupted run's.
    A resume that silently diverged would be worse than no resume at
    all — it would launder a stale partial state into a full artifact.
    """

    CONFIG = dict(max_minsup=4, ng=3.0, expert_weighting=True)

    @pytest.fixture(scope="class")
    def corpus(self):
        dataset, _ = build_corpus(
            n_persons=50, communities=("italy",), seed=23
        )
        return dataset

    @pytest.fixture(scope="class")
    def uninterrupted_csv(self, corpus, tmp_path_factory):
        out = tmp_path_factory.mktemp("fresh") / "ranked.csv"
        UncertainERPipeline(PipelineConfig(**self.CONFIG)).run(
            corpus
        ).to_csv(out)
        return out.read_bytes()

    @pytest.mark.parametrize("stage", PIPELINE_STAGES)
    def test_killed_after_stage_resumes_byte_identical(
        self, corpus, uninterrupted_csv, tmp_path, stage
    ):
        store_dir = tmp_path / "checkpoints"
        with pytest.raises(SimulatedCrash):
            UncertainERPipeline(PipelineConfig(**self.CONFIG)).run(
                corpus,
                checkpoints=CheckpointStore(store_dir),
                faults=FaultInjector(FaultPlan(crash_after_stage=stage)),
            )

        store = CheckpointStore(store_dir)
        resumed = UncertainERPipeline(PipelineConfig(**self.CONFIG)).run(
            corpus, checkpoints=store, resume=True
        )
        assert store.hits == [stage]  # deepest durable stage served
        out = tmp_path / "resumed.csv"
        resumed.to_csv(out)
        assert out.read_bytes() == uninterrupted_csv

    def test_resume_rejects_checkpoints_of_other_config(
        self, corpus, uninterrupted_csv, tmp_path
    ):
        """A config change upstream must invalidate the whole chain."""
        store_dir = tmp_path / "checkpoints"
        UncertainERPipeline(PipelineConfig(**self.CONFIG)).run(
            corpus, checkpoints=CheckpointStore(store_dir)
        )
        other = dict(self.CONFIG, ng=3.5)
        store = CheckpointStore(store_dir)
        UncertainERPipeline(PipelineConfig(**other)).run(
            corpus, checkpoints=store, resume=True
        )
        assert store.hits == []
        assert {m.reason for m in store.misses} == {
            CheckpointMiss.FINGERPRINT_MISMATCH
        }

    def test_cli_resume_byte_identical(self, tmp_path, capsys):
        """resolve --checkpoint-dir, then --resume: same bytes."""
        corpus = tmp_path / "corpus.json"
        assert cli_main([
            "generate", "--persons", "40", "--communities", "italy",
            "--seed", "23", "--out", str(corpus),
        ]) == 0
        common = [
            "resolve", str(corpus), "--ng", "3.0", "--max-minsup", "4",
            "--expert-weighting", "--checkpoint-dir",
            str(tmp_path / "ckpts"),
        ]
        first = tmp_path / "first.csv"
        second = tmp_path / "second.csv"
        assert cli_main([*common, "--out", str(first)]) == 0
        assert cli_main([*common, "--resume", "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert first.read_bytes()


class TestCrossStageConsistency:
    def test_pairs_reference_real_records(self, twin_corpora):
        (dataset, _), _ = twin_corpora
        resolution = UncertainERPipeline(
            PipelineConfig(max_minsup=4, ng=3.0)
        ).run(dataset)
        for a, b in resolution.pairs:
            assert a in dataset and b in dataset

    def test_entities_partition_at_every_level(self, twin_corpora):
        (dataset, _), _ = twin_corpora
        resolution = UncertainERPipeline(
            PipelineConfig(max_minsup=4, ng=3.0)
        ).run(dataset)
        for certainty in (0.0, 0.2, 0.5):
            seen = set()
            for cluster in resolution.entities(certainty,
                                               include_singletons=True):
                assert not (cluster & seen)
                seen |= cluster

    def test_gold_standard_stable_under_subset_order(self, twin_corpora):
        (dataset, _), _ = twin_corpora
        ids = dataset.record_ids
        forward = GoldStandard.from_dataset(dataset.subset(ids))
        backward = GoldStandard.from_dataset(dataset.subset(reversed(ids)))
        assert forward.matches == backward.matches
