"""Integration tests: the full uncertain-ER pipeline end to end."""

from __future__ import annotations

import pytest

from repro.core import PipelineConfig, UncertainERPipeline
from repro.datagen import ExpertTagger, build_gazetteer, simplify_tags
from repro.evaluation import GoldStandard, reduction_ratio


@pytest.fixture(scope="module")
def blocked(small_corpus):
    dataset, _persons = small_corpus
    pipeline = UncertainERPipeline(
        PipelineConfig(ng=3.5, expert_weighting=True)
    )
    return dataset, pipeline.block(dataset)


@pytest.fixture(scope="module")
def labels(small_corpus, blocked):
    dataset, blocking = blocked
    tagger = ExpertTagger(dataset, seed=41)
    tagged = tagger.tag_pairs(blocking.candidate_pairs)
    return simplify_tags(tagged, maybe_as=None)


class TestBlockingStage:
    def test_reduction_ratio_in_paper_range(self, small_corpus, blocked):
        """Blocking avoids the vast majority of comparisons (Sec. 3.1)."""
        dataset, blocking = blocked
        ratio = reduction_ratio(blocking.comparisons(), len(dataset))
        assert ratio > 0.8

    def test_base_recall_floor(self, small_corpus, small_gold, blocked):
        _dataset, blocking = blocked
        quality = small_gold.evaluate(blocking.candidate_pairs)
        assert quality.recall > 0.55
        assert quality.precision > 0.08


class TestConditions:
    def test_expert_weighting_raises_recall(self, small_corpus, small_gold):
        dataset, _persons = small_corpus
        base = UncertainERPipeline(PipelineConfig(ng=3.5)).run(dataset)
        weighted = UncertainERPipeline(
            PipelineConfig(ng=3.5, expert_weighting=True)
        ).run(dataset)
        recall_base = small_gold.evaluate(base.pairs).recall
        recall_weighted = small_gold.evaluate(weighted.pairs).recall
        # Strictly-greater holds at bench scale (bench_tab09_conditions);
        # at this fixture's ~200 records we only require no regression.
        assert recall_weighted >= recall_base - 0.02

    def test_same_source_discard_trades_recall_for_precision(
        self, small_corpus, small_gold
    ):
        dataset, _persons = small_corpus
        config = PipelineConfig(ng=3.5, expert_weighting=True)
        plain = UncertainERPipeline(config).run(dataset)
        filtered = UncertainERPipeline(
            PipelineConfig(ng=3.5, expert_weighting=True,
                           same_source_discard=True)
        ).run(dataset)
        q_plain = small_gold.evaluate(plain.pairs)
        q_filtered = small_gold.evaluate(filtered.pairs)
        assert q_filtered.recall <= q_plain.recall
        # Precision must not degrade materially (on small corpora the
        # same-source pairs mirror the base precision, so the gain the
        # paper reports shows up only at scale).
        assert q_filtered.precision >= q_plain.precision - 0.02
        assert not any(evidence.same_source for evidence in filtered)

    def test_classifier_filter_boosts_precision(
        self, small_corpus, small_gold, labels
    ):
        dataset, _persons = small_corpus
        base = UncertainERPipeline(
            PipelineConfig(ng=3.5, expert_weighting=True)
        ).run(dataset)
        classified = UncertainERPipeline(
            PipelineConfig(ng=3.5, expert_weighting=True, classify=True)
        ).run(dataset, labeled_pairs=labels)
        q_base = small_gold.evaluate(base.pairs)
        q_cls = small_gold.evaluate(classified.pairs)
        assert q_cls.precision > q_base.precision
        assert q_cls.f1 > q_base.f1

    def test_classify_requires_labels_or_model(self, small_corpus):
        dataset, _persons = small_corpus
        pipeline = UncertainERPipeline(PipelineConfig(classify=True))
        with pytest.raises(ValueError):
            pipeline.run(dataset)

    def test_expert_sim_runs_with_gazetteer(self, small_corpus, small_gold):
        dataset, _persons = small_corpus
        config = PipelineConfig(
            ng=3.0, expert_weighting=True, expert_sim=True,
            geo_lookup=build_gazetteer(["italy"]).lookup,
        )
        result = UncertainERPipeline(config).run(dataset)
        assert len(result) > 0
        assert small_gold.evaluate(result.pairs).recall > 0.3


class TestRankedOutput:
    def test_confidence_ranks_matches_above_nonmatches(
        self, small_corpus, small_gold, labels
    ):
        dataset, _persons = small_corpus
        result = UncertainERPipeline(
            PipelineConfig(ng=3.5, expert_weighting=True, classify=True,
                           classifier_threshold=-100.0)
        ).run(dataset, labeled_pairs=labels)
        ranked = result.ranked()
        top_half = ranked[: len(ranked) // 2]
        bottom_half = ranked[len(ranked) // 2:]
        top_matches = sum(
            1 for e in top_half if small_gold.is_match(e.pair)
        ) / len(top_half)
        bottom_matches = sum(
            1 for e in bottom_half if small_gold.is_match(e.pair)
        ) / len(bottom_half)
        assert top_matches > bottom_matches

    def test_certainty_tunes_response_size(self, small_corpus, labels):
        """The Web-query knob: higher certainty, smaller response."""
        dataset, _persons = small_corpus
        result = UncertainERPipeline(
            PipelineConfig(ng=3.5, expert_weighting=True, classify=True)
        ).run(dataset, labeled_pairs=labels)
        sizes = [len(result.resolve(c)) for c in (0.0, 0.5, 1.0, 2.0)]
        assert sizes == sorted(sizes, reverse=True)

    def test_precision_rises_with_certainty(
        self, small_corpus, small_gold, labels
    ):
        dataset, _persons = small_corpus
        result = UncertainERPipeline(
            PipelineConfig(ng=3.5, expert_weighting=True, classify=True)
        ).run(dataset, labeled_pairs=labels)
        sweep = result.sweep(small_gold, [0.0, 2.0])
        precisions = [q.precision for _, q in sweep if q.n_candidates > 10]
        assert precisions == sorted(precisions)


class TestMultiCommunity:
    def test_pipeline_handles_transliteration_heavy_corpus(
        self, multi_community_corpus
    ):
        dataset, _persons = multi_community_corpus
        gold = GoldStandard.from_dataset(dataset)
        result = UncertainERPipeline(
            PipelineConfig(ng=3.5, expert_weighting=True)
        ).run(dataset)
        quality = gold.evaluate(result.pairs)
        assert quality.recall > 0.5
        assert quality.precision > 0.1
