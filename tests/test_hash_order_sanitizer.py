"""Tests for the hash-order sanitizer (repro.sanitize).

The comparison/diff logic is unit-tested through the injectable runner;
one end-to-end test actually spawns ``python -m repro.sanitize --emit``
children under permuted PYTHONHASHSEED values and asserts the ranked
resolution output is byte-identical — the dynamic complement of
reprolint's static RL002/RL10x checks.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.sanitize import (
    SanitizeConfig,
    emit_resolution,
    main as sanitize_main,
    run_sanitize,
    subprocess_runner,
)


def small_config(**overrides) -> SanitizeConfig:
    defaults = dict(persons=24, hash_seeds=(1, 2), corpus_seed=17)
    defaults.update(overrides)
    return SanitizeConfig(**defaults)


class TestSanitizeConfig:
    def test_defaults_are_valid(self):
        config = SanitizeConfig()
        assert config.baseline_hash_seed not in config.hash_seeds

    def test_rejects_tiny_corpus(self):
        with pytest.raises(ValueError, match="persons"):
            SanitizeConfig(persons=1)

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ValueError, match="seed"):
            SanitizeConfig(hash_seeds=())

    def test_rejects_baseline_among_seeds(self):
        with pytest.raises(ValueError, match="baseline"):
            SanitizeConfig(baseline_hash_seed=1, hash_seeds=(1, 2))


class TestRunSanitizeWithFakeRunner:
    def test_identical_outputs_pass(self):
        result = run_sanitize(small_config(), runner=lambda seed: "a,b\n1,2\n")
        assert result.ok
        assert result.divergent_seeds == []
        assert result.diff is None
        assert [r.matches_baseline for r in result.runs] == [True, True]

    def test_divergent_seed_detected_with_diff(self):
        def runner(seed: int) -> str:
            return "header\nrow-1\n" if seed != 2 else "header\nrow-2\n"

        result = run_sanitize(small_config(), runner=runner)
        assert not result.ok
        assert result.divergent_seeds == [2]
        assert result.diff is not None
        assert "PYTHONHASHSEED=0" in result.diff
        assert "PYTHONHASHSEED=2" in result.diff
        assert "-row-1" in result.diff and "+row-2" in result.diff

    def test_diff_keeps_first_divergence(self):
        outputs = {0: "base\n", 1: "one\n", 2: "two\n"}
        result = run_sanitize(
            small_config(), runner=lambda seed: outputs[seed]
        )
        assert result.divergent_seeds == [1, 2]
        assert "+one" in result.diff  # first diverging seed wins

    def test_runner_called_once_per_seed(self):
        calls = []

        def runner(seed: int) -> str:
            calls.append(seed)
            return "same\n"

        run_sanitize(small_config(hash_seeds=(3, 5, 9)), runner=runner)
        assert calls == [0, 3, 5, 9]

    def test_write_diff(self, tmp_path: Path):
        result = run_sanitize(
            small_config(hash_seeds=(1,)),
            runner=lambda seed: f"row-{seed}\n",
        )
        target = tmp_path / "sanitize.diff"
        result.write_diff(target)
        assert "+row-1" in target.read_text()

    def test_write_diff_empty_when_clean(self, tmp_path: Path):
        result = run_sanitize(small_config(), runner=lambda seed: "ok\n")
        target = tmp_path / "sanitize.diff"
        result.write_diff(target)
        assert target.read_text() == ""


class TestEmitResolution:
    def test_emits_ranked_csv(self):
        output = emit_resolution(small_config())
        lines = output.splitlines()
        assert lines[0] == "book_id_a,book_id_b,similarity"
        assert len(lines) > 1
        first = lines[1].split(",")
        assert len(first) == 3
        float(first[2])  # similarity parses

    def test_emit_is_stable_in_process(self):
        config = small_config()
        assert emit_resolution(config) == emit_resolution(config)


class TestEndToEnd:
    def test_subprocess_runs_are_byte_identical(self):
        """The real thing: two children under different hash seeds."""
        config = small_config(hash_seeds=(1,), persons=20)
        result = run_sanitize(config, runner=subprocess_runner(config))
        assert result.ok, f"hash-order divergence:\n{result.diff}"
        assert result.runs[0].n_lines > 1

    def test_child_failure_raises_with_stderr(self):
        config = small_config(persons=20)
        runner = subprocess_runner(config)
        bad = SanitizeConfig(persons=2, communities=("no-such-community",))
        with pytest.raises(RuntimeError, match="PYTHONHASHSEED=0"):
            subprocess_runner(bad)(0)
        del runner


class TestCommandLine:
    def test_bad_seeds_exit_2(self, capsys):
        assert sanitize_main(["--seeds", "0"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_emit_mode_prints_csv(self, capsys):
        code = sanitize_main(["--emit", "--persons", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("book_id_a,book_id_b,similarity\n")

    def test_repro_cli_wires_sanitize(self, capsys, monkeypatch, tmp_path):
        """`repro sanitize` reaches repro.sanitize.main with its options."""
        captured = {}

        def fake_main(argv):
            captured["argv"] = list(argv)
            return 0

        monkeypatch.setattr("repro.sanitize.main", fake_main)
        code = cli_main([
            "sanitize", "--seeds", "2", "--persons", "20",
            "--no-expert-weighting",
            "--diff-out", str(tmp_path / "d.diff"),
        ])
        assert code == 0
        argv = captured["argv"]
        assert argv[:2] == ["--seeds", "2"]
        assert "--no-expert-weighting" in argv
        assert "--diff-out" in argv

    def test_module_entrypoint_exit_codes(self):
        """python -m repro.sanitize returns 2 on bad usage."""
        import subprocess

        completed = subprocess.run(
            [sys.executable, "-m", "repro.sanitize", "--seeds", "-1"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src")},
        )
        assert completed.returncode == 2
