"""Tests for the geographic primitives."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import GeoPoint, geo_similarity, haversine_km

lats = st.floats(min_value=-90, max_value=90, allow_nan=False)
lons = st.floats(min_value=-180, max_value=180, allow_nan=False)

TORINO = GeoPoint(45.0703, 7.6869)
MONCALIERI = GeoPoint(44.9997, 7.6822)
AUSCHWITZ = GeoPoint(50.0343, 19.2098)


class TestGeoPoint:
    def test_validate_ok(self):
        assert TORINO.validate() is TORINO

    def test_validate_bad_lat(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0).validate()

    def test_validate_bad_lon(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, -181.0).validate()


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(TORINO, TORINO) == 0.0

    def test_paper_example_torino_moncalieri(self):
        # Section 5.1: "for two records with birth places of Turin and
        # Moncalieri, the value would be 9 (KM)".
        assert haversine_km(TORINO, MONCALIERI) == pytest.approx(8.0, abs=1.5)

    def test_torino_auschwitz_far(self):
        assert haversine_km(TORINO, AUSCHWITZ) > 900

    @given(lats, lons, lats, lons)
    def test_symmetric_and_nonnegative(self, lat1, lon1, lat2, lon2):
        a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
        d = haversine_km(a, b)
        assert d >= 0.0
        assert d == pytest.approx(haversine_km(b, a))
        # Earth's half circumference bounds any great-circle distance.
        assert d <= 20039.0


class TestGeoSimilarity:
    def test_identical_is_one(self):
        assert geo_similarity(TORINO, TORINO) == 1.0

    def test_missing_is_none(self):
        assert geo_similarity(None, TORINO) is None
        assert geo_similarity(TORINO, None) is None

    def test_far_clamps_to_zero(self):
        assert geo_similarity(TORINO, AUSCHWITZ) == 0.0

    def test_close_positive(self):
        value = geo_similarity(TORINO, MONCALIERI)
        assert 0.9 < value < 1.0

    def test_custom_normalizer(self):
        loose = geo_similarity(TORINO, AUSCHWITZ, normalizer_km=10_000)
        assert 0.0 < loose < 1.0

    def test_invalid_normalizer(self):
        with pytest.raises(ValueError):
            geo_similarity(TORINO, MONCALIERI, normalizer_km=0)
