"""Tests for the ADTree boosting learner."""

from __future__ import annotations

import random

import pytest

from repro.classify.adtree import ADTreeModel
from repro.classify.boosting import ADTreeLearner


def learn(features, labels, **kwargs):
    return ADTreeLearner(**kwargs).fit(features, labels)


class TestValidation:
    def test_rounds_positive(self):
        with pytest.raises(ValueError):
            ADTreeLearner(n_rounds=0)

    def test_smoothing_positive(self):
        with pytest.raises(ValueError):
            ADTreeLearner(smoothing=0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            learn([{"x": 1.0}], [True, False])

    def test_empty_training_set(self):
        with pytest.raises(ValueError):
            learn([], [])


class TestLearnsSimpleConcepts:
    def test_numeric_threshold(self):
        rng = random.Random(3)
        features = [{"x": rng.uniform(0, 1)} for _ in range(200)]
        labels = [f["x"] > 0.5 for f in features]
        model = learn(features, labels, n_rounds=3)
        assert model.score({"x": 0.9}) > 0
        assert model.score({"x": 0.1}) < 0

    def test_categorical_equality(self):
        features = [{"c": "yes"}] * 50 + [{"c": "no"}] * 50
        labels = [True] * 50 + [False] * 50
        model = learn(features, labels, n_rounds=2)
        assert model.score({"c": "yes"}) > 0
        assert model.score({"c": "no"}) < 0

    def test_conjunction(self):
        rng = random.Random(5)
        features = [
            {"a": rng.choice(["y", "n"]), "b": rng.uniform(0, 1)}
            for _ in range(400)
        ]
        labels = [f["a"] == "y" and f["b"] > 0.5 for f in features]
        model = learn(features, labels, n_rounds=8)
        correct = sum(
            1
            for f, label in zip(features, labels)
            if (model.score(f) > 0) == label
        )
        assert correct / len(features) > 0.95

    def test_prior_only_when_no_features(self):
        features = [{} for _ in range(10)]
        labels = [True] * 8 + [False] * 2
        model = learn(features, labels, n_rounds=3)
        assert model.n_splitters() == 0
        assert model.score({}) > 0  # positive prior

    def test_root_prior_sign_matches_majority(self):
        features = [{"x": 0.5}] * 10
        labels = [False] * 9 + [True]
        model = learn(features, labels, n_rounds=1)
        assert model.root.value < 0


class TestMissingValues:
    def test_trains_with_missing_values(self):
        rng = random.Random(7)
        features = []
        labels = []
        for _ in range(300):
            x = rng.uniform(0, 1)
            has_x = rng.random() < 0.7
            features.append({"x": x if has_x else None, "c": "y" if x > 0.5 else "n"})
            labels.append(x > 0.5)
        model = learn(features, labels, n_rounds=6)
        # Score with the numeric feature missing should still lean on c.
        assert model.score({"x": None, "c": "y"}) > model.score({"x": None, "c": "n"})

    def test_all_missing_feature_ignored(self):
        features = [{"x": None, "c": "y"}] * 20 + [{"x": None, "c": "n"}] * 20
        labels = [True] * 20 + [False] * 20
        model = learn(features, labels, n_rounds=3)
        assert "x" not in model.features_used()


class TestStructure:
    def test_rounds_bound_splitters(self):
        rng = random.Random(11)
        features = [{"x": rng.uniform(0, 1), "y": rng.uniform(0, 1)} for _ in range(100)]
        labels = [f["x"] + f["y"] > 1.0 for f in features]
        model = learn(features, labels, n_rounds=5)
        assert model.n_splitters() <= 5

    def test_feature_pruning(self):
        """Irrelevant noise features should rarely be selected."""
        rng = random.Random(13)
        features = []
        labels = []
        for _ in range(400):
            signal = rng.uniform(0, 1)
            row = {"signal": signal}
            for j in range(10):
                row[f"noise{j}"] = rng.uniform(0, 1)
            features.append(row)
            labels.append(signal > 0.5)
        model = learn(features, labels, n_rounds=4)
        assert "signal" in model.features_used()
        noise_used = [f for f in model.features_used() if f.startswith("noise")]
        assert len(noise_used) <= 2

    def test_deterministic(self):
        rng = random.Random(17)
        features = [{"x": rng.uniform(0, 1)} for _ in range(100)]
        labels = [f["x"] > 0.3 for f in features]
        model_a = learn(features, labels, n_rounds=4)
        model_b = learn(features, labels, n_rounds=4)
        assert model_a.to_dict() == model_b.to_dict()

    def test_returns_adtree_model(self):
        model = learn([{"x": 1.0}, {"x": 0.0}], [True, False])
        assert isinstance(model, ADTreeModel)


class TestConfidenceRanking:
    def test_scores_order_by_evidence(self):
        """More agreeing features -> higher confidence, the ranked-
        resolution property the paper exploits."""
        rng = random.Random(23)
        features = []
        labels = []
        for _ in range(500):
            a = rng.random() < 0.5
            b = rng.random() < 0.5
            features.append({"fa": "y" if a else "n", "fb": "y" if b else "n"})
            # label correlates with both features
            labels.append((a and b) or (a and rng.random() < 0.3))
        model = learn(features, labels, n_rounds=6)
        both = model.score({"fa": "y", "fb": "y"})
        one = model.score({"fa": "y", "fb": "n"})
        none = model.score({"fa": "n", "fb": "n"})
        assert both > one > none
