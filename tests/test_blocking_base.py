"""Tests for blocking base types: Block, BlockingResult."""

from __future__ import annotations

import pytest

from repro.blocking.base import Block, BlockingResult, canonical_pair, pairs_of_block


class TestCanonicalPair:
    def test_orders(self):
        assert canonical_pair(5, 2) == (2, 5)
        assert canonical_pair(2, 5) == (2, 5)

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            canonical_pair(3, 3)


class TestBlock:
    def test_requires_two_records(self):
        with pytest.raises(ValueError):
            Block(records=frozenset({1}))

    def test_pairs_enumeration(self):
        block = Block(records=frozenset({3, 1, 2}))
        assert list(block.pairs()) == [(1, 2), (1, 3), (2, 3)]

    def test_len(self):
        assert len(Block(records=frozenset({1, 2, 3, 4}))) == 4

    def test_pairs_of_block_dedupes(self):
        assert list(pairs_of_block([2, 1, 2])) == [(1, 2)]


class TestBlockingResult:
    def test_add_block_accumulates_pairs(self):
        result = BlockingResult()
        result.add_block(Block(records=frozenset({1, 2}), score=0.5))
        result.add_block(Block(records=frozenset({2, 3}), score=0.8))
        assert result.candidate_pairs == {(1, 2), (2, 3)}
        assert result.comparisons() == 2

    def test_pair_score_keeps_max(self):
        result = BlockingResult()
        result.add_block(Block(records=frozenset({1, 2}), score=0.3))
        result.add_block(Block(records=frozenset({1, 2, 3}), score=0.7))
        assert result.pair_scores[(1, 2)] == 0.7

    def test_ranked_pairs_descending(self):
        result = BlockingResult()
        result.add_block(Block(records=frozenset({1, 2}), score=0.2))
        result.add_block(Block(records=frozenset({3, 4}), score=0.9))
        ranked = result.ranked_pairs()
        assert ranked[0] == ((3, 4), 0.9)
        assert ranked[-1] == ((1, 2), 0.2)

    def test_neighborhoods(self):
        result = BlockingResult()
        result.add_block(Block(records=frozenset({1, 2, 3}), score=0.5))
        neighborhoods = result.neighborhoods()
        assert neighborhoods == {1: 2, 2: 2, 3: 2}

    def test_empty_result(self):
        result = BlockingResult()
        assert result.candidate_pairs == frozenset()
        assert result.ranked_pairs() == []
        assert result.neighborhoods() == {}
