"""Golden-vector regression suite for the batch similarity kernels.

``tests/fixtures/golden_kernels/`` pins the exact bytes the kernels
produced when the fixtures were last regenerated (see
``tools/golden_kernels.py``): a 200-pair corpus with its expected
48-column feature matrix and its ranked pair-similarity scores under
all three scoring methods. Any drift — batch kernel, scalar reference,
or generator — fails here with a per-feature diff, so an accidental
ULP-level change cannot hide inside an end-to-end aggregate.

Intentional changes regenerate with::

    PYTHONPATH=src python -m tools.golden_kernels --write
"""

from __future__ import annotations

import pytest

from repro.similarity.features import FEATURE_NAMES, extract_features
from tools.golden_kernels import (
    FEATURES_CSV,
    N_PAIRS,
    RANKED_CSV,
    compute_feature_rows,
    compute_ranked_rows,
    golden_dataset,
    golden_pairs,
    load_features_csv,
    load_ranked_csv,
)


def _same_value(expected, actual) -> bool:
    """Bit-exact feature equality (repr catches -0.0 and NaN)."""
    if expected is None or actual is None:
        return expected is None and actual is None
    if isinstance(expected, str) or isinstance(actual, str):
        return expected == actual
    return repr(float(expected)) == repr(float(actual))


@pytest.fixture(scope="module")
def dataset():
    return golden_dataset()


@pytest.fixture(scope="module")
def pairs(dataset):
    return golden_pairs(dataset)


class TestFixtureShape:
    def test_fixtures_are_committed(self):
        assert FEATURES_CSV.is_file(), "run tools/golden_kernels.py --write"
        assert RANKED_CSV.is_file(), "run tools/golden_kernels.py --write"

    def test_feature_matrix_dimensions(self):
        names, fixture_pairs, rows = load_features_csv()
        assert tuple(names) == FEATURE_NAMES
        assert len(names) == 48
        assert len(fixture_pairs) == N_PAIRS == 200
        assert len(rows) == N_PAIRS

    def test_pair_selection_is_reproducible(self, dataset, pairs):
        _names, fixture_pairs, _rows = load_features_csv()
        assert fixture_pairs == pairs


class TestGoldenFeatureMatrix:
    def test_batch_extractor_matches_committed_matrix(self, dataset, pairs):
        names, fixture_pairs, expected_rows = load_features_csv()
        actual_rows = compute_feature_rows(dataset, fixture_pairs)
        diffs = []
        for pair, expected, actual in zip(
            fixture_pairs, expected_rows, actual_rows
        ):
            for name in names:
                if not _same_value(expected[name], actual[name]):
                    diffs.append(
                        f"pair {pair} feature {name!r}: "
                        f"expected {expected[name]!r}, got {actual[name]!r}"
                    )
        assert not diffs, self._format(diffs)

    def test_scalar_extractor_matches_committed_matrix(self, dataset):
        # The fixture pins the *scalar* reference too: batch == golden
        # and scalar == golden together re-prove batch == scalar on
        # every committed pair.
        names, fixture_pairs, expected_rows = load_features_csv()
        diffs = []
        for pair, expected in zip(fixture_pairs, expected_rows):
            a, b = pair
            actual = extract_features(dataset[a], dataset[b])
            for name in names:
                if not _same_value(expected[name], actual[name]):
                    diffs.append(
                        f"pair {pair} feature {name!r}: "
                        f"expected {expected[name]!r}, got {actual[name]!r}"
                    )
        assert not diffs, self._format(diffs)

    @staticmethod
    def _format(diffs):
        shown = diffs[:20]
        if len(diffs) > len(shown):
            shown.append(f"... and {len(diffs) - len(shown)} more")
        return "golden feature drift:\n" + "\n".join(shown)


class TestGoldenRankedPairs:
    def test_batch_scorers_match_committed_ranking(self, dataset, pairs):
        expected = load_ranked_csv()
        actual = compute_ranked_rows(dataset, pairs)
        assert len(expected) == len(actual) == N_PAIRS
        diffs = []
        for exp, act in zip(expected, actual):
            if exp[:3] != act[:3] or any(
                not _same_value(e, a) for e, a in zip(exp[3:], act[3:])
            ):
                diffs.append(f"expected {exp!r}, got {act!r}")
        assert not diffs, "golden ranking drift:\n" + "\n".join(diffs[:20])

    def test_scalar_scorer_matches_committed_scores(self, dataset):
        from repro.blocking.scoring import BlockScorer, ScoringMethod

        bags = dataset.item_bags
        scorers = {
            "uniform": BlockScorer(method=ScoringMethod.UNIFORM),
            "weighted": BlockScorer(method=ScoringMethod.WEIGHTED),
            "soft": BlockScorer(method=ScoringMethod.EXPERT),
        }
        diffs = []
        for _rank, a, b, uniform, weighted, soft in load_ranked_csv():
            expected = {"uniform": uniform, "weighted": weighted, "soft": soft}
            for key, scorer in scorers.items():
                actual = scorer.pair_similarity(bags[a], bags[b])
                if not _same_value(expected[key], actual):
                    diffs.append(
                        f"pair ({a}, {b}) {key}: "
                        f"expected {expected[key]!r}, got {actual!r}"
                    )
        assert not diffs, "golden score drift:\n" + "\n".join(diffs[:20])

    def test_ranking_is_sorted_by_weighted_desc(self):
        rows = load_ranked_csv()
        keys = [(-weighted, a, b) for _r, a, b, _u, weighted, _s in rows]
        assert keys == sorted(keys)
        assert [row[0] for row in rows] == list(range(1, len(rows) + 1))
