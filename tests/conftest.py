"""Shared fixtures: small deterministic corpora and hand-crafted records."""

from __future__ import annotations

import pytest

from repro.datagen import build_corpus
from repro.evaluation import GoldStandard
from repro.geo import GeoPoint
from repro.records.schema import (
    Gender,
    Place,
    PlaceType,
    SourceKind,
    SourceRef,
    VictimRecord,
)


def make_record(
    book_id=1,
    source=("list", "L1"),
    first=("Guido",),
    last=("Foa",),
    gender=Gender.MALE,
    **kwargs,
):
    """Concise VictimRecord factory for tests."""
    kind, identifier = source
    return VictimRecord(
        book_id=book_id,
        source=SourceRef(SourceKind(kind), identifier),
        first=tuple(first),
        last=tuple(last),
        gender=gender,
        **kwargs,
    )


@pytest.fixture(scope="session")
def guido_records():
    """The paper's Table 1: three reports about Guido Foa (and a decoy).

    Records 1016196 / 1059654 / 1028769 mirror the published rows; the
    third spells the last name 'Foy' and lives in Canischio — the record
    a naive first+last query would miss.
    """
    torino = Place(city="Torino", county="Torino", region="Piemonte",
                   country="Italy", coords=GeoPoint(45.0703, 7.6869))
    turin = Place(city="Turin", county="Torino", region="Piemonte",
                  country="Italy", coords=GeoPoint(45.0703, 7.6869))
    canischio = Place(city="Canischio", county="Torino", region="Piemonte",
                      country="Italy", coords=GeoPoint(45.3742, 7.5961))
    auschwitz = Place(city="Auschwitz", country="Poland",
                      coords=GeoPoint(50.0343, 19.2098))
    son = VictimRecord(
        book_id=1016196,
        source=SourceRef(SourceKind.TESTIMONY, "sub-a"),
        first=("Guido",), last=("Foa",), gender=Gender.MALE,
        birth_day=2, birth_month=8, birth_year=1936,
        mother=("Estela",), father=("Italo",),
        places={PlaceType.BIRTH: (torino,), PlaceType.PERMANENT: (torino,)},
        person_id=2,
    )
    father_a = VictimRecord(
        book_id=1059654,
        source=SourceRef(SourceKind.TESTIMONY, "sub-b"),
        first=("Guido",), last=("Foa",), gender=Gender.MALE,
        birth_day=18, birth_month=11, birth_year=1920,
        spouse=("Helena",), mother=("Olga",), father=("Donato",),
        places={
            PlaceType.BIRTH: (torino,),
            PlaceType.PERMANENT: (torino,),
            PlaceType.DEATH: (auschwitz,),
        },
        person_id=1,
    )
    father_b = VictimRecord(
        book_id=1028769,
        source=SourceRef(SourceKind.LIST, "italy-deportation-1"),
        first=("Guido",), last=("Foy",), gender=Gender.MALE,
        birth_day=18, birth_month=11, birth_year=1920,
        mother=("Olga",), father=("Donato",),
        places={
            PlaceType.BIRTH: (turin,),
            PlaceType.PERMANENT: (canischio,),
        },
        person_id=1,
    )
    decoy = VictimRecord(
        book_id=1990001,
        source=SourceRef(SourceKind.LIST, "poland-camp-1"),
        first=("Avraham",), last=("Kesler",), gender=Gender.MALE,
        birth_year=1927,
        places={PlaceType.BIRTH: (Place(city="Lubaczow", country="Poland"),)},
        person_id=3,
    )
    return [son, father_a, father_b, decoy]


@pytest.fixture(scope="session")
def small_corpus():
    """A ~220-record single-community corpus with ground truth."""
    dataset, persons = build_corpus(
        n_persons=100, communities=("italy",), seed=11, name="test-corpus"
    )
    return dataset, persons


@pytest.fixture(scope="session")
def small_gold(small_corpus):
    dataset, _persons = small_corpus
    return GoldStandard.from_dataset(dataset)


@pytest.fixture(scope="session")
def multi_community_corpus():
    """A mixed-community corpus (exercises transliteration variety)."""
    dataset, persons = build_corpus(
        n_persons=120,
        communities=("poland", "greece", "ussr"),
        seed=13,
        name="test-multi",
    )
    return dataset, persons
