"""Tests for FP-Growth and FPMax, including a brute-force oracle."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.fpgrowth import (
    frequent_itemsets,
    maximal_frequent_itemsets,
    maximal_via_filter,
)

UNIVERSE = list("abcdefg")


def brute_frequent(transactions, minsup):
    """All frequent itemsets by exhaustive enumeration."""
    frequent = {}
    for size in range(1, len(UNIVERSE) + 1):
        for combo in itertools.combinations(UNIVERSE, size):
            itemset = frozenset(combo)
            support = sum(1 for t in transactions if itemset <= t)
            if support >= minsup:
                frequent[itemset] = support
    return frequent


def brute_maximal(transactions, minsup):
    frequent = brute_frequent(transactions, minsup)
    return {
        itemset: support
        for itemset, support in frequent.items()
        if not any(itemset < other for other in frequent)
    }


transactions_strategy = st.lists(
    st.sets(st.sampled_from(UNIVERSE), min_size=1, max_size=5),
    min_size=1,
    max_size=25,
)


class TestFrequentItemsets:
    def test_paper_example(self):
        """The Table 2 example: {F Yitzhak, L Postel, G 0} at minsup=2."""
        transactions = [
            {"YB 1927", "F Avraham", "L Kesler"},
            {"F Avraham", "L Apoteker", "G 0"},
            {"F Yitzhak", "F Avram", "L Postel", "G 0"},
            {"F Yitzhak", "L Postel", "G 0"},
        ]
        mfis = {
            m.items: m.support
            for m in maximal_frequent_itemsets(transactions, minsup=2)
        }
        target = frozenset({"F Yitzhak", "L Postel", "G 0"})
        assert mfis.get(target) == 2

    def test_single_transaction(self):
        result = frequent_itemsets([{"a", "b"}], minsup=1)
        found = {m.items for m in result}
        assert frozenset({"a", "b"}) in found
        assert frozenset({"a"}) in found

    def test_minsup_above_everything(self):
        assert frequent_itemsets([{"a"}, {"b"}], minsup=3) == []

    def test_invalid_minsup(self):
        with pytest.raises(ValueError):
            frequent_itemsets([{"a"}], minsup=0)

    def test_supports_correct_small(self):
        transactions = [{"a", "b"}, {"a"}, {"a", "b", "c"}]
        result = {m.items: m.support for m in frequent_itemsets(transactions, 2)}
        assert result[frozenset({"a"})] == 3
        assert result[frozenset({"a", "b"})] == 2
        assert frozenset({"c"}) not in result

    @settings(max_examples=30, deadline=None)
    @given(transactions_strategy, st.integers(min_value=1, max_value=6))
    def test_matches_brute_force(self, transactions, minsup):
        expected = brute_frequent(transactions, minsup)
        got = {m.items: m.support for m in frequent_itemsets(transactions, minsup)}
        assert got == expected


class TestMaximalItemsets:
    def test_simple_maximality(self):
        transactions = [{"a", "b", "c"}, {"a", "b", "c"}, {"a", "b"}]
        mfis = {m.items for m in maximal_frequent_itemsets(transactions, 2)}
        assert mfis == {frozenset({"a", "b", "c"})}

    def test_two_incomparable_mfis(self):
        transactions = [{"a", "b"}, {"a", "b"}, {"c", "d"}, {"c", "d"}]
        mfis = {m.items for m in maximal_frequent_itemsets(transactions, 2)}
        assert mfis == {frozenset({"a", "b"}), frozenset({"c", "d"})}

    def test_no_mfi_is_subset_of_another(self):
        rng = random.Random(3)
        transactions = [
            set(rng.sample(UNIVERSE, rng.randint(1, 5))) for _ in range(40)
        ]
        mfis = [m.items for m in maximal_frequent_itemsets(transactions, 3)]
        for a in mfis:
            for b in mfis:
                if a is not b:
                    assert not a < b

    @settings(max_examples=30, deadline=None)
    @given(transactions_strategy, st.integers(min_value=1, max_value=6))
    def test_matches_brute_force(self, transactions, minsup):
        expected = brute_maximal(transactions, minsup)
        got = {
            m.items: m.support
            for m in maximal_frequent_itemsets(transactions, minsup)
        }
        assert got == expected

    @settings(max_examples=20, deadline=None)
    @given(transactions_strategy, st.integers(min_value=1, max_value=4))
    def test_agrees_with_filter_implementation(self, transactions, minsup):
        fast = {m.items: m.support for m in maximal_frequent_itemsets(transactions, minsup)}
        slow = {m.items: m.support for m in maximal_via_filter(transactions, minsup)}
        assert fast == slow

    def test_empty_transactions(self):
        assert maximal_frequent_itemsets([], minsup=2) == []

    def test_itemset_len(self):
        result = maximal_frequent_itemsets([{"a", "b"}, {"a", "b"}], 2)
        assert len(result) == 1
        assert len(result[0]) == 2
