"""Tests for rescuer linking (the Clotilde Boggio / Massimo Foa story)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.resolution import PairEvidence, ResolutionResult
from repro.geo import GeoPoint
from repro.graph.knowledge import build_knowledge_graph
from repro.graph.rescuers import RescuerRecord, link_rescuers
from repro.records.dataset import Dataset
from repro.records.schema import Gender, Place, PlaceType
from tests.conftest import make_record

CUORGNE = GeoPoint(45.3900, 7.6500)
ODESSA = GeoPoint(46.4825, 30.7233)

GAZETTEER = {
    "cuorgne": CUORGNE,
    "torino": GeoPoint(45.0703, 7.6869),
    "odessa": ODESSA,
}


def lookup(name):
    return GAZETTEER.get(name.lower())


@pytest.fixture()
def massimo_graph():
    """Massimo Foa (Cuorgne) and an unrelated distant record."""
    records = [
        make_record(
            book_id=1, first=("Massimo",), last=("Foa",), gender=Gender.MALE,
            places={PlaceType.WARTIME: (
                Place(city="Cuorgne", country="Italy", coords=CUORGNE),
            )},
        ),
        make_record(
            book_id=2, first=("Massimo",), last=("Polyak",),
            places={PlaceType.WARTIME: (
                Place(city="Odessa", country="USSR", coords=ODESSA),
            )},
        ),
        make_record(book_id=3, first=("Guido",), last=("Foa",)),
    ]
    dataset = Dataset(records)
    resolution = ResolutionResult(
        [PairEvidence((1, 3), similarity=0.1, confidence=-2.0)]
    )
    return dataset, build_knowledge_graph(dataset, resolution, certainty=5.0)


class TestRescuerRecord:
    def test_needs_name(self):
        with pytest.raises(ValueError):
            RescuerRecord(1, "", "Cuorgne")


class TestLinkRescuers:
    def clotilde(self):
        return RescuerRecord(
            rescuer_id=1, name="Clotilde Boggio", place="Cuorgne",
            period="1944-1945", hidden_first_name="Massimo",
        )

    def test_links_massimo_in_cuorgne(self, massimo_graph):
        _dataset, graph = massimo_graph
        added = link_rescuers(graph, [self.clotilde()], geo_lookup=lookup)
        assert added == 1
        edges = [
            (u, v, data) for u, v, data in graph.edges(data=True)
            if data.get("relation") == "possibly_hidden_by"
        ]
        assert len(edges) == 1
        entity_node, rescuer_node, data = edges[0]
        profile = graph.nodes[entity_node]["profile"]
        assert profile.record_ids == (1,)  # the Cuorgne Massimo, not Odessa
        assert rescuer_node == ("rescuer", 1)
        assert data["period"] == "1944-1945"

    def test_geo_filter_blocks_distant_namesake(self, massimo_graph):
        _dataset, graph = massimo_graph
        link_rescuers(graph, [self.clotilde()], geo_lookup=lookup)
        for u, v, data in graph.edges(data=True):
            if data.get("relation") != "possibly_hidden_by":
                continue
            assert graph.nodes[u]["profile"].record_ids != (2,)

    def test_without_gazetteer_links_all_name_matches(self, massimo_graph):
        _dataset, graph = massimo_graph
        added = link_rescuers(graph, [self.clotilde()], geo_lookup=None)
        assert added == 2  # both Massimos are *possible* without geo evidence

    def test_rescuer_without_hidden_name_gets_node_only(self, massimo_graph):
        _dataset, graph = massimo_graph
        rescuer = RescuerRecord(5, "Anonymous Righteous", "Torino")
        added = link_rescuers(graph, [rescuer], geo_lookup=lookup)
        assert added == 0
        assert ("rescuer", 5) in graph.nodes

    def test_fuzzy_name_match(self, massimo_graph):
        _dataset, graph = massimo_graph
        rescuer = RescuerRecord(
            7, "C. Boggio", "Cuorgne", hidden_first_name="Masimo"  # typo
        )
        added = link_rescuers(graph, [rescuer], geo_lookup=lookup)
        assert added >= 1
