"""Tests for the incremental resolver."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.incremental import IncrementalResolver
from repro.core.pipeline import UncertainERPipeline
from repro.records.dataset import Dataset
from repro.records.schema import PlaceType
from repro.resilience.faults import SimulatedCrash
from repro.resilience.quarantine import Quarantine, QuarantinePolicy
from repro.resilience.wal import WalError, WalFaultPlan, WriteAheadLog
from tests.conftest import make_record


@pytest.fixture()
def resolver(small_corpus):
    dataset, _persons = small_corpus
    config = PipelineConfig(ng=3.0, expert_weighting=True)
    return IncrementalResolver(dataset, config)


class TestConstruction:
    def test_initial_resolution_matches_batch(self, small_corpus):
        dataset, _persons = small_corpus
        config = PipelineConfig(ng=3.0, expert_weighting=True)
        batch = UncertainERPipeline(config).run(dataset)
        incremental = IncrementalResolver(dataset, config)
        assert incremental.resolution().pairs == batch.pairs

    def test_validation(self, small_corpus):
        dataset, _persons = small_corpus
        with pytest.raises(ValueError):
            IncrementalResolver(dataset, min_shared_items=0)
        with pytest.raises(ValueError):
            IncrementalResolver(
                dataset, PipelineConfig(classify=True), classifier=None
            )

    def test_len_counts_records(self, resolver, small_corpus):
        dataset, _persons = small_corpus
        assert len(resolver) == len(dataset)


class TestAddRecord:
    def test_duplicate_book_id_rejected(self, resolver, small_corpus):
        dataset, _persons = small_corpus
        existing = next(iter(dataset))
        with pytest.raises(ValueError):
            resolver.add_record(existing)

    def test_near_duplicate_gets_linked(self, resolver, small_corpus):
        dataset, _persons = small_corpus
        template = max(
            dataset, key=lambda r: len(r.pattern())
        )
        newcomer = make_record(
            book_id=9_999_999,
            source=("testimony", "fresh-sub"),
            first=template.first,
            last=template.last,
            gender=template.gender,
            birth_year=template.birth_year,
            father=template.father,
            mother=template.mother,
            places=dict(template.places),
            person_id=template.person_id,
        )
        produced = resolver.add_record(newcomer)
        pairs = {evidence.pair for evidence in produced}
        expected = (
            min(template.book_id, 9_999_999),
            max(template.book_id, 9_999_999),
        )
        assert expected in pairs
        # and the live resolution sees it immediately
        assert expected in resolver.resolution()

    def test_unrelated_record_produces_little(self, resolver):
        loner = make_record(
            book_id=9_999_998,
            source=("list", "nowhere-1"),
            first=("Zzyzx",),
            last=("Qqqq",),
            gender=None,
        )
        produced = resolver.add_record(loner)
        assert produced == []
        assert len(resolver) > 0

    def test_neighborhood_capped(self, small_corpus):
        dataset, _persons = small_corpus
        config = PipelineConfig(ng=1.0, max_minsup=3, expert_weighting=True)
        resolver = IncrementalResolver(dataset, config)
        template = next(iter(dataset))
        newcomer = make_record(
            book_id=9_999_997,
            source=("testimony", "cap-sub"),
            first=template.first,
            last=template.last,
            gender=template.gender,
        )
        produced = resolver.add_record(newcomer)
        assert len(produced) <= int(config.ng * config.max_minsup)

    def test_same_source_discard_respected(self, small_corpus):
        dataset, _persons = small_corpus
        config = PipelineConfig(
            ng=3.0, expert_weighting=True, same_source_discard=True
        )
        resolver = IncrementalResolver(dataset, config)
        template = next(iter(dataset))
        clone = make_record(
            book_id=9_999_996,
            source=(template.source.kind.value, template.source.identifier),
            first=template.first,
            last=template.last,
            gender=template.gender,
        )
        produced = resolver.add_record(clone)
        assert all(
            evidence.pair != (template.book_id, 9_999_996)
            for evidence in produced
        )

    def test_stream_of_records_improves_recall(self, small_corpus, small_gold):
        """Splitting the corpus and streaming the rest back in recovers
        pairs the initial batch could not know about."""
        dataset, _persons = small_corpus
        ids = sorted(dataset.record_ids)
        head = dataset.subset(ids[: len(ids) // 2])
        tail = [dataset[rid] for rid in ids[len(ids) // 2:]]
        config = PipelineConfig(ng=3.0, expert_weighting=True)
        resolver = IncrementalResolver(head, config)
        before = small_gold.evaluate(resolver.resolution().pairs).recall
        for record in tail:
            resolver.add_record(record)
        after = small_gold.evaluate(resolver.resolution().pairs).recall
        assert after > before


class TestAtomicity:
    """Failed adds must leave the resolver exactly as it was.

    `add_record` is validate-then-commit: a raise mid-add (duplicate
    id, unfitted classifier) must not leak the record, its items, or
    any partial evidence into the store — and the same record must be
    addable again once the cause is fixed.
    """

    def _snapshot(self, resolver):
        return (
            len(resolver),
            dict(resolver._evidence),
            dict(resolver._item_bags),
            {item: frozenset(rids) for item, rids in resolver._index.items()},
        )

    def _classified_resolver(self, small_corpus):
        from repro.classify.training import PairClassifier
        from repro.datagen import ExpertTagger, simplify_tags

        dataset, _persons = small_corpus
        config = PipelineConfig(ng=3.0, expert_weighting=True, classify=True)
        blocking = UncertainERPipeline(config).block(dataset)
        labels = simplify_tags(
            ExpertTagger(dataset, seed=7).tag_pairs(
                sorted(blocking.candidate_pairs)
            ),
            maybe_as=None,
        )
        classifier = PairClassifier(dataset).fit(labels)
        return IncrementalResolver(dataset, config, classifier=classifier)

    def test_unfitted_classifier_leaves_store_untouched(self, small_corpus):
        dataset, _persons = small_corpus
        resolver = self._classified_resolver(small_corpus)
        template = next(iter(dataset))
        newcomer = make_record(
            book_id=9_999_997,
            source=("testimony", "atomicity-sub"),
            first=template.first,
            last=template.last,
            gender=template.gender,
        )
        before = self._snapshot(resolver)
        fitted_model = resolver.classifier.model
        resolver.classifier.model = None  # classifier invalidated
        with pytest.raises(RuntimeError, match="not fitted"):
            resolver.add_record(newcomer)
        assert self._snapshot(resolver) == before
        assert 9_999_997 not in resolver._records

        # Once repaired, the very same record is addable — nothing
        # half-committed blocks the retry.
        resolver.classifier.model = fitted_model
        resolver.add_record(newcomer)
        assert len(resolver) == before[0] + 1
        assert 9_999_997 in resolver._records

    def test_duplicate_add_leaves_store_untouched(self, resolver, small_corpus):
        dataset, _persons = small_corpus
        before = self._snapshot(resolver)
        with pytest.raises(ValueError, match="duplicate"):
            resolver.add_record(next(iter(dataset)))
        assert self._snapshot(resolver) == before


def _split(small_corpus, head_fraction=0.6):
    dataset, _persons = small_corpus
    ids = sorted(dataset.record_ids)
    pivot = int(len(ids) * head_fraction)
    head = dataset.subset(ids[:pivot], name="head")
    tail = [dataset[rid] for rid in ids[pivot:]]
    return head, tail


def _batched(records, size):
    return [records[i:i + size] for i in range(0, len(records), size)]


def _ranked_csv(resolver, path):
    resolver.resolution().to_csv(path)
    return path.read_bytes()


_CONFIG = PipelineConfig(ng=3.0, expert_weighting=True)


class TestBatchIngestion:
    """add_records is the streaming write path: atomic, order-faithful."""

    def test_batch_equals_sequential_adds(self, small_corpus, tmp_path):
        head, tail = _split(small_corpus)
        sequential = IncrementalResolver(head, _CONFIG)
        for record in tail:
            sequential.add_record(record)
        batched = IncrementalResolver(head, _CONFIG)
        for batch in _batched(tail, 7):
            batched.add_records(batch)
        assert _ranked_csv(sequential, tmp_path / "seq.csv") == _ranked_csv(
            batched, tmp_path / "batch.csv"
        )

    def test_batch_result_fields(self, small_corpus):
        head, tail = _split(small_corpus)
        resolver = IncrementalResolver(head, _CONFIG)
        result = resolver.add_records(tail[:5])
        assert result.batch_id == 0
        assert result.added == tuple(r.book_id for r in tail[:5])
        assert result.quarantined == 0
        assert result.dirty_items > 0
        next_result = resolver.add_records(tail[5:8])
        assert next_result.batch_id == 1

    def test_duplicate_fails_fast_atomically(self, small_corpus):
        head, tail = _split(small_corpus)
        resolver = IncrementalResolver(head, _CONFIG)
        size = len(resolver)
        bad_batch = [tail[0], tail[1], tail[0]]  # intra-batch duplicate
        with pytest.raises(ValueError, match="duplicate"):
            resolver.add_records(bad_batch)
        assert len(resolver) == size
        assert tail[0].book_id not in resolver

    def test_duplicate_quarantined_rest_committed(self, small_corpus):
        head, tail = _split(small_corpus)
        resolver = IncrementalResolver(head, _CONFIG)
        quarantine = Quarantine()
        result = resolver.add_records(
            [tail[0], tail[1], tail[0]],
            policy=QuarantinePolicy.QUARANTINE,
            quarantine=quarantine,
        )
        assert result.added == (tail[0].book_id, tail[1].book_id)
        assert result.quarantined == 1
        assert quarantine.n_quarantined == 1

    def test_empty_batch_consumes_no_batch_id(self, small_corpus):
        head, _tail = _split(small_corpus)
        resolver = IncrementalResolver(head, _CONFIG)
        result = resolver.add_records([])
        assert result.batch_id == 0
        assert result.added == ()
        assert resolver.add_records([]).batch_id == 0


class TestDurability:
    """WAL-backed ingestion: commit is durable, recovery is exact."""

    def test_recover_is_byte_identical(self, small_corpus, tmp_path):
        head, tail = _split(small_corpus)
        durable = IncrementalResolver(
            head, _CONFIG, wal=WriteAheadLog(tmp_path / "wal")
        )
        for batch in _batched(tail, 6):
            durable.add_records(batch)
        expected = _ranked_csv(durable, tmp_path / "live.csv")
        durable.wal.close()

        recovered, report = IncrementalResolver.recover(
            tmp_path / "wal", head, _CONFIG
        )
        assert report.batches_replayed == len(_batched(tail, 6))
        assert report.records_replayed == len(tail)
        assert report.dropped_batches == ()
        assert _ranked_csv(recovered, tmp_path / "rec.csv") == expected
        recovered.wal.close()

    def test_crash_mid_batch_drops_only_the_open_batch(
        self, small_corpus, tmp_path
    ):
        head, tail = _split(small_corpus)
        batches = _batched(tail, 6)
        # Append index 2 is batch 1's begin: batch 0 must survive,
        # batch 1 must be reported dropped.
        plan = WalFaultPlan(crash_after_append=2)
        doomed = IncrementalResolver(
            head, _CONFIG, wal=WriteAheadLog(tmp_path / "wal", fault=plan)
        )
        with pytest.raises(SimulatedCrash):
            for batch in batches:
                doomed.add_records(batch)
        doomed.wal.close()

        recovered, report = IncrementalResolver.recover(
            tmp_path / "wal", head, _CONFIG
        )
        assert report.batches_replayed == 1
        assert report.dropped_batches == (1,)
        assert report.dropped_records == len(batches[1])
        assert recovered.wal_counters()["replayed"] == 1
        # The dropped batch is re-ingestable under its old id.
        result = recovered.add_records(batches[1])
        assert result.batch_id == 1
        recovered.wal.close()

    def test_fresh_resolver_refuses_wal_history(self, small_corpus, tmp_path):
        head, tail = _split(small_corpus)
        durable = IncrementalResolver(
            head, _CONFIG, wal=WriteAheadLog(tmp_path / "wal")
        )
        durable.add_records(tail[:4])
        durable.wal.close()
        with pytest.raises(ValueError, match="recover"):
            IncrementalResolver(
                head, _CONFIG, wal=WriteAheadLog(tmp_path / "wal")
            )

    def test_recover_refuses_wrong_base(self, small_corpus, tmp_path):
        dataset, _persons = small_corpus
        head, tail = _split(small_corpus)
        durable = IncrementalResolver(
            head, _CONFIG, wal=WriteAheadLog(tmp_path / "wal")
        )
        durable.add_records(tail[:4])
        durable.wal.close()
        with pytest.raises(WalError, match="fingerprint mismatch"):
            IncrementalResolver.recover(tmp_path / "wal", dataset, _CONFIG)

    def test_wal_counters_without_wal_is_empty(self, resolver):
        assert resolver.wal_counters() == {}
