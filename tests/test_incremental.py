"""Tests for the incremental resolver."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.incremental import IncrementalResolver
from repro.core.pipeline import UncertainERPipeline
from repro.records.dataset import Dataset
from repro.records.schema import PlaceType
from tests.conftest import make_record


@pytest.fixture()
def resolver(small_corpus):
    dataset, _persons = small_corpus
    config = PipelineConfig(ng=3.0, expert_weighting=True)
    return IncrementalResolver(dataset, config)


class TestConstruction:
    def test_initial_resolution_matches_batch(self, small_corpus):
        dataset, _persons = small_corpus
        config = PipelineConfig(ng=3.0, expert_weighting=True)
        batch = UncertainERPipeline(config).run(dataset)
        incremental = IncrementalResolver(dataset, config)
        assert incremental.resolution().pairs == batch.pairs

    def test_validation(self, small_corpus):
        dataset, _persons = small_corpus
        with pytest.raises(ValueError):
            IncrementalResolver(dataset, min_shared_items=0)
        with pytest.raises(ValueError):
            IncrementalResolver(
                dataset, PipelineConfig(classify=True), classifier=None
            )

    def test_len_counts_records(self, resolver, small_corpus):
        dataset, _persons = small_corpus
        assert len(resolver) == len(dataset)


class TestAddRecord:
    def test_duplicate_book_id_rejected(self, resolver, small_corpus):
        dataset, _persons = small_corpus
        existing = next(iter(dataset))
        with pytest.raises(ValueError):
            resolver.add_record(existing)

    def test_near_duplicate_gets_linked(self, resolver, small_corpus):
        dataset, _persons = small_corpus
        template = max(
            dataset, key=lambda r: len(r.pattern())
        )
        newcomer = make_record(
            book_id=9_999_999,
            source=("testimony", "fresh-sub"),
            first=template.first,
            last=template.last,
            gender=template.gender,
            birth_year=template.birth_year,
            father=template.father,
            mother=template.mother,
            places=dict(template.places),
            person_id=template.person_id,
        )
        produced = resolver.add_record(newcomer)
        pairs = {evidence.pair for evidence in produced}
        expected = (
            min(template.book_id, 9_999_999),
            max(template.book_id, 9_999_999),
        )
        assert expected in pairs
        # and the live resolution sees it immediately
        assert expected in resolver.resolution()

    def test_unrelated_record_produces_little(self, resolver):
        loner = make_record(
            book_id=9_999_998,
            source=("list", "nowhere-1"),
            first=("Zzyzx",),
            last=("Qqqq",),
            gender=None,
        )
        produced = resolver.add_record(loner)
        assert produced == []
        assert len(resolver) > 0

    def test_neighborhood_capped(self, small_corpus):
        dataset, _persons = small_corpus
        config = PipelineConfig(ng=1.0, max_minsup=3, expert_weighting=True)
        resolver = IncrementalResolver(dataset, config)
        template = next(iter(dataset))
        newcomer = make_record(
            book_id=9_999_997,
            source=("testimony", "cap-sub"),
            first=template.first,
            last=template.last,
            gender=template.gender,
        )
        produced = resolver.add_record(newcomer)
        assert len(produced) <= int(config.ng * config.max_minsup)

    def test_same_source_discard_respected(self, small_corpus):
        dataset, _persons = small_corpus
        config = PipelineConfig(
            ng=3.0, expert_weighting=True, same_source_discard=True
        )
        resolver = IncrementalResolver(dataset, config)
        template = next(iter(dataset))
        clone = make_record(
            book_id=9_999_996,
            source=(template.source.kind.value, template.source.identifier),
            first=template.first,
            last=template.last,
            gender=template.gender,
        )
        produced = resolver.add_record(clone)
        assert all(
            evidence.pair != (template.book_id, 9_999_996)
            for evidence in produced
        )

    def test_stream_of_records_improves_recall(self, small_corpus, small_gold):
        """Splitting the corpus and streaming the rest back in recovers
        pairs the initial batch could not know about."""
        dataset, _persons = small_corpus
        ids = sorted(dataset.record_ids)
        head = dataset.subset(ids[: len(ids) // 2])
        tail = [dataset[rid] for rid in ids[len(ids) // 2:]]
        config = PipelineConfig(ng=3.0, expert_weighting=True)
        resolver = IncrementalResolver(head, config)
        before = small_gold.evaluate(resolver.resolution().pairs).recall
        for record in tail:
            resolver.add_record(record)
        after = small_gold.evaluate(resolver.resolution().pairs).recall
        assert after > before


class TestAtomicity:
    """Failed adds must leave the resolver exactly as it was.

    `add_record` is validate-then-commit: a raise mid-add (duplicate
    id, unfitted classifier) must not leak the record, its items, or
    any partial evidence into the store — and the same record must be
    addable again once the cause is fixed.
    """

    def _snapshot(self, resolver):
        return (
            len(resolver),
            dict(resolver._evidence),
            dict(resolver._item_bags),
            {item: frozenset(rids) for item, rids in resolver._index.items()},
        )

    def _classified_resolver(self, small_corpus):
        from repro.classify.training import PairClassifier
        from repro.datagen import ExpertTagger, simplify_tags

        dataset, _persons = small_corpus
        config = PipelineConfig(ng=3.0, expert_weighting=True, classify=True)
        blocking = UncertainERPipeline(config).block(dataset)
        labels = simplify_tags(
            ExpertTagger(dataset, seed=7).tag_pairs(
                sorted(blocking.candidate_pairs)
            ),
            maybe_as=None,
        )
        classifier = PairClassifier(dataset).fit(labels)
        return IncrementalResolver(dataset, config, classifier=classifier)

    def test_unfitted_classifier_leaves_store_untouched(self, small_corpus):
        dataset, _persons = small_corpus
        resolver = self._classified_resolver(small_corpus)
        template = next(iter(dataset))
        newcomer = make_record(
            book_id=9_999_997,
            source=("testimony", "atomicity-sub"),
            first=template.first,
            last=template.last,
            gender=template.gender,
        )
        before = self._snapshot(resolver)
        fitted_model = resolver.classifier.model
        resolver.classifier.model = None  # classifier invalidated
        with pytest.raises(RuntimeError, match="not fitted"):
            resolver.add_record(newcomer)
        assert self._snapshot(resolver) == before
        assert 9_999_997 not in resolver._records

        # Once repaired, the very same record is addable — nothing
        # half-committed blocks the retry.
        resolver.classifier.model = fitted_model
        resolver.add_record(newcomer)
        assert len(resolver) == before[0] + 1
        assert 9_999_997 in resolver._records

    def test_duplicate_add_leaves_store_untouched(self, resolver, small_corpus):
        dataset, _persons = small_corpus
        before = self._snapshot(resolver)
        with pytest.raises(ValueError, match="duplicate"):
            resolver.add_record(next(iter(dataset)))
        assert self._snapshot(resolver) == before
