"""Tests for the shared baseline-blocking plumbing."""

from __future__ import annotations

import pytest

from repro.blocking.baselines.common import blocks_from_keys, key_blocks
from repro.records.dataset import Dataset
from tests.conftest import make_record


class TestBlocksFromKeys:
    def test_inverts_keys(self):
        record_keys = {
            1: frozenset({"a", "b"}),
            2: frozenset({"a"}),
            3: frozenset({"c"}),
        }
        blocks = blocks_from_keys(record_keys)
        assert blocks == [frozenset({1, 2})]  # only "a" is shared

    def test_min_block_size(self):
        record_keys = {1: frozenset({"a"}), 2: frozenset({"a"})}
        assert blocks_from_keys(record_keys, min_block_size=3) == []

    def test_max_block_size(self):
        record_keys = {i: frozenset({"a"}) for i in range(10)}
        assert blocks_from_keys(record_keys, max_block_size=5) == []
        assert blocks_from_keys(record_keys, max_block_size=10) != []

    def test_deduplicates_identical_supports(self):
        # Two keys with the same posting list yield one block.
        record_keys = {
            1: frozenset({"a", "b"}),
            2: frozenset({"a", "b"}),
        }
        blocks = blocks_from_keys(record_keys)
        assert blocks == [frozenset({1, 2})]

    def test_deterministic_order(self):
        record_keys = {
            1: frozenset({"z", "a"}),
            2: frozenset({"z"}),
            3: frozenset({"a"}),
        }
        assert blocks_from_keys(record_keys) == blocks_from_keys(record_keys)

    def test_empty(self):
        assert blocks_from_keys({}) == []


class TestKeyBlocks:
    def test_extractor_driven(self):
        dataset = Dataset([
            make_record(book_id=1, first=("Guido",)),
            make_record(book_id=2, first=("Guido",)),
            make_record(book_id=3, first=("Massimo",)),
        ])

        def first_letter_keys(items):
            return {item.value[0].lower() for item in items
                    if item.type.prefix == "FN"}

        result = key_blocks(dataset, first_letter_keys)
        assert (1, 2) in result.candidate_pairs
        assert not any(3 in pair for pair in result.candidate_pairs)

    def test_max_block_size_forwarded(self):
        dataset = Dataset([
            make_record(book_id=i, first=("Guido",)) for i in range(1, 8)
        ])
        result = key_blocks(
            dataset, lambda items: {"k"}, max_block_size=3
        )
        assert result.blocks == []
