"""Tests for the programmatic experiment runners."""

from __future__ import annotations

import pytest

from repro.blocking import MFIBlocks, MFIBlocksConfig
from repro.blocking.baselines import StandardBlocking, SuffixArraysBlocking
from repro.datagen import ExpertTagger, simplify_tags
from repro.evaluation.experiments import (
    ConditionResult,
    compare_blockers,
    run_conditions,
    run_ng_sweep,
)


@pytest.fixture(scope="module")
def labels(small_corpus):
    dataset, _persons = small_corpus
    from repro.core import PipelineConfig, UncertainERPipeline

    blocking = UncertainERPipeline(
        PipelineConfig(ng=3.5, expert_weighting=True)
    ).block(dataset)
    return simplify_tags(
        ExpertTagger(dataset, seed=19).tag_pairs(blocking.candidate_pairs),
        maybe_as=None,
    )


class TestRunConditions:
    def test_without_classifier_four_rows(self, small_corpus, small_gold):
        dataset, _persons = small_corpus
        results = run_conditions(
            dataset, small_gold, ng_values=(3.0,), max_minsup=4
        )
        names = [result.name for result in results]
        assert names == ["Base", "Expert Weighting", "ExpertSim", "SameSrc"]
        for result in results:
            assert 0.0 <= result.recall <= 1.0
            assert 0.0 <= result.precision <= 1.0

    def test_with_labels_six_rows(self, small_corpus, small_gold, labels):
        dataset, _persons = small_corpus
        results = run_conditions(
            dataset, small_gold, labeled_pairs=labels, ng_values=(3.0,),
        )
        names = [result.name for result in results]
        assert "Cls" in names and "SameSrc + Cls" in names
        by_name = {result.name: result for result in results}
        assert by_name["Cls"].precision > by_name["Base"].precision

    def test_returns_condition_results(self, small_corpus, small_gold):
        dataset, _persons = small_corpus
        results = run_conditions(dataset, small_gold, ng_values=(2.5,))
        assert all(isinstance(result, ConditionResult) for result in results)


class TestRunNgSweep:
    def test_grid_shape(self, small_corpus, small_gold):
        dataset, _persons = small_corpus
        sweep = run_ng_sweep(
            dataset, small_gold, ng_values=(2.0, 4.0), max_minsups=(4, 5),
        )
        assert set(sweep) == {(4, 2.0), (4, 4.0), (5, 2.0), (5, 4.0)}

    def test_recall_monotone_shape(self, small_corpus, small_gold):
        dataset, _persons = small_corpus
        sweep = run_ng_sweep(
            dataset, small_gold, ng_values=(1.5, 4.5), max_minsups=(5,),
            sn_mode="skip",
        )
        assert sweep[(5, 4.5)].recall >= sweep[(5, 1.5)].recall


class TestCompareBlockers:
    def test_results_keyed_by_name(self, small_corpus, small_gold):
        dataset, _persons = small_corpus
        results = compare_blockers(
            dataset, small_gold,
            [MFIBlocks(MFIBlocksConfig(max_minsup=4, ng=3.0)),
             StandardBlocking(), SuffixArraysBlocking()],
        )
        assert set(results) == {"MFIBlocks", "StBl", "SuAr"}
        assert results["StBl"].recall >= results["MFIBlocks"].recall
        assert results["MFIBlocks"].precision >= results["StBl"].precision
