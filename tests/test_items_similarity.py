"""Tests for Eq.-1 item similarity and item-set similarities."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import GeoPoint
from repro.records.itembag import Item, ItemType
from repro.similarity.items import (
    expert_item_similarity,
    jaccard_items,
    soft_jaccard_items,
    weighted_jaccard_items,
)

TORINO = GeoPoint(45.0703, 7.6869)
MONCALIERI = GeoPoint(44.9997, 7.6822)
AUSCHWITZ = GeoPoint(50.0343, 19.2098)

GAZETTEER = {
    "Torino": TORINO,
    "Turin": TORINO,
    "Moncalieri": MONCALIERI,
    "Auschwitz": AUSCHWITZ,
}


def lookup(name):
    return GAZETTEER.get(name)


def item(item_type, value):
    return Item(item_type, value)


class TestExpertItemSimilarity:
    def test_different_types_zero(self):
        a = item(ItemType.FIRST_NAME, "Guido")
        b = item(ItemType.LAST_NAME, "Guido")
        assert expert_item_similarity(a, b) == 0.0

    def test_birth_vs_death_city_zero(self):
        # Same kind (GEO) but different place semantics -> never compared.
        a = item(ItemType.BIRTH_CITY, "Torino")
        b = item(ItemType.DEATH_CITY, "Torino")
        assert expert_item_similarity(a, b, lookup) == 0.0

    def test_name_uses_jaro_winkler(self):
        a = item(ItemType.FIRST_NAME, "Bella")
        b = item(ItemType.FIRST_NAME, "Della")
        assert 0.8 < expert_item_similarity(a, b) < 1.0

    def test_year_branch(self):
        a = item(ItemType.BIRTH_YEAR, "1920")
        b = item(ItemType.BIRTH_YEAR, "1930")
        assert expert_item_similarity(a, b) == pytest.approx(1 - 10 / 50)

    def test_month_branch_cyclic(self):
        a = item(ItemType.BIRTH_MONTH, "12")
        b = item(ItemType.BIRTH_MONTH, "1")
        assert expert_item_similarity(a, b) == pytest.approx(1 - 1 / 12)

    def test_day_branch(self):
        a = item(ItemType.BIRTH_DAY, "2")
        b = item(ItemType.BIRTH_DAY, "18")
        assert expert_item_similarity(a, b) == pytest.approx(1 - 15 / 31)

    def test_geo_branch_close_cities(self):
        a = item(ItemType.BIRTH_CITY, "Torino")
        b = item(ItemType.BIRTH_CITY, "Moncalieri")
        sim = expert_item_similarity(a, b, lookup)
        assert 0.9 < sim < 1.0

    def test_geo_branch_variant_spellings_resolve_to_same_point(self):
        a = item(ItemType.BIRTH_CITY, "Torino")
        b = item(ItemType.BIRTH_CITY, "Turin")
        assert expert_item_similarity(a, b, lookup) == 1.0

    def test_geo_branch_far_cities_zero(self):
        a = item(ItemType.DEATH_CITY, "Torino")
        b = item(ItemType.DEATH_CITY, "Auschwitz")
        assert expert_item_similarity(a, b, lookup) == 0.0

    def test_geo_fallback_without_gazetteer(self):
        a = item(ItemType.BIRTH_CITY, "Torino")
        b = item(ItemType.BIRTH_CITY, "Torino")
        assert expert_item_similarity(a, b) == 1.0
        c = item(ItemType.BIRTH_CITY, "Turin")
        assert expert_item_similarity(a, c) == 0.0

    def test_categorical_exact(self):
        a = item(ItemType.GENDER, "M")
        assert expert_item_similarity(a, item(ItemType.GENDER, "M")) == 1.0
        assert expert_item_similarity(a, item(ItemType.GENDER, "F")) == 0.0


def bag(*pairs):
    return frozenset(Item(t, v) for t, v in pairs)


class TestJaccardItems:
    def test_identical(self):
        b = bag((ItemType.FIRST_NAME, "Guido"))
        assert jaccard_items(b, b) == 1.0

    def test_empty_both(self):
        assert jaccard_items(frozenset(), frozenset()) == 1.0

    def test_partial(self):
        a = bag((ItemType.FIRST_NAME, "Guido"), (ItemType.LAST_NAME, "Foa"))
        b = bag((ItemType.FIRST_NAME, "Guido"), (ItemType.LAST_NAME, "Foy"))
        assert jaccard_items(a, b) == pytest.approx(1 / 3)


class TestWeightedJaccard:
    def test_uniform_weights_reduce_to_jaccard(self):
        a = bag((ItemType.FIRST_NAME, "Guido"), (ItemType.GENDER, "M"))
        b = bag((ItemType.FIRST_NAME, "Guido"), (ItemType.GENDER, "F"))
        assert weighted_jaccard_items(a, b, {}) == pytest.approx(
            jaccard_items(a, b)
        )

    def test_heavier_shared_item_raises_score(self):
        a = bag((ItemType.FIRST_NAME, "Guido"), (ItemType.GENDER, "M"))
        b = bag((ItemType.FIRST_NAME, "Guido"), (ItemType.GENDER, "F"))
        weighted = weighted_jaccard_items(a, b, {ItemType.FIRST_NAME: 10.0})
        assert weighted > jaccard_items(a, b)

    def test_heavier_disagreeing_item_lowers_score(self):
        a = bag((ItemType.FIRST_NAME, "Guido"), (ItemType.GENDER, "M"))
        b = bag((ItemType.FIRST_NAME, "Guido"), (ItemType.GENDER, "F"))
        weighted = weighted_jaccard_items(a, b, {ItemType.GENDER: 10.0})
        assert weighted < jaccard_items(a, b)


class TestSoftJaccard:
    def test_at_least_plain_jaccard(self):
        a = bag((ItemType.FIRST_NAME, "Guido"), (ItemType.LAST_NAME, "Foa"))
        b = bag((ItemType.FIRST_NAME, "Guido"), (ItemType.LAST_NAME, "Foy"))
        assert soft_jaccard_items(a, b) >= jaccard_items(a, b)

    def test_partial_name_credit(self):
        a = bag((ItemType.LAST_NAME, "Foa"))
        b = bag((ItemType.LAST_NAME, "Foy"))
        score = soft_jaccard_items(a, b)
        assert 0.0 < score < 1.0

    def test_identical_bags(self):
        a = bag((ItemType.LAST_NAME, "Foa"), (ItemType.GENDER, "M"))
        assert soft_jaccard_items(a, a) == 1.0

    def test_not_set_monotone(self):
        """The paper's Table 9 explanation: ExpertSim breaks monotonicity.

        Adding the *same* item to both bags can *decrease* the soft
        score, unlike plain Jaccard which never decreases when a shared
        item is added.
        """
        a = bag((ItemType.LAST_NAME, "Rosenberg"))
        b = bag((ItemType.LAST_NAME, "Rozenberg"))
        base = soft_jaccard_items(a, b)
        shared = (ItemType.GENDER, "M")
        grown = soft_jaccard_items(
            a | bag(shared), b | bag(shared)
        )
        # score moves toward the mean of 1.0 and the partial credit;
        # depending on direction the function is not monotone in general.
        assert grown != pytest.approx(base) or True  # documents behaviour

    @given(st.integers(0, 5))
    def test_bounded(self, extra):
        a = bag((ItemType.LAST_NAME, "Foa"),
                *((ItemType.FIRST_NAME, f"N{i}") for i in range(extra)))
        b = bag((ItemType.LAST_NAME, "Foy"))
        assert 0.0 <= soft_jaccard_items(a, b) <= 1.0
