"""Tests for the training/evaluation harness and PairClassifier."""

from __future__ import annotations

import pytest

from repro.classify.adtree import ADTreeModel, PredictionNode
from repro.classify.boosting import ADTreeLearner
from repro.classify.training import (
    EvaluationResult,
    OneVsRestADTree,
    PairClassifier,
    cross_validate,
    evaluate_model,
    pair_features,
    train_test_split,
)
from repro.records.dataset import Dataset
from tests.conftest import make_record


class TestEvaluationResult:
    def test_metrics(self):
        result = EvaluationResult(n=10, tp=4, fp=1, tn=4, fn=1)
        assert result.accuracy == 0.8
        assert result.precision == 0.8
        assert result.recall == 0.8
        assert result.f1 == pytest.approx(0.8)

    def test_degenerate_zeroes(self):
        result = EvaluationResult(n=0, tp=0, fp=0, tn=0, fn=0)
        assert result.accuracy == 0.0
        assert result.precision == 0.0
        assert result.recall == 0.0
        assert result.f1 == 0.0


class TestSplit:
    def test_partition(self):
        items = list(range(100))
        train, test = train_test_split(items, test_fraction=0.3, seed=1)
        assert len(test) == 30
        assert sorted(train + test) == items

    def test_deterministic(self):
        items = list(range(50))
        split_a = train_test_split(items, seed=5)
        split_b = train_test_split(items, seed=5)
        assert split_a == split_b

    def test_validation(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2], test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split([1, 2], test_fraction=1.0)


class TestEvaluateModel:
    def test_counts(self):
        model = ADTreeModel(PredictionNode(1.0))  # always predicts match
        features = [{}, {}, {}]
        labels = [True, True, False]
        result = evaluate_model(model, features, labels)
        assert (result.tp, result.fp, result.tn, result.fn) == (2, 1, 0, 0)


class TestCrossValidate:
    def test_fold_count_and_coverage(self):
        features = [{"x": float(i % 2)} for i in range(40)]
        labels = [i % 2 == 0 for i in range(40)]
        results = cross_validate(features, labels, n_folds=4, learner=ADTreeLearner(n_rounds=2))
        assert len(results) == 4
        assert sum(result.n for result in results) == 40

    def test_accuracy_high_on_separable(self):
        features = [{"x": float(i % 2)} for i in range(60)]
        labels = [i % 2 == 0 for i in range(60)]
        results = cross_validate(features, labels, n_folds=3, learner=ADTreeLearner(n_rounds=2))
        mean_accuracy = sum(result.accuracy for result in results) / len(results)
        assert mean_accuracy > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            cross_validate([{}], [True], n_folds=1)
        with pytest.raises(ValueError):
            cross_validate([{}], [True], n_folds=5)


@pytest.fixture(scope="module")
def pair_dataset():
    records = [
        make_record(book_id=1, first=("Guido",), last=("Foa",), birth_year=1920, person_id=1),
        make_record(book_id=2, first=("Guido",), last=("Foa",), birth_year=1920, person_id=1),
        make_record(book_id=3, first=("Guido",), last=("Foy",), birth_year=1920, person_id=1),
        make_record(book_id=4, first=("Massimo",), last=("Levi",), birth_year=1910, person_id=2),
        make_record(book_id=5, first=("Massimo",), last=("Levi",), birth_year=1910, person_id=2),
        make_record(book_id=6, first=("Donato",), last=("Segre",), birth_year=1890, person_id=3),
    ]
    return Dataset(records)


class TestPairFeatures:
    def test_one_vector_per_pair(self, pair_dataset):
        vectors = pair_features(pair_dataset, [(1, 2), (1, 4)])
        assert len(vectors) == 2
        assert len(vectors[0]) == 48

    def test_subset_names(self, pair_dataset):
        vectors = pair_features(pair_dataset, [(1, 2)], names=("sameFN",))
        assert set(vectors[0]) == {"sameFN"}


class TestPairClassifier:
    def labels(self, dataset):
        gold = dataset.true_pairs()
        all_pairs = [
            (a, b)
            for a in dataset.record_ids
            for b in dataset.record_ids
            if a < b
        ]
        return {pair: pair in gold for pair in all_pairs}

    def test_fit_and_score(self, pair_dataset):
        classifier = PairClassifier(
            pair_dataset, learner=ADTreeLearner(n_rounds=4)
        ).fit(self.labels(pair_dataset))
        assert classifier.score_pair((1, 2)) > classifier.score_pair((1, 6))

    def test_unfitted_raises(self, pair_dataset):
        with pytest.raises(RuntimeError):
            PairClassifier(pair_dataset).score_pair((1, 2))

    def test_rank_descending(self, pair_dataset):
        classifier = PairClassifier(
            pair_dataset, learner=ADTreeLearner(n_rounds=4)
        ).fit(self.labels(pair_dataset))
        ranked = classifier.rank([(1, 2), (1, 6), (4, 5)])
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_filter_matches_threshold(self, pair_dataset):
        classifier = PairClassifier(
            pair_dataset, learner=ADTreeLearner(n_rounds=4)
        ).fit(self.labels(pair_dataset))
        kept = classifier.filter_matches([(1, 2), (1, 6)], threshold=0.0)
        assert (1, 2) in kept
        assert (1, 6) not in kept


class TestOneVsRest:
    def test_three_class_prediction(self):
        features = (
            [{"c": "a"}] * 30 + [{"c": "b"}] * 30 + [{"c": "m"}] * 30
        )
        labels = ["yes"] * 30 + ["no"] * 30 + ["maybe"] * 30
        model = OneVsRestADTree(ADTreeLearner(n_rounds=3)).fit(features, labels)
        assert model.predict({"c": "a"}) == "yes"
        assert model.predict({"c": "b"}) == "no"
        assert model.predict({"c": "m"}) == "maybe"
        assert model.accuracy(features, labels) > 0.95

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            OneVsRestADTree().fit([{}], ["only"])

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            OneVsRestADTree().predict({})
