"""Tests for tools/reprolint: every rule, suppressions, config, CLI.

Each rule gets positive fixtures (must flag) and negative fixtures
(must stay quiet), because a determinism linter that over-reports gets
suppressed into uselessness just as surely as one that under-reports
lets nondeterminism through.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.config import (
    Config,
    ConfigError,
    _parse_toml_subset,
    load_config,
)
from tools.reprolint.engine import (
    analyze_contract_sources,
    lint_paths,
    lint_source,
)
from tools.reprolint.rules import ALL_RULES, RULES_BY_CODE


def findings_for(source, rule=None, path="src/module.py", config=None):
    source = textwrap.dedent(source)
    found = lint_source(source, path=path, config=config)
    if rule is not None:
        found = [finding for finding in found if finding.rule == rule]
    return found


def contract_findings(source, rule=None, path="src/module.py", config=None):
    """Run the inter-procedural RL100-RL103 pass over one fixture module."""
    found = analyze_contract_sources(
        [(path, textwrap.dedent(source))], config=config
    )
    if rule is not None:
        found = [finding for finding in found if finding.rule == rule]
    return found


class TestRL001UnseededRandom:
    def test_global_random_functions_flagged(self):
        source = """
            import random
            x = random.random()
            random.shuffle(items)
        """
        assert len(findings_for(source, "RL001")) == 2

    def test_from_import_flagged(self):
        source = """
            from random import shuffle
            shuffle(items)
        """
        assert len(findings_for(source, "RL001")) == 1

    def test_seeded_instance_ok(self):
        source = """
            import random
            rng = random.Random(17)
            rng.shuffle(items)
            x = rng.random()
        """
        assert findings_for(source, "RL001") == []

    def test_unseeded_constructor_flagged(self):
        source = """
            import random
            rng = random.Random()
        """
        assert len(findings_for(source, "RL001")) == 1

    def test_numpy_global_state_flagged(self):
        source = """
            import numpy as np
            a = np.random.rand(3)
            np.random.seed(0)
        """
        assert len(findings_for(source, "RL001")) == 2

    def test_numpy_default_rng_seeded_ok_unseeded_flagged(self):
        source = """
            from numpy.random import default_rng
            good = default_rng(42)
            bad = default_rng()
        """
        found = findings_for(source, "RL001")
        assert len(found) == 1
        assert found[0].line == 4

    def test_unrelated_names_ok(self):
        source = """
            class Sampler:
                def random(self):
                    return 4
            x = Sampler().random()
        """
        assert findings_for(source, "RL001") == []


class TestRL002UnorderedIteration:
    def test_loop_over_set_appending_flagged(self):
        source = """
            def collect(pairs):
                out = []
                for pair in set(pairs):
                    out.append(pair)
                return out
        """
        assert len(findings_for(source, "RL002")) == 1

    def test_sorted_wrap_ok(self):
        source = """
            def collect(pairs):
                out = []
                for pair in sorted(set(pairs)):
                    out.append(pair)
                return out
        """
        assert findings_for(source, "RL002") == []

    def test_list_materialization_flagged(self):
        assert len(findings_for("x = list({1, 2, 3})\n", "RL002")) == 1

    def test_local_variable_tracking(self):
        source = """
            def emit(items):
                seen = set()
                for item in items:
                    seen.add(item)
                for item in seen:
                    yield item
        """
        found = findings_for(source, "RL002")
        assert len(found) == 1
        assert found[0].line == 6

    def test_set_union_operator_flagged(self):
        source = "pairs = list(set(a) | set(b))\n"
        assert len(findings_for(source, "RL002")) == 1

    def test_order_insensitive_consumers_ok(self):
        source = """
            def stats(s):
                return sum(set(s)), len(set(s)), max(set(s))
        """
        assert findings_for(source, "RL002") == []

    def test_membership_ok(self):
        source = "hit = x in {1, 2, 3}\n"
        assert findings_for(source, "RL002") == []

    def test_accumulating_loop_ok(self):
        source = """
            def total(s):
                acc = 0
                for x in set(s):
                    acc += x
                return acc
        """
        assert findings_for(source, "RL002") == []

    def test_dict_values_to_writer_flagged(self):
        source = """
            def dump(writer, rows):
                for row in rows.values():
                    writer.writerow(row)
        """
        assert len(findings_for(source, "RL002")) == 1

    def test_dict_values_plain_loop_ok(self):
        source = """
            def tally(rows):
                total = 0
                for row in rows.values():
                    total += row.count
                return total
        """
        assert findings_for(source, "RL002") == []

    def test_join_over_set_flagged(self):
        source = "text = ', '.join({'b', 'a'})\n"
        assert len(findings_for(source, "RL002")) == 1


class TestRL003FloatEquality:
    def test_float_literal_equality_flagged(self):
        assert len(findings_for("ok = score == 0.5\n", "RL003")) == 1

    def test_not_equal_flagged(self):
        assert len(findings_for("ok = x != 1.5\n", "RL003")) == 1

    def test_division_result_flagged(self):
        assert len(findings_for("ok = (a / b) == c\n", "RL003")) == 1

    def test_int_equality_ok(self):
        assert findings_for("ok = count == 3\n", "RL003") == []

    def test_ordering_comparison_ok(self):
        assert findings_for("ok = score >= 0.5\n", "RL003") == []


class TestRL004MutableDefault:
    def test_literal_defaults_flagged(self):
        source = """
            def f(a=[], b={}, c=set()):
                return a, b, c
        """
        assert len(findings_for(source, "RL004")) == 3

    def test_keyword_only_default_flagged(self):
        source = """
            def f(*, cache={}):
                return cache
        """
        assert len(findings_for(source, "RL004")) == 1

    def test_none_and_immutable_ok(self):
        source = """
            def f(a=None, b=(), c="x", d=0):
                return a, b, c, d
        """
        assert findings_for(source, "RL004") == []


class TestRL005WallClock:
    def test_datetime_now_flagged_in_src(self):
        source = """
            from datetime import datetime
            stamp = datetime.now()
        """
        assert len(findings_for(source, "RL005")) == 1

    def test_time_calls_flagged_in_src(self):
        source = """
            import time
            t0 = time.perf_counter()
            t1 = time.time()
        """
        assert len(findings_for(source, "RL005")) == 2

    def test_allowed_under_benchmarks(self):
        source = """
            import time
            t0 = time.perf_counter()
        """
        assert findings_for(source, "RL005", path="benchmarks/bench_x.py") == []

    def test_parsing_datetimes_ok(self):
        source = """
            from datetime import datetime
            parsed = datetime(1941, 6, 22)
        """
        assert findings_for(source, "RL005") == []


class TestRL006SwallowedException:
    def test_bare_except_flagged(self):
        source = """
            try:
                work()
            except:
                recover()
        """
        assert len(findings_for(source, "RL006")) == 1

    def test_broad_swallow_flagged(self):
        source = """
            try:
                work()
            except Exception:
                pass
        """
        assert len(findings_for(source, "RL006")) == 1

    def test_narrow_swallow_ok(self):
        source = """
            try:
                work()
            except KeyError:
                pass
        """
        assert findings_for(source, "RL006") == []

    def test_broad_but_handled_ok(self):
        source = """
            try:
                work()
            except Exception as exc:
                log(exc)
                raise
        """
        assert findings_for(source, "RL006") == []


class TestRL007FutureAnnotations:
    def test_missing_import_flagged_in_package(self):
        source = """
            import os
            x = os.sep
        """
        assert len(findings_for(source, "RL007", path="src/repro/mod.py")) == 1

    def test_present_import_ok(self):
        source = """
            from __future__ import annotations
            import os
        """
        assert findings_for(source, "RL007", path="src/repro/mod.py") == []

    def test_docstring_only_module_ok(self):
        assert findings_for('"""doc."""\n', "RL007", path="src/repro/mod.py") == []

    def test_outside_package_ok(self):
        assert findings_for("import os\n", "RL007", path="tests/mod.py") == []


class TestSuppressions:
    def test_line_suppression_with_justification(self):
        source = (
            "import random\n"
            "x = random.random()  "
            "# reprolint: disable=RL001 -- deliberate chaos monkey\n"
        )
        assert findings_for(source, "RL001") == []

    def test_suppression_is_per_rule(self):
        source = (
            "import random\n"
            "x = random.random()  # reprolint: disable=RL005\n"
        )
        assert len(findings_for(source, "RL001")) == 1

    def test_multiple_codes(self):
        source = (
            "import random\n"
            "ok = random.random() == 0.5  "
            "# reprolint: disable=RL001,RL003\n"
        )
        assert findings_for(source) == []

    def test_bare_disable_silences_everything(self):
        source = (
            "import random\n"
            "ok = random.random() == 0.5  # reprolint: disable\n"
        )
        assert findings_for(source) == []

    def test_hash_inside_string_is_not_a_suppression(self):
        source = (
            "import random\n"
            'label = "# reprolint: disable=RL001"\n'
            "x = random.random()\n"
        )
        assert len(findings_for(source, "RL001")) == 1


class TestEngine:
    def test_syntax_error_reported_as_rl000(self):
        found = lint_source("def broken(:\n", path="src/x.py")
        assert [finding.rule for finding in found] == ["RL000"]

    def test_findings_sorted_and_stable(self):
        source = """
            import random
            b = random.random()
            a = random.random() == 0.5
        """
        found = findings_for(source)
        assert found == sorted(found)

    def test_lint_paths_walks_directories(self, tmp_path):
        package = tmp_path / "src"
        package.mkdir()
        (package / "bad.py").write_text(
            "import random\nx = random.random()\n"
        )
        (package / "good.py").write_text("x = 1\n")
        found = lint_paths([package], config=Config(), root=tmp_path)
        assert [finding.path for finding in found] == ["src/bad.py"]


class TestConfig:
    def test_per_path_ignores(self):
        config = Config(per_path_ignores={"tests/": ("RL003",)})
        source = "ok = x == 0.5\n"
        assert findings_for(source, "RL003", path="tests/t.py",
                            config=config) == []
        assert len(findings_for(source, "RL003", path="src/m.py",
                                config=config)) == 1

    def test_select_and_ignore(self):
        config = Config(select=("RL001",))
        source = (
            "import random\n"
            "ok = random.random() == 0.5\n"
        )
        found = findings_for(source, config=config)
        assert {finding.rule for finding in found} == {"RL001"}

    def test_load_config_reads_pyproject(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""
            [tool.reprolint]
            paths = ["lib"]
            wallclock-allowed-paths = ["perf"]

            [tool.reprolint.per-path-ignores]
            "lib/legacy/" = ["RL007"]
        """))
        config = load_config(pyproject)
        assert config.paths == ("lib",)
        assert config.wallclock_allowed_paths == ("perf",)
        assert config.per_path_ignores == {"lib/legacy/": ("RL007",)}

    def test_repo_config_matches_acceptance_gate(self):
        # The committed pyproject must keep the acceptance invocation
        # (`python -m tools.reprolint src tests benchmarks`) green.
        config = load_config()
        assert "src" in config.paths
        assert config.rule_enabled("RL003", "src/repro/x.py")
        assert not config.rule_enabled("RL003", "tests/test_x.py")

    def test_toml_subset_parser_matches_tomllib_on_repo_config(self):
        # CI's 3.9 job reads pyproject via the subset parser; it must
        # see the same [tool.reprolint] table tomllib sees on 3.11+.
        from pathlib import Path

        from tools.reprolint.config import _config_from_table

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        if not pyproject.is_file():
            pytest.skip("repository checkout required")
        tomllib = pytest.importorskip("tomllib")
        with open(pyproject, "rb") as handle:
            expected_table = tomllib.load(handle)["tool"]["reprolint"]
        subset_table = _parse_toml_subset(pyproject.read_text())["tool"][
            "reprolint"
        ]
        assert _config_from_table(subset_table) == _config_from_table(
            expected_table
        )

    def test_toml_subset_parser_shapes(self):
        parsed = _parse_toml_subset(textwrap.dedent("""
            [tool.reprolint]
            paths = [
                "src",
                "tests",
            ]
            flag = true
            count = 3
            name = "x"  # trailing comment
        """))
        table = parsed["tool"]["reprolint"]
        assert table["paths"] == ["src", "tests"]
        assert table["flag"] is True
        assert table["count"] == 3
        assert table["name"] == "x"


class TestCLI:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert reprolint_main([str(clean)]) == 0

    def test_exit_one_with_findings(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert reprolint_main([str(dirty)]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert reprolint_main([str(missing)]) == 2

    def test_json_output_schema(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        reprolint_main([str(dirty), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["total"] == 1
        assert payload["counts"] == {"RL001": 1}
        finding = payload["findings"][0]
        assert set(finding) == {
            "path", "line", "col", "rule", "message", "severity",
        }
        assert finding["rule"] == "RL001"
        assert finding["line"] == 2
        assert finding["severity"] == "error"

    def test_list_rules_covers_catalogue(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_cls in ALL_RULES:
            assert rule_cls.code in out

    def test_select_filter(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nok = random.random() == 0.5\n")
        reprolint_main([str(dirty), "--format", "json", "--select", "RL003"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"RL003": 1}


class TestRL100ContractViolation:
    def test_pure_body_with_global_rng_flagged(self):
        source = """
            import random
            from contracts import pure

            @pure
            def draw(n: int) -> float:
                return random.random() * n
        """
        found = contract_findings(source, "RL100")
        assert len(found) == 1
        assert "random.random" in found[0].message

    def test_clean_pure_function_ok(self):
        source = """
            from contracts import pure

            @pure
            def double(n: int) -> int:
                return 2 * n
        """
        assert contract_findings(source, "RL100") == []

    def test_transitive_call_to_declared_impure_flagged(self):
        source = """
            import time
            from contracts import impure, pure

            @impure("wall-clock")
            def now() -> float:
                return time.time()

            @pure
            def stamp(n: int) -> float:
                return now() + n
        """
        found = contract_findings(source, "RL100")
        assert len(found) == 1
        assert "declared-impure" in found[0].message
        assert "stamp" in found[0].message

    def test_traversal_stops_at_contract_boundary(self):
        # The callee's violation is reported once, at the callee — the
        # caller trusts its contract rather than re-deriving the taint.
        source = """
            import random
            from contracts import pure

            @pure
            def dirty(n: int) -> float:
                return random.random() * n

            @pure
            def caller(n: int) -> float:
                return dirty(n) + 1.0
        """
        found = contract_findings(source, "RL100")
        assert len(found) == 1
        assert "dirty" in found[0].message

    def test_strict_unordered_set_param_flagged(self):
        source = """
            from typing import List, Set
            from contracts import ordered_output

            @ordered_output
            def collect(values: Set[int]) -> List[int]:
                return [v for v in values]
        """
        found = contract_findings(source, "RL100")
        assert len(found) == 1
        assert "unordered" in found[0].message

    def test_sorted_set_param_ok(self):
        source = """
            from typing import List, Set
            from contracts import ordered_output

            @ordered_output
            def collect(values: Set[int]) -> List[int]:
                return sorted(values)
        """
        assert contract_findings(source, "RL100") == []

    def test_suppression_comment_honored(self):
        source = """
            import random
            from contracts import pure

            @pure
            def draw(n: int) -> float:
                return random.random() * n  # reprolint: disable=RL100 - fixture
        """
        assert contract_findings(source, "RL100") == []


class TestRL101UndeclaredImpurityReachable:
    def test_uncontracted_callee_with_rng_flagged_at_root(self):
        source = """
            import random
            from contracts import pure

            def helper(n: int) -> float:
                return random.random() * n

            @pure
            def caller(n: int) -> float:
                return helper(n)
        """
        found = contract_findings(source, "RL101")
        assert len(found) == 1
        assert "caller" in found[0].message
        assert "helper" in found[0].message
        assert "@impure" in found[0].message

    def test_two_hops_deep(self):
        source = """
            import time
            from contracts import deterministic

            def leaf() -> float:
                return time.time()

            def middle() -> float:
                return leaf()

            @deterministic
            def root() -> float:
                return middle()
        """
        found = contract_findings(source, "RL101")
        assert len(found) == 1
        assert "leaf" in found[0].message

    def test_declaring_callee_impure_turns_rl101_into_rl100(self):
        source = """
            import random
            from contracts import impure, pure

            @impure("simulation noise")
            def helper(n: int) -> float:
                return random.random() * n

            @pure
            def caller(n: int) -> float:
                return helper(n)
        """
        assert contract_findings(source, "RL101") == []
        assert len(contract_findings(source, "RL100")) == 1

    def test_clean_transitive_chain_ok(self):
        source = """
            from contracts import pure

            def helper(n: int) -> int:
                return n + 1

            @pure
            def caller(n: int) -> int:
                return helper(n)
        """
        assert contract_findings(source, "RL101") == []


class TestRL102SeedThreading:
    def test_param_missing_from_signature(self):
        source = """
            from typing import List
            from contracts import seeded

            @seeded(param="rng")
            def shuffle(items: List[int]) -> List[int]:
                return items
        """
        found = contract_findings(source, "RL102")
        assert len(found) == 1
        assert '"rng"' in found[0].message

    def test_seed_threaded_through_ok(self):
        source = """
            import random
            from typing import List
            from contracts import seeded

            @seeded(param="rng")
            def inner(items: List[int], rng: random.Random) -> List[int]:
                return items

            @seeded(param="rng")
            def outer(items: List[int], rng: random.Random) -> List[int]:
                return inner(items, rng=rng)
        """
        assert contract_findings(source, "RL102") == []

    def test_seed_not_passed_to_seeded_callee(self):
        source = """
            import random
            from typing import List
            from contracts import seeded

            @seeded(param="rng")
            def inner(items: List[int], rng: random.Random) -> List[int]:
                return items

            @seeded(param="rng")
            def outer(items: List[int], rng: random.Random) -> List[int]:
                return inner(items)
        """
        found = contract_findings(source, "RL102")
        assert len(found) == 1
        assert "without threading" in found[0].message

    def test_positional_threading_ok(self):
        source = """
            import random
            from typing import List
            from contracts import seeded

            @seeded(param="rng")
            def inner(items: List[int], rng: random.Random) -> List[int]:
                return items

            @seeded(param="seed")
            def outer(items: List[int], seed: random.Random) -> List[int]:
                return inner(items, seed)
        """
        assert contract_findings(source, "RL102") == []


class TestRL103UntypedBoundary:
    def test_unannotated_params_flagged(self):
        source = """
            from contracts import pure

            @pure
            def mix(a, b) -> int:
                return a + b
        """
        found = contract_findings(source, "RL103")
        assert len(found) == 1
        assert "a, b" in found[0].message

    def test_missing_return_annotation_flagged(self):
        source = """
            from contracts import pure

            @pure
            def mix(a: int, b: int):
                return a + b
        """
        found = contract_findings(source, "RL103")
        assert len(found) == 1
        assert "return" in found[0].message

    def test_self_is_exempt(self):
        source = """
            from contracts import pure

            class Calc:
                @pure
                def mix(self, a: int) -> int:
                    return a
        """
        assert contract_findings(source, "RL103") == []

    def test_impure_alone_needs_no_annotations(self):
        # @impure is a disclosure, not a determinism promise: it does
        # not require the typed boundary the checker leans on.
        source = """
            import time
            from contracts import impure

            @impure("wall-clock")
            def now():
                return time.time()
        """
        assert contract_findings(source) == []


class TestRL005ImpureExemption:
    def test_impure_decorated_clock_read_ok_in_src(self):
        source = """
            import time
            from repro.contracts import impure

            @impure("quarantined timing source")
            def now() -> float:
                return time.perf_counter()
        """
        assert findings_for(source, "RL005") == []

    def test_undecorated_clock_read_still_flagged(self):
        source = """
            import time

            def now() -> float:
                return time.perf_counter()
        """
        assert len(findings_for(source, "RL005")) == 1

    def test_exemption_is_per_function(self):
        source = """
            import time
            from repro.contracts import impure

            @impure("quarantined")
            def now() -> float:
                return time.perf_counter()

            def leak() -> float:
                return time.monotonic()
        """
        found = findings_for(source, "RL005")
        assert len(found) == 1
        assert found[0].line == 10


class TestConfigErrors:
    def test_scalar_paths_raises(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.reprolint]\npaths = "src"\n')
        with pytest.raises(ConfigError, match="array of strings"):
            load_config(pyproject)

    def test_non_string_array_item_raises(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.reprolint]\npaths = [1, 2]\n")
        with pytest.raises(ConfigError, match="paths"):
            load_config(pyproject)

    def test_bad_per_path_ignores_value_raises(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""
            [tool.reprolint.per-path-ignores]
            "tests/" = "RL003"
        """))
        with pytest.raises(ConfigError, match="per-path-ignores"):
            load_config(pyproject)

    def test_unparseable_toml_raises_config_error(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.reprolint]\npaths = ["src"\n')
        with pytest.raises(ConfigError):
            load_config(pyproject)

    def test_subset_parser_unclosed_array_raises(self):
        with pytest.raises(ConfigError, match="unclosed array"):
            _parse_toml_subset('[tool.reprolint]\npaths = ["src"\n')

    def test_cli_exits_2_with_message_not_traceback(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.reprolint]\npaths = "src"\n')
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        code = reprolint_main(["--config", str(pyproject), str(target)])
        assert code == 2
        err = capsys.readouterr().err
        assert "reprolint: bad configuration:" in err
        assert "Traceback" not in err


class TestContractsCLI:
    def _write_package(self, tmp_path, body):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""
            [tool.reprolint]
            paths = ["src"]
            contract-packages = ["src"]
            future-required-packages = []
        """))
        package = tmp_path / "src"
        package.mkdir()
        (package / "module.py").write_text(textwrap.dedent(body))
        return pyproject

    def test_contract_violation_only_under_flag(self, tmp_path, capsys):
        pyproject = self._write_package(tmp_path, """
            import random
            from contracts import pure

            @pure
            def draw(n: int) -> float:
                return random.random() * n
        """)
        assert reprolint_main(["--config", str(pyproject)]) == 1
        first = capsys.readouterr().out
        assert "RL001" in first and "RL100" not in first
        assert (
            reprolint_main(["--config", str(pyproject), "--contracts"]) == 1
        )
        second = capsys.readouterr().out
        assert "RL100" in second

    def test_clean_contracts_exit_zero(self, tmp_path, capsys):
        pyproject = self._write_package(tmp_path, """
            from contracts import pure

            @pure
            def double(n: int) -> int:
                return 2 * n
        """)
        assert (
            reprolint_main(["--config", str(pyproject), "--contracts"]) == 0
        )

    def test_rl10x_selectable(self, tmp_path, capsys):
        pyproject = self._write_package(tmp_path, """
            import random
            from contracts import pure

            @pure
            def draw(n: int) -> float:
                return random.random() * n
        """)
        code = reprolint_main([
            "--config", str(pyproject), "--contracts",
            "--select", "RL100", "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["counts"]) == {"RL100"}

    def test_list_rules_includes_contract_catalogue(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL100", "RL101", "RL102", "RL103"):
            assert code in out


class TestSelfHosting:
    def test_rule_codes_unique_and_sequential(self):
        codes = [rule_cls.code for rule_cls in ALL_RULES]
        assert codes == sorted(codes)
        assert len(set(codes)) == len(codes)
        assert set(RULES_BY_CODE) == set(codes)

    def test_reprolint_lints_itself_clean(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        tools_dir = root / "tools"
        if not tools_dir.is_dir():  # installed-package run; nothing to lint
            pytest.skip("repository checkout required")
        found = lint_paths([tools_dir], config=load_config(), root=root)
        assert found == []

    def test_contract_pass_clean_on_repo(self):
        # The acceptance gate: zero RL10x over the configured contract
        # packages (src/repro and tools/reprolint — the linter analyzes
        # itself), with every exemption an explicit @impure annotation.
        from pathlib import Path

        from tools.reprolint.engine import analyze_contract_paths

        root = Path(__file__).resolve().parents[1]
        config = load_config()
        roots = [
            root / prefix
            for prefix in config.contract_packages
            if (root / prefix).is_dir()
        ]
        if not roots:
            pytest.skip("repository checkout required")
        assert analyze_contract_paths(roots, config=config, root=root) == []

    def test_repo_has_no_blanket_src_contract_ignores(self):
        # Exemptions must be per-function @impure declarations, never a
        # path-level ignore of the contract rules for src/.
        config = load_config()
        for prefix, codes in config.per_path_ignores.items():
            if prefix.startswith("src"):
                assert not any(code.startswith("RL10") for code in codes)


class TestParallelSafetyCLI:
    def _write_package(self, tmp_path, body):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""
            [tool.reprolint]
            paths = ["src"]
            contract-packages = ["src"]
            future-required-packages = []
        """))
        package = tmp_path / "src"
        package.mkdir()
        (package / "module.py").write_text(textwrap.dedent(body))
        return pyproject

    def test_parallel_findings_only_under_flag(self, tmp_path, capsys):
        pyproject = self._write_package(tmp_path, """
            SEEN = []

            def work(payload):
                SEEN.append(payload)
                return payload

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """)
        assert reprolint_main(["--config", str(pyproject)]) == 0
        capsys.readouterr()
        assert reprolint_main(
            ["--config", str(pyproject), "--parallel-safety"]
        ) == 1
        out = capsys.readouterr().out
        assert "RL201" in out

    def test_rl20x_selectable(self, tmp_path, capsys):
        pyproject = self._write_package(tmp_path, """
            CACHE = {}

            def work(payload):
                CACHE[payload] = True
                return CACHE.get(payload)

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """)
        code = reprolint_main([
            "--config", str(pyproject), "--parallel-safety",
            "--select", "RL201", "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["counts"]) == {"RL201"}

    def test_list_rules_includes_parallel_catalogue(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL200", "RL201", "RL202", "RL203", "RL204", "RL205"):
            assert code in out

    def test_rl20x_suppressible_inline(self, tmp_path, capsys):
        pyproject = self._write_package(tmp_path, """
            SEEN = []

            def work(payload):
                SEEN.append(payload)  # reprolint: disable=RL200,RL201 -- test-only sink
                return payload

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """)
        assert reprolint_main(
            ["--config", str(pyproject), "--parallel-safety"]
        ) == 0


class TestSarifOutput:
    def _sarif_for(self, tmp_path, capsys, body):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""
            [tool.reprolint]
            paths = ["src"]
            future-required-packages = []
        """))
        package = tmp_path / "src"
        package.mkdir()
        (package / "module.py").write_text(textwrap.dedent(body))
        code = reprolint_main(
            ["--config", str(pyproject), "--format", "sarif"]
        )
        return code, json.loads(capsys.readouterr().out)

    def test_findings_rendered_as_results(self, tmp_path, capsys):
        code, sarif = self._sarif_for(tmp_path, capsys, """
            import random
            x = random.random()
        """)
        assert code == 1
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "RL001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/module.py"
        assert location["region"]["startLine"] == 3

    def test_clean_tree_emits_empty_results_exit_zero(self, tmp_path, capsys):
        code, sarif = self._sarif_for(tmp_path, capsys, "x = 1\n")
        assert code == 0
        assert sarif["runs"][0]["results"] == []

    def test_driver_carries_full_rule_catalogue(self, tmp_path, capsys):
        from tools.reprolint.sarif import rule_catalogue

        _, sarif = self._sarif_for(tmp_path, capsys, "x = 1\n")
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == sorted(rule_catalogue())
        by_id = {r["id"]: r["name"] for r in rules}
        assert by_id["RL001"] == "unseeded-rng"
        assert by_id["RL200"] == "work-captures-state"

    def test_rendering_is_deterministic(self):
        from tools.reprolint.findings import Finding, Severity
        from tools.reprolint.sarif import render_sarif

        findings = [
            Finding(path="src/b.py", line=2, col=1, rule="RL002",
                    message="b", severity=Severity.WARNING),
            Finding(path="src/a.py", line=9, col=4, rule="RL001",
                    message="a", severity=Severity.ERROR),
        ]
        first = render_sarif(findings)
        second = render_sarif(list(reversed(findings)))
        assert first == second
        parsed = json.loads(first)
        levels = [r["level"] for r in parsed["runs"][0]["results"]]
        assert levels == ["error", "warning"]  # sorted: a.py before b.py


class TestAutofix:
    def test_inserts_below_docstring(self):
        from tools.reprolint.autofix import fix_future_annotations

        source = '"""Doc."""\n\nimport os\n\nx = os.sep\n'
        fixed = fix_future_annotations(source)
        assert fixed.startswith(
            '"""Doc."""\n\nfrom __future__ import annotations\n'
        )
        assert fixed.endswith("import os\n\nx = os.sep\n")

    def test_inserts_at_top_without_docstring(self):
        from tools.reprolint.autofix import fix_future_annotations

        source = "# comment\nimport os\n"
        fixed = fix_future_annotations(source)
        assert fixed == (
            "# comment\nfrom __future__ import annotations\n\nimport os\n"
        )

    def test_idempotent_byte_for_byte(self):
        from tools.reprolint.autofix import fix_future_annotations

        source = '"""Doc."""\n\nimport os\n'
        once = fix_future_annotations(source)
        assert fix_future_annotations(once) == once

    def test_docstring_only_and_syntax_error_unchanged(self):
        from tools.reprolint.autofix import fix_future_annotations

        assert fix_future_annotations('"""Doc."""\n') == '"""Doc."""\n'
        broken = "def f(:\n"
        assert fix_future_annotations(broken) == broken

    def _write_package(self, tmp_path, body):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""
            [tool.reprolint]
            paths = ["src"]
            future-required-packages = ["src"]
        """))
        package = tmp_path / "src"
        package.mkdir()
        (package / "module.py").write_text(textwrap.dedent(body))
        return pyproject, package / "module.py"

    def test_cli_fix_rewrites_and_then_lints_clean(self, tmp_path, capsys):
        pyproject, module = self._write_package(
            tmp_path, '"""Doc."""\n\nimport os\n\nx = os.sep\n'
        )
        assert reprolint_main(["--config", str(pyproject)]) == 1
        capsys.readouterr()
        assert reprolint_main(["--config", str(pyproject), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "fixed: src/module.py" in out
        assert "from __future__ import annotations" in module.read_text()
        # Second --fix run: nothing left to fix, file byte-stable.
        before = module.read_text()
        assert reprolint_main(["--config", str(pyproject), "--fix"]) == 0
        assert "fixed:" not in capsys.readouterr().out
        assert module.read_text() == before

    def test_fix_respects_suppressions(self, tmp_path, capsys):
        pyproject, module = self._write_package(
            tmp_path,
            "import os  # reprolint: disable=RL007 -- vendored module\n",
        )
        assert reprolint_main(["--config", str(pyproject), "--fix"]) == 0
        assert "from __future__" not in module.read_text()


class TestDocRuleParity:
    def test_docs_tables_match_rule_catalogue(self):
        import re
        from pathlib import Path

        from tools.reprolint.sarif import rule_catalogue

        docs = (
            Path(__file__).resolve().parents[1]
            / "docs"
            / "STATIC_ANALYSIS.md"
        )
        if not docs.is_file():
            pytest.skip("repository checkout required")
        documented = dict(
            re.findall(
                r"^\| (RL\d{3}) \| ([a-z0-9-]+)\s*\|",
                docs.read_text(encoding="utf-8"),
                flags=re.MULTILINE,
            )
        )
        catalogue = rule_catalogue()
        assert documented == catalogue
