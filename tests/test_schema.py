"""Tests for the victim-report data model."""

from __future__ import annotations

import pytest

from repro.geo import GeoPoint
from repro.records.schema import (
    NAME_ATTRIBUTES,
    Gender,
    Place,
    PlacePart,
    PlaceType,
    SourceKind,
    SourceRef,
    VictimRecord,
)
from tests.conftest import make_record


class TestPlace:
    def test_parts_filters_nulls(self):
        place = Place(city="Torino", country="Italy")
        parts = place.parts()
        assert parts == {PlacePart.CITY: "Torino", PlacePart.COUNTRY: "Italy"}

    def test_part_accessor(self):
        place = Place(region="Piemonte")
        assert place.part(PlacePart.REGION) == "Piemonte"
        assert place.part(PlacePart.CITY) is None

    def test_is_empty(self):
        assert Place().is_empty()
        assert not Place(country="Italy").is_empty()
        assert not Place(coords=GeoPoint(0, 0)).is_empty()


class TestSourceRef:
    def test_key_distinguishes_kinds(self):
        testimony = SourceRef(SourceKind.TESTIMONY, "X")
        list_source = SourceRef(SourceKind.LIST, "X")
        assert testimony.key != list_source.key

    def test_equality(self):
        assert SourceRef(SourceKind.LIST, "L1") == SourceRef(SourceKind.LIST, "L1")


class TestVictimRecord:
    def test_birth_day_validation(self):
        with pytest.raises(ValueError):
            make_record(birth_day=32)

    def test_birth_month_validation(self):
        with pytest.raises(ValueError):
            make_record(birth_month=0)

    def test_birth_year_validation(self):
        with pytest.raises(ValueError):
            make_record(birth_year=1700)
        with pytest.raises(ValueError):
            make_record(birth_year=1999)

    def test_names_accessor(self):
        record = make_record(father=("Donato",))
        assert record.names("father") == ("Donato",)
        assert record.names("spouse") == ()

    def test_names_rejects_unknown(self):
        record = make_record()
        with pytest.raises(ValueError):
            record.names("uncle")

    def test_all_name_attributes_accessible(self):
        record = make_record()
        for attribute in NAME_ATTRIBUTES:
            assert isinstance(record.names(attribute), tuple)

    def test_places_of_missing_type(self):
        record = make_record()
        assert record.places_of(PlaceType.DEATH) == ()

    def test_pattern_contains_expected_fields(self):
        record = make_record(
            birth_year=1920,
            places={PlaceType.BIRTH: (Place(city="Torino", country="Italy"),)},
        )
        pattern = record.pattern()
        assert "name:first" in pattern
        assert "name:last" in pattern
        assert "gender" in pattern
        assert "birth_year" in pattern
        assert "place:birth:city" in pattern
        assert "place:birth:country" in pattern
        assert "place:birth:county" not in pattern
        assert "birth_day" not in pattern

    def test_pattern_is_hashable_set(self):
        record_a = make_record(book_id=1)
        record_b = make_record(book_id=2)
        assert record_a.pattern() == record_b.pattern()
        assert hash(record_a.pattern()) == hash(record_b.pattern())

    def test_has_dob(self):
        assert make_record(birth_year=1920).has_dob()
        assert make_record(birth_month=5).has_dob()
        assert not make_record().has_dob()

    def test_multivalued_first_names(self):
        record = make_record(first=("John", "Harris"))
        assert record.names("first") == ("John", "Harris")

    def test_multiple_wartime_places_in_pattern(self):
        record = make_record(
            places={
                PlaceType.WARTIME: (
                    Place(city="Lwow"),
                    Place(country="Poland"),
                )
            }
        )
        pattern = record.pattern()
        assert "place:wartime:city" in pattern
        assert "place:wartime:country" in pattern
