"""Tests for the date-component distances (BXDist features, Eq. 1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.similarity.dates import (
    DAY_NORMALIZER,
    MONTH_NORMALIZER,
    YEAR_NORMALIZER,
    day_distance,
    day_similarity,
    month_distance,
    month_similarity,
    normalized_component_distance,
    year_distance,
    year_similarity,
)

days = st.integers(min_value=1, max_value=31)
months = st.integers(min_value=1, max_value=12)
years = st.integers(min_value=1850, max_value=1946)


class TestDayDistance:
    def test_same_day(self):
        assert day_distance(15, 15) == 0

    def test_cyclic_wrap(self):
        # 1 and 31 are one day apart cyclically.
        assert day_distance(1, 31) == 1

    def test_plain_difference(self):
        assert day_distance(5, 10) == 5

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            day_distance(0, 5)
        with pytest.raises(ValueError):
            day_distance(5, 32)

    @given(days, days)
    def test_bounded_and_symmetric(self, a, b):
        d = day_distance(a, b)
        assert 0 <= d <= 15
        assert d == day_distance(b, a)


class TestMonthDistance:
    def test_december_january(self):
        assert month_distance(12, 1) == 1

    def test_half_year(self):
        assert month_distance(1, 7) == 6

    @given(months, months)
    def test_bounded(self, a, b):
        assert 0 <= month_distance(a, b) <= 6


class TestYearDistance:
    def test_plain(self):
        assert year_distance(1920, 1936) == 16

    @given(years, years)
    def test_symmetric(self, a, b):
        assert year_distance(a, b) == year_distance(b, a)


class TestSimilarities:
    def test_day_similarity_range(self):
        assert day_similarity(1, 1) == 1.0
        assert day_similarity(1, 31) == pytest.approx(1 - 1 / 31)

    def test_month_similarity(self):
        assert month_similarity(3, 3) == 1.0
        assert month_similarity(1, 7) == pytest.approx(0.5)

    def test_year_similarity_eq1_normalizer(self):
        # Eq. 1 uses 1 - |y1-y2|/50, clamped at 0.
        assert year_similarity(1920, 1920) == 1.0
        assert year_similarity(1920, 1945) == pytest.approx(0.5)
        assert year_similarity(1850, 1946) == 0.0

    @given(years, years)
    def test_year_similarity_bounded(self, a, b):
        assert 0.0 <= year_similarity(a, b) <= 1.0


class TestNormalizedComponentDistance:
    def test_missing_returns_none(self):
        assert normalized_component_distance(None, 5, "day") is None
        assert normalized_component_distance(5, None, "year") is None

    def test_day_normalization(self):
        value = normalized_component_distance(1, 16, "day")
        assert value == pytest.approx(15 / DAY_NORMALIZER)

    def test_month_normalization(self):
        value = normalized_component_distance(1, 7, "month")
        assert value == pytest.approx(6 / MONTH_NORMALIZER)

    def test_year_caps_at_one(self):
        assert normalized_component_distance(1800, 1946, "year") == 1.0

    def test_year_uses_100_normalizer(self):
        value = normalized_component_distance(1900, 1925, "year")
        assert value == pytest.approx(25 / YEAR_NORMALIZER)

    def test_unknown_component(self):
        with pytest.raises(ValueError):
            normalized_component_distance(1, 2, "hour")
