"""Tests for most-frequent-item pruning."""

from __future__ import annotations

import pytest

from repro.mining.pruning import prune_frequent_items


def bags(*itemsets):
    return {index: frozenset(items) for index, items in enumerate(itemsets)}


class TestPruneFrequentItems:
    def test_removes_most_frequent(self):
        item_bags = bags(
            {"common", "a"}, {"common", "b"}, {"common", "c"}, {"common"}
        )
        pruned, removed = prune_frequent_items(item_bags, fraction=0.25)
        assert removed == {"common"}
        for items in pruned.values():
            assert "common" not in items

    def test_zero_fraction_noop(self):
        item_bags = bags({"a"}, {"a", "b"})
        pruned, removed = prune_frequent_items(item_bags, fraction=0.0)
        assert removed == set()
        assert pruned == item_bags

    def test_does_not_mutate_input(self):
        item_bags = bags({"a", "b"}, {"a"})
        before = {rid: set(items) for rid, items in item_bags.items()}
        prune_frequent_items(item_bags, fraction=0.5)
        assert {rid: set(items) for rid, items in item_bags.items()} == before

    def test_at_least_one_pruned_for_tiny_fraction(self):
        item_bags = bags({"a", "b"}, {"a", "c"})
        _, removed = prune_frequent_items(item_bags, fraction=0.0001)
        assert len(removed) == 1
        assert removed == {"a"}

    def test_full_fraction_empties_bags(self):
        item_bags = bags({"a", "b"}, {"c"})
        pruned, removed = prune_frequent_items(item_bags, fraction=1.0)
        assert removed == {"a", "b", "c"}
        assert all(not items for items in pruned.values())

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            prune_frequent_items(bags({"a"}), fraction=-0.1)
        with pytest.raises(ValueError):
            prune_frequent_items(bags({"a"}), fraction=1.5)

    def test_empty_input(self):
        pruned, removed = prune_frequent_items({}, fraction=0.5)
        assert pruned == {}
        assert removed == set()

    def test_deterministic_tie_break(self):
        item_bags = bags({"x", "y"})
        _, removed_a = prune_frequent_items(item_bags, fraction=0.5)
        _, removed_b = prune_frequent_items(item_bags, fraction=0.5)
        assert removed_a == removed_b
