"""Tests for submitter generation and deduplication."""

from __future__ import annotations

import pytest

from repro.submitters import (
    SubmitterGenerator,
    SubmitterRecord,
    dedupe_submitters,
    group_by_signature,
    signature_similarity,
)


@pytest.fixture(scope="module")
def submitter_records():
    return SubmitterGenerator(n_submitters=120, seed=7).generate()


class TestGenerator:
    def test_validation(self):
        with pytest.raises(ValueError):
            SubmitterGenerator(n_submitters=0)
        with pytest.raises(ValueError):
            SubmitterGenerator(communities=("narnia",))
        with pytest.raises(ValueError):
            SubmitterGenerator(pages_weights=(1.0,))

    def test_deterministic(self):
        a = SubmitterGenerator(n_submitters=30, seed=5).generate()
        b = SubmitterGenerator(n_submitters=30, seed=5).generate()
        assert a == b

    def test_pages_between_one_and_five(self, submitter_records):
        from collections import Counter

        pages = Counter(r.submitter_id for r in submitter_records)
        assert set(pages.values()) <= set(range(1, 6))

    def test_record_ids_unique(self, submitter_records):
        ids = [r.record_id for r in submitter_records]
        assert len(ids) == len(set(ids))

    def test_noise_creates_signature_drift(self, submitter_records):
        """Some multi-page submitters appear under several signatures —
        the double-counting the paper describes."""
        by_submitter = {}
        for record in submitter_records:
            by_submitter.setdefault(record.submitter_id, set()).add(
                record.signature
            )
        drifted = [s for s, sigs in by_submitter.items() if len(sigs) > 1]
        assert drifted


class TestNaiveGrouping:
    def test_overcounts_truth(self, submitter_records):
        groups = group_by_signature(submitter_records)
        truth = len({r.submitter_id for r in submitter_records})
        assert len(groups) > truth

    def test_groups_cover_all_records(self, submitter_records):
        groups = group_by_signature(submitter_records)
        assert sum(len(g) for g in groups.values()) == len(submitter_records)


class TestSignatureSimilarity:
    def test_identical(self):
        signature = ("Guido", "Foa", "Torino")
        assert signature_similarity(signature, signature) == pytest.approx(1.0)

    def test_transliteration_high(self):
        a = ("Moshe", "Rozenberg", "Warszawa")
        b = ("Moshe", "Rosenberg", "Warsaw")
        assert signature_similarity(a, b) > 0.9

    def test_different_low(self):
        a = ("Guido", "Foa", "Torino")
        b = ("Zelig", "Brockman", "Minsk")
        assert signature_similarity(a, b) < 0.6


class TestDedupe:
    def test_threshold_validation(self, submitter_records):
        with pytest.raises(ValueError):
            dedupe_submitters(submitter_records, threshold=0)

    def test_reduces_signature_count(self, submitter_records):
        result = dedupe_submitters(submitter_records, threshold=0.9)
        assert result.n_entities <= result.n_signatures
        assert result.n_entities < len(
            group_by_signature(submitter_records)
        )

    def test_moves_toward_truth(self, submitter_records):
        naive = len(group_by_signature(submitter_records))
        truth = len({r.submitter_id for r in submitter_records})
        result = dedupe_submitters(submitter_records, threshold=0.9)
        assert abs(result.n_entities - truth) < abs(naive - truth)

    def test_high_threshold_precise(self, submitter_records):
        result = dedupe_submitters(submitter_records, threshold=0.95)
        precision, _recall = result.evaluate(submitter_records)
        assert precision > 0.9

    def test_lower_threshold_more_recall(self, submitter_records):
        strict = dedupe_submitters(submitter_records, threshold=0.95)
        loose = dedupe_submitters(submitter_records, threshold=0.85)
        _, recall_strict = strict.evaluate(submitter_records)
        _, recall_loose = loose.evaluate(submitter_records)
        assert recall_loose >= recall_strict

    def test_clusters_partition_signatures(self, submitter_records):
        result = dedupe_submitters(submitter_records)
        seen = set()
        for cluster in result.clusters:
            assert not (cluster & seen)
            seen |= cluster
        assert len(seen) == result.n_signatures

    def test_overcount_ratio(self):
        records = [
            SubmitterRecord(1, "Guido", "Foa", "Torino", 1),
            SubmitterRecord(2, "Guido", "Foy", "Torino", 1),
        ]
        result = dedupe_submitters(records, threshold=0.85)
        assert result.n_signatures == 2
        assert result.n_entities == 1
        assert result.overcount_ratio == 2.0
