"""Property-based invariants over the pipeline's core data structures."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.scoring import BlockScorer, SparseNeighborhoodFilter, neighborhood_cap
from repro.core.resolution import PairEvidence, ResolutionResult, connected_components
from repro.mining.fpgrowth import maximal_frequent_itemsets
from repro.records.itembag import Item, ItemType
from repro.similarity.items import jaccard_items, soft_jaccard_items, weighted_jaccard_items

item_types = st.sampled_from(
    [ItemType.FIRST_NAME, ItemType.LAST_NAME, ItemType.GENDER,
     ItemType.BIRTH_YEAR, ItemType.BIRTH_CITY]
)
items = st.builds(
    Item,
    item_types,
    st.sampled_from(["a", "b", "1920", "1921", "Foa", "Foy", "M", "F"]),
)
bags = st.frozensets(items, max_size=8)


class TestItemSimilarityInvariants:
    @given(bags, bags)
    def test_jaccard_bounds_and_symmetry(self, a, b):
        value = jaccard_items(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_items(b, a)

    @given(bags)
    def test_jaccard_identity(self, a):
        assert jaccard_items(a, a) == 1.0

    @given(bags, bags)
    def test_weighted_jaccard_bounds(self, a, b):
        weights = {ItemType.FIRST_NAME: 2.0, ItemType.GENDER: 0.5}
        value = weighted_jaccard_items(a, b, weights)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(bags, bags)
    def test_soft_jaccard_dominates_jaccard(self, a, b):
        assert soft_jaccard_items(a, b) >= jaccard_items(a, b) - 1e-9

    @given(bags, bags)
    def test_soft_jaccard_bounds(self, a, b):
        assert 0.0 <= soft_jaccard_items(a, b) <= 1.0 + 1e-9


transactions = st.lists(
    st.frozensets(st.sampled_from("abcdef"), min_size=1, max_size=4),
    min_size=0,
    max_size=20,
)


class TestMiningInvariants:
    @settings(max_examples=40, deadline=None)
    @given(transactions, st.integers(min_value=1, max_value=5))
    def test_mfi_support_and_maximality(self, txns, minsup):
        mfis = maximal_frequent_itemsets(txns, minsup)
        itemsets = [m.items for m in mfis]
        for mined in mfis:
            # reported support equals actual support
            actual = sum(1 for t in txns if mined.items <= t)
            assert actual == mined.support
            assert actual >= minsup
        # pairwise incomparable
        for a in itemsets:
            for b in itemsets:
                if a is not b:
                    assert not a <= b or a == b
        assert len(set(itemsets)) == len(itemsets)


class TestSNInvariants:
    blocks = st.lists(
        st.tuples(
            st.frozensets(st.integers(0, 12), min_size=2, max_size=5),
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        ),
        max_size=12,
    )

    @settings(max_examples=50, deadline=None)
    @given(blocks, st.floats(min_value=0.5, max_value=4.0), st.integers(2, 5))
    def test_neighborhoods_never_exceed_cap(self, raw_blocks, ng, minsup):
        sn = SparseNeighborhoodFilter(ng=ng, mode="skip")
        scored = [(records, frozenset(), score) for records, score in raw_blocks]
        admitted = sn.filter_blocks(scored, minsup)
        cap = neighborhood_cap(ng, minsup)
        for neighbors in sn.neighbors.values():
            assert len(neighbors) <= cap
        # admitted blocks are a subset of the input
        input_sets = {records for records, _ in raw_blocks}
        for records, _key, _score in admitted:
            assert records in input_sets


class TestResolutionInvariants:
    evidence = st.lists(
        st.builds(
            PairEvidence,
            st.tuples(st.integers(0, 10), st.integers(11, 20)),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.one_of(
                st.none(),
                st.floats(min_value=-3, max_value=3, allow_nan=False),
            ),
        ),
        max_size=25,
        unique_by=lambda e: e.pair,
    )

    @given(evidence, st.floats(min_value=-3, max_value=3, allow_nan=False))
    def test_resolve_subset_and_threshold(self, entries, certainty):
        result = ResolutionResult(entries)
        crisp = result.resolve(certainty)
        assert set(crisp) <= result.pairs
        for pair in crisp:
            assert result[pair].ranking_key > certainty

    @given(evidence)
    def test_entities_partition(self, entries):
        result = ResolutionResult(entries)
        clusters = result.entities(certainty=-10.0, include_singletons=True)
        seen = set()
        for cluster in clusters:
            assert not (cluster & seen)
            seen |= cluster

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=30,
        )
    )
    def test_connected_components_cover_all_nodes(self, pairs):
        components = connected_components(pairs)
        nodes = {node for pair in pairs for node in pair}
        covered = set().union(*components) if components else set()
        assert covered == nodes
