"""Property-based invariants over the pipeline's core data structures."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.scoring import BlockScorer, SparseNeighborhoodFilter, neighborhood_cap
from repro.core.resolution import PairEvidence, ResolutionResult, connected_components
from repro.mining.fpgrowth import (
    _mine_shard,
    _Vocabulary,
    maximal_frequent_itemsets,
    merge_mfi_candidates,
)
from repro.parallel import (
    fixed_chunks,
    max_merge_into,
    merge_scored_chunks,
    partition_evenly,
)
from repro.records.itembag import Item, ItemType
from repro.similarity.items import jaccard_items, soft_jaccard_items, weighted_jaccard_items

item_types = st.sampled_from(
    [ItemType.FIRST_NAME, ItemType.LAST_NAME, ItemType.GENDER,
     ItemType.BIRTH_YEAR, ItemType.BIRTH_CITY]
)
items = st.builds(
    Item,
    item_types,
    st.sampled_from(["a", "b", "1920", "1921", "Foa", "Foy", "M", "F"]),
)
bags = st.frozensets(items, max_size=8)


class TestItemSimilarityInvariants:
    @given(bags, bags)
    def test_jaccard_bounds_and_symmetry(self, a, b):
        value = jaccard_items(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_items(b, a)

    @given(bags)
    def test_jaccard_identity(self, a):
        assert jaccard_items(a, a) == 1.0

    @given(bags, bags)
    def test_weighted_jaccard_bounds(self, a, b):
        weights = {ItemType.FIRST_NAME: 2.0, ItemType.GENDER: 0.5}
        value = weighted_jaccard_items(a, b, weights)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(bags, bags)
    def test_soft_jaccard_dominates_jaccard(self, a, b):
        assert soft_jaccard_items(a, b) >= jaccard_items(a, b) - 1e-9

    @given(bags, bags)
    def test_soft_jaccard_bounds(self, a, b):
        assert 0.0 <= soft_jaccard_items(a, b) <= 1.0 + 1e-9


transactions = st.lists(
    st.frozensets(st.sampled_from("abcdef"), min_size=1, max_size=4),
    min_size=0,
    max_size=20,
)


class TestMiningInvariants:
    @settings(max_examples=40, deadline=None)
    @given(transactions, st.integers(min_value=1, max_value=5))
    def test_mfi_support_and_maximality(self, txns, minsup):
        mfis = maximal_frequent_itemsets(txns, minsup)
        itemsets = [m.items for m in mfis]
        for mined in mfis:
            # reported support equals actual support
            actual = sum(1 for t in txns if mined.items <= t)
            assert actual == mined.support
            assert actual >= minsup
        # pairwise incomparable
        for a in itemsets:
            for b in itemsets:
                if a is not b:
                    assert not a <= b or a == b
        assert len(set(itemsets)) == len(itemsets)


class TestSNInvariants:
    blocks = st.lists(
        st.tuples(
            st.frozensets(st.integers(0, 12), min_size=2, max_size=5),
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        ),
        max_size=12,
    )

    @settings(max_examples=50, deadline=None)
    @given(blocks, st.floats(min_value=0.5, max_value=4.0), st.integers(2, 5))
    def test_neighborhoods_never_exceed_cap(self, raw_blocks, ng, minsup):
        sn = SparseNeighborhoodFilter(ng=ng, mode="skip")
        scored = [(records, frozenset(), score) for records, score in raw_blocks]
        admitted = sn.filter_blocks(scored, minsup)
        cap = neighborhood_cap(ng, minsup)
        for neighbors in sn.neighbors.values():
            assert len(neighbors) <= cap
        # admitted blocks are a subset of the input
        input_sets = {records for records, _ in raw_blocks}
        for records, _key, _score in admitted:
            assert records in input_sets


class TestResolutionInvariants:
    evidence = st.lists(
        st.builds(
            PairEvidence,
            st.tuples(st.integers(0, 10), st.integers(11, 20)),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.one_of(
                st.none(),
                st.floats(min_value=-3, max_value=3, allow_nan=False),
            ),
        ),
        max_size=25,
        unique_by=lambda e: e.pair,
    )

    @given(evidence, st.floats(min_value=-3, max_value=3, allow_nan=False))
    def test_resolve_subset_and_threshold(self, entries, certainty):
        result = ResolutionResult(entries)
        crisp = result.resolve(certainty)
        assert set(crisp) <= result.pairs
        for pair in crisp:
            assert result[pair].ranking_key > certainty

    @given(evidence)
    def test_entities_partition(self, entries):
        result = ResolutionResult(entries)
        clusters = result.entities(certainty=-10.0, include_singletons=True)
        seen = set()
        for cluster in clusters:
            assert not (cluster & seen)
            seen |= cluster

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=30,
        )
    )
    def test_connected_components_cover_all_nodes(self, pairs):
        components = connected_components(pairs)
        nodes = {node for pair in pairs for node in pair}
        covered = set().union(*components) if components else set()
        assert covered == nodes


# -- parallel layer: chunk plans are partitions, merges ignore order ----------

work_items = st.lists(st.integers(-50, 50), max_size=40)
scored_chunks = st.lists(
    st.lists(
        st.tuples(
            st.integers(0, 10),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        max_size=8,
    ),
    max_size=6,
)
seeds = st.integers(0, 2**16)


def _shuffled(chunks, seed):
    """A seeded permutation of the chunk list and of each chunk."""
    rng = random.Random(seed)
    permuted = [list(chunk) for chunk in chunks]
    rng.shuffle(permuted)
    for chunk in permuted:
        rng.shuffle(chunk)
    return permuted


class TestChunkingInvariants:
    @given(work_items, st.integers(1, 8))
    def test_partition_evenly_is_a_partition(self, items, n_chunks):
        chunks = partition_evenly(items, n_chunks)
        # No pair lost, none duplicated, order preserved.
        assert [x for chunk in chunks for x in chunk] == items
        assert all(chunks)  # no empty chunks
        assert len(chunks) == min(n_chunks, len(items))
        if chunks:
            sizes = [len(chunk) for chunk in chunks]
            assert max(sizes) - min(sizes) <= 1

    @given(work_items, st.integers(1, 8))
    def test_fixed_chunks_is_a_partition(self, items, chunk_size):
        chunks = fixed_chunks(items, chunk_size)
        assert [x for chunk in chunks for x in chunk] == items
        assert all(len(chunk) <= chunk_size for chunk in chunks)
        assert all(len(chunk) == chunk_size for chunk in chunks[:-1])


class TestMergeInvariants:
    @given(scored_chunks, seeds)
    def test_merge_scored_chunks_ignores_order(self, chunks, seed):
        merged = merge_scored_chunks(chunks)
        assert merge_scored_chunks(_shuffled(chunks, seed)) == merged
        flat = [entry for chunk in chunks for entry in chunk]
        assert set(merged) == {key for key, _ in flat}
        for key, score in merged.items():
            assert score == max(s for k, s in flat if k == key)

    @given(scored_chunks, seeds)
    def test_max_merge_into_ignores_call_grouping(self, chunks, seed):
        one_call: dict = {}
        max_merge_into(
            one_call, [entry for chunk in chunks for entry in chunk]
        )
        incremental: dict = {}
        for chunk in _shuffled(chunks, seed):
            assert max_merge_into(incremental, chunk) is incremental
        assert incremental == one_call


mfi_shards = st.lists(
    st.lists(
        st.frozensets(st.integers(0, 8), min_size=1, max_size=5),
        max_size=6,
    ),
    max_size=4,
)


class TestShardedMiningInvariants:
    @staticmethod
    def _with_supports(shards):
        # Support must be a function of the itemset (as it is in real
        # mining, where every shard scores against the full tree).
        return [
            [(items, len(items) + min(items)) for items in shard]
            for shard in shards
        ]

    @settings(max_examples=60, deadline=None)
    @given(mfi_shards, seeds)
    def test_merge_mfi_candidates_is_permutation_invariant(
        self, shards, seed
    ):
        candidates = self._with_supports(shards)
        merged = merge_mfi_candidates(candidates)
        assert merge_mfi_candidates(_shuffled(candidates, seed)) == merged

    @settings(max_examples=60, deadline=None)
    @given(mfi_shards)
    def test_merge_mfi_candidates_keeps_exactly_the_maximal(self, shards):
        candidates = self._with_supports(shards)
        merged = merge_mfi_candidates(candidates)
        kept = {items for items, _ in merged}
        everything = {
            entry for shard in candidates for entry in shard
        }
        # Output is an antichain...
        for a in kept:
            for b in kept:
                assert a == b or not a < b
        # ...and every input survives or is strictly subsumed.
        for items, support in everything:
            assert items in kept or any(items < other for other in kept)

    @settings(max_examples=40, deadline=None)
    @given(transactions, st.integers(1, 4), st.integers(1, 4))
    def test_sharded_fpmax_equals_serial(self, txns, minsup, n_shards_max):
        serial = {
            (mined.items, mined.support)
            for mined in maximal_frequent_itemsets(txns, minsup)
        }
        vocabulary = _Vocabulary([list(t) for t in txns], minsup)
        n_items = len(vocabulary.value_of)
        encoded = [e for e in (vocabulary.encode(t) for t in txns) if e]
        n_shards = max(1, min(n_shards_max, n_items))
        shard_results = [
            _mine_shard((
                encoded, minsup, n_items,
                [i for i in range(n_items) if i % n_shards == index],
            ))
            for index in range(n_shards)
        ]
        merged = merge_mfi_candidates(shard_results)
        sharded = {
            (vocabulary.decode(ids), support) for ids, support in merged
        }
        assert sharded == serial
