"""Tests for multi-granularity (person vs. family) resolution."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.granularity import (
    GranularityLevel,
    config_for,
    family_config,
    family_gold_standard,
)
from repro.core.pipeline import UncertainERPipeline
from repro.evaluation.goldstandard import GoldStandard


class TestFamilyConfig:
    def test_loosens_ng(self):
        base = PipelineConfig(ng=3.0)
        family = family_config(base, ng_factor=2.0)
        assert family.ng == 6.0

    def test_disables_same_source_and_classifier(self):
        base = PipelineConfig(
            ng=3.0, same_source_discard=True, classify=True
        )
        family = family_config(base)
        assert family.same_source_discard is False
        assert family.classify is False

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            family_config(PipelineConfig(), ng_factor=0.5)

    def test_config_for_levels(self):
        base = PipelineConfig(ng=3.0)
        assert config_for(GranularityLevel.PERSON, base) is base
        assert config_for(GranularityLevel.FAMILY, base).ng > base.ng


class TestFamilyGoldStandard:
    def test_superset_of_person_gold(self, small_corpus):
        dataset, persons = small_corpus
        person_gold = GoldStandard.from_dataset(dataset)
        family_gold = family_gold_standard(dataset, persons)
        assert person_gold.matches <= family_gold.matches

    def test_siblings_linked(self, small_corpus):
        dataset, persons = small_corpus
        by_family = {}
        for person in persons:
            by_family.setdefault(person.family_id, []).append(person)
        multi = next(
            members for members in by_family.values() if len(members) >= 2
        )
        family_gold = family_gold_standard(dataset, persons)
        records_a = [r.book_id for r in dataset if r.person_id == multi[0].person_id]
        records_b = [r.book_id for r in dataset if r.person_id == multi[1].person_id]
        pair = (min(records_a[0], records_b[0]), max(records_a[0], records_b[0]))
        assert family_gold.is_match(pair)


class TestFamilyResolution:
    def test_family_recall_of_family_pairs_beats_person_config(
        self, small_corpus
    ):
        """The Capelluto effect: loosened settings keep sibling pairs."""
        dataset, persons = small_corpus
        family_gold = family_gold_standard(dataset, persons)
        base = PipelineConfig(ng=2.0, same_source_discard=True)
        person_result = UncertainERPipeline(base).run(dataset)
        family_result = UncertainERPipeline(family_config(base)).run(dataset)
        person_recall = family_gold.evaluate(person_result.pairs).recall
        family_recall = family_gold.evaluate(family_result.pairs).recall
        assert family_recall >= person_recall
