"""Worker-side tracing and parallel-overhead attribution (PR 7).

Pins the three promises of the cross-process tracing layer
(docs/OBSERVABILITY.md):

* **Schema fidelity** — :class:`WorkerTracer` buffers events through
  the same ``Span`` machinery as the parent tracer, so worker events
  carry the exact parent-side schema, and ``run_traced_chunk`` ships a
  picklable ``(result bytes, trace export)`` pair.
* **Merge determinism** — worker buffers fold into the parent trace
  keyed by chunk index, so a shuffled arrival order produces the same
  merged sequence under :func:`strip_volatile` (timestamps and worker
  pids are the *only* schedule-dependent content).
* **Attribution without distortion** — a traced dispatch records a
  ``parallel_profile`` block whose buckets account for >= 90% of the
  dispatch wall, while ranked output stays byte-identical to the
  untraced run at every worker count (the acceptance criterion).
"""

from __future__ import annotations

import os
import pickle
import random

import pytest

from repro.core import PipelineConfig, UncertainERPipeline
from repro.datagen import build_corpus
from repro.obs import (
    InMemorySink,
    RunReport,
    Tracer,
    WorkerTracer,
    merge_worker_events,
    strip_volatile,
)
from repro.obs.clock import ManualClock
from repro.obs.worker import (
    WORKER_CHUNK_SPAN,
    WORKER_COMPUTE_SPAN,
    WORKER_DESERIALIZE_SPAN,
    WORKER_SERIALIZE_SPAN,
    ChunkProfile,
    DispatchProfile,
    ParallelProfile,
)
from repro.parallel import MultiprocessExecutor, make_executor, run_traced_chunk
from repro.resilience import WorkerCrashPlan

WORKER_COUNTS = (1, 2, 4)


def _square_chunk(chunk):
    """Module-level (picklable) work function for traced dispatches."""
    return [value * value for value in chunk]


def _ranked_csv(dataset, executor, tmp_path, tag, tracer=None):
    pipeline = UncertainERPipeline(
        PipelineConfig(max_minsup=4, ng=3.0, expert_weighting=True),
        tracer=tracer,
        executor=executor,
    )
    out = tmp_path / f"{tag}.csv"
    pipeline.run(dataset).to_csv(out)
    return out.read_bytes()


@pytest.fixture(scope="module")
def small_corpus():
    dataset, _persons = build_corpus(
        n_persons=50, communities=("italy",), seed=29, name="trace-corpus"
    )
    return dataset


@pytest.fixture(scope="module")
def traced_run(small_corpus):
    """One traced 2-worker pipeline run shared by the profile tests."""
    tracer = Tracer()
    executor = MultiprocessExecutor(2)
    pipeline = UncertainERPipeline(
        PipelineConfig(max_minsup=4, ng=3.0, expert_weighting=True),
        tracer=tracer,
        executor=executor,
    )
    resolution = pipeline.run(small_corpus)
    return tracer, executor, resolution


# -- WorkerTracer -------------------------------------------------------------


class TestWorkerTracer:
    def test_spans_buffer_with_parent_schema(self):
        tracer = WorkerTracer(clock=ManualClock(tick=1.0))
        with tracer.span("outer", chunk=3):
            with tracer.span("inner"):
                pass
        kinds = [e["event"] for e in tracer.events]
        assert kinds == ["span_start", "span_start", "span_end", "span_end"]
        start = tracer.events[0]
        assert start["name"] == "outer"
        assert start["path"] == "outer"
        assert start["depth"] == 1
        assert start["attrs"] == {"chunk": 3}
        inner_end = tracer.events[2]
        assert inner_end["path"] == "outer/inner"
        assert inner_end["depth"] == 2
        assert inner_end["duration"] == pytest.approx(1.0)
        # No trace_start: a worker buffer is a trace *fragment*.
        assert all(e["event"] != "trace_start" for e in tracer.events)

    def test_events_are_sequence_numbered(self):
        tracer = WorkerTracer(clock=ManualClock())
        with tracer.span("a"):
            tracer.count("things", 2)
        tracer.gauge("size", 4.0)
        assert [e["seq"] for e in tracer.events] == [0, 1, 2, 3]

    def test_counters_and_gauges_carry_current_path(self):
        tracer = WorkerTracer(clock=ManualClock())
        with tracer.span("work"):
            tracer.count("pairs", 5)
        tracer.gauge("level", 1.0)
        assert tracer.events[1] == {
            "event": "counter", "name": "pairs", "path": "work",
            "value": 5, "seq": 1,
        }
        assert tracer.events[3]["path"] == ""

    def test_span_seconds_sums_closed_spans_by_name(self):
        tracer = WorkerTracer(clock=ManualClock(tick=1.0))
        with tracer.span("phase"):
            pass
        with tracer.span("phase"):
            pass
        with tracer.span("other"):
            pass
        assert tracer.span_seconds("phase") == pytest.approx(2.0)
        assert tracer.span_seconds("missing") == 0.0

    def test_stack_unwinds_on_error_with_error_attr(self):
        tracer = WorkerTracer(clock=ManualClock(tick=1.0))
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer._stack == []
        end = tracer.events[-1]
        assert end["event"] == "span_end"
        assert end["attrs"]["error"] == "RuntimeError"

    def test_export_schema(self):
        tracer = WorkerTracer(clock=ManualClock(tick=1.0))
        with tracer.span(WORKER_CHUNK_SPAN, chunk=7):
            with tracer.span(WORKER_DESERIALIZE_SPAN):
                pass
            with tracer.span(WORKER_COMPUTE_SPAN):
                pass
            with tracer.span(WORKER_SERIALIZE_SPAN):
                pass
        export = tracer.export(7, result_bytes=42)
        assert export["chunk"] == 7
        assert export["result_bytes"] == 42
        assert export["tracemalloc_peak_bytes"] is None
        assert isinstance(export["pid"], int)
        assert export["deserialize_seconds"] == pytest.approx(1.0)
        assert export["compute_seconds"] == pytest.approx(1.0)
        assert export["serialize_seconds"] == pytest.approx(1.0)
        # The chunk span wraps all three children (7 ticks on this clock).
        assert export["worker_seconds"] == pytest.approx(7.0)
        assert export["events"] == tracer.events
        # The export must survive the process boundary.
        assert pickle.loads(pickle.dumps(export)) == export


# -- run_traced_chunk ---------------------------------------------------------


class TestRunTracedChunk:
    def test_round_trip_result_and_trace(self):
        blob = pickle.dumps([1, 2, 3], protocol=pickle.HIGHEST_PROTOCOL)
        result_blob, trace = run_traced_chunk((_square_chunk, 4, blob, False))
        assert pickle.loads(result_blob) == [1, 4, 9]
        assert trace["chunk"] == 4
        assert trace["result_bytes"] == len(result_blob)
        assert trace["tracemalloc_peak_bytes"] is None
        names = [e["name"] for e in trace["events"] if e["event"] == "span_end"]
        assert names == [
            WORKER_DESERIALIZE_SPAN,
            WORKER_COMPUTE_SPAN,
            WORKER_SERIALIZE_SPAN,
            WORKER_CHUNK_SPAN,
        ]

    def test_profile_memory_records_tracemalloc_peak(self):
        blob = pickle.dumps(list(range(100)), protocol=pickle.HIGHEST_PROTOCOL)
        _result, trace = run_traced_chunk((_square_chunk, 0, blob, True))
        assert trace["tracemalloc_peak_bytes"] is not None
        assert trace["tracemalloc_peak_bytes"] > 0

    def test_work_function_exception_propagates(self):
        def boom(_chunk):
            raise ValueError("bad payload")

        blob = pickle.dumps([1], protocol=pickle.HIGHEST_PROTOCOL)
        # In-process call: the closure needn't be picklable here.
        with pytest.raises(ValueError):
            run_traced_chunk((boom, 0, blob, False))


# -- merge determinism --------------------------------------------------------


def _fragment(chunk, pid):
    """A synthetic worker export: one chunk span plus a counter."""
    tracer = WorkerTracer(clock=ManualClock(start=float(pid), tick=0.5))
    with tracer.span(WORKER_CHUNK_SPAN, chunk=chunk):
        with tracer.span(WORKER_COMPUTE_SPAN):
            tracer.count("worker.items", chunk + 1)
    export = tracer.export(chunk)
    export["pid"] = pid  # decouple from the test process pid
    return export


def _merged_events(traces):
    sink = InMemorySink()
    tracer = Tracer(clock=ManualClock(tick=1.0), sinks=[sink])
    with tracer.span("parallel.map"):
        merge_worker_events(tracer, traces)
    return [
        strip_volatile(event)
        for event in sink.events
        if event["event"] not in ("trace_start",)
    ]


class TestMergeDeterminism:
    def test_shuffled_arrival_orders_merge_identically(self):
        traces = [_fragment(chunk, pid=9000 + chunk) for chunk in range(6)]
        baseline = _merged_events(traces)
        for seed in (1, 7, 42):
            shuffled = list(traces)
            random.Random(seed).shuffle(shuffled)
            # Different pids too: the adversary controls the schedule.
            relabeled = [
                dict(trace, pid=5000 + seed * 10 + i)
                for i, trace in enumerate(shuffled)
            ]
            assert _merged_events(relabeled) == baseline

    def test_merged_events_nest_under_open_parent_span(self):
        sink = InMemorySink()
        tracer = Tracer(clock=ManualClock(tick=1.0), sinks=[sink])
        with tracer.span("dispatch"):
            merge_worker_events(tracer, [_fragment(0, pid=111)])
        merged = [
            e for e in sink.events
            if e.get("name") == WORKER_CHUNK_SPAN
        ]
        assert merged
        for event in merged:
            assert event["path"] == f"dispatch/{WORKER_CHUNK_SPAN}"
            assert event["depth"] == 2
            assert event["attrs"]["worker"] == 111
            assert event["attrs"]["chunk"] == 0

    def test_counter_events_gain_attrs_but_not_depth(self):
        sink = InMemorySink()
        tracer = Tracer(clock=ManualClock(), sinks=[sink])
        merge_worker_events(tracer, [_fragment(2, pid=7)])
        counters = [e for e in sink.events if e["event"] == "counter"]
        assert counters
        assert counters[0]["attrs"] == {"worker": 7, "chunk": 2}
        assert "depth" not in counters[0]

    def test_merged_counters_aggregate_in_parent(self):
        tracer = Tracer(clock=ManualClock())
        merge_worker_events(
            tracer, [_fragment(c, pid=100 + c) for c in range(3)]
        )
        # chunks 0..2 count chunk+1 items each => 1 + 2 + 3.
        assert tracer.aggregate.counters["worker.items"] == 6

    def test_disabled_tracer_is_a_noop(self):
        tracer = Tracer(enabled=False)
        merge_worker_events(tracer, [_fragment(0, pid=1)])
        assert tracer.aggregate is None


# -- traced dispatch: profile + parity ----------------------------------------


class TestTracedDispatch:
    def test_traced_map_matches_untraced_results(self):
        payloads = [list(range(i, i + 4)) for i in range(0, 16, 4)]
        untraced = MultiprocessExecutor(2).map_chunks(
            _square_chunk, payloads
        )
        traced_executor = MultiprocessExecutor(2)
        traced = traced_executor.map_chunks(
            _square_chunk, payloads, tracer=Tracer()
        )
        assert traced == untraced
        assert traced_executor.stats.worker_chunks == len(payloads)

    def test_dispatch_profile_buckets_and_chunks(self):
        executor = MultiprocessExecutor(2)
        payloads = [list(range(i, i + 4)) for i in range(0, 16, 4)]
        executor.map_chunks(_square_chunk, payloads, tracer=Tracer())
        assert len(executor.profile.dispatches) == 1
        dispatch = executor.profile.dispatches[0]
        assert len(dispatch.chunks) == len(payloads)
        assert dispatch.wall_seconds > 0
        assert dispatch.accounted_fraction() >= 0.9
        for profile in dispatch.chunks:
            assert profile.payload_bytes_in > 0
            assert profile.payload_bytes_out > 0
            assert profile.worker > 0
            assert profile.round_trip_seconds >= profile.queue_seconds
            assert not profile.inline
            assert not profile.retried

    def test_single_chunk_runs_inline_in_parent(self):
        executor = MultiprocessExecutor(2)
        results = executor.map_chunks(
            _square_chunk, [[1, 2, 3]], tracer=Tracer()
        )
        assert results == [[1, 4, 9]]
        [dispatch] = executor.profile.dispatches
        [profile] = dispatch.chunks
        assert profile.inline
        assert profile.worker == os.getpid()
        assert executor.stats.inline_chunks == 1

    def test_crash_retry_is_traced_and_flagged(self):
        payloads = [list(range(i, i + 3)) for i in range(0, 12, 3)]
        expected = [_square_chunk(p) for p in payloads]
        plan = WorkerCrashPlan(map_call=0, chunk=0)
        executor = MultiprocessExecutor(2, worker_fault=plan)
        tracer = Tracer()
        assert executor.map_chunks(
            _square_chunk, payloads, tracer=tracer
        ) == expected
        assert plan.fired
        assert executor.stats.worker_retries >= 1
        [dispatch] = executor.profile.dispatches
        retried = [c for c in dispatch.chunks if c.retried]
        assert retried
        # Retries run in-process, so they land on the parent's lane.
        assert all(c.worker == os.getpid() for c in retried)
        assert tracer.aggregate.counters["parallel.worker_retries"] >= 1

    def test_profile_memory_flows_to_gauge_and_block(self):
        executor = MultiprocessExecutor(2, profile_memory=True)
        tracer = Tracer()
        executor.map_chunks(
            _square_chunk,
            [list(range(50)), list(range(50, 100))],
            tracer=tracer,
        )
        assert tracer.aggregate.gauges["parallel.tracemalloc_peak_bytes"] > 0
        block = executor.profile_echo()
        assert block["profile_memory"] is True
        assert block["totals"]["tracemalloc_peak_bytes"] > 0

    def test_untraced_dispatch_records_no_profile(self):
        executor = MultiprocessExecutor(2)
        executor.map_chunks(_square_chunk, [[1, 2], [3, 4]])
        assert executor.profile.dispatches == []
        assert executor.profile_echo() == {}


class TestPipelineProfile:
    """The shared traced 2-worker run: block shape + report wiring."""

    def test_worker_spans_reach_report_stages(self, traced_run):
        _tracer, _executor, resolution = traced_run
        paths = [s.path for s in resolution.report.stages]
        assert any(path.endswith("worker.compute") for path in paths)
        compute = [
            s for s in resolution.report.stages
            if s.name == "worker.compute"
        ]
        assert sum(s.total_seconds for s in compute) > 0

    def test_profile_block_accounts_ninety_percent(self, traced_run):
        _tracer, executor, resolution = traced_run
        block = resolution.report.parallel_profile
        assert block["executor"] == "multiprocess"
        assert block["workers"] == 2
        totals = block["totals"]
        # The acceptance gate: overhead buckets must explain the wall.
        assert totals["accounted_fraction"] >= 0.9
        assert totals["wall_seconds"] > 0
        assert totals["compute_seconds"] > 0
        assert totals["pickle_seconds"] > 0
        assert totals["payload_bytes_in"] > 0
        assert totals["payload_bytes_out"] > 0
        assert totals["chunks"] == len(block["chunks"])
        assert totals["dispatches"] == len(block["dispatches"])
        assert block == executor.profile_echo()

    def test_lanes_group_chunks_by_pid(self, traced_run):
        _tracer, _executor, resolution = traced_run
        block = resolution.report.parallel_profile
        lanes = block["lanes"]
        assert lanes
        assert sum(lane["chunks"] for lane in lanes) == len(block["chunks"])
        pids = [lane["worker"] for lane in lanes]
        assert len(pids) == len(set(pids))
        for lane in lanes:
            assert lane["role"] in ("parent", "worker")

    def test_payload_counters_emitted(self, traced_run):
        tracer, _executor, _resolution = traced_run
        counters = tracer.aggregate.counters
        assert counters["parallel.payload_bytes_in"] > 0
        assert counters["parallel.payload_bytes_out"] > 0
        assert counters["parallel.chunks"] > 0

    def test_timeline_renders_nonzero_breakdown(self, traced_run):
        _tracer, _executor, resolution = traced_run
        timeline = resolution.report.format_timeline()
        assert "parallel timeline" in timeline
        assert "lane" in timeline and "pid" in timeline
        assert "overhead vs compute" in timeline
        assert "accounting:" in timeline
        assert "0.0000" not in timeline.split("dispatch wall")[1].split(
            "\n"
        )[0]  # the wall line itself is nonzero

    def test_format_table_mentions_profile(self, traced_run):
        _tracer, _executor, resolution = traced_run
        table = resolution.report.format_table()
        assert "parallel profile:" in table
        assert "repro profile --timeline" in table

    def test_block_round_trips_through_json(self, traced_run, tmp_path):
        _tracer, _executor, resolution = traced_run
        path = tmp_path / "traced.report.json"
        resolution.report.to_json(path)
        loaded = RunReport.from_json(path)
        assert loaded.parallel_profile == resolution.report.parallel_profile
        assert loaded.format_timeline() == resolution.report.format_timeline()


class TestTracedParity:
    """Acceptance: instrumentation must not change ranked output."""

    def test_traced_output_byte_identical_per_worker_count(
        self, small_corpus, tmp_path
    ):
        untraced_serial = _ranked_csv(
            small_corpus, make_executor(1), tmp_path, "plain-w1"
        )
        for workers in WORKER_COUNTS:
            traced = _ranked_csv(
                small_corpus,
                make_executor(workers),
                tmp_path,
                f"traced-w{workers}",
                tracer=Tracer(),
            )
            assert traced == untraced_serial, (
                f"traced --workers {workers} diverged from untraced serial"
            )


# -- profile dataclasses ------------------------------------------------------


class TestProfileAccounting:
    def test_chunk_pickle_seconds_sums_both_sides(self):
        chunk = ChunkProfile(
            chunk=0, worker=1,
            serialize_seconds=0.1, deserialize_seconds=0.2,
            result_serialize_seconds=0.3, result_deserialize_seconds=0.4,
        )
        assert chunk.pickle_seconds() == pytest.approx(1.0)

    def test_dispatch_accounted_fraction(self):
        dispatch = DispatchProfile(
            label="parallel.map", map_call=0, wall_seconds=2.0,
            serialize_seconds=0.5, submit_seconds=0.3, collect_seconds=0.9,
            teardown_seconds=0.1, deserialize_seconds=0.1,
            merge_seconds=0.05,
        )
        assert dispatch.accounted_seconds() == pytest.approx(1.95)
        assert dispatch.accounted_fraction() == pytest.approx(0.975)

    def test_zero_wall_counts_as_fully_accounted(self):
        dispatch = DispatchProfile(label="x", map_call=0, wall_seconds=0.0)
        assert dispatch.accounted_fraction() == 1.0

    def test_empty_profile_block_is_empty(self):
        profile = ParallelProfile()
        assert profile.to_block(
            executor="multiprocess", workers=4, parent_pid=1,
            profile_memory=False,
        ) == {}

    def test_block_orders_chunks_and_lanes_deterministically(self):
        profile = ParallelProfile()
        dispatch = DispatchProfile(label="m", map_call=0, wall_seconds=1.0)
        # Chunks appended out of order: the block must sort by index.
        dispatch.chunks = [
            ChunkProfile(chunk=2, worker=30, compute_seconds=0.3),
            ChunkProfile(chunk=0, worker=10, compute_seconds=0.1),
            ChunkProfile(chunk=1, worker=10, compute_seconds=0.2),
        ]
        profile.add(dispatch)
        block = profile.to_block(
            executor="multiprocess", workers=2, parent_pid=99,
            profile_memory=False,
        )
        assert [row["chunk"] for row in block["chunks"]] == [0, 1, 2]
        assert [lane["worker"] for lane in block["lanes"]] == [10, 30]
        assert block["lanes"][0]["chunks"] == 2
        assert block["totals"]["compute_seconds"] == pytest.approx(0.6)
