"""Tests for the RL200-series parallel-safety pass.

Positive fixtures (must flag) and negative fixtures (must stay quiet)
per rule, the committed violation fixtures under
``tests/fixtures/parallel_safety/``, the repo-wide clean sweep that is
the acceptance gate, and the call-graph edge cases the pass leans on
(lambdas, ``functools.partial``, decorated nested functions, re-exports
through ``repro.parallel``).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from tools.reprolint.callgraph import build_call_graph
from tools.reprolint.config import load_config
from tools.reprolint.engine import (
    analyze_parallel_paths,
    analyze_parallel_sources,
)
from tools.reprolint.parallel_safety import PARALLEL_RULES

FIXTURES = Path(__file__).parent / "fixtures" / "parallel_safety"


def parallel_findings(source, rule=None, path="src/module.py", config=None):
    """Run the RL200-RL205 pass over one fixture module."""
    found = analyze_parallel_sources(
        [(path, textwrap.dedent(source))], config=config
    )
    if rule is not None:
        found = [finding for finding in found if finding.rule == rule]
    return found


class TestRL200WorkCapturesState:
    def test_nonpicklable_global_capture_flagged(self):
        source = """
            import threading

            LOCK = threading.Lock()

            def work(payload):
                with LOCK:
                    return payload

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """
        found = parallel_findings(source, "RL200")
        assert len(found) == 1
        assert "LOCK" in found[0].message

    def test_mutable_global_read_flagged(self):
        source = """
            CACHE = {}

            def work(payload):
                return CACHE.get(payload, payload)

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """
        found = parallel_findings(source, "RL200")
        assert len(found) == 1
        assert "CACHE" in found[0].message

    def test_immutable_global_ok(self):
        source = """
            SCALE = 2.5
            LABEL = "score"

            def work(payload):
                return [(LABEL, x * SCALE) for x in payload]

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """
        assert parallel_findings(source, "RL200") == []

    def test_payload_determined_work_ok(self):
        source = """
            def work(payload):
                scorer, pairs = payload
                return [(p, scorer.score(p)) for p in pairs]

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """
        assert parallel_findings(source, "RL200") == []

    def test_lambda_submission_flagged(self):
        source = """
            def driver(executor, items):
                return sorted(executor.map_chunks(lambda x: x + 1, items))
        """
        found = parallel_findings(source, "RL200")
        assert len(found) == 1
        assert "lambda" in found[0].message

    def test_nested_function_submission_flagged(self):
        source = """
            def driver(executor, items):
                def work(x):
                    return x + 1
                return sorted(executor.map_chunks(work, items))
        """
        assert len(parallel_findings(source, "RL200")) == 1

    def test_bound_method_submission_flagged(self):
        source = """
            class Scorer:
                def work(self, payload):
                    return payload

            def driver(executor, items):
                scorer = Scorer()
                return sorted(executor.map_chunks(scorer.work, items))
        """
        assert len(parallel_findings(source, "RL200")) == 1

    def test_decorator_marks_work_root_without_submission_site(self):
        source = """
            from contracts import picklable_work

            STATE = {}

            @picklable_work
            def work(payload):
                return STATE.get(payload)
        """
        assert len(parallel_findings(source, "RL200")) == 1

    def test_shared_readonly_exempts_mutable_read(self):
        source = """
            from contracts import shared_readonly

            TABLE = {"a": 1}

            @shared_readonly
            def work(payload):
                return TABLE.get(payload, 0)

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """
        assert parallel_findings(source, "RL200") == []


class TestRL201WorkerGlobalMutation:
    def test_mutator_method_on_global_flagged(self):
        source = """
            SEEN = []

            def work(payload):
                SEEN.append(payload)
                return payload

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """
        found = parallel_findings(source, "RL201")
        assert len(found) == 1
        assert "SEEN" in found[0].message

    def test_global_rebind_flagged(self):
        source = """
            TOTAL = 0

            def work(payload):
                global TOTAL
                TOTAL = TOTAL + len(payload)
                return payload

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """
        assert len(parallel_findings(source, "RL201")) == 1

    def test_transitive_mutation_through_helper_flagged(self):
        source = """
            SEEN = []

            def work(payload):
                return tally(payload)

            def tally(payload):
                SEEN.append(payload)
                return len(payload)

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """
        found = parallel_findings(source, "RL201")
        assert len(found) == 1
        assert "tally" in found[0].message

    def test_shared_readonly_does_not_license_mutation(self):
        source = """
            from contracts import shared_readonly

            TABLE = {}

            @shared_readonly
            def work(payload):
                TABLE[payload] = True
                return payload
        """
        assert len(parallel_findings(source, "RL201")) == 1

    def test_local_mutation_ok(self):
        source = """
            def work(payload):
                seen = []
                seen.append(payload)
                return seen

            def driver(executor, items):
                return sorted(executor.map_chunks(work, items))
        """
        assert parallel_findings(source, "RL201") == []


class TestRL202MergeNotOrderIndependent:
    def test_unsanctioned_reduction_flagged(self):
        source = """
            def work(payload):
                return payload

            def driver(executor, chunks):
                results = executor.map_chunks(work, chunks)
                merged = []
                for result in results:
                    merged.extend(result)
                return merged
        """
        found = parallel_findings(source, "RL202")
        assert len(found) == 1
        assert "results" in found[0].message

    def test_commutative_merge_consumer_ok(self):
        source = """
            from contracts import commutative_merge

            @commutative_merge
            def fold(chunks):
                merged = {}
                for chunk in chunks:
                    for key, score in chunk:
                        current = merged.get(key)
                        if current is None or score > current:
                            merged[key] = score
                return merged

            def work(payload):
                return payload

            def driver(executor, chunks):
                results = executor.map_chunks(work, chunks)
                return fold(results)
        """
        assert parallel_findings(source, "RL202") == []

    def test_per_chunk_commutative_merge_loop_ok(self):
        source = """
            from contracts import commutative_merge

            @commutative_merge
            def fold_into(target, chunk):
                for key, score in chunk:
                    current = target.get(key)
                    if current is None or score > current:
                        target[key] = score
                return target

            def work(payload):
                return payload

            def driver(executor, chunks):
                results = executor.map_chunks(work, chunks)
                merged = {}
                for result in results:
                    fold_into(merged, result)
                return merged
        """
        assert parallel_findings(source, "RL202") == []

    def test_order_insensitive_builtin_ok(self):
        source = """
            def work(payload):
                return payload

            def driver(executor, chunks):
                return sorted(executor.map_chunks(work, chunks))
        """
        assert parallel_findings(source, "RL202") == []


class TestRL203ForkUnsafeResource:
    def test_fork_safe_with_resource_global_flagged(self):
        source = """
            import sqlite3

            from contracts import fork_safe

            DB = sqlite3.connect(":memory:")

            @fork_safe
            def work(payload):
                return DB.execute(payload).fetchall()
        """
        found = parallel_findings(source, "RL203")
        assert len(found) == 1
        assert "DB" in found[0].message

    def test_transitive_resource_flagged(self):
        source = """
            from contracts import fork_safe

            HANDLE = open("data.csv")

            @fork_safe
            def work(payload):
                return helper(payload)

            def helper(payload):
                return HANDLE.readline()
        """
        found = parallel_findings(source, "RL203")
        assert len(found) == 1
        assert "helper" in found[0].message

    def test_resource_outside_worker_code_ok(self):
        source = """
            import sqlite3

            DB = sqlite3.connect(":memory:")

            def query(payload):
                return DB.execute(payload).fetchall()
        """
        assert parallel_findings(source, "RL203") == []

    def test_clean_fork_safe_ok(self):
        source = """
            from contracts import fork_safe

            @fork_safe
            def work(payload):
                return [x * 2 for x in payload]
        """
        assert parallel_findings(source, "RL203") == []


class TestRL204SharedMemoryOwnership:
    def test_missing_both_teardowns_flagged(self):
        source = """
            from multiprocessing import shared_memory

            def leak(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                return shm.name
        """
        found = parallel_findings(source, "RL204")
        assert len(found) == 1
        assert ".close()" in found[0].message
        assert ".unlink()" in found[0].message

    def test_missing_unlink_only_flagged(self):
        source = """
            from multiprocessing import shared_memory

            def half(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                shm.close()
                return size
        """
        found = parallel_findings(source, "RL204")
        assert len(found) == 1
        assert ".unlink()" in found[0].message
        assert ".close()" not in found[0].message

    def test_paired_teardown_ok(self):
        source = """
            from multiprocessing import shared_memory

            def roundtrip(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                try:
                    return bytes(shm.buf[:4])
                finally:
                    shm.close()
                    shm.unlink()
        """
        assert parallel_findings(source, "RL204") == []

    def test_self_attribute_with_teardown_elsewhere_in_class_ok(self):
        source = """
            from multiprocessing import shared_memory

            class Arena:
                def open(self, size):
                    self.shm = shared_memory.SharedMemory(
                        create=True, size=size
                    )

                def close(self):
                    self.shm.close()
                    self.shm.unlink()
        """
        assert parallel_findings(source, "RL204") == []


class TestRL205ScheduleInFingerprint:
    def test_worker_keyword_into_pipeline_config_flagged(self):
        source = """
            def build(ng, workers):
                return PipelineConfig(ng=ng, workers=workers)
        """
        assert len(parallel_findings(source, "RL205")) == 1

    def test_executor_workers_into_fingerprint_flagged(self):
        source = """
            def fingerprint_inputs(ng, workers):
                return (ng, workers)

            def stage_key(config, executor):
                return fingerprint_inputs(config.ng, executor.workers)
        """
        found = parallel_findings(source, "RL205")
        assert len(found) == 1
        assert ".workers" in found[0].message

    def test_workers_in_config_echo_flagged(self):
        source = """
            class PipelineEchoConfig:
                def to_echo(self):
                    return {"ng": self.ng, "workers": self.workers}
        """
        assert len(parallel_findings(source, "RL205")) == 1

    def test_schedule_free_fingerprint_ok(self):
        source = """
            def fingerprint_inputs(ng, minsup):
                return (ng, minsup)

            def stage_key(config):
                return fingerprint_inputs(config.ng, config.max_minsup)
        """
        assert parallel_findings(source, "RL205") == []

    def test_workers_outside_sinks_ok(self):
        source = """
            def plan(executor, n_items):
                return min(executor.workers, n_items)
        """
        assert parallel_findings(source, "RL205") == []


class TestViolationFixtures:
    @pytest.mark.parametrize(
        "fixture", sorted(FIXTURES.glob("rl2*.py")), ids=lambda p: p.stem
    )
    def test_every_rule_fires_on_its_fixture(self, fixture):
        expected = fixture.stem.split("_")[0].upper()
        findings = analyze_parallel_sources(
            [(f"src/{fixture.name}", fixture.read_text(encoding="utf-8"))]
        )
        fired = {finding.rule for finding in findings}
        assert expected in fired
        # Fixtures are rule-isolated: nothing else may fire, so a
        # regression in one rule cannot hide behind another.
        assert fired == {expected}

    def test_fixture_set_covers_every_rule(self):
        prefixes = {
            path.stem.split("_")[0].upper()
            for path in FIXTURES.glob("rl2*.py")
        }
        assert prefixes == set(PARALLEL_RULES)


class TestRepoSweep:
    def test_parallel_pass_clean_on_repo(self):
        # The acceptance gate: zero RL20x over the configured contract
        # packages; every exemption is an explicit contract decorator.
        root = Path(__file__).resolve().parents[1]
        config = load_config()
        roots = [
            root / prefix
            for prefix in config.contract_packages
            if (root / prefix).is_dir()
        ]
        if not roots:
            pytest.skip("repository checkout required")
        assert analyze_parallel_paths(roots, config=config, root=root) == []

    def test_repo_work_functions_carry_parallel_contracts(self):
        from repro.contracts import contracts_of
        from repro.parallel.merge import max_merge_into, merge_scored_chunks
        from repro.parallel.work import classify_pair_chunk, score_pair_chunk

        for work in (score_pair_chunk, classify_pair_chunk):
            kinds = set(contracts_of(work))
            assert {"picklable_work", "fork_safe"} <= kinds
        for merge in (max_merge_into, merge_scored_chunks):
            assert "commutative_merge" in contracts_of(merge)


class TestCallGraphEdges:
    def test_lambda_body_calls_attributed_to_enclosing_function(self):
        source = textwrap.dedent(
            """
            def helper(x):
                return x + 1

            def outer(items):
                fn = lambda x: helper(x)
                return [fn(i) for i in items]
            """
        )
        graph = build_call_graph([("src/mod.py", source)])
        callees = {callee for callee, _ in graph.callees("mod:outer")}
        assert "mod:helper" in callees

    def test_partial_wrapped_work_function_resolved(self):
        source = """
            import functools

            SEEN = []

            def work(config, payload):
                SEEN.append(payload)
                return payload

            def driver(executor, config, items):
                bound = functools.partial(work, config)
                return sorted(executor.map_chunks(bound, items))
        """
        # The partial unwraps to `work`, which is then analyzed as a
        # work root — proven by RL201 firing on its global mutation.
        assert len(parallel_findings(source, "RL201")) == 1

    def test_decorated_nested_function_registered_with_parent_edge(self):
        source = textwrap.dedent(
            """
            def decorate(fn):
                return fn

            def outer(items):
                @decorate
                def inner(x):
                    return x + 1
                return [inner(i) for i in items]
            """
        )
        graph = build_call_graph([("src/mod.py", source)])
        assert "mod:outer.inner" in graph.functions
        callees = {callee for callee, _ in graph.callees("mod:outer")}
        assert "mod:outer.inner" in callees

    def test_reexport_through_parallel_init_resolves_to_definition(self):
        root = Path(__file__).resolve().parents[1]
        package = root / "src" / "repro" / "parallel"
        if not package.is_dir():
            pytest.skip("repository checkout required")
        sources = [
            (
                f"src/repro/parallel/{name}",
                (package / name).read_text(encoding="utf-8"),
            )
            for name in ("__init__.py", "merge.py")
        ]
        caller = textwrap.dedent(
            """
            from repro.parallel import merge_scored_chunks

            def combine(chunks):
                return merge_scored_chunks(chunks)
            """
        )
        graph = build_call_graph(sources + [("src/repro/uses.py", caller)])
        callees = {callee for callee, _ in graph.callees("repro.uses:combine")}
        assert "repro.parallel.merge:merge_scored_chunks" in callees
