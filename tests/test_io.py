"""Tests for the CSV ingestion/export layer."""

from __future__ import annotations

import csv

import pytest

from repro.records.io import CSV_COLUMNS, read_csv, write_csv


class TestRoundtrip:
    def test_full_corpus_roundtrip(self, small_corpus, tmp_path):
        dataset, _persons = small_corpus
        path = tmp_path / "corpus.csv"
        write_csv(dataset, path)
        loaded = read_csv(path)
        assert len(loaded) == len(dataset)
        for record in dataset:
            assert loaded[record.book_id] == record

    def test_gold_standard_survives(self, small_corpus, tmp_path):
        dataset, _persons = small_corpus
        path = tmp_path / "gold.csv"
        write_csv(dataset, path)
        assert read_csv(path).true_pairs() == dataset.true_pairs()

    def test_guido_records_roundtrip(self, guido_records, tmp_path):
        from repro.records.dataset import Dataset

        dataset = Dataset(guido_records)
        path = tmp_path / "foa.csv"
        write_csv(dataset, path)
        loaded = read_csv(path)
        for record in guido_records:
            assert loaded[record.book_id] == record

    def test_dataset_name_from_filename(self, small_corpus, tmp_path):
        dataset, _persons = small_corpus
        path = tmp_path / "my-extract.csv"
        write_csv(dataset, path)
        assert read_csv(path).name == "my-extract"


class TestLayout:
    def test_header_is_canonical(self, small_corpus, tmp_path):
        dataset, _persons = small_corpus
        path = tmp_path / "c.csv"
        write_csv(dataset, path)
        with open(path) as handle:
            header = next(csv.reader(handle))
        assert tuple(header) == CSV_COLUMNS

    def test_multivalued_names_joined(self, tmp_path):
        from repro.records.dataset import Dataset
        from tests.conftest import make_record

        dataset = Dataset([make_record(book_id=1, first=("John", "Harris"))])
        path = tmp_path / "m.csv"
        write_csv(dataset, path)
        with open(path) as handle:
            row = list(csv.DictReader(handle))[0]
        assert row["first"] == "John|Harris"
        loaded = read_csv(path)
        assert loaded[1].first == ("John", "Harris")


class TestErrors:
    def test_missing_required_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError, match="missing required"):
            read_csv(path)

    def test_bad_row_reports_line(self, tmp_path):
        path = tmp_path / "bad_row.csv"
        path.write_text(
            "book_id,source_kind,source_id\n"
            "1,list,L1\n"
            "not-an-int,list,L2\n"
        )
        with pytest.raises(ValueError, match=":3"):
            read_csv(path)

    def test_bad_gender_rejected(self, tmp_path):
        path = tmp_path / "bad_gender.csv"
        path.write_text(
            "book_id,source_kind,source_id,gender\n"
            "1,list,L1,X\n"
        )
        with pytest.raises(ValueError):
            read_csv(path)
