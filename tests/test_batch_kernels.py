"""Property tests: batch kernels are bit-identical to their scalar twins.

The vectorized kernels (``repro.similarity.batch``, the batch feature
extractor in ``repro.similarity.features``, and the ``BlockScorer``
batch methods) each promise byte-for-byte the floats of the scalar
reference they replace. Hypothesis hunts for the counterexample on:

* random corpora over every item type, with unicode/transliteration
  noise in the values (mixed scripts, diacritics, apostrophes);
* random weight tables including negative, huge, subnormal, inf and
  NaN weights (the exact-arithmetic fast path must *decline* those and
  delegate, not drift);
* empty and degenerate sets, self-pairs, duplicated pairs;
* arbitrary chunkings — splitting the pair list anywhere and
  concatenating the per-chunk results must reproduce the whole-batch
  output exactly, which is what makes executor chunk planning invisible
  in the ranked output.

Comparisons go through ``repr`` so ``-0.0`` vs ``0.0`` and NaN count
as drift/equality correctly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import GeoPoint
from repro.records.itembag import Item, ItemType
from repro.similarity.batch import (
    jaccard_items_batch,
    soft_jaccard_items_batch,
    weighted_jaccard_items_batch,
)
from repro.similarity.features import (
    FEATURE_NAMES,
    extract_features,
    extract_features_batch,
)
from repro.similarity.interning import InternedCorpus
from repro.similarity.items import (
    jaccard_items,
    soft_jaccard_items,
    weighted_jaccard_items,
)
from tools.golden_kernels import golden_dataset

#: Unicode noise: latin + diacritics + Hebrew + Cyrillic + digits and
#: the punctuation that survives transliteration.
VALUE_ALPHABET = (
    "abcdefgh 0123456789"
    "ÀàäöüßŁłčćżŹźșţ"
    "אבגדה"
    "абвгд"
    "-'’."
)

GAZETTEER = {
    "Torino": GeoPoint(45.0703, 7.6869),
    "Moncalieri": GeoPoint(44.9997, 7.6822),
    "Auschwitz": GeoPoint(50.0343, 19.2098),
}


def lookup(name):
    return GAZETTEER.get(name)


def reprs(values):
    return [repr(value) for value in values]


values = st.text(alphabet=VALUE_ALPHABET, max_size=8)
geo_values = st.one_of(values, st.sampled_from(sorted(GAZETTEER)))
item_types = st.sampled_from(list(ItemType))
items = st.builds(
    Item,
    item_types,
    values,
)
bags = st.frozensets(items, max_size=12)

weight_values = st.one_of(
    st.floats(
        min_value=0.0,
        max_value=16.0,
        allow_nan=False,
        allow_infinity=False,
    ),
    st.sampled_from(
        [
            -1.0,
            0.0,
            0.5,
            1.0,
            2.5,
            1e300,
            5e-324,
            float("inf"),
            float("nan"),
        ]
    ),
)
weight_tables = st.dictionaries(item_types, weight_values, max_size=8)


@st.composite
def corpora_with_pairs(draw, bag_strategy=bags, max_records=8, max_pairs=12):
    """(item_bags, pairs) with self-pairs and duplicates allowed."""
    n = draw(st.integers(min_value=1, max_value=max_records))
    item_bags = {rid: draw(bag_strategy) for rid in range(n)}
    rid = st.integers(min_value=0, max_value=n - 1)
    pairs = draw(st.lists(st.tuples(rid, rid), max_size=max_pairs))
    return item_bags, pairs


class TestItemKernelsMatchScalar:
    @settings(max_examples=80, deadline=None)
    @given(corpora_with_pairs())
    def test_jaccard(self, case):
        item_bags, pairs = case
        corpus = InternedCorpus(item_bags)
        batch = jaccard_items_batch(corpus, pairs)
        scalar = [
            jaccard_items(item_bags[a], item_bags[b]) for a, b in pairs
        ]
        assert reprs(batch) == reprs(scalar)

    @settings(max_examples=80, deadline=None)
    @given(corpora_with_pairs(), weight_tables)
    def test_weighted_jaccard(self, case, weights):
        item_bags, pairs = case
        corpus = InternedCorpus(item_bags)
        batch = weighted_jaccard_items_batch(corpus, pairs, weights)
        scalar = [
            weighted_jaccard_items(item_bags[a], item_bags[b], weights)
            for a, b in pairs
        ]
        assert reprs(batch) == reprs(scalar)

    @settings(max_examples=60, deadline=None)
    @given(
        corpora_with_pairs(
            bag_strategy=st.frozensets(
                st.builds(Item, item_types, geo_values), max_size=10
            )
        ),
        st.one_of(st.none(), weight_tables),
        st.booleans(),
    )
    def test_soft_jaccard(self, case, weights, with_geo):
        item_bags, pairs = case
        geo = lookup if with_geo else None
        corpus = InternedCorpus(item_bags)
        batch = soft_jaccard_items_batch(corpus, pairs, geo, weights)
        scalar = [
            soft_jaccard_items(item_bags[a], item_bags[b], geo, weights)
            for a, b in pairs
        ]
        assert reprs(batch) == reprs(scalar)

    def test_empty_corpus_and_empty_pairs(self):
        corpus = InternedCorpus({})
        assert jaccard_items_batch(corpus, []) == []
        assert weighted_jaccard_items_batch(corpus, [], {}) == []
        assert soft_jaccard_items_batch(corpus, [], None, None) == []

    def test_empty_and_identical_bags(self):
        bag = frozenset({Item(ItemType.FIRST_NAME, "Guido")})
        item_bags = {0: frozenset(), 1: bag, 2: bag}
        corpus = InternedCorpus(item_bags)
        pairs = [(0, 0), (0, 1), (1, 2), (2, 2)]
        for kernel, scalar in (
            (
                lambda c, p: jaccard_items_batch(c, p),
                lambda a, b: jaccard_items(a, b),
            ),
            (
                lambda c, p: weighted_jaccard_items_batch(
                    c, p, {ItemType.FIRST_NAME: 2.0}
                ),
                lambda a, b: weighted_jaccard_items(
                    a, b, {ItemType.FIRST_NAME: 2.0}
                ),
            ),
        ):
            assert reprs(kernel(corpus, pairs)) == reprs(
                [scalar(item_bags[a], item_bags[b]) for a, b in pairs]
            )


class TestChunkingInvariance:
    """Any partition of the pair list reproduces the whole batch."""

    @settings(max_examples=60, deadline=None)
    @given(corpora_with_pairs(max_pairs=16), weight_tables, st.data())
    def test_item_kernels(self, case, weights, data):
        item_bags, pairs = case
        corpus = InternedCorpus(item_bags)
        cuts = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(pairs)),
                max_size=4,
            )
        )
        bounds = sorted({0, *cuts, len(pairs)})
        chunks = [
            pairs[start:end] for start, end in zip(bounds, bounds[1:])
        ] or [[]]
        for kernel in (
            lambda c, p: jaccard_items_batch(c, p),
            lambda c, p: weighted_jaccard_items_batch(c, p, weights),
            lambda c, p: soft_jaccard_items_batch(c, p, lookup, weights),
        ):
            whole = kernel(corpus, pairs)
            pieces = [
                value for chunk in chunks for value in kernel(corpus, chunk)
            ]
            assert reprs(pieces) == reprs(whole)


class TestBatchFeatureExtractor:
    """extract_features_batch == extract_features, pair by pair."""

    @classmethod
    def setup_class(cls):
        cls.dataset = golden_dataset()
        cls.rids = sorted(cls.dataset.record_ids)[:60]

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_matches_scalar_on_real_records(self, data):
        rid = st.sampled_from(self.rids)
        pairs = data.draw(st.lists(st.tuples(rid, rid), max_size=8))
        batch = extract_features_batch(self.dataset, pairs)
        for pair, vector in zip(pairs, batch):
            a, b = pair
            scalar = extract_features(self.dataset[a], self.dataset[b])
            assert list(vector) == list(scalar)
            for name in scalar:
                left, right = vector[name], scalar[name]
                if isinstance(left, float) or isinstance(right, float):
                    assert repr(left) == repr(right)
                else:
                    assert left == right

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_feature_subsets(self, data):
        names = tuple(
            data.draw(
                st.lists(
                    st.sampled_from(FEATURE_NAMES),
                    min_size=1,
                    max_size=6,
                    unique=True,
                )
            )
        )
        rid = st.sampled_from(self.rids)
        pairs = data.draw(st.lists(st.tuples(rid, rid), max_size=5))
        batch = extract_features_batch(self.dataset, pairs, names=names)
        for pair, vector in zip(pairs, batch):
            a, b = pair
            scalar = extract_features(
                self.dataset[a], self.dataset[b], names=names
            )
            assert list(vector) == list(scalar) == list(names)
            assert reprs(vector.values()) == reprs(scalar.values())

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_chunking_invariance(self, data):
        rid = st.sampled_from(self.rids)
        pairs = data.draw(st.lists(st.tuples(rid, rid), max_size=10))
        cut = data.draw(st.integers(min_value=0, max_value=len(pairs)))
        whole = extract_features_batch(self.dataset, pairs)
        pieces = extract_features_batch(
            self.dataset, pairs[:cut]
        ) + extract_features_batch(self.dataset, pairs[cut:])
        assert len(whole) == len(pieces)
        for left, right in zip(whole, pieces):
            assert list(left) == list(right)
            assert reprs(left.values()) == reprs(right.values())

    def test_empty_pair_list(self):
        assert extract_features_batch(self.dataset, []) == []
