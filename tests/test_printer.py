"""Tests for the Tables 7-8 style tree printer."""

from __future__ import annotations

from repro.classify.adtree import (
    ADTreeModel,
    CategoricalCondition,
    NumericCondition,
    PredictionNode,
    SplitterNode,
)
from repro.classify.printer import render_tree


def small_tree():
    root = PredictionNode(-0.289)
    yes = PredictionNode(-1.314)
    no = PredictionNode(0.539)
    root.splitters.append(
        SplitterNode(1, CategoricalCondition("sameFFN", "no"), yes, no)
    )
    yes.splitters.append(
        SplitterNode(
            6, NumericCondition("MFNdist", 0.728),
            PredictionNode(-0.718), PredictionNode(1.528),
        )
    )
    return ADTreeModel(root)


class TestRenderTree:
    def test_root_line(self):
        assert render_tree(small_tree()).splitlines()[0] == ": -0.289"

    def test_branch_lines_present(self):
        text = render_tree(small_tree())
        assert "| (1)sameFFN = no: -1.314" in text
        assert "| (1)sameFFN != no: 0.539" in text

    def test_nested_indentation(self):
        text = render_tree(small_tree())
        assert "| | (6)MFNdist < 0.728: -0.718" in text
        assert "| | (6)MFNdist >= 0.728: 1.528" in text

    def test_yes_branch_subtree_before_no_branch(self):
        lines = render_tree(small_tree()).splitlines()
        yes_index = lines.index("| (1)sameFFN = no: -1.314")
        nested_index = lines.index("| | (6)MFNdist < 0.728: -0.718")
        no_index = lines.index("| (1)sameFFN != no: 0.539")
        assert yes_index < nested_index < no_index

    def test_root_only_tree(self):
        model = ADTreeModel(PredictionNode(0.125))
        assert render_tree(model) == ": 0.125"

    def test_custom_indent(self):
        text = render_tree(small_tree(), indent="— ")
        assert "— (1)sameFFN = no: -1.314" in text
