"""Tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro.blocking.baselines.token_based import StandardBlocking
from repro.cli import main as cli_main
from repro.core import PipelineConfig, UncertainERPipeline
from repro.core.pipeline import corpus_stats
from repro.datagen import build_corpus
from repro.obs import (
    NULL_TRACER,
    SCHEMA_VERSION,
    Aggregator,
    InMemorySink,
    JsonlSink,
    ManualClock,
    MonotonicClock,
    NullSink,
    RunReport,
    Tracer,
    strip_timestamps,
    strip_volatile,
)
from repro.version import repro_version


@pytest.fixture(scope="module")
def small_corpus():
    dataset, _ = build_corpus(n_persons=50, communities=("italy",), seed=29)
    return dataset


class TestClocks:
    def test_monotonic_clock_is_monotone(self):
        clock = MonotonicClock()
        readings = [clock.now() for _ in range(5)]
        assert readings == sorted(readings)

    def test_manual_clock_advances_only_when_told(self):
        clock = ManualClock(start=10.0)
        assert clock.now() == 10.0
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_manual_clock_tick(self):
        clock = ManualClock(tick=1.0)
        assert [clock.now() for _ in range(3)] == [0.0, 1.0, 2.0]

    def test_manual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            ManualClock(tick=-1.0)
        with pytest.raises(ValueError):
            ManualClock().advance(-0.1)


class TestDisabledTracer:
    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.aggregate is None

    def test_span_is_shared_noop(self):
        first = NULL_TRACER.span("a", key=1)
        second = NULL_TRACER.span("b")
        assert first is second  # one shared instance, no allocation
        with first:
            with second:
                pass

    def test_counters_and_gauges_are_noops(self):
        NULL_TRACER.count("x", 5)
        NULL_TRACER.gauge("y", 1.0)
        assert NULL_TRACER.aggregate is None


class TestTracer:
    def test_nested_spans_paths_and_depths(self):
        sink = InMemorySink()
        tracer = Tracer(clock=ManualClock(tick=1.0), sinks=[sink])
        with tracer.span("outer"):
            with tracer.span("inner", minsup=4):
                pass
        kinds = [event["event"] for event in sink.events]
        assert kinds == [
            "trace_start", "span_start", "span_start", "span_end", "span_end",
        ]
        inner_end = sink.events[3]
        assert inner_end["path"] == "outer/inner"
        assert inner_end["depth"] == 2
        assert inner_end["attrs"] == {"minsup": 4}
        outer_end = sink.events[4]
        assert outer_end["path"] == "outer"
        assert outer_end["depth"] == 1

    def test_trace_start_carries_schema_and_version(self):
        sink = InMemorySink()
        Tracer(clock=ManualClock(), sinks=[sink])
        head = sink.events[0]
        assert head["event"] == "trace_start"
        assert head["schema"] == SCHEMA_VERSION
        assert head["version"] == repro_version()

    def test_sequence_numbers_are_contiguous(self):
        sink = InMemorySink()
        tracer = Tracer(clock=ManualClock(), sinks=[sink])
        with tracer.span("a"):
            tracer.count("c")
            tracer.gauge("g", 2.0)
        assert [event["seq"] for event in sink.events] == list(
            range(len(sink.events))
        )

    def test_span_end_emitted_on_exception(self):
        sink = InMemorySink()
        tracer = Tracer(clock=ManualClock(tick=1.0), sinks=[sink])
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert sink.events[-1]["event"] == "span_end"
        assert tracer._stack == []  # stack unwound

    def test_error_span_records_exception_type(self):
        sink = InMemorySink()
        tracer = Tracer(clock=ManualClock(tick=1.0), sinks=[sink])
        with pytest.raises(KeyError):
            with tracer.span("doomed", minsup=3):
                raise KeyError("gone")
        end = sink.events[-1]
        assert end["event"] == "span_end"
        assert end["attrs"] == {"minsup": 3, "error": "KeyError"}
        # A clean exit of the same span carries no error attr.
        with tracer.span("fine", minsup=3):
            pass
        assert sink.events[-1]["attrs"] == {"minsup": 3}

    def test_error_span_flushes_jsonl_sink(self, tmp_path):
        # The crash-forensics contract: everything emitted up to and
        # including the failing span_end is on disk before the
        # exception propagates, even though the sink is never closed.
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(clock=ManualClock(tick=1.0), sinks=[sink])
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("doomed"):
                    raise RuntimeError("boom")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        ends = [e for e in lines if e["event"] == "span_end"]
        assert [e["name"] for e in ends] == ["doomed", "outer"]
        assert all(e["attrs"]["error"] == "RuntimeError" for e in ends)

    def test_durations_from_injected_clock(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("a"):
            pass
        stats = tracer.aggregate.stages["a"]
        assert stats.calls == 1
        # tick=1.0 and exactly two reads (start, end) => duration 1.0
        assert stats.total_seconds == pytest.approx(1.0)

    def test_counter_accumulates_and_gauge_overwrites(self):
        tracer = Tracer(clock=ManualClock())
        tracer.count("pairs", 3)
        tracer.count("pairs", 4)
        tracer.gauge("size", 1.0)
        tracer.gauge("size", 9.0)
        assert tracer.aggregate.counters["pairs"] == 7
        assert tracer.aggregate.gauges["size"] == pytest.approx(9.0)


class TestSinks:
    def test_null_sink_discards(self):
        sink = NullSink()
        sink.emit({"event": "counter"})
        sink.close()

    def test_jsonl_sink_writes_sorted_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"b": 2, "a": 1})
        sink.close()
        assert path.read_text() == '{"a": 1, "b": 2}\n'

    def test_jsonl_sink_rejects_emit_after_close(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.emit({"a": 1})

    def test_jsonl_sink_leaves_foreign_handle_open(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as handle:
            sink = JsonlSink(handle)
            sink.emit({"a": 1})
            sink.close()
            assert not handle.closed

    def test_jsonl_sink_flush_makes_lines_visible(self, tmp_path):
        # Flush is the abnormal-exit story: events written so far must
        # reach disk without closing the sink.
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"a": 1})
        sink.flush()
        assert path.read_text() == '{"a": 1}\n'
        sink.emit({"b": 2})
        sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_jsonl_sink_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.emit({"a": 1})
        sink.close()
        sink.close()  # second close must be a no-op, not an error

    def test_jsonl_sink_flush_after_close_is_noop(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.flush()

    def test_jsonl_sink_close_flushes_foreign_handle(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as handle:
            sink = JsonlSink(handle)
            sink.emit({"a": 1})
            sink.close()
            # Left open for the caller, but flushed: the line is on disk.
            assert not handle.closed
            assert path.read_text() == '{"a": 1}\n'

    def test_base_sink_flush_is_a_noop(self):
        NullSink().flush()

    def test_strip_timestamps(self):
        event = {"event": "span_end", "t": 1.5, "duration": 0.5, "name": "x"}
        assert strip_timestamps(event) == {"event": "span_end", "name": "x"}

    def test_strip_volatile_removes_schedule_attrs(self):
        event = {
            "event": "span_end", "t": 1.5, "duration": 0.5, "name": "x",
            "attrs": {"worker": 1234, "chunk": 2},
        }
        assert strip_volatile(event) == {
            "event": "span_end", "name": "x", "attrs": {"chunk": 2},
        }

    def test_strip_volatile_drops_empty_attrs(self):
        event = {"event": "span_start", "name": "x",
                 "attrs": {"worker": 99}}
        assert strip_volatile(event) == {"event": "span_start", "name": "x"}


class TestAggregator:
    def test_stage_order_is_tree_order(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("root"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        paths = list(tracer.aggregate.stages)
        assert paths == ["root", "root/first", "root/second"]

    def test_total_seconds_sums_depth_one_only(self):
        agg = Aggregator()
        tracer = Tracer(clock=ManualClock(tick=1.0), sinks=[agg])
        with tracer.span("a"):
            with tracer.span("nested"):
                pass
        with tracer.span("b"):
            pass
        # a spans 3 ticks (start..end with nested inside), b spans 1.
        assert agg.total_seconds() == pytest.approx(
            agg.stages["a"].total_seconds + agg.stages["b"].total_seconds
        )
        assert "a/nested" not in ("a", "b")  # nested excluded from total


class TestRunReport:
    def _traced_report(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("stage.one"):
            tracer.count("things", 2)
        with tracer.span("stage.two"):
            tracer.gauge("level", 4.0)
        return RunReport.build(
            tracer.aggregate,
            config={"label": "Base"},
            corpus={"n_records": 10},
        )

    def test_build_snapshots_aggregate(self):
        report = self._traced_report()
        assert report.version == repro_version()
        assert report.schema_version == SCHEMA_VERSION
        assert [s.path for s in report.stages] == ["stage.one", "stage.two"]
        assert report.counters == {"things": 2}
        assert report.gauges == {"level": 4.0}
        assert report.total_seconds == pytest.approx(
            sum(s.total_seconds for s in report.stages if s.depth == 1)
        )

    def test_json_round_trip(self, tmp_path):
        report = self._traced_report()
        path = tmp_path / "report.json"
        report.to_json(path)
        loaded = RunReport.from_json(path)
        assert loaded.to_dict() == report.to_dict()

    def test_json_schema_fields(self, tmp_path):
        report = self._traced_report()
        path = tmp_path / "report.json"
        report.to_json(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["version"] == repro_version()
        assert set(payload) == {
            "schema", "version", "total_seconds", "stages",
            "counters", "gauges", "config", "corpus", "resilience",
            "parallel", "parallel_profile",
        }

    def test_format_table_lists_stages_and_counters(self):
        text = self._traced_report().format_table()
        assert "stage.one" in text
        assert "stage.two" in text
        assert "things" in text
        assert "total" in text
        assert repro_version() in text

    # -- forward compatibility: parallel_profile is additive in v1 ----------

    def _legacy_payload(self):
        """A report JSON as written before the parallel_profile block."""
        payload = self._traced_report().to_dict()
        del payload["parallel_profile"]
        return payload

    def test_legacy_payload_without_profile_loads(self):
        report = RunReport.from_dict(self._legacy_payload())
        assert report.parallel_profile == {}
        assert report.schema_version == SCHEMA_VERSION

    def test_legacy_payload_renders_table_and_timeline(self):
        # Old reports must keep rendering: the table without a profile
        # line, the timeline as a notice — never a KeyError.
        report = RunReport.from_dict(self._legacy_payload())
        table = report.format_table()
        assert "stage.one" in table
        assert "parallel profile:" not in table
        timeline = report.format_timeline()
        assert "no parallel profile recorded" in timeline

    def test_report_with_profile_round_trips(self, tmp_path):
        profile = {
            "executor": "multiprocess",
            "workers": 2,
            "parent_pid": 100,
            "profile_memory": False,
            "dispatches": [{
                "label": "parallel.map", "map_call": 0, "chunks": 1,
                "wall_seconds": 1.0, "compute_seconds": 0.6,
                "queue_seconds": 0.2, "pickle_seconds": 0.1,
                "payload_bytes_in": 2048, "accounted_fraction": 0.95,
            }],
            "chunks": [{
                "chunk": 0, "worker": 101, "compute_seconds": 0.6,
            }],
            "lanes": [{
                "worker": 101, "role": "worker", "chunks": 1,
                "compute_seconds": 0.6, "queue_seconds": 0.2,
                "pickle_seconds": 0.1, "payload_bytes_in": 2048,
                "payload_bytes_out": 512,
            }],
            "totals": {
                "dispatches": 1, "chunks": 1, "wall_seconds": 1.0,
                "compute_seconds": 0.6, "queue_seconds": 0.2,
                "pickle_seconds": 0.1, "accounted_seconds": 0.95,
                "accounted_fraction": 0.95,
                "tracemalloc_peak_bytes": None,
            },
        }
        payload = self._traced_report().to_dict()
        payload["parallel_profile"] = profile
        path = tmp_path / "profiled.report.json"
        path.write_text(json.dumps(payload))
        loaded = RunReport.from_json(path)
        assert loaded.parallel_profile == profile
        assert "parallel profile: 1 dispatches" in loaded.format_table()
        timeline = loaded.format_timeline()
        assert "parallel timeline" in timeline
        assert "accounting: 95.0%" in timeline

    def test_timeline_tolerates_sparse_profile_keys(self):
        # A block from a different build missing optional keys must
        # still render — every access is defensive.
        report = RunReport.from_dict(self._legacy_payload())
        report.parallel_profile = {
            "chunks": [{"chunk": 0}],
            "lanes": [{}],
            "dispatches": [{}],
        }
        timeline = report.format_timeline()
        assert "parallel timeline" in timeline
        assert "accounting:" in timeline


class TestPipelineInstrumentation:
    CONFIG = PipelineConfig(max_minsup=4, ng=3.0, expert_weighting=True)

    def test_default_run_has_no_report(self, small_corpus):
        resolution = UncertainERPipeline(self.CONFIG).run(small_corpus)
        assert resolution.report is None

    def test_traced_run_attaches_report(self, small_corpus):
        tracer = Tracer()
        resolution = UncertainERPipeline(self.CONFIG, tracer=tracer).run(
            small_corpus
        )
        report = resolution.report
        assert report is not None
        stage_names = {s.name for s in report.stages}
        assert {"pipeline.run", "pipeline.block", "mfiblocks.run",
                "mfiblocks.minsup", "fpgrowth.fpmax"} <= stage_names
        assert report.counters["pipeline.records"] == len(small_corpus)
        assert report.counters["pipeline.candidate_pairs"] == len(resolution)
        assert report.config["label"] == self.CONFIG.describe()
        assert report.corpus["n_records"] == len(small_corpus)

    def test_traced_output_matches_untraced(self, small_corpus):
        plain = UncertainERPipeline(self.CONFIG).run(small_corpus)
        traced = UncertainERPipeline(self.CONFIG, tracer=Tracer()).run(
            small_corpus
        )
        assert plain.pairs == traced.pairs
        assert [e.similarity for e in plain.ranked()] == [
            e.similarity for e in traced.ranked()
        ]

    def test_stage_times_cover_pipeline_total(self, small_corpus):
        """Acceptance: per-stage times sum to within 10% of the total.

        The direct children of ``pipeline.run`` must account for at
        least 90% of its wall time — the instrumentation covers the hot
        path, not a sliver of it.
        """
        tracer = Tracer()
        UncertainERPipeline(self.CONFIG, tracer=tracer).run(small_corpus)
        stages = tracer.aggregate.stages
        total = stages["pipeline.run"].total_seconds
        children = sum(
            stats.total_seconds
            for path, stats in stages.items()
            if stats.depth == 2 and path.startswith("pipeline.run/")
        )
        assert total > 0
        assert abs(total - children) <= 0.1 * total

    def test_same_source_counter(self, small_corpus):
        config = PipelineConfig(
            max_minsup=4, ng=3.0, same_source_discard=True
        )
        tracer = Tracer()
        resolution = UncertainERPipeline(config, tracer=tracer).run(
            small_corpus
        )
        counters = resolution.report.counters
        dropped = counters["pipeline.pairs_dropped_same_source"]
        assert dropped >= 0
        assert counters["pipeline.candidate_pairs"] == dropped + len(resolution)
        assert not any(evidence.same_source for evidence in resolution)

    def test_corpus_stats(self, small_corpus):
        stats = corpus_stats(small_corpus)
        assert stats["n_records"] == len(small_corpus)
        assert 0 < stats["n_sources"] <= len(small_corpus)
        assert stats["n_items"] == sum(
            len(bag) for bag in small_corpus.item_bags.values()
        )


class TestBaselineBlockerTracing:
    def test_run_traced_emits_span_and_counters(self, small_corpus):
        tracer = Tracer()
        blocker = StandardBlocking()
        result = blocker.run_traced(small_corpus, tracer)
        agg = tracer.aggregate
        assert f"blocking.{blocker.name}" in agg.stages
        assert agg.counters["blocking.blocks"] == len(result.blocks)
        assert agg.counters["blocking.candidate_pairs"] == len(
            result.pair_scores
        )

    def test_run_traced_defaults_to_noop(self, small_corpus):
        plain = StandardBlocking().run(small_corpus)
        traced = StandardBlocking().run_traced(small_corpus)
        assert plain.pair_scores == traced.pair_scores


class TestCliObservability:
    @pytest.fixture()
    def corpus_path(self, tmp_path):
        path = tmp_path / "corpus.json"
        assert cli_main([
            "generate", "--persons", "50", "--communities", "italy",
            "--seed", "29", "--out", str(path),
        ]) == 0
        return path

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro_version()}"

    def test_profile_prints_stage_table(self, corpus_path, capsys):
        assert cli_main([
            "profile", str(corpus_path), "--ng", "3.0",
            "--max-minsup", "4", "--expert-weighting",
        ]) == 0
        output = capsys.readouterr().out
        assert "pipeline.run" in output
        assert "mfiblocks.minsup" in output
        assert "counters:" in output
        assert "total" in output

    def test_profile_timeline_serial_prints_notice(self, corpus_path,
                                                   capsys):
        assert cli_main([
            "profile", str(corpus_path), "--ng", "3.0",
            "--max-minsup", "4", "--timeline",
        ]) == 0
        output = capsys.readouterr().out
        assert "no parallel profile recorded" in output

    def test_profile_timeline_parallel_prints_lanes(self, corpus_path,
                                                    capsys):
        assert cli_main([
            "profile", str(corpus_path), "--ng", "3.0",
            "--max-minsup", "4", "--workers", "2", "--timeline",
        ]) == 0
        output = capsys.readouterr().out
        assert "parallel timeline" in output
        assert "overhead vs compute" in output
        assert "accounting:" in output

    def test_profile_writes_report_and_trace(self, corpus_path, tmp_path,
                                             capsys):
        report_path = tmp_path / "report.json"
        trace_path = tmp_path / "trace.jsonl"
        assert cli_main([
            "profile", str(corpus_path), "--ng", "3.0",
            "--max-minsup", "4",
            "--report", str(report_path), "--trace", str(trace_path),
        ]) == 0
        report = RunReport.from_json(report_path)
        assert report.schema_version == SCHEMA_VERSION
        assert report.version == repro_version()
        lines = trace_path.read_text().splitlines()
        assert json.loads(lines[0])["event"] == "trace_start"

    def test_resolve_trace_and_report(self, corpus_path, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        trace_path = tmp_path / "trace.jsonl"
        assert cli_main([
            "resolve", str(corpus_path), "--ng", "3.0",
            "--max-minsup", "4", "--expert-weighting",
            "--trace", str(trace_path), "--report", str(report_path),
        ]) == 0
        assert report_path.is_file()
        assert trace_path.is_file()
        payload = json.loads(report_path.read_text())
        assert payload["counters"]["pipeline.records"] > 0
