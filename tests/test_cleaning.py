"""Tests for block purging / filtering / meta-blocking."""

from __future__ import annotations

import pytest

from repro.blocking.base import Block, BlockingResult
from repro.blocking.cleaning import (
    BlockFiltering,
    BlockPurging,
    WeightedEdgePruning,
)


def make_result(*blocks):
    result = BlockingResult()
    for records in blocks:
        result.add_block(Block(records=frozenset(records)))
    return result


class TestBlockPurging:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockPurging(percentile=0.0)
        with pytest.raises(ValueError):
            BlockPurging(percentile=1.5)

    def test_removes_largest(self):
        result = make_result({1, 2}, {3, 4}, {5, 6}, set(range(10, 40)))
        cleaned = BlockPurging(percentile=0.75).apply(result)
        sizes = sorted(len(block) for block in cleaned.blocks)
        assert sizes == [2, 2, 2]

    def test_keep_all_at_one(self):
        result = make_result({1, 2}, set(range(10, 40)))
        cleaned = BlockPurging(percentile=1.0).apply(result)
        assert len(cleaned.blocks) == 2

    def test_empty(self):
        assert BlockPurging().apply(BlockingResult()).blocks == []

    def test_reduces_comparisons(self):
        result = make_result({1, 2}, set(range(100, 150)))
        cleaned = BlockPurging(percentile=0.5).apply(result)
        assert cleaned.comparisons() < result.comparisons()


class TestBlockFiltering:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockFiltering(ratio=0.0)

    def test_keeps_smallest_blocks_per_record(self):
        # Record 1 is in a small and a big block; ratio .5 keeps only the
        # small one for it.
        result = make_result({1, 2}, {1, 3, 4, 5, 6})
        cleaned = BlockFiltering(ratio=0.5).apply(result)
        memberships = [block.records for block in cleaned.blocks]
        assert frozenset({1, 2}) in memberships
        # The big block survives only without record 1... records 3-6
        # keep it as their only block.
        big = next(m for m in memberships if len(m) > 2)
        assert 1 not in big

    def test_full_ratio_is_identity_on_structure(self):
        result = make_result({1, 2}, {2, 3})
        cleaned = BlockFiltering(ratio=1.0).apply(result)
        assert {block.records for block in cleaned.blocks} == {
            frozenset({1, 2}), frozenset({2, 3})
        }

    def test_degenerate_blocks_dropped(self):
        result = make_result({1, 2})
        # ratio so low each record keeps 1 block; both keep the same one
        cleaned = BlockFiltering(ratio=0.1).apply(result)
        assert len(cleaned.blocks) == 1


class TestWeightedEdgePruning:
    def test_prunes_below_mean_weight(self):
        # pair (1,2) co-occurs in 3 blocks, the others once each.
        result = make_result({1, 2}, {1, 2}, {1, 2, 3}, {4, 5})
        cleaned = WeightedEdgePruning().apply(result)
        assert (1, 2) in cleaned.candidate_pairs
        assert (4, 5) not in cleaned.candidate_pairs

    def test_empty(self):
        assert WeightedEdgePruning().apply(BlockingResult()).blocks == []

    def test_uniform_weights_prune_everything(self):
        result = make_result({1, 2}, {3, 4})
        cleaned = WeightedEdgePruning().apply(result)
        assert cleaned.candidate_pairs == frozenset()

    def test_weights_exposed_as_scores(self):
        result = make_result({1, 2}, {1, 2}, {3, 4})
        cleaned = WeightedEdgePruning().apply(result)
        assert cleaned.pair_scores[(1, 2)] == 2.0


class TestComposedWorkflow:
    def test_survey_workflow_improves_precision(self, small_corpus, small_gold):
        from repro.blocking.baselines import StandardBlocking

        dataset, _persons = small_corpus
        raw = StandardBlocking().run(dataset)
        workflow = BlockFiltering(ratio=0.6).apply(
            BlockPurging(percentile=0.9).apply(raw)
        )
        pruned = WeightedEdgePruning().apply(workflow)
        q_raw = small_gold.evaluate(raw.candidate_pairs)
        q_pruned = small_gold.evaluate(pruned.candidate_pairs)
        assert q_pruned.n_candidates < q_raw.n_candidates
        assert q_pruned.precision > q_raw.precision
