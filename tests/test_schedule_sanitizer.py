"""Tests for the adversarial-schedule sanitizer (``--schedule``).

Three layers: the :class:`AdversarialScheduleExecutor` itself (hostile
order, submission-order results, seeded determinism), the
``run_schedule_sanitize`` comparison logic through a fake runner, and
one small in-process end-to-end run proving the real pipeline stays
byte-identical under hostile schedules.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.parallel import (
    AdversarialScheduleExecutor,
    SerialExecutor,
)
from repro.sanitize import (
    ScheduleConfig,
    ScheduleResult,
    ScheduleRun,
    inprocess_schedule_runner,
    run_schedule_sanitize,
)


def double(chunk):
    return [x * 2 for x in chunk]


class TestAdversarialScheduleExecutor:
    def test_results_in_submission_order(self):
        executor = AdversarialScheduleExecutor(workers=4, schedule_seed=1)
        chunks = [[1], [2], [3], [4], [5], [6], [7], [8]]
        assert executor.map_chunks(double, chunks) == [
            [2], [4], [6], [8], [10], [12], [14], [16]
        ]

    def test_schedule_actually_permutes(self):
        executor = AdversarialScheduleExecutor(workers=4, schedule_seed=1)
        executor.map_chunks(double, [[i] for i in range(16)])
        (order,) = executor.schedule_log
        assert sorted(order) == list(range(16))
        assert order != list(range(16))

    def test_same_seed_same_schedule(self):
        logs = []
        for _ in range(2):
            executor = AdversarialScheduleExecutor(workers=2, schedule_seed=7)
            executor.map_chunks(double, [[i] for i in range(12)])
            executor.map_chunks(double, [[i] for i in range(12)])
            logs.append(executor.schedule_log)
        assert logs[0] == logs[1]

    def test_different_seeds_differ(self):
        orders = []
        for seed in (1, 2):
            executor = AdversarialScheduleExecutor(
                workers=2, schedule_seed=seed
            )
            executor.map_chunks(double, [[i] for i in range(16)])
            orders.append(executor.schedule_log[0])
        assert orders[0] != orders[1]

    def test_dispatches_within_one_run_differ(self):
        executor = AdversarialScheduleExecutor(workers=2, schedule_seed=3)
        executor.map_chunks(double, [[i] for i in range(16)])
        executor.map_chunks(double, [[i] for i in range(16)])
        first, second = executor.schedule_log
        assert first != second

    def test_matches_serial_reference(self):
        chunks = [[i, i + 1] for i in range(0, 20, 2)]
        serial = SerialExecutor().map_chunks(double, chunks)
        hostile = AdversarialScheduleExecutor(
            workers=4, schedule_seed=5
        ).map_chunks(double, chunks)
        assert hostile == serial

    def test_empty_payload(self):
        executor = AdversarialScheduleExecutor(workers=2, schedule_seed=1)
        assert executor.map_chunks(double, []) == []
        assert executor.schedule_log == [[]]

    def test_stats_and_plan(self):
        executor = AdversarialScheduleExecutor(workers=3, schedule_seed=1)
        executor.map_chunks(double, [[1], [2], [3]])
        assert executor.stats.map_calls == 1
        assert executor.stats.chunks == 3
        assert executor.stats.inline_chunks == 3
        assert executor.parallel
        # The chunk plan follows the worker count exactly like the pool.
        assert len(executor.plan_chunks(list(range(9)))) == 3


class TestScheduleConfig:
    def test_defaults_are_valid(self):
        config = ScheduleConfig()
        assert config.schedule_seeds == (1, 2, 3)
        assert config.worker_counts == (1, 2, 4)

    def test_rejects_tiny_corpus(self):
        with pytest.raises(ValueError):
            ScheduleConfig(persons=1)

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ValueError):
            ScheduleConfig(schedule_seeds=())

    def test_rejects_bad_worker_counts(self):
        with pytest.raises(ValueError):
            ScheduleConfig(worker_counts=(2, 0))


class TestRunScheduleSanitizeWithFakeRunner:
    def test_identical_outputs_pass(self):
        calls = []

        def runner(seed, workers):
            calls.append((seed, workers))
            return "header\nrow\n"

        config = ScheduleConfig(
            schedule_seeds=(1, 2), worker_counts=(1, 2)
        )
        result = run_schedule_sanitize(config, runner=runner)
        assert result.ok
        assert result.diff is None
        # Baseline first (serial reference), then the full matrix.
        assert calls == [
            (None, 1), (1, 1), (1, 2), (2, 1), (2, 2)
        ]
        assert len(result.runs) == 4

    def test_divergent_cell_detected_with_diff(self):
        def runner(seed, workers):
            if seed == 2 and workers == 4:
                return "header\nother\n"
            return "header\nrow\n"

        config = ScheduleConfig(
            schedule_seeds=(1, 2), worker_counts=(1, 4)
        )
        result = run_schedule_sanitize(config, runner=runner)
        assert not result.ok
        assert result.divergent_cells == [(2, 4)]
        assert result.diff is not None
        assert "schedule_seed=2 workers=4" in result.diff
        assert "+other" in result.diff

    def test_diff_keeps_first_divergence(self):
        def runner(seed, workers):
            if seed is None:
                return "base\n"
            return f"seed{seed}\n"

        config = ScheduleConfig(schedule_seeds=(1, 2), worker_counts=(1,))
        result = run_schedule_sanitize(config, runner=runner)
        assert result.divergent_cells == [(1, 1), (2, 1)]
        assert "+seed1" in result.diff
        assert "+seed2" not in result.diff

    def test_write_diff(self, tmp_path: Path):
        result = ScheduleResult(baseline_output="x\n", diff="the diff")
        result.runs.append(
            ScheduleRun(
                schedule_seed=1, workers=2,
                matches_baseline=False, n_lines=1,
            )
        )
        out = tmp_path / "schedule.diff"
        result.write_diff(out)
        assert out.read_text(encoding="utf-8") == "the diff"


class TestEndToEnd:
    def test_small_resolution_schedule_invariant(self):
        # One hostile seed over two worker counts on a small corpus;
        # the full 3x{1,2,4} matrix runs in CI via `repro sanitize
        # --schedule`.
        config = ScheduleConfig(
            persons=16, schedule_seeds=(1,), worker_counts=(1, 2)
        )
        result = run_schedule_sanitize(
            config, runner=inprocess_schedule_runner(config)
        )
        assert result.ok, result.diff
        assert result.baseline_output.startswith(
            "book_id_a,book_id_b,similarity\n"
        )
        assert len(result.runs) == 2


class TestCommandLine:
    def test_bad_schedule_workers_exit_2(self, capsys):
        from repro.sanitize import main as sanitize_main

        assert sanitize_main(
            ["--schedule", "--schedule-workers", "two"]
        ) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_bad_schedule_seeds_exit_2(self, capsys):
        from repro.sanitize import main as sanitize_main

        assert sanitize_main(
            ["--schedule", "--schedule-seeds", "0"]
        ) == 2

    def test_repro_cli_wires_schedule_flags(self, monkeypatch):
        received = {}

        def fake_main(argv):
            received["argv"] = argv
            return 0

        import repro.sanitize

        monkeypatch.setattr(repro.sanitize, "main", fake_main)
        exit_code = cli_main(
            [
                "sanitize", "--schedule", "--schedule-seeds", "2",
                "--schedule-workers", "1,2", "--persons", "24",
            ]
        )
        assert exit_code == 0
        argv = received["argv"]
        assert "--schedule" in argv
        assert argv[argv.index("--schedule-seeds") + 1] == "2"
        assert argv[argv.index("--schedule-workers") + 1] == "1,2"
        assert argv[argv.index("--persons") + 1] == "24"
