"""RL303: O(n) membership probe against a list local inside a loop."""

from contracts import hot_path


@hot_path
def count_hits(values):
    allowed = [2, 3, 5, 7]
    hits = 0
    for value in values:
        if value in allowed:  # list scan per probe; a set is O(1)
            hits = hits + 1
    return hits
