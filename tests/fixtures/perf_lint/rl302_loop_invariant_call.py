"""RL302: a call on loop-invariant operands recomputed per iteration."""

from contracts import hot_path, pure


@pure
def area(shape):
    return shape * shape


@hot_path
def render(shapes, base):
    out = 0.0
    for shape in shapes:
        out = out + shape * area(base)  # area(base) never changes
    return out
