"""RL300: a hot loop calling a Python function per element."""

from contracts import hot_path, pure


@pure
def unit_cost(value):
    return value * 2.0


@hot_path
def total_cost(values):
    total = 0.0
    for value in values:
        total += unit_cost(value)  # one Python call per element
    return total
