"""RL304: quadratic string accumulation in a loop."""

from contracts import hot_path


@hot_path
def join_labels(labels):
    joined = ""
    for label in labels:
        joined += label  # reallocates the whole string every step
    return joined
