"""RL305: invariant ``len()`` recomputed every iteration of a hot loop."""

from contracts import hot_path


@hot_path
def scale_all(values, config):
    total = 0.0
    for value in values:
        total = total + value * len(config)  # len(config) is invariant
    return total
