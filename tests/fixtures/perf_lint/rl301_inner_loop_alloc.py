"""RL301: allocation inside the depth-2 inner loop."""

from contracts import hot_path


@hot_path
def tabulate(rows):
    count = 0
    for row in rows:
        for value in row:
            cell = [value, value]  # fresh list per inner element
            count = count + len(cell)
    return count
