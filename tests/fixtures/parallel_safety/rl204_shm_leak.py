"""RL204: a shared_memory buffer created without paired teardown."""

from multiprocessing import shared_memory


def leak_segment(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    shm.buf[:4] = b"data"  # neither .close() nor .unlink(): leaks
    return shm.name


def clean_segment(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        return bytes(shm.buf[:4])
    finally:
        shm.close()
        shm.unlink()
