"""RL201: worker-reachable code mutating module-global state."""

SEEN = []


def work(payload):
    return tally(payload)


def tally(payload):
    SEEN.append(payload)  # write is lost across the process boundary
    return len(payload)


def driver(executor, items):
    return sorted(executor.map_chunks(work, items))
