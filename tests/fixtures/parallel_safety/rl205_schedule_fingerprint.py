"""RL205: worker count / executor identity flowing into fingerprints."""


def fingerprint_inputs(ng, workers):
    return ("ng", ng), ("workers", workers)


def build_stage_key(config, executor):
    # Folding the schedule into the resume key forces a full re-run
    # whenever the worker count changes, for byte-identical output.
    return fingerprint_inputs(config.ng, executor.workers)
