"""RL203: a @fork_safe function reaching a fork-unsafe resource."""

import sqlite3

from contracts import fork_safe

DB = sqlite3.connect(":memory:")


@fork_safe
def work(payload):
    return lookup(payload)


def lookup(payload):
    # The inherited connection's file descriptor is shared with the
    # parent after fork; concurrent use corrupts the session.
    return DB.execute("select ?", (payload,)).fetchone()
