"""RL202: chunk results reduced without an @commutative_merge fold."""


def work(payload):
    return [x * 2 for x in payload]


def driver(executor, chunks):
    results = executor.map_chunks(work, chunks)
    merged = []
    for result in results:  # concatenation order = chunk-plan order
        merged.extend(result)
    return merged
