"""RL200: a work function capturing non-picklable / mutable globals."""

import threading

LOCK = threading.Lock()
CACHE = {}


def work(payload):
    with LOCK:  # non-picklable capture: cannot cross the fork
        if payload in CACHE:  # mutable capture: workers see stale copies
            return CACHE[payload]
    return payload


def driver(executor, items):
    return sorted(executor.map_chunks(work, items))
