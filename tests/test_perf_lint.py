"""Tests for the RL300-series performance pass and its profile join.

Rule-isolated violation fixtures under ``tests/fixtures/perf_lint/``
(each fires exactly its own rule), profile-join units on the committed
miniature RunReport, severity/ranking behaviour with and without a
profile, the baseline-inventory round trip, byte-determinism across
``PYTHONHASHSEED``, the RL303 autofixer, and the repo self-sweep that
is the acceptance gate (clean modulo ``docs/PERF_LINT_BASELINE.md``).
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.reprolint.autofix import fix_membership_sets
from tools.reprolint.callgraph import build_call_graph
from tools.reprolint.config import load_config
from tools.reprolint.engine import analyze_perf_paths, analyze_perf_sources
from tools.reprolint.findings import Severity
from tools.reprolint.perf_lint import (
    PERF_RULES,
    demote_inventoried,
    parse_baseline,
    render_baseline,
)
from tools.reprolint.profile_join import (
    ProfileError,
    ProfileJoin,
    SpanProfile,
    discover_span_sites,
    load_report,
)

FIXTURES = Path(__file__).parent / "fixtures" / "perf_lint"
REPO_ROOT = Path(__file__).resolve().parents[1]
REPORT = REPO_ROOT / "benchmarks" / "baselines" / "parallel_w1.report.json"
BASELINE = REPO_ROOT / "docs" / "PERF_LINT_BASELINE.md"


def perf_findings(source, path="src/module.py", profile=None, **kwargs):
    """Run RL300-RL305 over one dedented fixture module."""
    return analyze_perf_sources(
        [(path, textwrap.dedent(source))], profile=profile, **kwargs
    )


#: One hot function whose span covers 80% of the mini report's run.
HOT_SOURCE = """
    from contracts import hot_path


    def unit_cost(x):
        return x + 1


    @hot_path
    def total_cost(tracer, values):
        with tracer.span("stage.hot"):
            total = 0
            for value in values:
                total = total + unit_cost(value)
            return total
"""


class TestViolationFixtures:
    @pytest.mark.parametrize(
        "fixture",
        sorted(FIXTURES.glob("rl3*.py")),
        ids=lambda p: p.stem,
    )
    def test_fixture_fires_exactly_its_rule(self, fixture):
        expected = fixture.stem.split("_")[0].upper()
        found = analyze_perf_sources(
            [("src/" + fixture.name, fixture.read_text(encoding="utf-8"))]
        )
        assert {pf.finding.rule for pf in found} == {expected}

    def test_fixture_set_covers_every_rule(self):
        prefixes = {
            path.stem.split("_")[0].upper()
            for path in FIXTURES.glob("rl3*.py")
        }
        assert prefixes == set(PERF_RULES)

    def test_fixtures_fire_without_profile_as_warnings(self):
        fixture = FIXTURES / "rl300_per_element_loop.py"
        found = analyze_perf_sources(
            [("src/" + fixture.name, fixture.read_text(encoding="utf-8"))]
        )
        assert found
        for pf in found:
            assert pf.finding.severity is Severity.WARNING
            assert pf.share is None
            assert not pf.hot


class TestLoadReport:
    def test_mini_report_self_times(self):
        profile = load_report(FIXTURES / "mini_report.json")
        assert profile.total_seconds == pytest.approx(1.0)
        # Root total 1.0s minus direct children 0.8 + 0.1.
        assert profile.self_seconds["pipeline.run"] == pytest.approx(0.1)
        assert profile.self_seconds["stage.hot"] == pytest.approx(0.8)
        assert profile.self_seconds["stage.cold"] == pytest.approx(0.1)
        assert profile.share("stage.hot") == pytest.approx(0.8)
        assert profile.share("not-a-span") == 0.0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ProfileError):
            load_report(tmp_path / "nope.json")

    def test_non_report_json_raises(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": 1, "rows": []}', encoding="utf-8")
        with pytest.raises(ProfileError):
            load_report(bogus)

    def test_malformed_stage_raises(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(
            '{"schema": 1, "stages": [{"name": "x"}]}', encoding="utf-8"
        )
        with pytest.raises(ProfileError):
            load_report(bogus)

    def test_total_falls_back_to_root_stage_sum(self, tmp_path):
        report = tmp_path / "report.json"
        report.write_text(
            '{"schema": 1, "stages": ['
            '{"name": "a", "path": "a", "depth": 0, "calls": 1,'
            ' "total_seconds": 3.0},'
            '{"name": "b", "path": "b", "depth": 0, "calls": 1,'
            ' "total_seconds": 1.0}]}',
            encoding="utf-8",
        )
        profile = load_report(report)
        assert profile.total_seconds == pytest.approx(4.0)
        assert profile.share("a") == pytest.approx(0.75)


class TestSpanSiteDiscovery:
    def test_string_literal_argument(self):
        graph = build_call_graph(
            [
                (
                    "src/mod.py",
                    textwrap.dedent(
                        """
                        def run(tracer, items):
                            with tracer.span("stage.hot"):
                                return sorted(items)
                        """
                    ),
                )
            ]
        )
        assert discover_span_sites(graph) == {"stage.hot": {"mod:run"}}

    def test_module_level_constant_argument(self):
        graph = build_call_graph(
            [
                (
                    "src/mod.py",
                    textwrap.dedent(
                        """
                        HOT_SPAN = "stage.hot"

                        def run(tracer, items):
                            with tracer.span(HOT_SPAN):
                                return sorted(items)
                        """
                    ),
                )
            ]
        )
        assert discover_span_sites(graph) == {"stage.hot": {"mod:run"}}

    def test_imported_constant_chased_to_origin_module(self):
        graph = build_call_graph(
            [
                ("src/names.py", 'HOT_SPAN = "stage.hot"\n'),
                (
                    "src/mod.py",
                    textwrap.dedent(
                        """
                        from names import HOT_SPAN

                        def run(tracer, items):
                            with tracer.span(HOT_SPAN):
                                return sorted(items)
                        """
                    ),
                ),
            ]
        )
        assert discover_span_sites(graph) == {"stage.hot": {"mod:run"}}

    def test_computed_names_are_skipped(self):
        graph = build_call_graph(
            [
                (
                    "src/mod.py",
                    textwrap.dedent(
                        """
                        def run(tracer, stage, items):
                            with tracer.span(f"stage.{stage}"):
                                return sorted(items)
                        """
                    ),
                )
            ]
        )
        assert discover_span_sites(graph) == {}


class TestProfileJoin:
    SOURCE = textwrap.dedent(
        """
        def helper(x):
            return x + 1

        def cold_stage(tracer, items):
            with tracer.span("stage.cold"):
                return [helper(i) for i in items]

        def hot_stage(tracer, items):
            with tracer.span("stage.hot"):
                return cold_stage(tracer, items)

        def unrelated(x):
            return x
        """
    )

    def join(self):
        graph = build_call_graph([("src/mod.py", self.SOURCE)])
        return ProfileJoin(graph, load_report(FIXTURES / "mini_report.json"))

    def test_share_reaches_span_site_and_callees(self):
        join = self.join()
        assert join.share_of("mod:hot_stage") == pytest.approx(0.8)
        # Attributed by stage.hot (as a visited callee) plus its own span.
        assert join.share_of("mod:cold_stage") == pytest.approx(0.9)

    def test_self_time_stops_at_another_spans_site(self):
        # stage.hot's self time must not flow past cold_stage's door:
        # helper's only measured share is stage.cold's own 10%.
        assert self.join().share_of("mod:helper") == pytest.approx(0.1)

    def test_unreached_function_is_unmeasured(self):
        assert self.join().share_of("mod:unrelated") is None

    def test_share_is_capped_at_one(self):
        graph = build_call_graph(
            [("src/mod.py", "def f(x):\n    return x\n")]
        )
        join = ProfileJoin(
            graph,
            SpanProfile({"a": 0.7, "b": 0.6}, 1.0),
            declared_sites={"a": ("mod:f",), "b": ("mod:f",)},
        )
        assert join.share_of("mod:f") == pytest.approx(1.0)


class TestSeverityAndRanking:
    def mini_profile(self):
        return load_report(FIXTURES / "mini_report.json")

    def test_hot_finding_is_error_with_share_suffix(self):
        found = perf_findings(HOT_SOURCE, profile=self.mini_profile())
        assert len(found) == 1
        pf = found[0]
        assert pf.finding.rule == "RL300"
        assert pf.hot
        assert pf.share == pytest.approx(0.8)
        assert pf.finding.severity is Severity.ERROR
        assert "[hot: 80.0% of measured run time]" in pf.finding.message

    def test_min_hot_fraction_demotes_to_cold_warning(self):
        found = perf_findings(
            HOT_SOURCE, profile=self.mini_profile(), min_hot_fraction=0.9
        )
        assert len(found) == 1
        pf = found[0]
        assert not pf.hot
        assert pf.finding.severity is Severity.WARNING
        assert "[cold: 80.0%" in pf.finding.message

    def test_unmeasured_hot_path_is_cold_warning(self):
        source = HOT_SOURCE + """

    @hot_path
    def untraced(values):
        total = 0
        for value in values:
            total = total + unit_cost(value)
        return total
"""
        found = perf_findings(source, profile=self.mini_profile())
        by_message = {
            pf.finding.message: pf
            for pf in found
            if "untraced" in pf.finding.message
        }
        assert by_message
        for pf in by_message.values():
            assert pf.share is None
            assert pf.finding.severity is Severity.WARNING
            assert "[cold: no measured time]" in pf.finding.message

    def test_without_profile_no_share_suffix(self):
        found = perf_findings(HOT_SOURCE)
        assert len(found) == 1
        assert "[hot" not in found[0].finding.message
        assert "[cold" not in found[0].finding.message
        assert found[0].finding.severity is Severity.WARNING

    def test_hot_findings_ranked_by_share_first(self):
        source = textwrap.dedent(
            """
            from contracts import hot_path


            def unit_cost(x):
                return x + 1


            @hot_path
            def cold_loop(tracer, values):
                with tracer.span("stage.cold"):
                    total = 0
                    for value in values:
                        total = total + unit_cost(value)
                    return total


            @hot_path
            def hot_loop(tracer, values):
                with tracer.span("stage.hot"):
                    total = 0
                    for value in values:
                        total = total + unit_cost(value)
                    return total
            """
        )
        found = perf_findings(source, profile=self.mini_profile())
        shares = [pf.share for pf in found if pf.hot]
        assert len(shares) >= 2
        assert shares == sorted(shares, reverse=True)
        assert found[0].share == pytest.approx(0.8)


class TestBaselineRoundTrip:
    def findings(self):
        profile = load_report(FIXTURES / "mini_report.json")
        return perf_findings(HOT_SOURCE, profile=profile)

    def test_render_parse_demote_round_trip(self):
        found = self.findings()
        text = render_baseline(found, "benchmarks/mini_report.json")
        inventory = parse_baseline(text)
        key = ("RL300", "module:total_cost", "src/module.py")
        assert inventory == {key: 1}
        demoted = demote_inventoried(found, inventory)
        assert len(demoted) == 1
        assert demoted[0].finding.severity is Severity.WARNING
        assert demoted[0].finding.message.endswith("(inventoried)")

    def test_excess_findings_stay_errors(self):
        found = self.findings()
        inventory = {
            ("RL300", "module:total_cost", "src/module.py"): 0,
        }
        demoted = demote_inventoried(found, inventory)
        assert demoted[0].finding.severity is Severity.ERROR

    def test_cold_findings_listed_but_never_counted(self):
        found = perf_findings(HOT_SOURCE)  # no profile: all cold
        text = render_baseline(found, "benchmarks/mini_report.json")
        assert "## Cold findings" in text
        assert parse_baseline(text) == {}


class TestRL303Autofix:
    PATH = "src/rl303_linear_membership.py"

    def source(self):
        return (FIXTURES / "rl303_linear_membership.py").read_text(
            encoding="utf-8"
        )

    def test_hoists_invariant_operand_into_set(self):
        fixed = fix_membership_sets([(self.PATH, self.source())])
        assert set(fixed) == {self.PATH}
        new = fixed[self.PATH]
        assert "allowed_set = set(allowed)" in new
        assert "in allowed_set:" in new
        assert "in allowed:" not in new

    def test_fix_is_idempotent(self):
        fixed = fix_membership_sets([(self.PATH, self.source())])
        assert fix_membership_sets([(self.PATH, fixed[self.PATH])]) == {}

    def test_suppressed_site_is_not_rewritten(self):
        suppressed = self.source().replace(
            "if value in allowed:",
            "if value in allowed:  # reprolint: disable=RL303",
        )
        assert "disable=RL303" in suppressed
        assert fix_membership_sets([(self.PATH, suppressed)]) == {}


class TestDeterminism:
    def run_cli(self, hashseed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        )
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.reprolint",
                "src",
                "tools",
                "--perf",
                "--profile-report",
                str(REPORT.relative_to(REPO_ROOT)),
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            timeout=300,
        )

    def test_output_is_byte_stable_across_hashseed(self):
        first = self.run_cli("0")
        second = self.run_cli("424242")
        assert first.returncode == 0, first.stdout.decode()
        assert second.returncode == 0, second.stdout.decode()
        assert first.stdout == second.stdout
        assert first.stderr == second.stderr


class TestRepoSweep:
    def sweep(self):
        config = load_config()
        roots = [
            REPO_ROOT / prefix
            for prefix in config.contract_packages
            if (REPO_ROOT / prefix).is_dir()
        ]
        if not roots:
            pytest.skip("repository checkout required")
        return analyze_perf_paths(
            roots,
            config=config,
            root=REPO_ROOT,
            profile=load_report(REPORT),
        )

    def test_committed_baseline_matches_regenerated_inventory(self):
        found = self.sweep()
        regenerated = render_baseline(
            found, str(REPORT.relative_to(REPO_ROOT))
        )
        assert regenerated == BASELINE.read_text(encoding="utf-8")

    def test_repo_clean_modulo_committed_baseline(self):
        found = self.sweep()
        inventory = parse_baseline(BASELINE.read_text(encoding="utf-8"))
        demoted = demote_inventoried(found, inventory)
        errors = [
            pf.finding
            for pf in demoted
            if pf.finding.severity is Severity.ERROR
        ]
        assert errors == []

    def test_baseline_covers_paper_hot_paths(self):
        # The acceptance criterion: the inventory must tie the scoring
        # loops and the FP-growth expansion loops to measured shares.
        text = BASELINE.read_text(encoding="utf-8")
        assert "src/repro/similarity/items.py" in text
        assert "src/repro/mining/fpgrowth.py" in text
        assert "repro.mining.fpgrowth:_fpmax" in text
