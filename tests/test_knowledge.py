"""Tests for entity merging and knowledge-graph construction."""

from __future__ import annotations

import pytest

from repro.core.resolution import PairEvidence, ResolutionResult
from repro.graph.knowledge import build_knowledge_graph, merge_entity
from repro.records.dataset import Dataset
from repro.records.schema import Gender, PlaceType
from tests.conftest import make_record


class TestMergeEntity:
    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            merge_entity(0, [])

    def test_merges_guido_foa(self, guido_records):
        _son, father_a, father_b, _decoy = guido_records
        profile = merge_entity(1, [father_a, father_b])
        assert profile.display_name() == "Guido Foa"  # majority spelling
        assert profile.birth_year == 1920
        assert profile.gender is Gender.MALE
        # both spellings retained
        assert set(profile.names["last"]) == {"Foa", "Foy"}
        assert profile.primary("father") == "Donato"
        assert profile.n_reports == 2

    def test_majority_place(self, guido_records):
        _son, father_a, father_b, _decoy = guido_records
        profile = merge_entity(1, [father_a, father_b])
        assert profile.primary_place(PlaceType.BIRTH) in ("Torino", "Turin")
        assert profile.primary_place(PlaceType.DEATH) == "Auschwitz"

    def test_sources_collected(self, guido_records):
        _son, father_a, father_b, _decoy = guido_records
        profile = merge_entity(1, [father_a, father_b])
        assert len(profile.sources) == 2

    def test_singleton(self, guido_records):
        son = guido_records[0]
        profile = merge_entity(0, [son])
        assert profile.n_reports == 1
        assert profile.birth_year == 1936


class TestKnowledgeGraph:
    @pytest.fixture()
    def resolution(self, guido_records):
        dataset = Dataset(guido_records)
        evidence = [
            PairEvidence((1028769, 1059654), similarity=0.8, confidence=1.5),
        ]
        return dataset, ResolutionResult(evidence, n_records=len(dataset))

    def test_entities_and_places_present(self, resolution):
        dataset, result = resolution
        graph = build_knowledge_graph(dataset, result, certainty=0.0)
        entity_nodes = [n for n in graph.nodes if n[0] == "entity"]
        place_nodes = [n for n in graph.nodes if n[0] == "place"]
        # father (merged), son, decoy as singletons
        assert len(entity_nodes) == 3
        assert ("place", "Auschwitz") in graph.nodes
        assert place_nodes

    def test_place_edges_typed(self, resolution):
        dataset, result = resolution
        graph = build_knowledge_graph(dataset, result)
        relations = {
            data["relation"]
            for _u, _v, data in graph.edges(data=True)
        }
        assert "born_in" in relations
        assert "died_in" in relations

    def test_family_edge_between_father_and_son(self, resolution):
        """Guido the son and Guido the father share last name + nothing
        else parental; the merged father and son share the Foa surname
        but different parents — no family edge. But a shared mother or
        father name triggers one."""
        dataset, result = resolution
        graph = build_knowledge_graph(dataset, result)
        family_edges = [
            (u, v)
            for u, v, data in graph.edges(data=True)
            if data["relation"] == "possible_family"
        ]
        # son (Italo/Estela) vs father (Donato/Olga): no shared parent
        assert family_edges == []

    def test_certainty_changes_graph(self, resolution):
        dataset, result = resolution
        loose = build_knowledge_graph(dataset, result, certainty=0.0)
        tight = build_knowledge_graph(dataset, result, certainty=2.0)
        loose_entities = [n for n in loose.nodes if n[0] == "entity"]
        tight_entities = [n for n in tight.nodes if n[0] == "entity"]
        # at high certainty the father's two records split into two entities
        assert len(tight_entities) == len(loose_entities) + 1


class TestFamilyEdges:
    def test_shared_parent_creates_edge(self):
        """Two sibling entities (same surname + same father) link."""
        records = [
            make_record(book_id=1, first=("Elsa",), last=("Capelluto",),
                        father=("Nissim",), mother=("Zimbul",)),
            make_record(book_id=2, first=("Giulia",), last=("Capelluto",),
                        father=("Nissim",), mother=("Zimbul",)),
        ]
        dataset = Dataset(records)
        resolution = ResolutionResult([])  # no same-person evidence
        graph = build_knowledge_graph(dataset, resolution)
        family_edges = [
            (u, v) for u, v, data in graph.edges(data=True)
            if data["relation"] == "possible_family"
        ]
        assert len(family_edges) == 1

    def test_same_surname_without_parents_no_edge(self):
        records = [
            make_record(book_id=1, first=("Elsa",), last=("Capelluto",)),
            make_record(book_id=2, first=("Giulia",), last=("Capelluto",)),
        ]
        graph = build_knowledge_graph(Dataset(records), ResolutionResult([]))
        assert not any(
            data["relation"] == "possible_family"
            for _u, _v, data in graph.edges(data=True)
        )
