"""Tests for the expert-tag simulator."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.datagen.tagging import ExpertTagger, Tag, TaggedPair, simplify_tags
from repro.records.dataset import Dataset
from tests.conftest import make_record


@pytest.fixture(scope="module")
def tagged_universe(small_corpus):
    dataset, _persons = small_corpus
    gold = dataset.true_pairs()
    ids = sorted(dataset.record_ids)
    # gold pairs plus an equal number of random-ish non-pairs
    non_pairs = []
    for offset, a in enumerate(ids):
        b = ids[(offset + 7) % len(ids)]
        if a < b and (a, b) not in gold:
            non_pairs.append((a, b))
        if len(non_pairs) >= len(gold):
            break
    pairs = sorted(gold) + non_pairs
    tagger = ExpertTagger(dataset, seed=31)
    return dataset, gold, tagger.tag_pairs(pairs)


class TestTagEnum:
    def test_simplified(self):
        assert Tag.YES.simplified() is True
        assert Tag.PROBABLY_YES.simplified() is True
        assert Tag.MAYBE.simplified() is None
        assert Tag.PROBABLY_NO.simplified() is False
        assert Tag.NO.simplified() is False

    def test_tagged_pair_label(self):
        assert TaggedPair((1, 2), Tag.MAYBE).label is None


class TestExpertTagger:
    def test_deterministic(self, small_corpus):
        dataset, _persons = small_corpus
        gold = sorted(dataset.true_pairs())[:20]
        tags_a = ExpertTagger(dataset, seed=5).tag_pairs(gold)
        tags_b = ExpertTagger(dataset, seed=5).tag_pairs(gold)
        assert tags_a == tags_b

    def test_true_pairs_lean_yes(self, tagged_universe):
        _dataset, gold, tagged = tagged_universe
        true_tags = [entry.tag for entry in tagged if entry.pair in gold]
        yesish = sum(1 for tag in true_tags if tag.simplified() is True)
        assert yesish / len(true_tags) > 0.6

    def test_false_pairs_lean_no(self, tagged_universe):
        _dataset, gold, tagged = tagged_universe
        false_tags = [entry.tag for entry in tagged if entry.pair not in gold]
        noish = sum(1 for tag in false_tags if tag.simplified() is False)
        assert noish / len(false_tags) > 0.7

    def test_maybe_fraction_modest(self, tagged_universe):
        """The paper had 611 Maybe of 10,017 tagged pairs (~6%)."""
        _dataset, _gold, tagged = tagged_universe
        maybes = sum(1 for entry in tagged if entry.tag is Tag.MAYBE)
        assert 0.0 < maybes / len(tagged) < 0.25

    def test_rich_identical_pair_tagged_yes(self):
        record_a = make_record(
            book_id=1, birth_year=1920, birth_day=1, birth_month=2,
            father=("Donato",), mother=("Olga",), profession="tailor",
            person_id=1,
        )
        record_b = make_record(
            book_id=2, birth_year=1920, birth_day=1, birth_month=2,
            father=("Donato",), mother=("Olga",), profession="tailor",
            person_id=1,
        )
        dataset = Dataset([record_a, record_b])
        tagged = ExpertTagger(dataset, seed=1).tag_pairs([(1, 2)])
        assert tagged[0].tag in (Tag.YES, Tag.PROBABLY_YES)

    def test_information_poor_match_drifts_to_maybe(self):
        """A true pair with almost nothing to compare is undecidable."""
        record_a = make_record(book_id=1, gender=None, person_id=1, last=("Foa",), first=())
        record_b = make_record(book_id=2, gender=None, person_id=1, last=("Foa",), first=())
        dataset = Dataset([record_a, record_b])
        counts = Counter(
            ExpertTagger(dataset, seed=seed).tag_pair((1, 2)).tag
            for seed in range(40)
        )
        assert counts[Tag.MAYBE] > 5
        assert counts[Tag.YES] == 0


class TestSimplifyTags:
    def make(self):
        return [
            TaggedPair((1, 2), Tag.YES),
            TaggedPair((1, 3), Tag.PROBABLY_YES),
            TaggedPair((2, 3), Tag.MAYBE),
            TaggedPair((3, 4), Tag.PROBABLY_NO),
            TaggedPair((4, 5), Tag.NO),
        ]

    def test_omit_maybe(self):
        labels = simplify_tags(self.make(), maybe_as=None)
        assert (2, 3) not in labels
        assert labels[(1, 2)] is True
        assert labels[(1, 3)] is True
        assert labels[(3, 4)] is False

    def test_maybe_as_no(self):
        labels = simplify_tags(self.make(), maybe_as=False)
        assert labels[(2, 3)] is False
        assert len(labels) == 5

    def test_maybe_as_yes(self):
        labels = simplify_tags(self.make(), maybe_as=True)
        assert labels[(2, 3)] is True
