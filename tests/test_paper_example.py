"""End-to-end test of the paper's running example (Guido Foa, Table 1).

The introduction's challenge: a naive first+last query misses the third
record ("Guido Foy" of Canischio), while the ER pipeline should link the
two father records and keep the son distinct.
"""

from __future__ import annotations

import pytest

from repro.blocking import MFIBlocks, MFIBlocksConfig
from repro.core import PipelineConfig, UncertainERPipeline
from repro.graph import build_knowledge_graph, narrative_for, merge_entity
from repro.records.dataset import Dataset


@pytest.fixture(scope="module")
def foa_dataset(guido_records):
    return Dataset(guido_records, name="foa")


class TestNaiveQueryMissesFoy:
    def test_exact_match_query_finds_two_of_three(self, foa_dataset):
        hits = [
            record.book_id
            for record in foa_dataset
            if "Guido" in record.first and "Foa" in record.last
        ]
        assert sorted(hits) == [1016196, 1059654]  # 1028769 missed


class TestBlockingLinksTheFatherRecords:
    def test_father_pair_found(self, foa_dataset):
        result = MFIBlocks(MFIBlocksConfig(max_minsup=2, ng=4.0)).run(foa_dataset)
        assert (1028769, 1059654) in result.candidate_pairs

    def test_decoy_not_paired(self, foa_dataset):
        result = MFIBlocks(MFIBlocksConfig(max_minsup=2, ng=4.0)).run(foa_dataset)
        assert not any(1990001 in pair for pair in result.candidate_pairs)

    def test_father_pair_ranks_above_father_son(self, foa_dataset):
        result = MFIBlocks(MFIBlocksConfig(max_minsup=2, ng=4.0)).run(foa_dataset)
        father_pair = result.pair_scores.get((1028769, 1059654), 0.0)
        son_pairs = [
            score
            for pair, score in result.pair_scores.items()
            if 1016196 in pair
        ]
        assert father_pair > 0
        for score in son_pairs:
            assert father_pair > score


class TestEndToEndNarrative:
    def test_pipeline_to_narrative(self, foa_dataset):
        pipeline = UncertainERPipeline(
            PipelineConfig(max_minsup=2, ng=4.0, expert_weighting=True)
        )
        resolution = pipeline.run(foa_dataset)
        # resolve at a certainty that keeps the strong father pair only
        father_score = resolution[(1028769, 1059654)].ranking_key
        entities = resolution.entities(
            certainty=father_score * 0.9, include_singletons=False
        )
        father_cluster = next(
            entity for entity in entities if 1059654 in entity
        )
        assert father_cluster == frozenset({1028769, 1059654})
        profile = merge_entity(0, [foa_dataset[rid] for rid in sorted(father_cluster)])
        text = narrative_for(profile)
        assert "Guido" in text
        assert "1920" in text
        assert "Auschwitz" in text

    def test_knowledge_graph_shape(self, foa_dataset):
        pipeline = UncertainERPipeline(
            PipelineConfig(max_minsup=2, ng=4.0, expert_weighting=True)
        )
        resolution = pipeline.run(foa_dataset)
        graph = build_knowledge_graph(foa_dataset, resolution, certainty=0.0)
        entities = [n for n in graph.nodes if n[0] == "entity"]
        # At most: merged father (+ possibly linked son) and decoy.
        assert 2 <= len(entities) <= 3
        assert ("place", "Auschwitz") in graph.nodes
