"""Tests for the data-pattern / prevalence / cardinality analysis."""

from __future__ import annotations

import pytest

from repro.records.dataset import Dataset
from repro.records.itembag import ItemType
from repro.records.patterns import (
    full_information_pattern_count,
    item_type_cardinality,
    item_type_prevalence,
    most_frequent_items,
    pattern_counts,
    pattern_histogram,
)
from repro.records.schema import Place, PlaceType
from tests.conftest import make_record


@pytest.fixture()
def skewed_dataset():
    """12 records with the common pattern, 1 with a rare richer one."""
    records = [
        make_record(book_id=i) for i in range(1, 13)
    ]
    records.append(
        make_record(
            book_id=13,
            birth_year=1920,
            father=("Donato",),
            places={PlaceType.BIRTH: (Place(city="Torino"),)},
        )
    )
    return Dataset(records)


class TestPatternCounts:
    def test_counts(self, skewed_dataset):
        counts = pattern_counts(skewed_dataset)
        assert sorted(counts.values()) == [1, 12]

    def test_histogram_buckets(self, skewed_dataset):
        buckets = pattern_histogram(skewed_dataset, edges=(10, 100))
        by_label = {bucket.label: bucket for bucket in buckets}
        # the rare pattern (1 record) lands in the <=10 bucket
        assert by_label["10"].n_patterns == 1
        assert by_label["10"].n_records == 1
        # the common pattern (12 records) lands in the <=100 bucket
        assert by_label["100"].n_patterns == 1
        assert by_label["100"].n_records == 12
        assert by_label["more"].n_patterns == 0

    def test_histogram_conserves_records(self, small_corpus):
        dataset, _persons = small_corpus
        buckets = pattern_histogram(dataset)
        assert sum(bucket.n_records for bucket in buckets) == len(dataset)

    def test_histogram_rejects_unsorted_edges(self, skewed_dataset):
        with pytest.raises(ValueError):
            pattern_histogram(skewed_dataset, edges=(100, 10))

    def test_corpus_pattern_skew(self, small_corpus):
        """Fig. 11 shape: many distinct patterns, few records each."""
        dataset, _persons = small_corpus
        counts = pattern_counts(dataset)
        assert len(counts) > 20  # multi-source variability
        assert max(counts.values()) < len(dataset)  # no pattern dominates completely

    def test_full_information_pattern_rare(self, small_corpus):
        dataset, _persons = small_corpus
        assert full_information_pattern_count(dataset) <= len(dataset) * 0.05


class TestPrevalence:
    def test_rows_in_table3_order(self, skewed_dataset):
        rows = item_type_prevalence(skewed_dataset)
        labels = [label for label, _, _ in rows]
        assert labels[0] == "Last Name"
        assert labels[1] == "First Name"
        assert "DOB" in labels
        assert len(labels) == 14

    def test_counts(self, skewed_dataset):
        rows = dict(
            (label, count) for label, count, _ in item_type_prevalence(skewed_dataset)
        )
        assert rows["Last Name"] == 13
        assert rows["Father's Name"] == 1
        assert rows["DOB"] == 1
        assert rows["Birth Place"] == 1
        assert rows["Spouse Name"] == 0

    def test_table3_ordering_holds_on_corpus(self, small_corpus):
        """Names are near-universal; maiden names rare (Table 3 shape)."""
        dataset, _persons = small_corpus
        rows = {label: frac for label, _, frac in item_type_prevalence(dataset)}
        assert rows["Last Name"] > 0.9
        assert rows["First Name"] > 0.9
        assert rows["Gender"] > 0.7
        assert rows["Maiden Name"] < rows["First Name"]
        assert rows["Mother's Maiden"] < rows["Mother's Name"]


class TestCardinality:
    def test_gender_cardinality_two(self, small_corpus):
        dataset, _persons = small_corpus
        rows = {row.item_type: row for row in item_type_cardinality(dataset)}
        assert rows[ItemType.GENDER].n_items == 2

    def test_names_high_cardinality(self, small_corpus):
        dataset, _persons = small_corpus
        rows = {row.item_type: row for row in item_type_cardinality(dataset)}
        assert rows[ItemType.LAST_NAME].n_items > rows[ItemType.GENDER].n_items
        assert rows[ItemType.BIRTH_MONTH].n_items <= 12
        assert rows[ItemType.BIRTH_DAY].n_items <= 31

    def test_records_per_item_math(self, skewed_dataset):
        rows = {row.item_type: row for row in item_type_cardinality(skewed_dataset)}
        # 13 records all share one last name value.
        assert rows[ItemType.LAST_NAME].n_items == 1
        assert rows[ItemType.LAST_NAME].records_per_item == 13


class TestMostFrequentItems:
    def test_fraction_bounds(self, small_corpus):
        dataset, _persons = small_corpus
        with pytest.raises(ValueError):
            most_frequent_items(dataset, -0.1)
        with pytest.raises(ValueError):
            most_frequent_items(dataset, 1.1)

    def test_returns_descending_support(self, small_corpus):
        dataset, _persons = small_corpus
        items = most_frequent_items(dataset, 0.01)
        supports = [len(dataset.item_index[item]) for item in items]
        assert supports == sorted(supports, reverse=True)

    def test_zero_fraction(self, small_corpus):
        dataset, _persons = small_corpus
        assert most_frequent_items(dataset, 0.0) == []


class TestEmptyDataset:
    def test_histogram_empty(self):
        from repro.records.dataset import Dataset
        buckets = pattern_histogram(Dataset([]))
        assert sum(b.n_records for b in buckets) == 0

    def test_full_information_empty(self):
        from repro.records.dataset import Dataset
        assert full_information_pattern_count(Dataset([])) == 0

    def test_prevalence_empty(self):
        from repro.records.dataset import Dataset
        rows = item_type_prevalence(Dataset([]))
        assert all(count == 0 for _label, count, _frac in rows)
