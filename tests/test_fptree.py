"""Tests for the FP-tree data structure."""

from __future__ import annotations

from repro.mining.fptree import FPTree


def build_sample_tree():
    """Three transactions sharing prefixes (items already ordered)."""
    tree = FPTree()
    tree.insert([0, 1, 2])
    tree.insert([0, 1])
    tree.insert([0, 3])
    return tree


class TestInsert:
    def test_empty(self):
        assert FPTree().is_empty()

    def test_prefix_sharing(self):
        tree = build_sample_tree()
        # Root has a single child for item 0 with count 3.
        assert list(tree.root.children) == [0]
        assert tree.root.children[0].count == 3

    def test_item_support(self):
        tree = build_sample_tree()
        assert tree.support_of(0) == 3
        assert tree.support_of(1) == 2
        assert tree.support_of(2) == 1
        assert tree.support_of(99) == 0

    def test_multiplicity(self):
        tree = FPTree()
        tree.insert([0, 1], count=5)
        assert tree.support_of(1) == 5

    def test_header_chains(self):
        tree = FPTree()
        tree.insert([0, 1])
        tree.insert([2, 1])  # another path containing item 1
        nodes = list(tree.nodes_of(1))
        assert len(nodes) == 2
        assert all(node.item == 1 for node in nodes)


class TestPrefixPaths:
    def test_paths(self):
        tree = build_sample_tree()
        paths = tree.prefix_paths(1)
        assert len(paths) == 1
        items, count = paths[0]
        assert items == [0]
        assert count == 2

    def test_paths_for_leaf(self):
        tree = build_sample_tree()
        paths = tree.prefix_paths(2)
        assert paths == [([1, 0], 1)]

    def test_top_level_item_empty_path(self):
        tree = FPTree()
        tree.insert([0])
        assert tree.prefix_paths(0) == [([], 1)]


class TestSinglePath:
    def test_chain_detected(self):
        tree = FPTree()
        tree.insert([0, 1, 2])
        tree.insert([0, 1])
        assert tree.single_path() == [(0, 2), (1, 2), (2, 1)]

    def test_branching_returns_none(self):
        assert build_sample_tree().single_path() is None

    def test_empty_tree(self):
        assert FPTree().single_path() == []


class TestConditional:
    def test_filters_below_minsup(self):
        paths = [([0, 1], 2), ([0], 1)]
        order = {0: 0, 1: 1}
        tree = FPTree.from_conditional(paths, minsup=3, order=order)
        # item 0 has support 3, item 1 only 2
        assert tree.support_of(0) == 3
        assert tree.support_of(1) == 0

    def test_keeps_global_order(self):
        paths = [([2, 0], 2)]
        order = {0: 0, 2: 2}
        tree = FPTree.from_conditional(paths, minsup=1, order=order)
        # Item 0 (more frequent globally) must be nearer the root.
        assert list(tree.root.children) == [0]
        assert list(tree.root.children[0].children) == [2]

    def test_empty_base(self):
        tree = FPTree.from_conditional([], minsup=1, order={})
        assert tree.is_empty()
