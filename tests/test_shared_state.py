"""Unit tests for the pickle-free shared worker state layer.

``repro.parallel.shared`` publishes heavy read-only objects (scorer,
interned corpus, dataset, model) once per run; workers resolve a token
against the fork-inherited registry instead of unpickling a corpus per
chunk. These tests pin the lifecycle (publish / resolve / close /
generation), the shm segment accounting, the shared work functions'
byte-parity with their pickled twins, and the executor's warm-pool
behavior around generation changes.
"""

from __future__ import annotations

import pickle

import pytest

from repro.blocking.scoring import BlockScorer, ScoringMethod
from repro.parallel.executor import MultiprocessExecutor
from repro.parallel.shared import (
    publish_shared_state,
    shared_generation,
    shared_state,
    shared_state_supported,
)
from repro.parallel.work import (
    classify_pair_chunk,
    classify_pair_chunk_shared,
    score_pair_chunk,
    score_pair_chunk_shared,
)
from repro.similarity.interning import InternedCorpus


@pytest.fixture()
def bags(small_corpus):
    dataset, _persons = small_corpus
    return dict(dataset.item_bags)


@pytest.fixture()
def pairs(bags):
    rids = sorted(bags)[:30]
    return [(rids[i], rids[i + 1]) for i in range(len(rids) - 1)]


class TestLifecycle:
    def test_fork_platform_supports_shared_state(self):
        # The suite's parity tests rely on the shared path actually
        # being exercised on the CI/dev platforms (Linux => fork).
        assert shared_state_supported()

    def test_publish_resolve_close(self, bags):
        corpus = InternedCorpus(bags)
        scorer = BlockScorer(method=ScoringMethod.WEIGHTED)
        handle = publish_shared_state(scorer=scorer, corpus=corpus)
        try:
            state = shared_state(handle.token)
            assert state["scorer"] is scorer
            assert state["corpus"] is corpus
        finally:
            handle.close()
        with pytest.raises(RuntimeError, match="not published"):
            shared_state(handle.token)

    def test_generation_bumps_on_publish_and_close(self, bags):
        before = shared_generation()
        handle = publish_shared_state(corpus=InternedCorpus(bags))
        after_publish = shared_generation()
        handle.close()
        after_close = shared_generation()
        assert after_publish == before + 1
        assert after_close == after_publish + 1

    def test_close_is_idempotent(self, bags):
        handle = publish_shared_state(corpus=InternedCorpus(bags))
        handle.close()
        generation = shared_generation()
        handle.close()
        assert shared_generation() == generation
        assert handle.closed

    def test_context_manager_closes(self, bags):
        with publish_shared_state(corpus=InternedCorpus(bags)) as handle:
            assert not handle.closed
            assert shared_state(handle.token)
        assert handle.closed

    def test_corpus_survives_handle_close(self, bags, pairs):
        corpus = InternedCorpus(bags)
        scorer = BlockScorer(method=ScoringMethod.UNIFORM)
        expected = scorer.pair_similarity_batch(corpus, pairs)
        with publish_shared_state(corpus=corpus):
            pass
        # Arrays were rehomed to shm and back to private copies; the
        # kernels must still see identical data.
        assert scorer.pair_similarity_batch(corpus, pairs) == expected

    def test_segment_accounting(self, bags):
        corpus = InternedCorpus(bags)
        baseline = len(
            pickle.dumps(
                {"corpus": corpus}, protocol=pickle.HIGHEST_PROTOCOL
            )
        )
        with publish_shared_state(corpus=corpus) as handle:
            assert handle.segment_bytes > 0
            assert handle.baseline_bytes >= baseline // 2
        no_corpus = publish_shared_state(payload=[1, 2, 3])
        try:
            assert no_corpus.segment_bytes == 0
            assert no_corpus.baseline_bytes > 0
        finally:
            no_corpus.close()


class TestSharedWorkFunctions:
    def test_score_chunk_parity(self, bags, pairs):
        corpus = InternedCorpus(bags)
        scorer = BlockScorer(method=ScoringMethod.WEIGHTED)
        with publish_shared_state(scorer=scorer, corpus=corpus) as handle:
            shared = score_pair_chunk_shared((handle.token, pairs))
        restricted = {
            rid: bags[rid] for pair in pairs for rid in pair
        }
        legacy = score_pair_chunk((scorer, restricted, pairs))
        assert shared == legacy

    def test_classify_chunk_parity(self, small_corpus):
        from repro.classify.training import PairClassifier

        dataset, _persons = small_corpus
        rids = sorted(dataset.record_ids)[:20]
        pairs = [(rids[i], rids[i + 1]) for i in range(len(rids) - 1)]
        labels = {pair: index % 2 == 0 for index, pair in enumerate(pairs)}
        classifier = PairClassifier(dataset).fit(labels)
        model = classifier.model
        with publish_shared_state(
            dataset=dataset, model=model, feature_names=None
        ) as handle:
            shared = classify_pair_chunk_shared((handle.token, pairs))
        legacy = classify_pair_chunk((dataset, model, None, pairs))
        assert shared == legacy

    def test_stale_token_raises(self, bags, pairs):
        handle = publish_shared_state(
            scorer=BlockScorer(), corpus=InternedCorpus(bags)
        )
        handle.close()
        with pytest.raises(RuntimeError, match="stale generation"):
            score_pair_chunk_shared((handle.token, pairs))


class TestWarmPool:
    def work(self, executor, bags, pairs, handle):
        return executor.map_chunks(
            score_pair_chunk_shared,
            [
                (handle.token, chunk)
                for chunk in executor.plan_chunks(pairs)
            ],
            shared_bytes=handle.baseline_bytes,
        )

    @pytest.mark.skipif(
        not shared_state_supported(), reason="fork start method required"
    )
    def test_pool_kept_warm_across_dispatches(self, bags, pairs):
        corpus = InternedCorpus(bags)
        executor = MultiprocessExecutor(workers=2)
        try:
            with publish_shared_state(
                scorer=BlockScorer(), corpus=corpus
            ) as handle:
                first = self.work(executor, bags, pairs, handle)
                second = self.work(executor, bags, pairs, handle)
            assert first == second
            assert executor.stats.pools_created == 1
            assert executor.stats.shared_dispatches == 2
            assert executor.stats.bytes_not_pickled > 0
        finally:
            executor.close()

    @pytest.mark.skipif(
        not shared_state_supported(), reason="fork start method required"
    )
    def test_generation_change_rebuilds_pool(self, bags, pairs):
        executor = MultiprocessExecutor(workers=2)
        try:
            with publish_shared_state(
                scorer=BlockScorer(), corpus=InternedCorpus(bags)
            ) as first:
                self.work(executor, bags, pairs, first)
            # The close above bumped the generation: a pool forked
            # before the next publish could never resolve its token.
            with publish_shared_state(
                scorer=BlockScorer(), corpus=InternedCorpus(bags)
            ) as second:
                self.work(executor, bags, pairs, second)
            assert executor.stats.pools_created == 2
        finally:
            executor.close()

    def test_executor_close_is_idempotent(self):
        executor = MultiprocessExecutor(workers=2)
        executor.close()
        executor.close()

    def test_stats_echo_includes_shared_counters(self):
        executor = MultiprocessExecutor(workers=2)
        try:
            echo = executor.stats.to_echo()
            for key in (
                "shared_dispatches",
                "bytes_not_pickled",
                "shared_segment_bytes",
                "pools_created",
            ):
                assert key in echo
        finally:
            executor.close()
