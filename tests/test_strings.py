"""Unit and property tests for the string similarity metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.strings import (
    dice_qgrams,
    jaccard,
    jaccard_qgrams,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    qgrams,
)

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu")), max_size=12
)


class TestQgrams:
    def test_basic_bigrams_padded(self):
        grams = qgrams("ab", 2)
        assert grams == frozenset({"#a", "ab", "b$"})

    def test_unpadded(self):
        assert qgrams("abc", 2, pad=False) == frozenset({"ab", "bc"})

    def test_empty_string(self):
        assert qgrams("", 2) == frozenset()

    def test_q1_is_character_set(self):
        assert qgrams("aba", 1) == frozenset({"a", "b"})

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_short_string_single_gram(self):
        assert qgrams("a", 3, pad=False) == frozenset({"a"})


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard([], []) == 1.0

    def test_one_empty(self):
        assert jaccard({"a"}, set()) == 0.0

    @given(st.sets(st.integers(), max_size=8), st.sets(st.integers(), max_size=8))
    def test_bounded_and_symmetric(self, a, b):
        value = jaccard(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard(b, a)


class TestJaro:
    def test_known_value_martha(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944444, abs=1e-5)

    def test_known_value_dixon(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.766667, abs=1e-5)

    def test_identical(self):
        assert jaro("abc", "abc") == 1.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0
        assert jaro("abc", "") == 0.0

    def test_no_common_characters(self):
        assert jaro("abc", "xyz") == 0.0

    @given(names, names)
    def test_bounded_and_symmetric(self, a, b):
        value = jaro(a, b)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert value == pytest.approx(jaro(b, a))


class TestJaroWinkler:
    def test_known_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.961111, abs=1e-5)

    def test_prefix_boost(self):
        assert jaro_winkler("prefix", "prefixx") > jaro("prefix", "prefixx")

    def test_bella_della_similarity(self):
        # The paper's clerical-error example must stay recognizable.
        assert jaro_winkler("bella", "della") > 0.8

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    @given(names, names)
    def test_at_least_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12

    @given(names)
    def test_identity(self, text):
        assert jaro_winkler(text, text) == pytest.approx(1.0 if text else 1.0)


class TestLevenshtein:
    def test_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_cases(self):
        assert levenshtein("", "") == 0
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "abcd") == 4

    def test_single_substitution(self):
        assert levenshtein("bella", "della") == 1

    @given(names, names)
    def test_metric_properties(self, a, b):
        d = levenshtein(a, b)
        assert d == levenshtein(b, a)
        assert d >= abs(len(a) - len(b))
        assert d <= max(len(a), len(b))
        assert (d == 0) == (a == b)

    @settings(max_examples=40)
    @given(names, names, names)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    def test_similarity_normalization(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("a", "b") == 0.0


class TestDiceAndCompound:
    def test_dice_identical(self):
        assert dice_qgrams("warsaw", "warsaw") == 1.0

    def test_dice_empty(self):
        assert dice_qgrams("", "") == 1.0

    def test_jaccard_qgrams_typo_tolerant(self):
        assert jaccard_qgrams("rosenberg", "rozenberg") > 0.5

    def test_monge_elkan_multiword(self):
        score = monge_elkan(["john", "harris"], ["john"])
        assert 0.5 < score < 1.0

    def test_monge_elkan_empty(self):
        assert monge_elkan([], []) == 1.0
        assert monge_elkan(["a"], []) == 0.0
