"""The perf-regression ledger: record, diff, verdicts, and the CLI.

Pins the contracts in :mod:`repro.obs.perf` (docs/OBSERVABILITY.md):

* a ledger is byte-stable on re-record of identical reports (no
  timestamps — the repo-wide wall-clock ban extends to tooling);
* timing diffs are ratio-based with a noise floor, counters compare
  exactly (drift is its own failure class), and ``parallel.*``
  measurement counters are exempt;
* ``repro perf diff`` is warn-only by default and ``--strict`` turns a
  regression verdict into exit 1 — mirroring ``--assert-speedup``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.obs import RunReport, StageStats
from repro.obs.perf import (
    DEFAULT_THRESHOLD,
    LEDGER_SCHEMA,
    MIN_SECONDS,
    LedgerEntry,
    PerfLedger,
    diff_reports,
    run_diff,
)
from repro.version import repro_version


def _report(
    total=1.0,
    stages=None,
    counters=None,
    parallel=None,
):
    """A hand-built report: deterministic, no tracer needed."""
    stage_rows = [
        StageStats(name=name, path=path, depth=depth, calls=1,
                   total_seconds=seconds)
        for name, path, depth, seconds in (
            stages
            or [("pipeline.run", "pipeline.run", 1, total),
                ("pipeline.block", "pipeline.run/pipeline.block", 2,
                 total / 2)]
        )
    ]
    return RunReport(
        version=repro_version(),
        schema_version=1,
        total_seconds=total,
        stages=stage_rows,
        counters=dict(
            counters if counters is not None else {"pipeline.records": 50}
        ),
        parallel=dict(parallel or {}),
    )


def _write(report, path):
    report.to_json(path)
    return path


@pytest.fixture()
def ledger(tmp_path):
    return PerfLedger(tmp_path / "baselines")


# -- ledger persistence -------------------------------------------------------


class TestPerfLedger:
    def test_fresh_ledger_is_empty(self, ledger):
        assert ledger.entries() == []
        assert ledger.baseline("anything") is None

    def test_record_round_trips_reports(self, ledger, tmp_path):
        source = _write(_report(total=2.0), tmp_path / "bench.report.json")
        [entry] = ledger.record([source], note="first")
        assert entry.name == "bench"
        assert entry.file == "bench.report.json"
        assert entry.note == "first"
        assert entry.repro_version == repro_version()
        loaded = ledger.baseline("bench")
        assert loaded is not None
        assert loaded.total_seconds == pytest.approx(2.0)
        assert [e.name for e in ledger.entries()] == ["bench"]

    def test_record_strips_report_suffix_only_once(self, ledger, tmp_path):
        source = _write(_report(), tmp_path / "plain.json")
        [entry] = ledger.record([source])
        assert entry.name == "plain"
        assert entry.file == "plain.report.json"

    def test_rerecord_replaces_same_name(self, ledger, tmp_path):
        source = _write(_report(total=1.0), tmp_path / "b.report.json")
        ledger.record([source], note="v1")
        _write(_report(total=9.0), source)
        ledger.record([source], note="v2")
        entries = ledger.entries()
        assert len(entries) == 1
        assert entries[0].note == "v2"
        assert ledger.baseline("b").total_seconds == pytest.approx(9.0)

    def test_rerecord_identical_reports_is_byte_stable(
        self, ledger, tmp_path
    ):
        # No timestamps anywhere: committing a refreshed baseline from
        # unchanged results must not churn a single byte.
        source = _write(_report(), tmp_path / "stable.report.json")
        ledger.record([source], note="pin")
        first = {
            path.name: path.read_bytes()
            for path in ledger.directory.iterdir()
        }
        ledger.record([source], note="pin")
        second = {
            path.name: path.read_bytes()
            for path in ledger.directory.iterdir()
        }
        assert first == second

    def test_index_schema(self, ledger, tmp_path):
        ledger.record([_write(_report(), tmp_path / "a.report.json")])
        payload = json.loads(ledger.index_path.read_text())
        assert payload["schema"] == LEDGER_SCHEMA
        assert payload["recorded_with"] == repro_version()
        assert [e["name"] for e in payload["entries"]] == ["a"]

    def test_entry_round_trip(self):
        entry = LedgerEntry(
            name="n", file="n.report.json", repro_version="1.0", note="x"
        )
        assert LedgerEntry.from_dict(entry.to_dict()) == entry


# -- metric diffs -------------------------------------------------------------


class TestDiffReports:
    def test_identical_reports_are_ok(self):
        rows = diff_reports("r", _report(), _report())
        assert rows
        assert all(row.status == "ok" for row in rows)

    def test_regression_flagged_above_threshold(self):
        rows = diff_reports(
            "r", _report(total=1.0), _report(total=1.5), threshold=0.25
        )
        total = next(r for r in rows if r.metric == "total_seconds")
        assert total.status == "regression"
        assert total.ratio == pytest.approx(1.5)
        assert total.direction == "lower-better"

    def test_improvement_flagged_below_threshold(self):
        rows = diff_reports(
            "r", _report(total=1.0), _report(total=0.5), threshold=0.25
        )
        total = next(r for r in rows if r.metric == "total_seconds")
        assert total.status == "improved"

    def test_within_threshold_is_ok(self):
        rows = diff_reports(
            "r", _report(total=1.0), _report(total=1.2), threshold=0.25
        )
        total = next(r for r in rows if r.metric == "total_seconds")
        assert total.status == "ok"

    def test_noise_floor_suppresses_tiny_timings(self):
        # 10x slower but both sides under MIN_SECONDS: scheduler noise.
        fast = MIN_SECONDS / 100
        rows = diff_reports(
            "r", _report(total=fast), _report(total=fast * 10)
        )
        total = next(r for r in rows if r.metric == "total_seconds")
        assert total.status == "ok"

    def test_stage_rows_compared_to_depth_two_only(self):
        stages = [
            ("a", "a", 1, 1.0),
            ("b", "a/b", 2, 0.5),
            ("c", "a/b/c", 3, 0.25),
        ]
        rows = diff_reports(
            "r", _report(stages=stages), _report(stages=stages)
        )
        metrics = {row.metric for row in rows}
        assert "stage:a" in metrics
        assert "stage:a/b" in metrics
        assert "stage:a/b/c" not in metrics

    def test_missing_current_stage_is_skipped(self):
        base = _report(stages=[("a", "a", 1, 1.0), ("b", "b", 1, 1.0)])
        cur = _report(stages=[("a", "a", 1, 1.0)])
        metrics = {row.metric for row in diff_reports("r", base, cur)}
        assert "stage:b" not in metrics

    def test_counter_drift_is_flagged(self):
        rows = diff_reports(
            "r",
            _report(counters={"pipeline.records": 50}),
            _report(counters={"pipeline.records": 60}),
        )
        drift = next(r for r in rows if r.metric.startswith("counter:"))
        assert drift.status == "drift"
        assert drift.direction == "exact"

    def test_missing_counter_reports_minus_one(self):
        rows = diff_reports(
            "r",
            _report(counters={"pipeline.records": 50}),
            _report(counters={}),
        )
        drift = next(r for r in rows if r.metric.startswith("counter:"))
        assert drift.status == "drift"
        assert drift.current == -1

    def test_measurement_counters_exempt_from_drift(self):
        rows = diff_reports(
            "r",
            _report(counters={"parallel.payload_bytes_in": 1000}),
            _report(counters={"parallel.payload_bytes_in": 9999}),
        )
        assert not any(r.metric.startswith("counter:parallel") for r in rows)

    def test_parallel_wall_and_speedup_compared(self):
        base = _report(parallel={
            "wall_seconds": 1.0, "speedup_vs_serial": 2.0,
        })
        cur = _report(parallel={
            "wall_seconds": 2.0, "speedup_vs_serial": 1.0,
        })
        rows = {r.metric: r for r in diff_reports("r", base, cur)}
        assert rows["parallel.wall_seconds"].status == "regression"
        # Speedup halved: for a higher-is-better metric that regresses.
        speedup = rows["parallel.speedup_vs_serial"]
        assert speedup.status == "regression"
        assert speedup.direction == "higher-better"

    def test_speedup_improvement(self):
        base = _report(parallel={"speedup_vs_serial": 1.0})
        cur = _report(parallel={"speedup_vs_serial": 2.0})
        rows = {r.metric: r for r in diff_reports("r", base, cur)}
        assert rows["parallel.speedup_vs_serial"].status == "improved"

    def test_null_speedup_skipped(self):
        base = _report(parallel={"speedup_vs_serial": None})
        cur = _report(parallel={"speedup_vs_serial": 2.0})
        metrics = {r.metric for r in diff_reports("r", base, cur)}
        assert "parallel.speedup_vs_serial" not in metrics


# -- directory diff + verdicts ------------------------------------------------


class TestRunDiff:
    def _populate(self, tmp_path, baseline_total=1.0, current_total=1.0):
        baselines = tmp_path / "baselines"
        results = tmp_path / "results"
        results.mkdir()
        source = _write(
            _report(total=baseline_total), tmp_path / "bench.report.json"
        )
        PerfLedger(baselines).record([source])
        _write(_report(total=current_total), results / "bench.report.json")
        return baselines, results

    def test_no_ledger_is_a_usage_error(self, tmp_path):
        result, error = run_diff(tmp_path / "nope", tmp_path)
        assert result is None
        assert "no ledger index" in error

    def test_empty_index_is_a_usage_error(self, tmp_path):
        directory = tmp_path / "baselines"
        directory.mkdir()
        (directory / "ledger.json").write_text('{"entries": []}')
        result, error = run_diff(directory, tmp_path)
        assert result is None
        assert "no entries" in error

    def test_ok_verdict(self, tmp_path):
        baselines, results = self._populate(tmp_path)
        result, error = run_diff(baselines, results)
        assert error == ""
        assert result.verdict == "ok"
        assert result.regressions == []
        assert "all" in result.format_table()
        assert "verdict: ok" in result.format_table()

    def test_regression_verdict_and_table(self, tmp_path):
        baselines, results = self._populate(
            tmp_path, baseline_total=1.0, current_total=2.0
        )
        result, _error = run_diff(baselines, results, threshold=0.25)
        assert result.verdict == "regression"
        table = result.format_table()
        assert "REGRESSION" in table
        assert "verdict: regression" in table

    def test_missing_current_report_is_a_regression(self, tmp_path):
        baselines, results = self._populate(tmp_path)
        (results / "bench.report.json").unlink()
        result, _error = run_diff(baselines, results)
        assert result.missing == ["bench"]
        assert result.verdict == "regression"
        assert "MISSING" in result.format_table()

    def test_json_verdict_schema(self, tmp_path):
        baselines, results = self._populate(
            tmp_path, baseline_total=1.0, current_total=2.0
        )
        result, _error = run_diff(baselines, results)
        payload = result.to_dict()
        assert payload["schema"] == LEDGER_SCHEMA
        assert payload["threshold"] == pytest.approx(DEFAULT_THRESHOLD)
        assert payload["verdict"] == "regression"
        assert payload["regressions"]
        row = payload["rows"][0]
        assert set(row) == {
            "report", "metric", "baseline", "current", "ratio",
            "status", "direction",
        }
        # The verdict must be JSON-serializable as-is (CI artifact).
        json.dumps(payload)


# -- CLI ----------------------------------------------------------------------


class TestPerfCli:
    def _record(self, tmp_path, total=1.0):
        source = _write(_report(total=total), tmp_path / "bench.report.json")
        ledger_dir = tmp_path / "baselines"
        code = cli_main([
            "perf", "record", str(source), "--ledger", str(ledger_dir),
            "--note", "cli test",
        ])
        assert code == 0
        return ledger_dir

    def test_record_writes_ledger(self, tmp_path, capsys):
        ledger_dir = self._record(tmp_path)
        output = capsys.readouterr().out
        assert "recorded baseline bench" in output
        assert (ledger_dir / "ledger.json").exists()
        assert (ledger_dir / "bench.report.json").exists()

    def test_record_missing_report_exits_2(self, tmp_path, capsys):
        code = cli_main([
            "perf", "record", str(tmp_path / "absent.report.json"),
            "--ledger", str(tmp_path / "baselines"),
        ])
        assert code == 2
        assert "no such report" in capsys.readouterr().err

    def test_diff_ok_exits_0(self, tmp_path, capsys):
        ledger_dir = self._record(tmp_path)
        results = tmp_path / "results"
        results.mkdir()
        _write(_report(total=1.0), results / "bench.report.json")
        code = cli_main([
            "perf", "diff", "--baseline", str(ledger_dir),
            "--current", str(results),
        ])
        assert code == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_diff_regression_warns_by_default(self, tmp_path, capsys):
        ledger_dir = self._record(tmp_path, total=1.0)
        results = tmp_path / "results"
        results.mkdir()
        _write(_report(total=3.0), results / "bench.report.json")
        code = cli_main([
            "perf", "diff", "--baseline", str(ledger_dir),
            "--current", str(results),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "verdict: regression" in captured.out
        assert "warn-only" in captured.err

    def test_diff_strict_exits_1(self, tmp_path, capsys):
        ledger_dir = self._record(tmp_path, total=1.0)
        results = tmp_path / "results"
        results.mkdir()
        _write(_report(total=3.0), results / "bench.report.json")
        code = cli_main([
            "perf", "diff", "--baseline", str(ledger_dir),
            "--current", str(results), "--strict",
        ])
        assert code == 1

    def test_diff_writes_json_artifact(self, tmp_path, capsys):
        ledger_dir = self._record(tmp_path, total=1.0)
        results = tmp_path / "results"
        results.mkdir()
        _write(_report(total=3.0), results / "bench.report.json")
        out = tmp_path / "perf-diff.json"
        code = cli_main([
            "perf", "diff", "--baseline", str(ledger_dir),
            "--current", str(results), "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["verdict"] == "regression"
        assert "wrote verdict" in capsys.readouterr().out

    def test_diff_threshold_flag(self, tmp_path, capsys):
        ledger_dir = self._record(tmp_path, total=1.0)
        results = tmp_path / "results"
        results.mkdir()
        # 1.4x: regression at the 0.25 default, ok at 0.5.
        _write(_report(total=1.4), results / "bench.report.json")
        code = cli_main([
            "perf", "diff", "--baseline", str(ledger_dir),
            "--current", str(results), "--threshold", "0.5",
        ])
        assert code == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_diff_without_ledger_exits_2(self, tmp_path, capsys):
        code = cli_main([
            "perf", "diff", "--baseline", str(tmp_path / "nope"),
            "--current", str(tmp_path),
        ])
        assert code == 2
        assert "no ledger index" in capsys.readouterr().err

    def test_committed_seed_baselines_parse(self):
        # The ledger committed under benchmarks/baselines/ must always
        # load with the current schema — it is CI's comparison anchor.
        from pathlib import Path

        ledger = PerfLedger(
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "baselines"
        )
        entries = ledger.entries()
        assert entries, "committed perf ledger is empty"
        for entry in entries:
            report = ledger.baseline(entry.name)
            assert report is not None
            assert report.schema_version == 1
