"""Failure-injection and edge-input robustness for the full pipeline.

Multi-source archival data is hostile: empty fields, unicode from four
alphabets, pathological duplicates, single-record datasets. The pipeline
must degrade, never crash.
"""

from __future__ import annotations

import pytest

from repro.blocking import MFIBlocks, MFIBlocksConfig
from repro.classify import ADTreeLearner
from repro.core import PipelineConfig, UncertainERPipeline
from repro.records.dataset import Dataset
from repro.records.schema import Gender, Place, PlaceType
from repro.similarity.features import extract_features
from tests.conftest import make_record


class TestDegenerateDatasets:
    def test_empty_dataset(self):
        resolution = UncertainERPipeline(PipelineConfig()).run(Dataset([]))
        assert len(resolution) == 0
        assert resolution.entities() == []

    def test_single_record(self):
        dataset = Dataset([make_record(book_id=1)])
        resolution = UncertainERPipeline(PipelineConfig()).run(dataset)
        assert len(resolution) == 0

    def test_two_identical_records(self):
        dataset = Dataset([
            make_record(book_id=1, birth_year=1920, person_id=1),
            make_record(book_id=2, birth_year=1920, person_id=1),
        ])
        resolution = UncertainERPipeline(
            PipelineConfig(max_minsup=2)
        ).run(dataset)
        assert (1, 2) in resolution.pairs

    def test_all_records_identical(self):
        """A pathological pile of clones must stay within SN caps."""
        records = [
            make_record(book_id=i, birth_year=1920, person_id=1)
            for i in range(1, 31)
        ]
        config = MFIBlocksConfig(max_minsup=3, ng=2.0)
        result = MFIBlocks(config).run(Dataset(records))
        cap = int(config.ng * config.max_minsup)
        for count in result.neighborhoods().values():
            assert count <= cap

    def test_records_with_empty_bags(self):
        dataset = Dataset([
            make_record(book_id=1, first=(), last=(), gender=None),
            make_record(book_id=2, first=(), last=(), gender=None),
        ])
        resolution = UncertainERPipeline(PipelineConfig()).run(dataset)
        assert len(resolution) == 0


class TestHostileValues:
    def test_unicode_names(self):
        dataset = Dataset([
            make_record(book_id=1, first=("Mosè",), last=("Łęski",),
                        person_id=1),
            make_record(book_id=2, first=("Mosè",), last=("Łęski",),
                        person_id=1),
            make_record(book_id=3, first=("Σολομών",), last=("Ναχμίας",),
                        person_id=2),
            make_record(book_id=4, first=("Соломон",), last=("Нахмиас",),
                        person_id=2),
        ])
        resolution = UncertainERPipeline(
            PipelineConfig(max_minsup=2)
        ).run(dataset)
        assert (1, 2) in resolution.pairs

    def test_unicode_feature_extraction(self):
        a = make_record(book_id=1, first=("Mojżesz",), last=("Żółkiewski",))
        b = make_record(book_id=2, first=("Mojzesz",), last=("Zolkiewski",))
        features = extract_features(a, b)
        assert features["sameFN"] == "no"  # different spellings
        assert 0.0 <= features["FNdist"] <= 1.0

    def test_very_long_names(self):
        long_name = "a" * 500
        a = make_record(book_id=1, first=(long_name,))
        b = make_record(book_id=2, first=(long_name,))
        features = extract_features(a, b)
        assert features["sameFN"] == "yes"
        assert features["FNdist"] == 1.0

    def test_whitespace_heavy_values(self):
        a = make_record(book_id=1, last=("Della Torre",), person_id=1)
        b = make_record(book_id=2, last=("Della Torre",), person_id=1)
        dataset = Dataset([a, b])
        resolution = UncertainERPipeline(
            PipelineConfig(max_minsup=2)
        ).run(dataset)
        assert (1, 2) in resolution.pairs

    def test_many_valued_first_names(self):
        names = tuple(f"Name{i}" for i in range(12))
        a = make_record(book_id=1, first=names)
        b = make_record(book_id=2, first=names[:1])
        features = extract_features(a, b)
        assert features["sameFN"] == "partial"


class TestClassifierRobustness:
    def test_single_class_training(self):
        """All-positive training data must not crash the learner."""
        features = [{"x": float(i % 3)} for i in range(20)]
        model = ADTreeLearner(n_rounds=3).fit(features, [True] * 20)
        assert model.score({"x": 1.0}) > 0

    def test_constant_features(self):
        features = [{"x": 1.0, "c": "same"} for _ in range(20)]
        labels = [i % 2 == 0 for i in range(20)]
        model = ADTreeLearner(n_rounds=3).fit(features, labels)
        # nothing separable: near-zero scores, no crash
        assert abs(model.score({"x": 1.0, "c": "same"})) < 1.0

    def test_extreme_feature_magnitudes(self):
        features = (
            [{"x": 1e12} for _ in range(10)]
            + [{"x": -1e12} for _ in range(10)]
        )
        labels = [True] * 10 + [False] * 10
        model = ADTreeLearner(n_rounds=2).fit(features, labels)
        assert model.score({"x": 1e12}) > 0 > model.score({"x": -1e12})


class TestPlaceEdgeCases:
    def test_place_with_only_coords(self):
        place = Place(coords=None)
        record = make_record(book_id=1, places={PlaceType.BIRTH: (place,)})
        assert "place:birth:city" not in record.pattern()

    def test_conflicting_places_same_type(self):
        a = make_record(
            book_id=1,
            places={PlaceType.WARTIME: (
                Place(city="Lwow"), Place(city="Warszawa"),
            )},
            person_id=1,
        )
        b = make_record(
            book_id=2,
            places={PlaceType.WARTIME: (Place(city="Warszawa"),)},
            person_id=1,
        )
        features = extract_features(a, b)
        assert features["sameWPCity"] == "yes"  # any overlap counts
