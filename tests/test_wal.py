"""Tests for the write-ahead log (repro.resilience.wal)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.faults import SimulatedCrash
from repro.resilience.wal import (
    DEFAULT_SEGMENT_MAX_BYTES,
    WAL_SCHEMA,
    WalError,
    WalFaultPlan,
    WriteAheadLog,
    decode_entry,
    encode_entry,
)


def _write_batches(directory, batches, **kwargs):
    """Append every batch (begin + commit) and close the log."""
    wal = WriteAheadLog(directory, **kwargs)
    for batch_id, records in enumerate(batches):
        wal.append_begin(batch_id, records)
        wal.append_commit(batch_id)
    wal.close()
    return wal


def _records(batch_id, n=2):
    return [
        {"book_id": 100 * batch_id + i, "name": f"rec-{batch_id}-{i}"}
        for i in range(n)
    ]


class TestEntryCodec:
    def test_roundtrip(self):
        line = encode_entry(7, "begin", 3, {"records": [{"book_id": 1}]})
        entry = decode_entry(line)
        assert entry.seq == 7
        assert entry.kind == "begin"
        assert entry.batch_id == 3
        assert entry.payload == {"records": [{"book_id": 1}]}

    def test_rejects_garbage(self):
        with pytest.raises(WalError, match="undecodable"):
            decode_entry(b"\xff\xfe not json\n")

    def test_rejects_tampered_payload(self):
        line = encode_entry(0, "commit", 0, {})
        document = json.loads(line)
        document["batch"] = 99  # bytes decode, hash must not
        tampered = (json.dumps(document) + "\n").encode("utf-8")
        with pytest.raises(WalError, match="hash mismatch"):
            decode_entry(tampered)

    def test_rejects_wrong_schema(self):
        document = {
            "schema": WAL_SCHEMA + 1, "seq": 0, "kind": "commit",
            "batch": 0, "payload": {},
        }
        from repro.resilience.checkpoints import canonical_digest
        document["sha256"] = canonical_digest(
            {k: document[k] for k in
             ("schema", "seq", "kind", "batch", "payload")}
        )
        line = (json.dumps(document) + "\n").encode("utf-8")
        with pytest.raises(WalError, match="schema"):
            decode_entry(line)


class TestProtocol:
    def test_commit_makes_batch_durable(self, tmp_path):
        _write_batches(tmp_path / "wal", [_records(0), _records(1)])
        reopened = WriteAheadLog(tmp_path / "wal")
        ids = [batch.batch_id for batch in reopened.committed_batches()]
        assert ids == [0, 1]
        assert reopened.next_batch_id == 2
        assert reopened.recovery.torn_tail_bytes == 0
        reopened.close()

    def test_begin_while_open_refused(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append_begin(0, _records(0))
        with pytest.raises(WalError, match="still open"):
            wal.append_begin(1, _records(1))
        wal.close()

    def test_commit_without_begin_refused(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(WalError, match="open batch"):
            wal.append_commit(0)
        wal.close()

    def test_batch_ids_must_increase(self, tmp_path):
        wal = _write_batches(tmp_path / "wal", [_records(0), _records(1)])
        reopened = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(WalError, match="must increase"):
            reopened.append_begin(1, _records(1))
        reopened.close()

    def test_base_fingerprint_binding(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.ensure_base("aaaa")
        wal.ensure_base("aaaa")  # idempotent
        with pytest.raises(WalError, match="fingerprint mismatch"):
            wal.ensure_base("bbbb")
        wal.close()

    def test_rebind_with_history_refused(self, tmp_path):
        _write_batches(tmp_path / "wal", [_records(0)])
        (tmp_path / "wal" / "wal.meta.json").unlink(missing_ok=True)
        reopened = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(WalError, match="refusing to rebind"):
            reopened.ensure_base("cccc")
        reopened.close()

    def test_counters_shape(self, tmp_path):
        wal = _write_batches(tmp_path / "wal", [_records(0)])
        counters = wal.counters()
        assert counters == {
            "segments": 1,
            "entries": 2,
            "batches_committed": 1,
            "uncommitted_dropped": 0,
            "torn_tail_dropped": 0,
        }


class TestRecovery:
    def test_torn_tail_truncated_and_counted(self, tmp_path):
        _write_batches(tmp_path / "wal", [_records(0), _records(1)])
        segment = next((tmp_path / "wal").glob("wal-*.log"))
        data = segment.read_bytes()
        segment.write_bytes(data[:-10])  # tear the final commit line

        reopened = WriteAheadLog(tmp_path / "wal")
        ids = [batch.batch_id for batch in reopened.committed_batches()]
        assert ids == [0]
        assert reopened.recovery.uncommitted_batches == [1]
        assert reopened.recovery.uncommitted_records == 2
        assert reopened.recovery.torn_tail_bytes > 0
        reopened.close()
        # The tear is physically gone: the log now ends at batch 0's
        # commit newline and a further reopen drops nothing.
        again = WriteAheadLog(tmp_path / "wal")
        assert again.recovery.torn_tail_bytes == 0
        assert [b.batch_id for b in again.committed_batches()] == [0]
        again.close()

    def test_dangling_begin_dropped(self, tmp_path):
        wal = _write_batches(tmp_path / "wal", [_records(0)])
        reopened = WriteAheadLog(tmp_path / "wal")
        reopened.append_begin(1, _records(1, n=3))
        reopened.close()  # crash before commit

        recovered = WriteAheadLog(tmp_path / "wal")
        assert [b.batch_id for b in recovered.committed_batches()] == [0]
        assert recovered.recovery.uncommitted_batches == [1]
        assert recovered.recovery.uncommitted_records == 3
        assert recovered.next_batch_id == 1
        recovered.close()

    def test_seq_gap_is_a_tear(self, tmp_path):
        _write_batches(
            tmp_path / "wal", [_records(0), _records(1), _records(2)]
        )
        segment = next((tmp_path / "wal").glob("wal-*.log"))
        lines = segment.read_bytes().splitlines(keepends=True)
        del lines[2]  # drop batch 1's begin: seq 0,1,3,4,5
        segment.write_bytes(b"".join(lines))

        recovered = WriteAheadLog(tmp_path / "wal")
        assert [b.batch_id for b in recovered.committed_batches()] == [0]
        assert recovered.recovery.torn_tail_bytes > 0
        recovered.close()

    def test_stranded_segments_past_tear_dropped(self, tmp_path):
        batches = [_records(i, n=4) for i in range(12)]
        _write_batches(tmp_path / "wal", batches, segment_max_bytes=400)
        segments = sorted((tmp_path / "wal").glob("wal-*.log"))
        assert len(segments) > 2
        # Corrupt a line in the middle segment: everything after it —
        # including whole later segments — is unreachable history.
        victim = segments[1]
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2] + b"garbage\n")

        recovered = WriteAheadLog(tmp_path / "wal")
        assert recovered.recovery.dropped_segments  # later files removed
        survivors = sorted((tmp_path / "wal").glob("wal-*.log"))
        assert survivors[-1].name <= victim.name
        # Committed prefix only, and it is still appendable.
        n_kept = len(recovered.committed_batches())
        assert 0 < n_kept < len(batches)
        recovered.append_begin(n_kept, _records(n_kept))
        recovered.append_commit(n_kept)
        recovered.close()

    def test_empty_directory_is_a_fresh_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        assert wal.committed_batches() == ()
        assert wal.next_batch_id == 0
        assert wal.counters()["segments"] == 0
        wal.close()


class TestRotation:
    def test_rotation_produces_segments(self, tmp_path):
        batches = [_records(i, n=3) for i in range(10)]
        _write_batches(tmp_path / "wal", batches, segment_max_bytes=300)
        segments = sorted((tmp_path / "wal").glob("wal-*.log"))
        assert len(segments) > 1
        reopened = WriteAheadLog(tmp_path / "wal")
        assert len(reopened.committed_batches()) == 10
        reopened.close()

    def test_fault_plan_fires_once(self, tmp_path):
        plan = WalFaultPlan(crash_after_append=1)
        wal = WriteAheadLog(tmp_path / "wal", fault=plan)
        wal.append_begin(0, _records(0))
        with pytest.raises(SimulatedCrash):
            wal.append_commit(0)
        assert plan.fired
        wal.close()
        # The commit line itself landed before the crash.
        recovered = WriteAheadLog(tmp_path / "wal")
        assert [b.batch_id for b in recovered.committed_batches()] == [0]
        recovered.close()


# -- property tests -----------------------------------------------------------

record_dicts = st.fixed_dictionaries(
    {"book_id": st.integers(0, 10**6), "name": st.text(max_size=6)}
)
batch_lists = st.lists(
    st.lists(record_dicts, min_size=1, max_size=3), min_size=1, max_size=6
)


class TestWalProperties:
    @given(batches=batch_lists, cut=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_replay_is_idempotent(self, tmp_path_factory, batches, cut):
        """Scanning a (possibly torn) log twice equals scanning it once.

        The first open may truncate; the fixed point must be reached
        immediately — the second open sees a clean log, drops nothing,
        and recovers the identical committed prefix.
        """
        directory = tmp_path_factory.mktemp("wal-idem")
        _write_batches(directory, batches)
        segment = next(directory.glob("wal-*.log"))
        data = segment.read_bytes()
        segment.write_bytes(data[: min(cut, len(data))])

        first = WriteAheadLog(directory)
        first_ids = [b.batch_id for b in first.committed_batches()]
        first.close()
        bytes_after_first = segment.read_bytes()

        second = WriteAheadLog(directory)
        assert [b.batch_id for b in second.committed_batches()] == first_ids
        assert second.recovery.torn_tail_bytes == 0
        assert second.recovery.uncommitted_batches == []
        second.close()
        assert segment.read_bytes() == bytes_after_first

    @given(
        batches=st.lists(
            st.lists(record_dicts, min_size=1, max_size=4),
            min_size=2, max_size=10,
        ),
        segment_max=st.integers(64, 600),
    )
    @settings(max_examples=40, deadline=None)
    def test_rotation_never_splits_a_batch(
        self, tmp_path_factory, batches, segment_max
    ):
        """A batch's begin and commit always land in the same segment."""
        directory = tmp_path_factory.mktemp("wal-rot")
        _write_batches(directory, batches, segment_max_bytes=segment_max)
        total = 0
        for segment in sorted(directory.glob("wal-*.log")):
            open_batch = None
            for line in segment.read_bytes().splitlines(keepends=True):
                entry = decode_entry(line)
                if entry.kind == "begin":
                    assert open_batch is None
                    open_batch = entry.batch_id
                else:
                    assert open_batch == entry.batch_id
                    open_batch = None
                    total += 1
            # Segment boundary with a batch open = a split batch.
            assert open_batch is None
        assert total == len(batches)
