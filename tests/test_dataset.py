"""Tests for the Dataset container and its serialization."""

from __future__ import annotations

import pytest

from repro.records.dataset import Dataset
from tests.conftest import make_record


@pytest.fixture()
def trio():
    return Dataset(
        [
            make_record(book_id=1, person_id=10),
            make_record(book_id=2, person_id=10),
            make_record(book_id=3, person_id=11, first=("Massimo",)),
        ],
        name="trio",
    )


class TestContainer:
    def test_len_iter_contains(self, trio):
        assert len(trio) == 3
        assert {record.book_id for record in trio} == {1, 2, 3}
        assert 2 in trio
        assert 99 not in trio

    def test_getitem_and_get(self, trio):
        assert trio[1].book_id == 1
        assert trio.get(99) is None

    def test_duplicate_book_id_rejected(self):
        with pytest.raises(ValueError):
            Dataset([make_record(book_id=1), make_record(book_id=1)])

    def test_record_ids(self, trio):
        assert sorted(trio.record_ids) == [1, 2, 3]


class TestDerived:
    def test_item_bags_cached(self, trio):
        bags_a = trio.item_bags
        bags_b = trio.item_bags
        assert bags_a is bags_b
        assert set(bags_a) == {1, 2, 3}

    def test_item_index_consistent_with_bags(self, trio):
        for item, rids in trio.item_index.items():
            for rid in rids:
                assert item in trio.item_bags[rid]

    def test_subset(self, trio):
        sub = trio.subset([1, 3])
        assert len(sub) == 2
        assert 2 not in sub

    def test_subset_unknown_id(self, trio):
        with pytest.raises(KeyError):
            trio.subset([1, 99])

    def test_true_pairs(self, trio):
        assert trio.true_pairs() == frozenset({(1, 2)})

    def test_true_pairs_ignores_unlabeled(self):
        dataset = Dataset(
            [make_record(book_id=1), make_record(book_id=2)]
        )
        assert dataset.true_pairs() == frozenset()


class TestSerialization:
    def test_json_roundtrip(self, trio, tmp_path):
        path = tmp_path / "trio.json"
        trio.to_json(path)
        loaded = Dataset.from_json(path)
        assert len(loaded) == len(trio)
        assert loaded.name == "trio"
        for record in trio:
            restored = loaded[record.book_id]
            assert restored == record

    def test_roundtrip_preserves_places_and_coords(self, small_corpus, tmp_path):
        dataset, _persons = small_corpus
        path = tmp_path / "corpus.json"
        dataset.to_json(path)
        loaded = Dataset.from_json(path)
        assert len(loaded) == len(dataset)
        for record in dataset:
            assert loaded[record.book_id] == record

    def test_roundtrip_preserves_gold(self, small_corpus, tmp_path):
        dataset, _persons = small_corpus
        path = tmp_path / "gold.json"
        dataset.to_json(path)
        loaded = Dataset.from_json(path)
        assert loaded.true_pairs() == dataset.true_pairs()
