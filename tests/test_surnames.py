"""Tests for the surname morphology factory."""

from __future__ import annotations

import random

import pytest

from repro.datagen.names import COMMUNITIES
from repro.datagen.surnames import (
    SURNAME_STEMS,
    SURNAME_SUFFIXES,
    synthesize_surname,
)


class TestSynthesizeSurname:
    def test_unknown_community(self):
        with pytest.raises(ValueError):
            synthesize_surname("narnia", random.Random(1))

    def test_all_communities_covered(self):
        assert set(SURNAME_STEMS) == set(COMMUNITIES)
        assert set(SURNAME_SUFFIXES) == set(COMMUNITIES)

    @pytest.mark.parametrize("community", COMMUNITIES)
    def test_produces_nonempty_capitalized_names(self, community):
        rng = random.Random(7)
        for _ in range(50):
            variants = synthesize_surname(community, rng)
            assert 1 <= len(variants) <= 2
            for name in variants:
                assert name
                assert name[0].isupper()
                assert name.isascii()

    def test_deterministic(self):
        a = [synthesize_surname("poland", random.Random(5)) for _ in range(20)]
        b = [synthesize_surname("poland", random.Random(5)) for _ in range(20)]
        assert a == b

    def test_diversity(self):
        """The factory must produce many distinct surnames — the Table 4
        cardinality driver."""
        rng = random.Random(11)
        distinct = {
            synthesize_surname("poland", rng)[0] for _ in range(500)
        }
        assert len(distinct) > 60

    def test_variants_differ_from_canonical(self):
        rng = random.Random(13)
        for _ in range(300):
            variants = synthesize_surname("germany", rng)
            if len(variants) == 2:
                assert variants[0].lower() != variants[1].lower()

    def test_corpus_cardinality_improves(self):
        """With synthesis on, surname cardinality approaches Table 4's
        records-per-item profile."""
        from repro.datagen import build_corpus
        from repro.datagen.generator import CorpusGenerator, GeneratorConfig
        from repro.records.dataset import Dataset
        from repro.records.itembag import ItemType
        from repro.records.patterns import item_type_cardinality

        def rec_per_item(p_synth):
            config = GeneratorConfig(
                n_persons=400, communities=("poland",), seed=5,
                p_synth_surname=p_synth,
            )
            records, _ = CorpusGenerator(config).generate()
            dataset = Dataset(records)
            rows = {r.item_type: r for r in item_type_cardinality(dataset)}
            return rows[ItemType.LAST_NAME].records_per_item

        assert rec_per_item(0.8) < rec_per_item(0.0)
