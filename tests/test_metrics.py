"""Tests for pair-quality metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    f1_score,
    pair_quality,
    reduction_ratio,
)


class TestPairQuality:
    def test_perfect(self):
        gold = frozenset({(1, 2), (3, 4)})
        quality = pair_quality([(1, 2), (3, 4)], gold)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_half_and_half(self):
        gold = frozenset({(1, 2), (3, 4)})
        quality = pair_quality([(1, 2), (5, 6)], gold)
        assert quality.precision == 0.5
        assert quality.recall == 0.5

    def test_empty_candidates(self):
        quality = pair_quality([], frozenset({(1, 2)}))
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_empty_gold(self):
        quality = pair_quality([(1, 2)], frozenset())
        assert quality.recall == 0.0

    def test_duplicates_collapse(self):
        gold = frozenset({(1, 2)})
        quality = pair_quality([(1, 2), (1, 2)], gold)
        assert quality.n_candidates == 1

    def test_rejects_uncanonical(self):
        with pytest.raises(ValueError):
            pair_quality([(2, 1)], frozenset())

    @given(
        st.sets(
            st.tuples(st.integers(0, 20), st.integers(21, 40)), max_size=30
        ),
        st.sets(
            st.tuples(st.integers(0, 20), st.integers(21, 40)), max_size=30
        ),
    )
    def test_bounds(self, candidates, gold):
        quality = pair_quality(candidates, frozenset(gold))
        assert 0.0 <= quality.precision <= 1.0
        assert 0.0 <= quality.recall <= 1.0
        assert 0.0 <= quality.f1 <= 1.0


class TestF1:
    def test_zero_case(self):
        assert f1_score(0.0, 0.0) == 0.0

    def test_harmonic_mean(self):
        assert f1_score(0.5, 0.5) == 0.5
        assert f1_score(1.0, 0.5) == pytest.approx(2 / 3)

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_bounded_by_min_max(self, p, r):
        value = f1_score(p, r)
        assert value <= max(p, r) + 1e-12
        if p > 0 and r > 0:
            assert value >= min(p, r) * 0.99 or value <= max(p, r)


class TestReductionRatio:
    def test_no_blocking(self):
        # comparing all pairs of 10 records = 45 comparisons
        assert reduction_ratio(45, 10) == 0.0

    def test_full_reduction(self):
        assert reduction_ratio(0, 10) == 1.0

    def test_paper_range(self):
        """Blocking reduces comparisons by 87-97% (Section 3.1)."""
        n_records = 1000
        total = n_records * (n_records - 1) // 2
        assert reduction_ratio(int(total * 0.05), n_records) == pytest.approx(0.95)

    def test_tiny_dataset(self):
        assert reduction_ratio(0, 1) == 1.0

    def test_too_many_candidates(self):
        with pytest.raises(ValueError):
            reduction_ratio(100, 5)
