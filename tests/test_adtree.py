"""Tests for the ADTree model: scoring, missing values, serialization."""

from __future__ import annotations

import pytest

from repro.classify.adtree import (
    ADTreeModel,
    CategoricalCondition,
    Condition,
    NumericCondition,
    PredictionNode,
    SplitterNode,
)


def paper_fragment_tree():
    """The Figure 10 fragment: prior -0.29, sameFatherName splitter with
    nested mfName/ffName distance splitters."""
    root = PredictionNode(-0.29)
    no_node = PredictionNode(-1.3)
    yes_node = PredictionNode(0.54)
    same_father = SplitterNode(
        order=1,
        condition=CategoricalCondition("sameFatherName", "no"),
        yes=no_node,   # condition "= no" true
        no=yes_node,
    )
    root.splitters.append(same_father)
    # Under the "= no" branch: mfNameDist < 0.73 splitter.
    mf = SplitterNode(
        order=2,
        condition=NumericCondition("mfNameDist", 0.73),
        yes=PredictionNode(-0.72),
        no=PredictionNode(1.53),
    )
    no_node.splitters.append(mf)
    ff = SplitterNode(
        order=3,
        condition=NumericCondition("ffNameDist", 0.47),
        yes=PredictionNode(-0.86),
        no=PredictionNode(-0.25),
    )
    no_node.splitters.append(ff)
    return ADTreeModel(root)


class TestConditions:
    def test_numeric_evaluate(self):
        condition = NumericCondition("x", 0.5)
        assert condition.evaluate({"x": 0.3}) is True
        assert condition.evaluate({"x": 0.7}) is False
        assert condition.evaluate({"x": None}) is None
        assert condition.evaluate({}) is None

    def test_categorical_evaluate(self):
        condition = CategoricalCondition("c", "no")
        assert condition.evaluate({"c": "no"}) is True
        assert condition.evaluate({"c": "yes"}) is False
        assert condition.evaluate({}) is None

    def test_describe(self):
        assert NumericCondition("x", 0.728).describe(True) == "x < 0.728"
        assert NumericCondition("x", 0.728).describe(False) == "x >= 0.728"
        assert CategoricalCondition("c", "no").describe(True) == "c = no"
        assert CategoricalCondition("c", "no").describe(False) == "c != no"

    def test_dict_roundtrip(self):
        for condition in (
            NumericCondition("x", 1.5),
            CategoricalCondition("c", "yes"),
        ):
            assert Condition.from_dict(condition.to_dict()) == condition

    def test_from_dict_unknown_kind(self):
        with pytest.raises(ValueError):
            Condition.from_dict({"kind": "fuzzy"})


class TestScoring:
    def test_paper_example_score(self):
        """Figure 10 walk-through: different father names, mf dist 0.2,
        gives -1.3 + -0.25... the paper computes -1.3 + -0.25 = -1.55
        (with no mother name one of the splitters is unreachable)."""
        model = paper_fragment_tree()
        features = {
            "sameFatherName": "no",
            "mfNameDist": None,      # no mother first name in one record
            "ffNameDist": 0.2,
        }
        # root -0.29 + "= no" -1.3 + ffNameDist<0.47 -0.86
        assert model.score(features) == pytest.approx(-0.29 - 1.3 - 0.86)

    def test_missing_skips_whole_subtree(self):
        model = paper_fragment_tree()
        features = {"sameFatherName": None}
        assert model.score(features) == pytest.approx(-0.29)

    def test_yes_branch(self):
        model = paper_fragment_tree()
        features = {"sameFatherName": "yes"}
        assert model.score(features) == pytest.approx(-0.29 + 0.54)

    def test_classify_threshold(self):
        model = paper_fragment_tree()
        assert not model.classify({"sameFatherName": "no", "ffNameDist": 0.2})
        assert model.classify({"sameFatherName": "yes"}, threshold=0.0)

    def test_multiple_splitters_sum(self):
        """Alternating semantics: all reachable subtrees contribute."""
        model = paper_fragment_tree()
        features = {
            "sameFatherName": "no",
            "mfNameDist": 0.9,
            "ffNameDist": 0.9,
        }
        expected = -0.29 - 1.3 + 1.53 - 0.25
        assert model.score(features) == pytest.approx(expected)


class TestIntrospection:
    def test_features_used(self):
        model = paper_fragment_tree()
        assert model.features_used() == [
            "sameFatherName", "mfNameDist", "ffNameDist"
        ]

    def test_n_splitters(self):
        assert paper_fragment_tree().n_splitters() == 3

    def test_iter_splitters_ordered(self):
        orders = [s.order for s in paper_fragment_tree().iter_splitters()]
        assert orders == [1, 2, 3]


class TestSerialization:
    def test_dict_roundtrip_preserves_scores(self):
        model = paper_fragment_tree()
        restored = ADTreeModel.from_dict(model.to_dict())
        for features in (
            {"sameFatherName": "no", "ffNameDist": 0.2},
            {"sameFatherName": "yes"},
            {},
            {"sameFatherName": "no", "mfNameDist": 0.9, "ffNameDist": 0.1},
        ):
            assert restored.score(features) == pytest.approx(model.score(features))

    def test_file_roundtrip(self, tmp_path):
        model = paper_fragment_tree()
        path = tmp_path / "model.json"
        model.save(path)
        restored = ADTreeModel.load(path)
        assert restored.n_splitters() == model.n_splitters()
        assert restored.score({"sameFatherName": "yes"}) == pytest.approx(
            model.score({"sameFatherName": "yes"})
        )
