"""Tests for the probabilistic same-as view (Section 3.2 extension)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probdb import ProbabilisticSameAs, match_probability
from repro.core.resolution import PairEvidence, ResolutionResult


def make_resolution(entries):
    return ResolutionResult(
        [PairEvidence(pair, similarity=0.5, confidence=conf)
         for pair, conf in entries]
    )


class TestMatchProbability:
    def test_zero_confidence_is_half(self):
        assert match_probability(0.0) == 0.5

    def test_monotone(self):
        assert match_probability(2.0) > match_probability(0.5) > match_probability(-1.0)

    def test_extremes(self):
        assert match_probability(50.0) == pytest.approx(1.0)
        assert match_probability(-50.0) == pytest.approx(0.0)

    def test_scale_sharpens(self):
        soft = match_probability(1.0, scale=0.5)
        sharp = match_probability(1.0, scale=3.0)
        assert sharp > soft

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            match_probability(1.0, scale=0)

    @given(st.floats(min_value=-30, max_value=30, allow_nan=False))
    def test_bounded(self, confidence):
        assert 0.0 <= match_probability(confidence) <= 1.0


class TestProbabilisticSameAs:
    def test_certain_edge(self):
        db = ProbabilisticSameAs(
            make_resolution([((1, 2), 50.0)]), n_worlds=100
        )
        assert db.same_entity_probability(1, 2) == 1.0

    def test_impossible_edge(self):
        db = ProbabilisticSameAs(
            make_resolution([((1, 2), -50.0)]), n_worlds=100
        )
        assert db.same_entity_probability(1, 2) == 0.0

    def test_self_probability(self):
        db = ProbabilisticSameAs(make_resolution([((1, 2), 0.0)]), n_worlds=10)
        assert db.same_entity_probability(1, 1) == 1.0

    def test_half_probability_edge(self):
        db = ProbabilisticSameAs(
            make_resolution([((1, 2), 0.0)]), n_worlds=4000, seed=3
        )
        assert db.same_entity_probability(1, 2) == pytest.approx(0.5, abs=0.05)

    def test_transitive_evidence(self):
        """P(a~c) > 0 even with no direct a-c edge, via b."""
        db = ProbabilisticSameAs(
            make_resolution([((1, 2), 3.0), ((2, 3), 3.0)]),
            n_worlds=2000, seed=5,
        )
        p_direct = match_probability(3.0)
        p_transitive = db.same_entity_probability(1, 3)
        assert p_transitive == pytest.approx(p_direct ** 2, abs=0.05)

    def test_expected_entities_bounds(self):
        db = ProbabilisticSameAs(
            make_resolution([((1, 2), 0.0), ((3, 4), 0.0)]),
            n_worlds=2000, seed=7,
        )
        expected = db.expected_entities()
        # 4 records; each edge halves a pair of singletons with p=.5:
        # E[entities] = 2 * (2 - 0.5) = 3
        assert expected == pytest.approx(3.0, abs=0.1)

    def test_entity_distribution_sums_to_one(self):
        db = ProbabilisticSameAs(
            make_resolution([((1, 2), 1.0), ((2, 3), -1.0)]),
            n_worlds=500, seed=9,
        )
        distribution = db.entity_distribution(2)
        assert sum(p for _, p in distribution) == pytest.approx(1.0)
        assert all(2 in cluster for cluster, _ in distribution)
        probabilities = [p for _, p in distribution]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_most_probable_world(self):
        db = ProbabilisticSameAs(
            make_resolution([((1, 2), 5.0), ((3, 4), -5.0)]), n_worlds=10
        )
        world = db.most_probable_world()
        assert frozenset({1, 2}) in world
        assert frozenset({3}) in world
        assert frozenset({4}) in world

    def test_worlds_memoized_and_deterministic(self):
        resolution = make_resolution([((1, 2), 0.3)])
        db_a = ProbabilisticSameAs(resolution, n_worlds=50, seed=11)
        db_b = ProbabilisticSameAs(resolution, n_worlds=50, seed=11)
        assert db_a.worlds is db_a.worlds
        assert db_a.worlds == db_b.worlds

    def test_n_worlds_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticSameAs(make_resolution([]), n_worlds=0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 5), st.integers(6, 10)),
                st.floats(min_value=-4, max_value=4, allow_nan=False),
            ),
            max_size=8,
            unique_by=lambda e: e[0],
        )
    )
    def test_probability_axioms(self, entries):
        db = ProbabilisticSameAs(make_resolution(entries), n_worlds=60, seed=1)
        for (a, b), _conf in entries:
            p = db.same_entity_probability(a, b)
            assert 0.0 <= p <= 1.0
            assert p == db.same_entity_probability(b, a)
