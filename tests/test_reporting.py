"""Tests for the text table/series reporters."""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import format_percent, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["Condition", "Recall"],
            [["Base", 0.77], ["SameSrc", 0.691]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("Condition")
        assert set(lines[1]) <= {"-", " "}
        assert "0.770" in lines[2]
        assert "0.691" in lines[3]

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_none_renders_empty(self):
        text = format_table(["a", "b"], [[1, None]])
        assert text.splitlines()[-1].strip() == "1"

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_format(self):
        text = format_table(["x"], [[0.123456]], float_format=".1f")
        assert "0.1" in text
        assert "0.123" not in text

    def test_alignment(self):
        text = format_table(["name", "v"], [["long-name-here", 1], ["s", 2]])
        lines = text.splitlines()
        assert lines[2].index("1") == lines[3].index("2")


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series(
            "NG",
            [1.5, 2.0],
            [("Recall 5", [0.5, 0.6]), ("Precision 5", [0.3, 0.2])],
        )
        lines = text.splitlines()
        assert "NG" in lines[0]
        assert "Recall 5" in lines[0]
        assert "0.500" in lines[2]

    def test_short_series_padded(self):
        text = format_series("x", [1, 2], [("s", [9])])
        assert text  # second row renders with an empty cell


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.942) == "94.2%"

    def test_decimals(self):
        assert format_percent(0.5, decimals=0) == "50%"
