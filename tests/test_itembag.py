"""Tests for item-bag encoding and the inverted index."""

from __future__ import annotations

import pytest

from repro.records.itembag import (
    Item,
    ItemKind,
    ItemType,
    build_item_index,
    place_item_type,
    record_to_items,
)
from repro.records.schema import Gender, Place, PlacePart, PlaceType
from tests.conftest import make_record


class TestItemType:
    def test_prefixes_unique(self):
        prefixes = [item_type.prefix for item_type in ItemType]
        assert len(prefixes) == len(set(prefixes))

    def test_from_prefix_roundtrip(self):
        for item_type in ItemType:
            assert ItemType.from_prefix(item_type.prefix) is item_type

    def test_from_prefix_unknown(self):
        with pytest.raises(ValueError):
            ItemType.from_prefix("ZZZ")

    def test_kinds(self):
        assert ItemType.FIRST_NAME.kind is ItemKind.NAME
        assert ItemType.BIRTH_YEAR.kind is ItemKind.YEAR
        assert ItemType.BIRTH_CITY.kind is ItemKind.GEO
        assert ItemType.GENDER.kind is ItemKind.CATEGORY

    def test_place_item_type_covers_grid(self):
        seen = set()
        for place_type in PlaceType:
            for part in PlacePart:
                item_type = place_item_type(place_type, part)
                assert item_type not in seen
                seen.add(item_type)
        assert len(seen) == 16


class TestItem:
    def test_str_form(self):
        item = Item(ItemType.FIRST_NAME, "Avraham")
        assert str(item) == "FN Avraham"

    def test_parse_roundtrip(self):
        item = Item(ItemType.BIRTH_CITY, "Torino")
        assert Item.parse(str(item)) == item

    def test_parse_value_with_spaces(self):
        item = Item.parse("LN Della Torre")
        assert item.type is ItemType.LAST_NAME
        assert item.value == "Della Torre"

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            Item.parse("JUSTAPREFIX")


class TestRecordToItems:
    def test_basic_fields(self):
        record = make_record(birth_year=1920, profession="tailor")
        items = record_to_items(record)
        assert Item(ItemType.FIRST_NAME, "Guido") in items
        assert Item(ItemType.LAST_NAME, "Foa") in items
        assert Item(ItemType.GENDER, "M") in items
        assert Item(ItemType.BIRTH_YEAR, "1920") in items
        assert Item(ItemType.PROFESSION, "tailor") in items

    def test_nulls_omitted(self):
        record = make_record()
        types = {item.type for item in record_to_items(record)}
        assert ItemType.BIRTH_YEAR not in types
        assert ItemType.PROFESSION not in types

    def test_multivalued_names_all_present(self):
        record = make_record(first=("John", "Harris"))
        items = record_to_items(record)
        assert Item(ItemType.FIRST_NAME, "John") in items
        assert Item(ItemType.FIRST_NAME, "Harris") in items

    def test_place_parts_become_items(self):
        record = make_record(
            places={
                PlaceType.DEATH: (
                    Place(city="Auschwitz", country="Poland"),
                )
            }
        )
        items = record_to_items(record)
        assert Item(ItemType.DEATH_CITY, "Auschwitz") in items
        assert Item(ItemType.DEATH_COUNTRY, "Poland") in items
        assert not any(item.type is ItemType.DEATH_COUNTY for item in items)

    def test_gender_none(self):
        record = make_record(gender=None)
        assert not any(
            item.type is ItemType.GENDER for item in record_to_items(record)
        )

    def test_empty_record_empty_bag(self):
        record = make_record(first=(), last=(), gender=None)
        assert record_to_items(record) == frozenset()


class TestItemIndex:
    def test_index_maps_items_to_records(self):
        bags = {
            1: frozenset({Item(ItemType.FIRST_NAME, "Guido")}),
            2: frozenset({
                Item(ItemType.FIRST_NAME, "Guido"),
                Item(ItemType.LAST_NAME, "Foa"),
            }),
        }
        index = build_item_index(bags.items())
        assert sorted(index[Item(ItemType.FIRST_NAME, "Guido")]) == [1, 2]
        assert index[Item(ItemType.LAST_NAME, "Foa")] == [2]

    def test_empty(self):
        assert build_item_index([]) == {}
