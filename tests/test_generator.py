"""Tests for the synthetic corpus generator."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.datagen.generator import CorpusGenerator, GeneratorConfig, _typo
from repro.datagen.names import COMMUNITIES
from repro.records.schema import PlaceType, SourceKind


def generate(**kwargs):
    config = GeneratorConfig(**kwargs)
    return CorpusGenerator(config).generate()


class TestConfigValidation:
    def test_n_persons_positive(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_persons=0)

    def test_reports_weights_length(self):
        with pytest.raises(ValueError):
            GeneratorConfig(reports_weights=(1.0, 1.0))

    def test_unknown_community(self):
        with pytest.raises(ValueError):
            GeneratorConfig(communities=("atlantis",))

    def test_testimony_fraction_bounds(self):
        with pytest.raises(ValueError):
            GeneratorConfig(testimony_fraction=1.5)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        records_a, persons_a = generate(n_persons=50, seed=3)
        records_b, persons_b = generate(n_persons=50, seed=3)
        assert records_a == records_b
        assert persons_a == persons_b

    def test_different_seed_differs(self):
        records_a, _ = generate(n_persons=50, seed=3)
        records_b, _ = generate(n_persons=50, seed=4)
        assert records_a != records_b


class TestGroundTruth:
    def test_exact_person_count(self):
        _records, persons = generate(n_persons=77, seed=5)
        assert len(persons) == 77

    def test_every_record_has_person(self):
        records, persons = generate(n_persons=60, seed=5)
        person_ids = {person.person_id for person in persons}
        for record in records:
            assert record.person_id in person_ids

    def test_one_to_eight_reports_per_person(self):
        records, persons = generate(n_persons=200, seed=7)
        counts = Counter(record.person_id for record in records)
        assert set(counts.values()) <= set(range(1, 9))
        # the distribution must be skewed toward few reports
        assert counts.most_common(1)[0][1] <= 8
        singles = sum(1 for count in counts.values() if count <= 2)
        assert singles > len(persons) * 0.5

    def test_book_ids_unique_and_sequential_base(self):
        records, _ = generate(n_persons=30, seed=5)
        ids = [record.book_id for record in records]
        assert len(ids) == len(set(ids))
        assert min(ids) >= 1_000_000

    def test_families_share_surname_pool(self):
        _records, persons = generate(n_persons=80, seed=9)
        by_family = {}
        for person in persons:
            by_family.setdefault(person.family_id, []).append(person)
        multi = [members for members in by_family.values() if len(members) > 2]
        assert multi, "expected at least one family with children"
        for members in multi:
            assert len({person.last for person in members}) == 1

    def test_children_carry_parent_names(self):
        _records, persons = generate(n_persons=100, seed=9)
        by_family = {}
        for person in persons:
            by_family.setdefault(person.family_id, []).append(person)
        for members in by_family.values():
            if len(members) < 3:
                continue
            father = members[0]
            children = members[2:]
            for child in children:
                assert child.father_first == father.first
                assert child.family_id == father.family_id


class TestReportNoise:
    def test_report_values_drawn_from_person_variants(self):
        records, persons = generate(n_persons=50, seed=11, p_typo=0.0)
        person_by_id = {person.person_id: person for person in persons}
        for record in records:
            person = person_by_id[record.person_id]
            for name in record.first:
                assert name in person.first
            for name in record.last:
                assert name in person.last

    def test_typo_rate_bounded(self):
        records, persons = generate(n_persons=150, seed=13, p_typo=0.05)
        person_by_id = {person.person_id: person for person in persons}
        total = 0
        corrupted = 0
        for record in records:
            person = person_by_id[record.person_id]
            for name in record.last:
                total += 1
                if name not in person.last:
                    corrupted += 1
        assert total > 0
        assert corrupted / total < 0.15

    def test_gender_never_wrong(self):
        records, persons = generate(n_persons=60, seed=15)
        person_by_id = {person.person_id: person for person in persons}
        for record in records:
            if record.gender is not None:
                assert record.gender is person_by_id[record.person_id].gender

    def test_birth_year_slips_small(self):
        records, persons = generate(n_persons=150, seed=17)
        person_by_id = {person.person_id: person for person in persons}
        for record in records:
            if record.birth_year is not None:
                truth = person_by_id[record.person_id].birth_year
                assert abs(record.birth_year - truth) <= 2

    def test_sources_mixed(self):
        records, _ = generate(n_persons=200, seed=19)
        kinds = Counter(record.source.kind for record in records)
        assert kinds[SourceKind.TESTIMONY] > 0
        assert kinds[SourceKind.LIST] > 0

    def test_repeat_submitter_produces_same_source_true_pairs(self):
        records, _ = generate(n_persons=300, seed=21, p_repeat_submitter=0.3)
        by_person = {}
        for record in records:
            by_person.setdefault(record.person_id, []).append(record)
        shared = 0
        for reports in by_person.values():
            keys = [report.source.key for report in reports]
            if len(keys) != len(set(keys)):
                shared += 1
        assert shared > 0


class TestMVSubmitter:
    def test_mv_reports_count(self):
        records, _ = generate(n_persons=100, seed=23, mv_reports=40)
        mv = [record for record in records if record.source.identifier == "MV"]
        assert len(mv) == 40

    def test_mv_fixed_pattern(self):
        """MV's pattern: first, last, father, birth place, death place."""
        records, _ = generate(n_persons=100, seed=23, mv_reports=40)
        for record in records:
            if record.source.identifier != "MV":
                continue
            assert record.first and record.last and record.father
            assert record.gender is None
            assert record.birth_year is None
            assert PlaceType.BIRTH in record.places
            # death place present unless the person has no death city
            assert record.profession is None

    def test_mv_about_distinct_persons(self):
        records, _ = generate(n_persons=100, seed=23, mv_reports=50)
        mv_persons = [
            record.person_id
            for record in records
            if record.source.identifier == "MV"
        ]
        assert len(mv_persons) == len(set(mv_persons))


class TestTypoHelper:
    def test_short_names_untouched(self):
        import random
        assert _typo("Al", random.Random(1)) == "Al"

    def test_typo_changes_but_stays_close(self):
        import random
        rng = random.Random(5)
        for _ in range(50):
            result = _typo("Rosenberg", rng)
            assert result != "" and abs(len(result) - 9) <= 1
