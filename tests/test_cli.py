"""Tests for the command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main
from repro.records.dataset import Dataset


@pytest.fixture()
def corpus_path(tmp_path):
    path = tmp_path / "corpus.json"
    code = main([
        "generate", "--persons", "60", "--communities", "italy",
        "--seed", "5", "--out", str(path),
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_community_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--communities", "narnia", "--out", "x.json"]
            )

    def test_resolve_defaults(self):
        args = build_parser().parse_args(["resolve", "c.json"])
        assert args.ng == 3.5
        assert args.max_minsup == 5
        assert not args.classify


class TestGenerate:
    def test_writes_loadable_corpus(self, corpus_path):
        dataset = Dataset.from_json(corpus_path)
        assert len(dataset) >= 60

    def test_mv_flag(self, tmp_path):
        path = tmp_path / "mv.json"
        main(["generate", "--persons", "50", "--mv-reports", "10",
              "--seed", "3", "--out", str(path)])
        dataset = Dataset.from_json(path)
        mv = [r for r in dataset if r.source.identifier == "MV"]
        assert len(mv) == 10


class TestAnalyze:
    def test_prints_tables(self, corpus_path, capsys):
        assert main(["analyze", str(corpus_path)]) == 0
        output = capsys.readouterr().out
        assert "Data patterns" in output
        assert "Item type prevalence" in output
        assert "Last Name" in output


class TestResolve:
    def test_basic_resolution(self, corpus_path, capsys):
        code = main([
            "resolve", str(corpus_path), "--ng", "3.0",
            "--expert-weighting",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "ranked pairs" in output
        assert "quality vs ground truth" in output

    def test_csv_output(self, corpus_path, tmp_path, capsys):
        out = tmp_path / "pairs.csv"
        main([
            "resolve", str(corpus_path), "--expert-weighting",
            "--out", str(out),
        ])
        with open(out) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["book_id_a", "book_id_b", "similarity",
                           "confidence"]
        assert len(rows) > 1
        # pairs canonicalized
        for a, b, _sim, _conf in rows[1:]:
            assert int(a) < int(b)

    def test_classify_path(self, corpus_path, capsys):
        code = main([
            "resolve", str(corpus_path), "--expert-weighting",
            "--classify", "--certainty", "0.0",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "trained on" in output


class TestNarratives:
    def test_prints_stories(self, corpus_path, capsys):
        assert main(["narratives", str(corpus_path), "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "confidence" in output or "no multi-report" in output


class TestExperiment:
    def test_condition_grid_without_classifier(self, corpus_path, capsys):
        code = main([
            "experiment", str(corpus_path), "--ng", "3.0",
            "--no-classifier",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Base" in output
        assert "Expert Weighting" in output
        assert "Cls" not in output

    def test_condition_grid_with_classifier(self, corpus_path, capsys):
        code = main(["experiment", str(corpus_path), "--ng", "3.0"])
        assert code == 0
        output = capsys.readouterr().out
        assert "SameSrc + Cls" in output

    def test_rejects_corpus_without_truth(self, tmp_path, capsys):
        from repro.records.dataset import Dataset
        from tests.conftest import make_record

        dataset = Dataset([make_record(book_id=1), make_record(book_id=2)])
        path = tmp_path / "untruthed.json"
        dataset.to_json(path)
        assert main(["experiment", str(path), "--no-classifier"]) == 1


class TestResolveExpertSim:
    def test_expert_sim_flag(self, corpus_path, capsys):
        code = main([
            "resolve", str(corpus_path), "--expert-weighting",
            "--expert-sim",
        ])
        assert code == 0
        assert "ranked pairs" in capsys.readouterr().out

    def test_same_src_flag(self, corpus_path, capsys):
        code = main(["resolve", str(corpus_path), "--same-src"])
        assert code == 0


class TestCsvFormat:
    def test_generate_and_resolve_csv(self, tmp_path, capsys):
        path = tmp_path / "corpus.csv"
        assert main([
            "generate", "--persons", "40", "--communities", "italy",
            "--seed", "5", "--out", str(path),
        ]) == 0
        assert path.read_text().startswith("book_id,")
        code = main(["resolve", str(path), "--expert-weighting"])
        assert code == 0
        assert "ranked pairs" in capsys.readouterr().out

    def test_analyze_csv(self, tmp_path, capsys):
        path = tmp_path / "corpus.csv"
        main(["generate", "--persons", "30", "--seed", "3",
              "--out", str(path)])
        assert main(["analyze", str(path)]) == 0
        assert "Item type prevalence" in capsys.readouterr().out


class TestLint:
    def test_lint_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0

    def test_lint_reports_findings(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(dirty)]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        main(["lint", str(dirty), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"RL001": 1}

    def test_lint_select(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(dirty), "--select", "RL003"]) == 0


class TestIngest:
    @pytest.fixture()
    def split_corpus(self, corpus_path, tmp_path):
        dataset = Dataset.from_json(corpus_path)
        ids = sorted(dataset.record_ids)
        pivot = len(ids) * 2 // 3
        base = tmp_path / "base.json"
        arrivals = tmp_path / "arrivals.json"
        dataset.subset(ids[:pivot], name="base").to_json(base)
        dataset.subset(ids[pivot:], name="arrivals").to_json(arrivals)
        return base, arrivals

    def test_in_memory_ingest(self, split_corpus, capsys):
        base, arrivals = split_corpus
        code = main(["ingest", str(base), str(arrivals),
                     "--batch-size", "8", "--expert-weighting"])
        assert code == 0
        output = capsys.readouterr().out
        assert "ingested" in output
        assert "wal:" not in output  # no WAL requested, no WAL line

    def test_durable_ingest_report_and_csv(
        self, split_corpus, tmp_path, capsys
    ):
        import json

        base, arrivals = split_corpus
        out = tmp_path / "pairs.csv"
        report = tmp_path / "run.report.json"
        code = main([
            "ingest", str(base), str(arrivals), "--expert-weighting",
            "--wal-dir", str(tmp_path / "wal"), "--batch-size", "8",
            "--out", str(out), "--report", str(report),
        ])
        assert code == 0
        assert "wal:" in capsys.readouterr().out
        n_arrivals = len(Dataset.from_json(arrivals))
        expected_batches = -(-n_arrivals // 8)  # ceil
        wal_block = json.loads(report.read_text())["resilience"]["wal"]
        assert wal_block["batches_committed"] == expected_batches
        assert wal_block["replayed"] == 0
        with open(out) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][:3] == ["book_id_a", "book_id_b", "similarity"]

    def test_recover_is_byte_identical(self, split_corpus, tmp_path):
        base, arrivals = split_corpus
        wal_dir = tmp_path / "wal"
        first = tmp_path / "first.csv"
        assert main([
            "ingest", str(base), str(arrivals), "--expert-weighting",
            "--wal-dir", str(wal_dir), "--batch-size", "8",
            "--out", str(first),
        ]) == 0
        second = tmp_path / "second.csv"
        assert main([
            "ingest", str(base), str(arrivals), "--expert-weighting",
            "--wal-dir", str(wal_dir), "--recover",
            "--on-bad-row", "quarantine", "--out", str(second),
        ]) == 0
        assert second.read_bytes() == first.read_bytes()

    def test_wal_history_requires_recover(self, split_corpus, tmp_path):
        base, arrivals = split_corpus
        wal_dir = tmp_path / "wal"
        assert main([
            "ingest", str(base), str(arrivals), "--expert-weighting",
            "--wal-dir", str(wal_dir), "--batch-size", "8",
        ]) == 0
        # Reusing a WAL with history without --recover is refused.
        assert main([
            "ingest", str(base), str(arrivals), "--expert-weighting",
            "--wal-dir", str(wal_dir), "--batch-size", "8",
        ]) == 2

    def test_recover_against_wrong_config_refused(
        self, split_corpus, tmp_path
    ):
        base, arrivals = split_corpus
        wal_dir = tmp_path / "wal"
        assert main([
            "ingest", str(base), str(arrivals), "--expert-weighting",
            "--wal-dir", str(wal_dir),
        ]) == 0
        assert main([
            "ingest", str(base), str(arrivals), "--ng", "2.0",
            "--wal-dir", str(wal_dir), "--recover",
            "--on-bad-row", "quarantine",
        ]) == 2

    def test_recover_requires_wal_dir(self, split_corpus):
        base, arrivals = split_corpus
        assert main([
            "ingest", str(base), str(arrivals), "--recover",
        ]) == 2

    def test_batch_size_must_be_positive(self, split_corpus):
        base, arrivals = split_corpus
        assert main([
            "ingest", str(base), str(arrivals), "--batch-size", "0",
        ]) == 2


class TestCheckpointGcCli:
    @staticmethod
    def _seed_checkpoints(directory):
        directory.mkdir()
        for name in ("a", "b", "c"):
            (directory / f"{name}.ckpt.json").write_text("{}")

    def test_dry_run_then_real(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        self._seed_checkpoints(ckpt)
        assert main([
            "checkpoint", "gc", str(ckpt), "--keep", "1", "--dry-run",
        ]) == 0
        assert "would remove" in capsys.readouterr().out
        assert len(list(ckpt.iterdir())) == 3
        assert main(["checkpoint", "gc", str(ckpt), "--keep", "1"]) == 0
        assert "removed" in capsys.readouterr().out
        assert len(list(ckpt.iterdir())) == 1

    def test_missing_directory_is_an_error(self, tmp_path, capsys):
        assert main([
            "checkpoint", "gc", str(tmp_path / "absent"), "--keep", "1",
        ]) == 2
        assert "checkpoint gc" in capsys.readouterr().err
