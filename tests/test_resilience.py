"""Unit tests for the resilience layer (docs/RESILIENCE.md).

Coverage map: quarantine policies and JSONL round-trip; checkpoint
integrity, fingerprint chaining, and atomic writes; budget meters
(iteration and deadline) and degraded propagation through MFIBlocks,
FP-Growth, and the pipeline; fault primitives; the chaos scenarios
themselves (each invariant exercised once, fast). The end-to-end
kill-and-resume byte-identity lives in ``test_end_to_end_determinism``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.blocking.mfiblocks import MFIBlocks, MFIBlocksConfig
from repro.core import PipelineConfig, UncertainERPipeline
from repro.datagen import build_corpus
from repro.mining.fpgrowth import maximal_frequent_itemsets
from repro.obs import Tracer
from repro.obs.clock import ManualClock
from repro.records.dataset import Dataset
from repro.records.io import read_csv, write_csv
from repro.resilience import (
    BudgetMeter,
    CheckpointMiss,
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    GcReport,
    Quarantine,
    QuarantinePolicy,
    SimulatedCrash,
    StageBudget,
    canonical_digest,
    chain_fingerprint,
    corrupt_csv_rows,
    exhausting_budget,
    gc_checkpoints,
    truncate_file,
)
from repro.resilience.chaos import SCENARIOS, ChaosConfig, run_chaos


@pytest.fixture(scope="module")
def corpus():
    dataset, _ = build_corpus(n_persons=30, communities=("italy",), seed=17)
    return dataset


class TestQuarantine:
    def test_record_and_counts(self):
        quarantine = Quarantine()
        quarantine.record("f.csv", 3, "book_id", "bad int", {"book_id": "x"})
        quarantine.record("f.csv", 7, "gender", "bad enum", {"gender": "?"},
                          repaired=True, repaired_fields=("gender",))
        assert quarantine.n_quarantined == 1
        assert quarantine.n_repaired == 1
        assert quarantine.line_numbers(include_repaired=False) == [3]
        assert quarantine.line_numbers() == [3, 7]

    def test_jsonl_round_trip(self, tmp_path):
        quarantine = Quarantine()
        quarantine.record("f.csv", 3, "book_id", "bad int", {"book_id": "x"})
        path = tmp_path / "quarantine.jsonl"
        quarantine.to_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["line_number"] == 3
        assert entry["field"] == "book_id"
        assert entry["reason"] == "bad int"
        loaded = Quarantine.from_jsonl(path)
        assert [e.to_dict() for e in loaded.entries] == [entry]


class TestReadCsvPolicies:
    def _write_rows(self, tmp_path, mutate):
        dataset, _ = build_corpus(
            n_persons=8, communities=("italy",), seed=5
        )
        path = tmp_path / "corpus.csv"
        write_csv(dataset, path)
        lines = path.read_text().splitlines()
        mutate(lines)
        path.write_text("\n".join(lines) + "\n")
        return path, len(lines) - 1

    def test_fail_fast_reports_line_and_field(self, tmp_path):
        def break_row_3(lines):
            cells = lines[2].split(",")
            cells[0] = "not-an-int"
            lines[2] = ",".join(cells)

        path, _ = self._write_rows(tmp_path, break_row_3)
        with pytest.raises(ValueError) as excinfo:
            read_csv(path)
        message = str(excinfo.value)
        assert f"{path}:3:" in message
        assert "'book_id'" in message

    def test_quarantine_policy_loads_the_rest(self, tmp_path):
        def break_row_3(lines):
            cells = lines[2].split(",")
            cells[0] = "not-an-int"
            lines[2] = ",".join(cells)

        path, n_rows = self._write_rows(tmp_path, break_row_3)
        quarantine = Quarantine()
        dataset = read_csv(
            path, policy=QuarantinePolicy.QUARANTINE, quarantine=quarantine
        )
        assert len(dataset) == n_rows - 1
        assert quarantine.line_numbers() == [3]
        entry = quarantine.entries[0]
        assert entry.field == "book_id"
        assert entry.line_number == 3

    def test_repair_policy_blanks_optional_cell(self, tmp_path):
        def break_birth_year(lines):
            header = lines[0].split(",")
            column = header.index("birth_year")
            cells = lines[2].split(",")
            cells[column] = "not-a-year"
            lines[2] = ",".join(cells)

        path, n_rows = self._write_rows(tmp_path, break_birth_year)
        quarantine = Quarantine()
        dataset = read_csv(
            path, policy=QuarantinePolicy.REPAIR, quarantine=quarantine
        )
        assert len(dataset) == n_rows  # row kept, cell blanked
        assert quarantine.n_repaired == 1
        assert quarantine.n_quarantined == 0
        entry = quarantine.entries[0]
        assert entry.repaired and entry.repaired_fields == ("birth_year",)

    def test_repair_cannot_save_required_column(self, tmp_path):
        def break_book_id(lines):
            cells = lines[2].split(",")
            cells[0] = "not-an-int"
            lines[2] = ",".join(cells)

        path, n_rows = self._write_rows(tmp_path, break_book_id)
        quarantine = Quarantine()
        dataset = read_csv(
            path, policy=QuarantinePolicy.REPAIR, quarantine=quarantine
        )
        assert len(dataset) == n_rows - 1
        assert quarantine.n_quarantined == 1

    def test_duplicate_book_id_quarantined(self, tmp_path):
        def duplicate_row(lines):
            lines[3] = lines[2]

        path, n_rows = self._write_rows(tmp_path, duplicate_row)
        quarantine = Quarantine()
        dataset = read_csv(
            path, policy=QuarantinePolicy.QUARANTINE, quarantine=quarantine
        )
        assert len(dataset) == n_rows - 1
        assert quarantine.entries[0].field == "book_id"
        assert "duplicate" in quarantine.entries[0].reason


class TestDatasetFromJsonPolicies:
    def test_bad_entry_quarantined_with_ordinal(self, tmp_path, corpus):
        path = tmp_path / "corpus.json"
        corpus.to_json(path)
        payload = json.loads(path.read_text())
        payload["records"][1]["book_id"] = "not-an-int-like"
        del payload["records"][1]["source"]
        path.write_text(json.dumps(payload))

        with pytest.raises(ValueError, match="record entry 2"):
            Dataset.from_json(path)

        quarantine = Quarantine()
        dataset = Dataset.from_json(
            path, policy=QuarantinePolicy.QUARANTINE, quarantine=quarantine
        )
        assert len(dataset) == len(corpus) - 1
        assert quarantine.line_numbers() == [2]


class TestCheckpointStore:
    FP = "f" * 64

    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        payload = {"pairs": [[1, 2, 0.5]], "degraded": False}
        store.save("blocking", self.FP, payload)
        assert store.load("blocking", self.FP) == payload
        assert store.hits == ["blocking"]
        assert store.misses == []

    def test_missing_and_fingerprint_mismatch_are_misses(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load("blocking", self.FP) is None
        store.save("blocking", self.FP, {"x": 1})
        assert store.load("blocking", "0" * 64) is None
        reasons = [miss.reason for miss in store.misses]
        assert reasons == [
            CheckpointMiss.MISSING, CheckpointMiss.FINGERPRINT_MISMATCH,
        ]

    def test_truncated_file_is_a_miss_not_an_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("blocking", self.FP, {"x": 1})
        truncate_file(store.path_for("blocking"))
        assert store.load("blocking", self.FP) is None
        assert store.misses[0].reason == CheckpointMiss.UNREADABLE

    def test_tampered_payload_is_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("blocking", self.FP, {"x": 1})
        document = json.loads(path.read_text())
        document["payload"]["x"] = 2  # payload_sha256 now stale
        path.write_text(json.dumps(document))
        assert store.load("blocking", self.FP) is None
        assert store.misses[0].reason == CheckpointMiss.PAYLOAD_CORRUPT

    def test_schema_version_gates_reads(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("blocking", self.FP, {"x": 1})
        document = json.loads(path.read_text())
        document["schema"] = 99
        path.write_text(json.dumps(document))
        assert store.load("blocking", self.FP) is None
        assert store.misses[0].reason == CheckpointMiss.SCHEMA_MISMATCH

    def test_stage_names_cannot_escape_directory(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.path_for("../evil")
        with pytest.raises(ValueError):
            store.path_for("")

    def test_clear_and_stages_on_disk(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("blocking", self.FP, {})
        store.save("evidence", self.FP, {})
        assert store.stages_on_disk() == ["blocking", "evidence"]
        assert store.clear() == 2
        assert store.stages_on_disk() == []

    def test_chain_fingerprint_depends_on_everything(self):
        base = chain_fingerprint(None, "blocking", {"corpus": "a"})
        assert base == chain_fingerprint(None, "blocking", {"corpus": "a"})
        assert base != chain_fingerprint(None, "blocking", {"corpus": "b"})
        assert base != chain_fingerprint(None, "same_source", {"corpus": "a"})
        assert base != chain_fingerprint(base, "blocking", {"corpus": "a"})

    def test_canonical_digest_ignores_key_order(self):
        assert canonical_digest({"a": 1, "b": 2}) == canonical_digest(
            {"b": 2, "a": 1}
        )


class TestCheckpointGc:
    @staticmethod
    def _checkpoint(directory, stage, age):
        """Write a fake checkpoint whose mtime is ``age`` seconds ago."""
        path = directory / f"{stage}{CheckpointStore.SUFFIX}"
        path.write_text(json.dumps({"stage": stage}))
        stamp = path.stat().st_mtime - age
        os.utime(path, (stamp, stamp))
        return path

    def test_keeps_n_newest_by_mtime(self, tmp_path):
        for stage, age in (("a", 300), ("b", 200), ("c", 100), ("d", 0)):
            self._checkpoint(tmp_path, stage, age)
        report = gc_checkpoints(tmp_path, keep=2)
        assert report.kept == ("d.ckpt.json", "c.ckpt.json")
        assert report.removed == ("b.ckpt.json", "a.ckpt.json")
        assert report.bytes_reclaimed > 0
        survivors = sorted(p.name for p in tmp_path.iterdir())
        assert survivors == ["c.ckpt.json", "d.ckpt.json"]

    def test_orphan_tmp_files_always_removed(self, tmp_path):
        self._checkpoint(tmp_path, "a", 0)
        orphan = tmp_path / f"b{CheckpointStore.SUFFIX}.tmp"
        orphan.write_text("half-written")
        report = gc_checkpoints(tmp_path, keep=5)
        assert report.removed == ()
        assert report.orphans_removed == ("b.ckpt.json.tmp",)
        assert not orphan.exists()

    def test_dry_run_removes_nothing(self, tmp_path):
        self._checkpoint(tmp_path, "a", 100)
        self._checkpoint(tmp_path, "b", 0)
        (tmp_path / f"c{CheckpointStore.SUFFIX}.tmp").write_text("x")
        report = gc_checkpoints(tmp_path, keep=1, dry_run=True)
        assert report.dry_run
        assert report.removed == ("a.ckpt.json",)
        assert report.orphans_removed == ("c.ckpt.json.tmp",)
        assert len(list(tmp_path.iterdir())) == 3

    def test_keep_zero_clears_everything(self, tmp_path):
        self._checkpoint(tmp_path, "a", 100)
        self._checkpoint(tmp_path, "b", 0)
        report = gc_checkpoints(tmp_path, keep=0)
        assert report.kept == ()
        assert sorted(report.removed) == ["a.ckpt.json", "b.ckpt.json"]
        assert list(tmp_path.iterdir()) == []

    def test_non_checkpoint_files_untouched(self, tmp_path):
        self._checkpoint(tmp_path, "a", 0)
        bystander = tmp_path / "notes.txt"
        bystander.write_text("keep me")
        gc_checkpoints(tmp_path, keep=0)
        assert bystander.exists()

    def test_invalid_arguments(self, tmp_path):
        with pytest.raises(ValueError):
            gc_checkpoints(tmp_path, keep=-1)
        with pytest.raises(FileNotFoundError):
            gc_checkpoints(tmp_path / "absent", keep=1)

    def test_report_echo_shape(self, tmp_path):
        self._checkpoint(tmp_path, "a", 0)
        echo = gc_checkpoints(tmp_path, keep=1).to_echo()
        assert isinstance(echo, dict)
        assert echo["keep"] == 1
        assert echo["kept"] == ["a.ckpt.json"]
        assert echo["removed"] == []
        assert isinstance(gc_checkpoints(tmp_path, keep=1), GcReport)


class TestBudgets:
    def test_budget_requires_a_bound(self):
        with pytest.raises(ValueError):
            StageBudget()
        with pytest.raises(ValueError):
            StageBudget(max_iterations=0)
        with pytest.raises(ValueError):
            StageBudget(deadline_seconds=0.0)

    def test_iteration_budget_latches_degraded(self):
        meter = BudgetMeter(StageBudget(max_iterations=2))
        assert not meter.exhausted()
        meter.charge(2)
        assert meter.exhausted()
        assert meter.degraded
        assert meter.iterations == 2

    def test_unbudgeted_meter_never_exhausts(self):
        meter = BudgetMeter(None)
        meter.charge(10_000)
        assert not meter.exhausted()
        assert not meter.degraded
        assert not meter.enabled

    def test_deadline_budget_uses_injected_clock(self):
        clock = ManualClock()
        meter = BudgetMeter(StageBudget(deadline_seconds=5.0), clock=clock)
        assert not meter.exhausted()  # first check starts the window
        clock.advance(4.0)
        assert not meter.exhausted()
        clock.advance(2.0)
        assert meter.exhausted()
        assert meter.degraded

    def test_fpgrowth_budget_yields_partial_mfis(self):
        transactions = [
            frozenset({"a", "b", "c"}),
            frozenset({"a", "b", "d"}),
            frozenset({"a", "c", "d"}),
            frozenset({"b", "c", "d"}),
        ]
        full = maximal_frequent_itemsets(transactions, minsup=2)
        meter = BudgetMeter(StageBudget(max_iterations=1))
        partial = maximal_frequent_itemsets(
            transactions, minsup=2, budget=meter
        )
        assert meter.degraded
        assert set(partial) <= set(full)
        assert len(partial) < len(full)

    def test_mfiblocks_degraded_flag_set(self, corpus):
        config = MFIBlocksConfig(
            max_minsup=4, ng=3.0, budget=exhausting_budget()
        )
        result = MFIBlocks(config).run(corpus)
        assert result.degraded
        unbudgeted = MFIBlocks(
            MFIBlocksConfig(max_minsup=4, ng=3.0)
        ).run(corpus)
        assert not unbudgeted.degraded
        assert len(result.pair_scores) <= len(unbudgeted.pair_scores)

    def test_degraded_survives_json_round_trip(self, tmp_path, corpus):
        from repro.core.resolution import ResolutionResult

        config = PipelineConfig(
            max_minsup=4, ng=3.0,
            blocking_budget=StageBudget(max_iterations=1),
        )
        resolution = UncertainERPipeline(config).run(corpus)
        assert resolution.degraded
        path = tmp_path / "resolution.json"
        resolution.to_json(path)
        assert json.loads(path.read_text())["degraded"] is True
        assert ResolutionResult.from_json(path).degraded is True

    def test_degraded_propagates_to_resolution_and_report(self, corpus):
        tracer = Tracer()
        config = PipelineConfig(
            max_minsup=4, ng=3.0,
            blocking_budget=StageBudget(max_iterations=1),
        )
        resolution = UncertainERPipeline(config, tracer=tracer).run(corpus)
        tracer.close()
        assert resolution.degraded
        assert resolution.report is not None
        assert resolution.report.resilience["degraded"] is True
        assert resolution.report.counters.get("pipeline.degraded") == 1


class TestFaults:
    def test_corrupt_csv_rows_is_seed_deterministic(self, tmp_path, corpus):
        source = tmp_path / "corpus.csv"
        write_csv(corpus, source)
        lines_a = corrupt_csv_rows(source, tmp_path / "a.csv", 0.1, seed=1)
        lines_b = corrupt_csv_rows(source, tmp_path / "b.csv", 0.1, seed=1)
        lines_c = corrupt_csv_rows(source, tmp_path / "c.csv", 0.1, seed=2)
        assert lines_a == lines_b
        assert lines_a != lines_c
        assert (tmp_path / "a.csv").read_bytes() == (
            tmp_path / "b.csv"
        ).read_bytes()

    def test_corrupt_fraction_zero_keeps_file_intact(self, tmp_path, corpus):
        source = tmp_path / "corpus.csv"
        write_csv(corpus, source)
        assert corrupt_csv_rows(source, tmp_path / "out.csv", 0.0, seed=1) == []

    def test_injector_without_plan_is_a_no_op(self):
        injector = FaultInjector()
        for stage in ("blocking", "evidence"):
            injector.after_stage(stage)
        assert injector.fired == []

    def test_injector_fires_at_named_stage_only(self):
        injector = FaultInjector(FaultPlan(crash_after_stage="classify"))
        injector.after_stage("blocking")
        with pytest.raises(SimulatedCrash) as excinfo:
            injector.after_stage("classify")
        assert excinfo.value.stage == "classify"
        assert injector.fired == ["crash:classify"]


class TestChaosScenarios:
    """Each chaos invariant, exercised once on a small corpus."""

    CONFIG = ChaosConfig(seeds=(0,), persons=20)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_holds(self, tmp_path, name):
        outcome = SCENARIOS[name](self.CONFIG, 0, tmp_path)
        assert outcome.ok, outcome.detail

    def test_worker_crash_scenario_retries_and_matches_serial(self, tmp_path):
        """The seed retargets the kill to a later parallel dispatch and
        the invariant still holds: chunks retried, bytes unchanged."""
        outcome = SCENARIOS["worker-crash"](self.CONFIG, 1, tmp_path)
        assert outcome.ok, outcome.detail
        assert "worker killed at dispatch 1" in outcome.detail
        assert "retried in-process" in outcome.detail
        assert "byte-identical" in outcome.detail

    def test_run_chaos_keeps_artifacts_dir(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        config = ChaosConfig(
            seeds=(0,), scenario="budget", persons=20,
            artifacts_dir=artifacts,
        )
        assert run_chaos(config) == 0
        assert artifacts.is_dir()
        out = capsys.readouterr().out
        assert "budget" in out and "ok" in out

    def test_chaos_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(seeds=())
        with pytest.raises(ValueError):
            ChaosConfig(corrupt_fraction=0.0)
        with pytest.raises(ValueError):
            ChaosConfig(scenario="nope")
