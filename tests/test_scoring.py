"""Tests for block scoring and the sparse-neighborhood filter."""

from __future__ import annotations

import pytest

from repro.blocking.scoring import (
    DEFAULT_EXPERT_WEIGHTS,
    BlockScorer,
    ScoringMethod,
    SparseNeighborhoodFilter,
    neighborhood_cap,
)
from repro.records.itembag import Item, ItemType


def bag(*pairs):
    return frozenset(Item(t, v) for t, v in pairs)


BAGS = {
    1: bag((ItemType.FIRST_NAME, "Guido"), (ItemType.LAST_NAME, "Foa"),
           (ItemType.GENDER, "M")),
    2: bag((ItemType.FIRST_NAME, "Guido"), (ItemType.LAST_NAME, "Foa"),
           (ItemType.GENDER, "M")),
    3: bag((ItemType.FIRST_NAME, "Guido"), (ItemType.LAST_NAME, "Foy"),
           (ItemType.GENDER, "M")),
    4: bag((ItemType.FIRST_NAME, "Massimo"), (ItemType.LAST_NAME, "Levi")),
}


class TestBlockScorer:
    def test_uniform_identical_records(self):
        scorer = BlockScorer()
        assert scorer.score_block([1, 2], BAGS) == 1.0

    def test_uniform_mixed_block_lower(self):
        scorer = BlockScorer()
        tight = scorer.score_block([1, 2], BAGS)
        loose = scorer.score_block([1, 2, 4], BAGS)
        assert loose < tight

    def test_single_record_scores_zero(self):
        assert BlockScorer().score_block([1], BAGS) == 0.0

    def test_weighted_method_uses_defaults_when_unset(self):
        scorer = BlockScorer(method=ScoringMethod.WEIGHTED)
        value = scorer.pair_similarity(BAGS[1], BAGS[3])
        assert 0.0 < value < 1.0

    def test_weighted_differs_from_uniform(self):
        uniform = BlockScorer().pair_similarity(BAGS[1], BAGS[3])
        weighted = BlockScorer(
            method=ScoringMethod.WEIGHTED, weights=DEFAULT_EXPERT_WEIGHTS
        ).pair_similarity(BAGS[1], BAGS[3])
        assert weighted != pytest.approx(uniform)

    def test_expert_method_gives_partial_credit(self):
        uniform = BlockScorer().pair_similarity(BAGS[1], BAGS[3])
        expert = BlockScorer(method=ScoringMethod.EXPERT).pair_similarity(
            BAGS[1], BAGS[3]
        )
        assert expert > uniform  # Foa/Foy gets Jaro-Winkler credit


class TestNeighborhoodCap:
    def test_formula(self):
        assert neighborhood_cap(3.0, 5) == 15
        assert neighborhood_cap(3.5, 4) == 14
        assert neighborhood_cap(1.5, 2) == 3

    def test_at_least_one(self):
        assert neighborhood_cap(0.1, 2) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            neighborhood_cap(0, 5)
        with pytest.raises(ValueError):
            neighborhood_cap(2.0, 1)


def entry(records, score):
    return (frozenset(records), frozenset(), score)


class TestSparseNeighborhoodFilter:
    def test_admits_within_cap(self):
        sn = SparseNeighborhoodFilter(ng=3.0)
        admitted = sn.filter_blocks([entry({1, 2}, 0.9)], minsup=2)
        assert len(admitted) == 1

    def test_skip_mode_skips_only_violators(self):
        sn = SparseNeighborhoodFilter(ng=0.5, mode="skip")  # cap = 1 at minsup 2
        blocks = [
            entry({1, 2}, 0.9),   # admitted; 1 and 2 now have 1 neighbor
            entry({1, 3}, 0.8),   # violates: record 1 would exceed cap
            entry({4, 5}, 0.7),   # unrelated records — still admitted
        ]
        admitted = sn.filter_blocks(blocks, minsup=2)
        kept = [records for records, _, _ in admitted]
        assert frozenset({1, 2}) in kept
        assert frozenset({4, 5}) in kept
        assert frozenset({1, 3}) not in kept

    def test_threshold_mode_prunes_tail(self):
        sn = SparseNeighborhoodFilter(ng=0.5, mode="threshold")
        blocks = [
            entry({1, 2}, 0.9),
            entry({1, 3}, 0.8),   # violation raises minTh to 0.8
            entry({4, 5}, 0.7),   # pruned despite being innocent
        ]
        admitted = sn.filter_blocks(blocks, minsup=2)
        kept = [records for records, _, _ in admitted]
        assert kept == [frozenset({1, 2})]
        assert sn.min_threshold == 0.8

    def test_state_persists_across_iterations(self):
        sn = SparseNeighborhoodFilter(ng=0.5, mode="skip")
        sn.filter_blocks([entry({1, 2}, 0.9)], minsup=2)
        admitted = sn.filter_blocks([entry({1, 3}, 0.9)], minsup=2)
        assert admitted == []

    def test_zero_score_blocks_never_admitted(self):
        sn = SparseNeighborhoodFilter(ng=3.0)
        assert sn.filter_blocks([entry({1, 2}, 0.0)], minsup=2) == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SparseNeighborhoodFilter(ng=-1)
        with pytest.raises(ValueError):
            SparseNeighborhoodFilter(ng=2.0, mode="bogus")

    def test_descending_order_processing(self):
        """Higher-scoring blocks win the neighborhood budget."""
        sn = SparseNeighborhoodFilter(ng=0.5, mode="skip")
        blocks = [entry({1, 3}, 0.5), entry({1, 2}, 0.9)]
        admitted = sn.filter_blocks(blocks, minsup=2)
        kept = [records for records, _, _ in admitted]
        assert kept == [frozenset({1, 2})]
