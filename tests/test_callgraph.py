"""Tests for the reprolint module-level call graph (tools/reprolint/callgraph).

The graph is the substrate of the RL100-RL103 contract pass; these
tests pin its resolution behavior directly: plain calls, method calls
through locally constructed instances, ``functools.partial`` targets,
names re-exported through intermediate modules, and cycles (which the
taint traversal must survive). Resolution is deliberately an
under-approximation — the negative tests pin what must stay
*unresolved* just as firmly as the positives pin the edges.
"""

from __future__ import annotations

import textwrap

from tools.reprolint.callgraph import (
    build_call_graph,
    dotted_name,
    module_name_for_path,
)


def graph_for(**modules):
    """Build a call graph from {relative_path_with__for_slash: source}."""
    sources = [
        (path.replace("__", "/") + ".py", textwrap.dedent(source))
        for path, source in modules.items()
    ]
    return build_call_graph(sources)


def callee_names(graph, qualname):
    return sorted(callee for callee, _site in graph.callees(qualname))


class TestModuleNaming:
    def test_src_prefix_stripped(self):
        assert module_name_for_path("src/repro/core/pipeline.py") == (
            "repro.core.pipeline",
            False,
        )

    def test_package_init(self):
        assert module_name_for_path("src/repro/core/__init__.py") == (
            "repro.core",
            True,
        )

    def test_tools_tree_keeps_prefix(self):
        name, is_package = module_name_for_path("tools/reprolint/engine.py")
        assert name == "tools.reprolint.engine"
        assert not is_package


class TestDirectCalls:
    def test_same_module_function_call(self):
        graph = graph_for(
            pkg__mod="""
                def helper():
                    return 1

                def caller():
                    return helper()
            """,
        )
        assert callee_names(graph, "pkg.mod:caller") == ["pkg.mod:helper"]

    def test_cross_module_import_call(self):
        graph = graph_for(
            pkg__util="""
                def work():
                    return 1
            """,
            pkg__mod="""
                from pkg import util

                def caller():
                    return util.work()
            """,
        )
        assert callee_names(graph, "pkg.mod:caller") == ["pkg.util:work"]

    def test_from_import_function(self):
        graph = graph_for(
            pkg__util="""
                def work():
                    return 1
            """,
            pkg__mod="""
                from pkg.util import work

                def caller():
                    return work()
            """,
        )
        assert callee_names(graph, "pkg.mod:caller") == ["pkg.util:work"]

    def test_unknown_names_contribute_no_edges(self):
        graph = graph_for(
            pkg__mod="""
                def caller(callback):
                    return callback() + unknown_global()
            """,
        )
        assert callee_names(graph, "pkg.mod:caller") == []


class TestCycles:
    def test_mutual_recursion_edges(self):
        graph = graph_for(
            pkg__mod="""
                def even(n):
                    return n == 0 or odd(n - 1)

                def odd(n):
                    return n != 0 and even(n - 1)
            """,
        )
        assert callee_names(graph, "pkg.mod:even") == ["pkg.mod:odd"]
        assert callee_names(graph, "pkg.mod:odd") == ["pkg.mod:even"]

    def test_self_recursion(self):
        graph = graph_for(
            pkg__mod="""
                def loop(n):
                    return loop(n - 1) if n else 0
            """,
        )
        assert callee_names(graph, "pkg.mod:loop") == ["pkg.mod:loop"]

    def test_cross_module_cycle(self):
        graph = graph_for(
            pkg__a="""
                from pkg import b

                def ping(n):
                    return b.pong(n - 1)
            """,
            pkg__b="""
                from pkg import a

                def pong(n):
                    return a.ping(n - 1)
            """,
        )
        assert callee_names(graph, "pkg.a:ping") == ["pkg.b:pong"]
        assert callee_names(graph, "pkg.b:pong") == ["pkg.a:ping"]


class TestMethods:
    def test_method_registered_with_class_qualname(self):
        graph = graph_for(
            pkg__mod="""
                class Store:
                    def add(self, item):
                        return self._insert(item)

                    def _insert(self, item):
                        return item
            """,
        )
        assert "pkg.mod:Store.add" in graph.functions
        info = graph.functions["pkg.mod:Store.add"]
        assert info.class_name == "pkg.mod:Store"
        assert "pkg.mod:Store" in graph.classes

    def test_self_method_call_resolved(self):
        graph = graph_for(
            pkg__mod="""
                class Store:
                    def add(self, item):
                        return self._insert(item)

                    def _insert(self, item):
                        return item
            """,
        )
        assert callee_names(graph, "pkg.mod:Store.add") == [
            "pkg.mod:Store._insert"
        ]

    def test_local_instance_method_call(self):
        graph = graph_for(
            pkg__mod="""
                class Store:
                    def add(self, item):
                        return item

                def use():
                    store = Store()
                    return store.add(1)
            """,
        )
        callees = callee_names(graph, "pkg.mod:use")
        assert "pkg.mod:Store.add" in callees

    def test_constructor_edge(self):
        graph = graph_for(
            pkg__mod="""
                class Store:
                    def __init__(self):
                        self.items = []

                def use():
                    return Store()
            """,
        )
        assert "pkg.mod:Store.__init__" in callee_names(graph, "pkg.mod:use")

    def test_attribute_call_on_parameter_unresolved(self):
        # Injected dependencies (self.tracer, rng params) must stay
        # unresolved: resolving them by name alone would import taint
        # from unrelated classes that happen to share a method name.
        graph = graph_for(
            pkg__mod="""
                class Store:
                    def add(self, item):
                        return item

                def use(store):
                    return store.add(1)
            """,
        )
        assert callee_names(graph, "pkg.mod:use") == []


class TestFunctoolsPartial:
    def test_partial_target_becomes_edge(self):
        graph = graph_for(
            pkg__mod="""
                import functools

                def work(a, b):
                    return a + b

                def caller():
                    bound = functools.partial(work, 1)
                    return bound(2)
            """,
        )
        assert "pkg.mod:work" in callee_names(graph, "pkg.mod:caller")

    def test_from_import_partial(self):
        graph = graph_for(
            pkg__mod="""
                from functools import partial

                def work(a):
                    return a

                def caller():
                    return partial(work)()
            """,
        )
        assert "pkg.mod:work" in callee_names(graph, "pkg.mod:caller")


class TestReExports:
    def test_name_reexported_through_package_init(self):
        graph = build_call_graph([
            ("pkg/impl.py", "def work():\n    return 1\n"),
            ("pkg/__init__.py", "from pkg.impl import work\n"),
            ("app.py", "from pkg import work\n\ndef caller():\n"
                       "    return work()\n"),
        ])
        assert callee_names(graph, "app:caller") == ["pkg.impl:work"]

    def test_aliased_reexport(self):
        graph = build_call_graph([
            ("pkg/impl.py", "def work():\n    return 1\n"),
            ("pkg/__init__.py", "from pkg.impl import work as run\n"),
            ("app.py", "from pkg import run\n\ndef caller():\n"
                       "    return run()\n"),
        ])
        assert callee_names(graph, "app:caller") == ["pkg.impl:work"]


class TestDottedNameHelper:
    def test_resolves_attribute_chain(self):
        import ast

        expr = ast.parse("np.random.seed").body[0].value
        aliases = {"np": "numpy"}
        assert dotted_name(aliases, expr) == "numpy.random.seed"

    def test_unknown_base_is_none(self):
        import ast

        expr = ast.parse("mystery.call").body[0].value
        assert dotted_name({}, expr) is None
