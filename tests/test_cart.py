"""Tests for the CART-style decision tree (the classifier ablation)."""

from __future__ import annotations

import random

import pytest

from repro.classify.cart import CartLearner, CartModel


class TestValidation:
    def test_depth_positive(self):
        with pytest.raises(ValueError):
            CartLearner(max_depth=0)

    def test_min_samples_leaf(self):
        with pytest.raises(ValueError):
            CartLearner(min_samples_leaf=0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            CartLearner().fit([{"x": 1.0}], [True, False])

    def test_empty(self):
        with pytest.raises(ValueError):
            CartLearner().fit([], [])


class TestLearning:
    def test_numeric_threshold(self):
        rng = random.Random(2)
        features = [{"x": rng.uniform(0, 1)} for _ in range(200)]
        labels = [f["x"] > 0.5 for f in features]
        model = CartLearner().fit(features, labels)
        assert model.classify({"x": 0.9})
        assert not model.classify({"x": 0.1})

    def test_categorical_split(self):
        features = [{"c": "yes"}] * 40 + [{"c": "no"}] * 40
        labels = [True] * 40 + [False] * 40
        model = CartLearner().fit(features, labels)
        assert model.probability({"c": "yes"}) > 0.9
        assert model.probability({"c": "no"}) < 0.1

    def test_pure_node_becomes_leaf(self):
        features = [{"x": 1.0}] * 20
        labels = [True] * 20
        model = CartLearner().fit(features, labels)
        assert model.n_leaves() == 1
        assert model.probability({"x": 1.0}) == 1.0

    def test_depth_bounded(self):
        rng = random.Random(3)
        features = [
            {"x": rng.uniform(0, 1), "y": rng.uniform(0, 1)}
            for _ in range(300)
        ]
        labels = [(f["x"] + f["y"]) % 0.3 > 0.15 for f in features]
        model = CartLearner(max_depth=3).fit(features, labels)
        assert model.depth() <= 3

    def test_score_centered(self):
        features = [{"c": "a"}] * 30 + [{"c": "b"}] * 30
        labels = [True] * 30 + [False] * 30
        model = CartLearner().fit(features, labels)
        assert model.score({"c": "a"}) > 0 > model.score({"c": "b"})
        assert -0.5 <= model.score({"c": "a"}) <= 0.5


class TestMissingValues:
    def test_missing_routes_to_majority(self):
        # 'x' present for most records; missing ones follow the majority.
        features = (
            [{"x": 0.1} for _ in range(60)]
            + [{"x": 0.9} for _ in range(30)]
        )
        labels = [False] * 60 + [True] * 30
        model = CartLearner().fit(features, labels)
        # Majority branch is the x<thr (False) side.
        assert model.probability({"x": None}) < 0.5

    def test_all_missing_feature_never_split(self):
        features = [{"x": None, "c": "a"}] * 20 + [{"x": None, "c": "b"}] * 20
        labels = [True] * 20 + [False] * 20
        model = CartLearner().fit(features, labels)
        assert model.probability({"c": "a"}) > 0.9


class TestComparisonWithADTree:
    def test_cart_competitive_on_dense_data(self):
        rng = random.Random(7)
        features = [{"x": rng.uniform(0, 1)} for _ in range(300)]
        labels = [f["x"] > 0.4 for f in features]
        model = CartLearner().fit(features, labels)
        correct = sum(
            1 for f, label in zip(features, labels)
            if model.classify(f) == label
        )
        assert correct / len(features) > 0.95
