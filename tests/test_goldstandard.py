"""Tests for gold-standard management."""

from __future__ import annotations

from repro.datagen.tagging import Tag, TaggedPair
from repro.evaluation.goldstandard import GoldStandard, TaggedGoldStandard
from repro.records.dataset import Dataset
from tests.conftest import make_record


class TestGoldStandard:
    def test_from_dataset(self):
        dataset = Dataset(
            [
                make_record(book_id=1, person_id=1),
                make_record(book_id=2, person_id=1),
                make_record(book_id=3, person_id=2),
            ]
        )
        gold = GoldStandard.from_dataset(dataset)
        assert gold.matches == frozenset({(1, 2)})
        assert gold.is_match((1, 2))
        assert not gold.is_match((1, 3))
        assert len(gold) == 1

    def test_evaluate(self):
        gold = GoldStandard(frozenset({(1, 2), (3, 4)}))
        quality = gold.evaluate([(1, 2), (5, 6)])
        assert quality.true_positives == 1


class TestTaggedGoldStandard:
    def make(self):
        return TaggedGoldStandard(
            [
                TaggedPair((1, 2), Tag.YES),
                TaggedPair((1, 3), Tag.NO),
                TaggedPair((2, 3), Tag.MAYBE),
            ]
        )

    def test_matches_only_yes(self):
        gold = self.make()
        assert gold.matches == frozenset({(1, 2)})

    def test_known(self):
        gold = self.make()
        assert gold.known((1, 2))
        assert gold.known((2, 3))  # tagged, even if undecidable
        assert not gold.known((7, 8))

    def test_is_match_three_valued(self):
        gold = self.make()
        assert gold.is_match((1, 2)) is True
        assert gold.is_match((1, 3)) is False
        assert gold.is_match((2, 3)) is None
        assert gold.is_match((9, 10)) is None

    def test_evaluate_restricts_to_tagged(self):
        """Untagged candidates are excluded, not counted as FPs."""
        gold = self.make()
        quality = gold.evaluate([(1, 2), (7, 8)])
        assert quality.n_candidates == 1
        assert quality.precision == 1.0

    def test_evaluate_unrestricted(self):
        gold = self.make()
        quality = gold.evaluate([(1, 2), (7, 8)], restrict_to_tagged=False)
        assert quality.n_candidates == 2
        assert quality.precision == 0.5

    def test_len(self):
        assert len(self.make()) == 3
