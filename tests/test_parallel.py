"""Parity harness for the deterministic parallel execution layer.

The parallel layer's contract (docs/PARALLELISM.md) is *determinism by
merge, not by schedule*: ``--workers N`` must produce output
byte-identical to ``--workers 1`` for every N, every chunk size, and
every interleaving the OS scheduler picks — including runs resumed from
checkpoints written under a *different* worker count, runs degraded by
a stage budget, and runs where a worker is killed mid-chunk.

This file pins that contract three ways:

* unit tests for the chunk planner and both executors (submission-order
  collection, inline shortcut, crash retry, stats accounting);
* a serial-vs-parallel parity matrix over corpus sizes x worker counts
  x chunk sizes, comparing the full ranked CSV bytes;
* cross-cutting parity: checkpoint resume across worker counts, budget
  degradation, the run-report ``parallel`` block, and the CLI flags.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.core import PipelineConfig, UncertainERPipeline
from repro.core.pipeline import PIPELINE_STAGES
from repro.datagen import ExpertTagger, build_corpus, simplify_tags
from repro.obs import Tracer
from repro.parallel import (
    MultiprocessExecutor,
    SerialExecutor,
    fixed_chunks,
    make_executor,
    partition_evenly,
)
from repro.resilience import (
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
    StageBudget,
    WorkerCrashPlan,
    WorkerHangPlan,
)

CONFIG = dict(max_minsup=4, ng=3.0, expert_weighting=True)


def _square_chunk(chunk):
    """Module-level (picklable) work function for executor unit tests."""
    return [value * value for value in chunk]


def _sum_chunk(chunk):
    return sum(chunk)


def _resolve_csv(dataset, executor, tmp_path, tag, config=None):
    """Run the full pipeline under ``executor``; return ranked CSV bytes."""
    pipeline = UncertainERPipeline(
        PipelineConfig(**(config or CONFIG)), executor=executor
    )
    out = tmp_path / f"{tag}.csv"
    pipeline.run(dataset).to_csv(out)
    return out.read_bytes()


# -- chunk planning -----------------------------------------------------------


class TestChunking:
    def test_partition_evenly_is_a_balanced_partition(self):
        items = list(range(10))
        chunks = partition_evenly(items, 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for chunk in chunks for x in chunk] == items

    def test_partition_evenly_clamps_to_item_count(self):
        assert partition_evenly([1, 2], 8) == [[1], [2]]
        assert partition_evenly([], 4) == []

    def test_fixed_chunks_splits_by_size(self):
        assert fixed_chunks(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert fixed_chunks([], 3) == []

    def test_chunking_rejects_nonpositive_arguments(self):
        with pytest.raises(ValueError):
            partition_evenly([1], 0)
        with pytest.raises(ValueError):
            fixed_chunks([1], 0)


# -- executors ----------------------------------------------------------------


class TestExecutors:
    def test_make_executor_dispatches_on_worker_count(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(0), SerialExecutor)
        parallel = make_executor(3, chunk_size=5)
        assert isinstance(parallel, MultiprocessExecutor)
        assert parallel.workers == 3
        assert parallel.chunk_size == 5
        assert parallel.parallel
        assert not make_executor(1).parallel

    def test_executor_validates_arguments(self):
        with pytest.raises(ValueError):
            MultiprocessExecutor(0)
        with pytest.raises(ValueError):
            MultiprocessExecutor(2, chunk_size=0)

    def test_plan_chunks_prefers_fixed_size_when_configured(self):
        items = list(range(9))
        assert SerialExecutor().plan_chunks(items) == [items]
        assert MultiprocessExecutor(2).plan_chunks(items) == [
            items[:5], items[5:]
        ]
        assert MultiprocessExecutor(2, chunk_size=4).plan_chunks(items) == [
            items[:4], items[4:8], items[8:]
        ]

    def test_serial_map_preserves_submission_order_and_counts(self):
        executor = SerialExecutor()
        payloads = [[3, 1], [2], [5, 4]]
        assert executor.map_chunks(_square_chunk, payloads) == [
            [9, 1], [4], [25, 16]
        ]
        assert executor.stats.map_calls == 1
        assert executor.stats.chunks == 3
        assert executor.stats.inline_chunks == 3
        assert executor.stats.worker_chunks == 0

    def test_multiprocess_map_matches_serial(self):
        payloads = [list(range(i, i + 4)) for i in range(0, 24, 4)]
        serial = SerialExecutor().map_chunks(_square_chunk, payloads)
        executor = MultiprocessExecutor(2)
        assert executor.map_chunks(_square_chunk, payloads) == serial
        assert executor.stats.worker_chunks == len(payloads)
        assert executor.stats.worker_retries == 0

    def test_multiprocess_single_chunk_runs_inline(self):
        executor = MultiprocessExecutor(4)
        assert executor.map_chunks(_sum_chunk, [[1, 2, 3]]) == [6]
        assert executor.stats.inline_chunks == 1
        assert executor.stats.worker_chunks == 0

    def test_empty_payload_list_is_a_noop(self):
        executor = MultiprocessExecutor(2)
        assert executor.map_chunks(_sum_chunk, []) == []
        assert executor.stats.map_calls == 1
        assert executor.stats.chunks == 0

    def test_worker_crash_is_retried_deterministically(self):
        payloads = [list(range(i, i + 3)) for i in range(0, 12, 3)]
        expected = SerialExecutor().map_chunks(_square_chunk, payloads)
        plan = WorkerCrashPlan(map_call=0, chunk=0)
        executor = MultiprocessExecutor(2, worker_fault=plan)
        assert executor.map_chunks(_square_chunk, payloads) == expected
        assert plan.fired
        assert executor.stats.kills_armed == 1
        # The killed chunk — plus any siblings lost with the broken
        # pool — is recomputed in-process.
        assert executor.stats.worker_retries >= 1
        assert (
            executor.stats.worker_chunks + executor.stats.worker_retries
            == len(payloads)
        )

    def test_worker_crash_plan_fires_exactly_once(self):
        plan = WorkerCrashPlan(map_call=1, chunk=2)
        assert not plan.should_kill(0, 2)
        assert not plan.should_kill(1, 1)
        assert plan.should_kill(1, 2)
        assert plan.fired
        assert not plan.should_kill(1, 2)
        with pytest.raises(ValueError):
            WorkerCrashPlan(map_call=-1)

    def test_hung_worker_times_out_and_is_retried(self):
        payloads = [list(range(i, i + 3)) for i in range(0, 12, 3)]
        expected = SerialExecutor().map_chunks(_square_chunk, payloads)
        plan = WorkerHangPlan(map_call=0, chunk=1, seconds=30.0)
        executor = MultiprocessExecutor(2, timeout=0.5, worker_hang=plan)
        assert executor.map_chunks(_square_chunk, payloads) == expected
        assert plan.fired
        assert executor.stats.hangs_armed == 1
        assert executor.stats.chunks_timed_out == 1
        assert executor.stats.worker_retries >= 1

    def test_hung_worker_timeout_traced(self):
        payloads = [list(range(i, i + 3)) for i in range(0, 12, 3)]
        expected = SerialExecutor().map_chunks(_square_chunk, payloads)
        plan = WorkerHangPlan(map_call=0, chunk=0, seconds=30.0)
        executor = MultiprocessExecutor(2, timeout=0.5, worker_hang=plan)
        tracer = Tracer()
        assert (
            executor.map_chunks(_square_chunk, payloads, tracer=tracer)
            == expected
        )
        tracer.close()
        counters = tracer.aggregate.counters
        assert counters["parallel.chunks_timed_out"] == 1
        assert counters["parallel.worker_retries"] >= 1
        assert executor.stats.chunks_timed_out == 1

    def test_timeout_without_hang_changes_nothing(self):
        payloads = [list(range(i, i + 3)) for i in range(0, 12, 3)]
        expected = SerialExecutor().map_chunks(_square_chunk, payloads)
        executor = MultiprocessExecutor(2, timeout=60.0)
        assert executor.map_chunks(_square_chunk, payloads) == expected
        assert executor.stats.chunks_timed_out == 0
        assert executor.stats.worker_retries == 0

    def test_timeout_and_hang_plan_validation(self):
        with pytest.raises(ValueError):
            MultiprocessExecutor(2, timeout=0.0)
        with pytest.raises(ValueError):
            WorkerHangPlan(seconds=0.0)
        with pytest.raises(ValueError):
            WorkerHangPlan(map_call=-1)
        plan = WorkerHangPlan(map_call=0, chunk=1)
        assert not plan.should_hang(0, 0)
        assert plan.should_hang(0, 1)
        assert not plan.should_hang(0, 1)  # fires exactly once


# -- serial-vs-parallel parity matrix -----------------------------------------


class TestResolutionParity:
    """The headline guarantee: ranked output bytes ignore the executor."""

    @pytest.fixture(scope="class")
    def corpora(self):
        return {
            persons: build_corpus(
                n_persons=persons, communities=("italy",), seed=23
            )[0]
            for persons in (24, 48)
        }

    @pytest.fixture(scope="class")
    def serial_csv(self, corpora, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serial")
        return {
            persons: _resolve_csv(
                dataset, SerialExecutor(), tmp, f"serial_{persons}"
            )
            for persons, dataset in corpora.items()
        }

    @pytest.mark.parametrize("persons", [24, 48])
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("chunk_size", [None, 5])
    def test_parallel_bytes_equal_serial(
        self, corpora, serial_csv, tmp_path, persons, workers, chunk_size
    ):
        executor = make_executor(workers, chunk_size=chunk_size)
        parallel = _resolve_csv(
            corpora[persons], executor, tmp_path, "parallel"
        )
        assert parallel == serial_csv[persons]
        # The run really went through the pool, not a serial fallback.
        assert executor.stats.worker_chunks > 0

    def test_classifier_ranking_parity(self, corpora):
        dataset = corpora[24]
        pipeline = UncertainERPipeline(PipelineConfig(**CONFIG))
        pairs = sorted(pipeline.block(dataset).candidate_pairs)
        labels = simplify_tags(
            ExpertTagger(dataset, seed=9).tag_pairs(pairs), maybe_as=False
        )
        classifier = pipeline.train_classifier(dataset, labels)
        serial = classifier.rank(pairs)
        for workers in (2, 4):
            assert classifier.rank(
                pairs, executor=MultiprocessExecutor(workers)
            ) == serial

    def test_worker_crash_resolution_parity(
        self, corpora, serial_csv, tmp_path
    ):
        plan = WorkerCrashPlan(map_call=1, chunk=0)
        executor = MultiprocessExecutor(2, worker_fault=plan)
        parallel = _resolve_csv(corpora[24], executor, tmp_path, "crashed")
        assert parallel == serial_csv[24]
        assert plan.fired
        assert executor.stats.worker_retries >= 1


# -- checkpoints, budgets, reports, CLI ---------------------------------------


class TestCrossCuttingParity:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(n_persons=40, communities=("italy",), seed=23)[0]

    @pytest.fixture(scope="class")
    def serial_csv(self, corpus, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serial")
        return _resolve_csv(corpus, SerialExecutor(), tmp, "serial")

    @pytest.mark.parametrize(
        "write_workers,resume_workers", [(1, 2), (2, 1), (2, 4)]
    )
    def test_resume_under_different_worker_count(
        self, corpus, serial_csv, tmp_path, write_workers, resume_workers
    ):
        """Fingerprints carry no worker count: checkpoint anywhere,
        resume anywhere, same bytes."""
        store_dir = tmp_path / "checkpoints"
        with pytest.raises(SimulatedCrash):
            UncertainERPipeline(
                PipelineConfig(**CONFIG),
                executor=make_executor(write_workers),
            ).run(
                corpus,
                checkpoints=CheckpointStore(store_dir),
                faults=FaultInjector(
                    FaultPlan(crash_after_stage=PIPELINE_STAGES[0])
                ),
            )

        store = CheckpointStore(store_dir)
        resumed = UncertainERPipeline(
            PipelineConfig(**CONFIG),
            executor=make_executor(resume_workers),
        ).run(corpus, checkpoints=store, resume=True)
        assert store.hits == [PIPELINE_STAGES[0]]
        out = tmp_path / "resumed.csv"
        resumed.to_csv(out)
        assert out.read_bytes() == serial_csv

    def test_budgeted_run_degrades_identically_in_parallel(
        self, corpus, tmp_path
    ):
        """A budget defines its cut by serial visit order, so budgeted
        mining stays serial under any executor — and stays degraded."""
        config = dict(CONFIG, blocking_budget=StageBudget(max_iterations=1))
        serial = _resolve_csv(
            corpus, SerialExecutor(), tmp_path, "budget_serial", config=config
        )
        executor = make_executor(2)
        parallel = _resolve_csv(
            corpus, executor, tmp_path, "budget_parallel", config=config
        )
        assert parallel == serial

    def test_report_carries_parallel_block(self, corpus):
        tracer = Tracer()
        executor = make_executor(2)
        resolution = UncertainERPipeline(
            PipelineConfig(**CONFIG), tracer=tracer, executor=executor
        ).run(corpus)
        tracer.close()
        report = resolution.report
        assert report is not None
        assert report.parallel["executor"] == "multiprocess"
        assert report.parallel["workers"] == 2
        assert report.parallel["chunks"] > 0
        assert report.parallel["map_calls"] > 0
        # Round trip: the block survives to_dict/from_dict (schema v1
        # treats it as additive, like `resilience`).
        from repro.obs import RunReport

        assert RunReport.from_dict(report.to_dict()).parallel == (
            report.parallel
        )

    def test_serial_report_echoes_one_worker(self, corpus):
        tracer = Tracer()
        resolution = UncertainERPipeline(
            PipelineConfig(**CONFIG), tracer=tracer
        ).run(corpus)
        tracer.close()
        assert resolution.report is not None
        assert resolution.report.parallel["executor"] == "serial"
        assert resolution.report.parallel["workers"] == 1

    def test_cli_workers_flag_is_byte_identical(self, tmp_path):
        corpus = tmp_path / "corpus.json"
        assert cli_main([
            "generate", "--persons", "40", "--communities", "italy",
            "--seed", "23", "--out", str(corpus),
        ]) == 0
        outputs = {}
        for workers in (1, 2):
            out = tmp_path / f"ranked_w{workers}.csv"
            report = tmp_path / f"report_w{workers}.json"
            assert cli_main([
                "resolve", str(corpus), "--ng", "3.0", "--max-minsup", "4",
                "--expert-weighting", "--workers", str(workers),
                "--chunk-size", "16",
                "--out", str(out), "--report", str(report),
            ]) == 0
            outputs[workers] = out.read_bytes()
            payload = json.loads(report.read_text())
            assert payload["parallel"]["workers"] == workers
        assert outputs[2] == outputs[1]
