"""Tests for narrative generation."""

from __future__ import annotations

from repro.core.resolution import PairEvidence, ResolutionResult
from repro.graph.knowledge import merge_entity
from repro.graph.narrative import narrative_for, ranked_narratives
from repro.records.dataset import Dataset


class TestNarrativeFor:
    def test_full_story(self, guido_records):
        _son, father_a, father_b, _decoy = guido_records
        profile = merge_entity(1, [father_a, father_b])
        text = narrative_for(profile)
        assert text.startswith("Guido Foa")
        assert "was born" in text
        assert "1920" in text
        assert "Donato" in text and "Olga" in text
        assert "perished in Auschwitz" in text
        assert "2 reports" in text

    def test_sparse_record_still_renders(self, guido_records):
        decoy = guido_records[3]
        profile = merge_entity(0, [decoy])
        text = narrative_for(profile)
        assert text.startswith("Avraham Kesler")
        assert "1 report" in text

    def test_spouse_mentioned(self, guido_records):
        _son, father_a, _father_b, _decoy = guido_records
        profile = merge_entity(0, [father_a])
        assert "Helena" in narrative_for(profile)


class TestRankedNarratives:
    def make_resolution(self, guido_records):
        dataset = Dataset(guido_records)
        evidence = [
            PairEvidence((1028769, 1059654), similarity=0.8, confidence=1.5),
            PairEvidence((1016196, 1059654), similarity=0.3, confidence=-0.5),
        ]
        return dataset, ResolutionResult(evidence)

    def test_returns_sorted_by_confidence(self, guido_records):
        dataset, resolution = self.make_resolution(guido_records)
        narratives = ranked_narratives(
            dataset, resolution, certainty_levels=(1.0, 0.0, -1.0)
        )
        confidences = [narrative.confidence for narrative in narratives]
        assert confidences == sorted(confidences, reverse=True)

    def test_alternative_clusterings_both_present(self, guido_records):
        """Uncertain ER: the two-record father entity appears at high
        certainty; the merged three-record alternative at low."""
        dataset, resolution = self.make_resolution(guido_records)
        narratives = ranked_narratives(
            dataset, resolution, certainty_levels=(1.0, -1.0)
        )
        sizes = {narrative.entity.n_reports for narrative in narratives}
        assert 2 in sizes  # father's pair
        assert 3 in sizes  # father + son alternative

    def test_min_reports_filter(self, guido_records):
        dataset, resolution = self.make_resolution(guido_records)
        narratives = ranked_narratives(
            dataset, resolution, certainty_levels=(0.0,), min_reports=3
        )
        assert all(n.entity.n_reports >= 3 for n in narratives)

    def test_min_reports_validation(self, guido_records):
        dataset, resolution = self.make_resolution(guido_records)
        import pytest
        with pytest.raises(ValueError):
            ranked_narratives(dataset, resolution, min_reports=0)

    def test_dedupes_stable_clusters(self, guido_records):
        dataset, resolution = self.make_resolution(guido_records)
        narratives = ranked_narratives(
            dataset, resolution, certainty_levels=(1.2, 1.1, 1.0)
        )
        keys = [narrative.entity.record_ids for narrative in narratives]
        assert len(keys) == len(set(keys))
