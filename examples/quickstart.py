#!/usr/bin/env python
"""Quickstart: uncertain entity resolution on a synthetic Names corpus.

Generates an ItalySet-style corpus, runs the full pipeline (MFIBlocks
blocking + expert weighting + ADTree classification), and shows the
ranked, certainty-tunable output — the paper's core loop.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ExpertTagger,
    GoldStandard,
    PipelineConfig,
    UncertainERPipeline,
    build_corpus,
    simplify_tags,
)
from repro.evaluation import format_table


def main() -> None:
    # 1. A corpus of ~900 victim reports about 400 ground-truth persons.
    dataset, persons = build_corpus(
        n_persons=400, communities=("italy",), seed=42, name="quickstart"
    )
    gold = GoldStandard.from_dataset(dataset)
    print(f"Corpus: {len(dataset)} reports about {len(persons)} persons "
          f"({len(gold)} duplicate pairs to find)\n")

    # 2. Blocking pass to obtain candidate pairs, then simulate the
    #    archival experts tagging them (Yes/Probably/Maybe/No).
    config = PipelineConfig(max_minsup=5, ng=3.5, expert_weighting=True)
    pipeline = UncertainERPipeline(config)
    blocking = pipeline.block(dataset)
    tagged = ExpertTagger(dataset, seed=7).tag_pairs(blocking.candidate_pairs)
    labels = simplify_tags(tagged, maybe_as=None)
    print(f"Blocking: {len(blocking.blocks)} soft blocks, "
          f"{blocking.comparisons()} candidate pairs "
          f"({len(labels)} expert-tagged)\n")

    # 3. Full pipeline with the ADTree classifier (the Cls condition).
    full_config = PipelineConfig(
        max_minsup=5, ng=3.5, expert_weighting=True,
        same_source_discard=True, classify=True,
    )
    resolution = UncertainERPipeline(full_config).run(
        dataset, labeled_pairs=labels
    )

    # 4. Ranked resolution: quality at several certainty thresholds.
    rows = []
    for certainty in (0.0, 0.5, 1.0, 1.5):
        quality = resolution.evaluate(gold, certainty)
        rows.append([certainty, quality.n_candidates, quality.precision,
                     quality.recall, quality.f1])
    print(format_table(
        ["certainty", "pairs", "precision", "recall", "F-1"], rows,
        title="Quality vs. certainty threshold",
    ))

    # 5. The top-ranked matches.
    print("\nTop 5 ranked matches:")
    for evidence in resolution.top(5):
        a, b = evidence.pair
        left, right = dataset[a], dataset[b]
        print(f"  {a} <-> {b}  confidence={evidence.ranking_key:+.2f}  "
              f"({' '.join(left.first)} {' '.join(left.last)} ~ "
              f"{' '.join(right.first)} {' '.join(right.last)})")

    # 6. Entities at a mid certainty level.
    entities = resolution.entities(certainty=0.5)
    multi = [entity for entity in entities if len(entity) > 1]
    print(f"\nEntities at certainty 0.5: {len(multi)} multi-report persons")


if __name__ == "__main__":
    main()
