#!/usr/bin/env python
"""Submitter deduplication — the sub-problem the paper leaves open.

Section 2: with no unique submitter id, grouping testimonies by the
submitter's (first name, last name, city) yields 514,251 "different
submitters", a figure the authors know is inflated by misspellings,
nicknames, and transliterations — "but short of performing entity
resolution on the submitter data, we must remain with this figure."

This example performs that entity resolution on a synthetic submitter
population and quantifies the overcount.

Run:  python examples/submitter_dedup.py
"""

from __future__ import annotations

from repro.evaluation import format_table
from repro.submitters import (
    SubmitterGenerator,
    dedupe_submitters,
    group_by_signature,
)


def main() -> None:
    records = SubmitterGenerator(n_submitters=400, seed=13).generate()
    truth = len({record.submitter_id for record in records})
    naive = len(group_by_signature(records))
    print(f"{len(records)} testimony pages filed by {truth} real submitters")
    print(f"naive (first, last, city) grouping counts: {naive} "
          f"({naive / truth - 1:.0%} overcount)\n")

    rows = []
    for threshold in (0.97, 0.93, 0.90, 0.87):
        result = dedupe_submitters(records, threshold=threshold)
        precision, recall = result.evaluate(records)
        rows.append([
            threshold, result.n_entities, precision, recall,
            f"{result.n_entities / truth - 1:+.0%}",
        ])
    print(format_table(
        ["threshold", "entities", "precision", "recall", "error vs truth"],
        rows,
        title="Submitter ER at varying merge thresholds",
    ))
    print("\nEven conservative thresholds recover a large share of the "
          "duplicate signatures with near-perfect precision — evidence "
          "that the published 514,251 figure materially overcounts the "
          "real submitter population.")

    # Show a few resolved clusters with visible signature drift.
    result = dedupe_submitters(records, threshold=0.90)
    printed = 0
    print("\nExample resolved submitter identities:")
    for cluster in result.clusters:
        if len(cluster) < 2:
            continue
        print("  " + "  |  ".join(
            f"{first} {last} ({city})" for first, last, city in sorted(cluster)
        ))
        printed += 1
        if printed >= 5:
            break


if __name__ == "__main__":
    main()
