#!/usr/bin/env python
"""Probabilistic same-as querying (the Section 3.2 extension).

The uncertain-ER model points at probabilistic databases: keep every
pairwise comparison as an uncertain *same-as* relation and resolve at
query time. This example materializes that view over a resolved corpus
and answers the questions a crisp clustering cannot:

* what is the probability that two specific reports denote the same
  person (including transitive evidence)?
* how many distinct victims does the corpus probably describe?
* what are the alternative identities of one ambiguous report?

Run:  python examples/probabilistic_queries.py
"""

from __future__ import annotations

from repro import (
    ExpertTagger,
    PipelineConfig,
    UncertainERPipeline,
    build_corpus,
    simplify_tags,
)
from repro.core import ProbabilisticSameAs
from repro.evaluation import format_table


def main() -> None:
    dataset, persons = build_corpus(
        n_persons=250, communities=("hungary",), seed=31, name="prob-demo"
    )
    pipeline = UncertainERPipeline(
        PipelineConfig(ng=3.5, expert_weighting=True)
    )
    blocking = pipeline.block(dataset)
    labels = simplify_tags(
        ExpertTagger(dataset, seed=3).tag_pairs(blocking.candidate_pairs),
        maybe_as=None,
    )
    resolution = UncertainERPipeline(
        PipelineConfig(ng=3.5, expert_weighting=True, classify=True,
                       classifier_threshold=-100.0)  # keep all, rank all
    ).run(dataset, labeled_pairs=labels)

    database = ProbabilisticSameAs(resolution, scale=1.0, seed=11,
                                   n_worlds=600)
    print(f"{len(dataset)} reports, {len(resolution)} uncertain same-as "
          f"edges, {len(persons)} true persons\n")

    # Q1: expected number of entities vs the truth.
    described = {r.person_id for r in dataset}
    expected = database.expected_entities()
    singletons = len(dataset) - len(database.records)
    print(f"Q1  expected entities among linked reports: {expected:.1f} "
          f"(+{singletons} singleton reports; {len(described)} true persons)\n")

    # Q2: pairwise same-entity probabilities for the strongest edges.
    print("Q2  same-entity probability for selected report pairs:")
    ranked = resolution.ranked()
    rows = []
    for evidence in ranked[:3] + ranked[len(ranked) // 2: len(ranked) // 2 + 2]:
        a, b = evidence.pair
        probability = database.same_entity_probability(a, b)
        truth = dataset[a].person_id == dataset[b].person_id
        rows.append([f"{a}~{b}", evidence.ranking_key, probability, truth])
    print(format_table(
        ["pair", "ADT score", "P(same entity)", "ground truth"], rows,
    ))

    # Q3: alternative identities of one ambiguous report.
    ambiguous = None
    for evidence in ranked:
        if 0.2 < database.same_entity_probability(*evidence.pair) < 0.8:
            ambiguous = evidence.pair[0]
            break
    if ambiguous is not None:
        print(f"\nQ3  alternative identities of report {ambiguous}:")
        for cluster, probability in database.entity_distribution(ambiguous)[:4]:
            print(f"    p={probability:.2f}  cluster {sorted(cluster)}")
    else:
        print("\nQ3  no suitably ambiguous report in this corpus")


if __name__ == "__main__":
    main()
