#!/usr/bin/env python
"""The paper's running example: Guido and Massimo Foa (Section 1).

Reconstructs Table 1 — three victim reports, two about Guido Foa the
father (one spelled "Foy") and one about his son — shows why a naive
first+last query misses a record, runs the pipeline, and weaves the
Figure-2-style knowledge graph and narrative.

Run:  python examples/guido_foa.py
"""

from __future__ import annotations

from repro import PipelineConfig, UncertainERPipeline, build_gazetteer
from repro.geo import GeoPoint
from repro.graph import (
    RescuerRecord,
    build_knowledge_graph,
    link_rescuers,
    merge_entity,
    narrative_for,
)
from repro.records import (
    Dataset,
    Gender,
    Place,
    PlaceType,
    SourceKind,
    SourceRef,
    VictimRecord,
)

TORINO = Place(city="Torino", county="Torino", region="Piemonte",
               country="Italy", coords=GeoPoint(45.0703, 7.6869))
TURIN = Place(city="Turin", county="Torino", region="Piemonte",
              country="Italy", coords=GeoPoint(45.0703, 7.6869))
CANISCHIO = Place(city="Canischio", county="Torino", region="Piemonte",
                  country="Italy", coords=GeoPoint(45.3742, 7.5961))
AUSCHWITZ = Place(city="Auschwitz", country="Poland",
                  coords=GeoPoint(50.0343, 19.2098))


def table_1_records():
    """The three reports of Table 1, as database records."""
    return [
        VictimRecord(
            book_id=1016196,
            source=SourceRef(SourceKind.TESTIMONY, "submitter-a"),
            first=("Guido",), last=("Foa",), gender=Gender.MALE,
            birth_day=2, birth_month=8, birth_year=1936,
            mother=("Estela",), father=("Italo",),
            places={PlaceType.BIRTH: (TORINO,), PlaceType.PERMANENT: (TORINO,)},
        ),
        VictimRecord(
            book_id=1059654,
            source=SourceRef(SourceKind.TESTIMONY, "submitter-b"),
            first=("Guido",), last=("Foa",), gender=Gender.MALE,
            birth_day=18, birth_month=11, birth_year=1920,
            spouse=("Helena",), mother=("Olga",), father=("Donato",),
            places={PlaceType.BIRTH: (TORINO,), PlaceType.PERMANENT: (TORINO,),
                    PlaceType.DEATH: (AUSCHWITZ,)},
        ),
        VictimRecord(
            book_id=1028769,
            source=SourceRef(SourceKind.LIST, "deportation-list-7"),
            first=("Guido",), last=("Foy",), gender=Gender.MALE,
            birth_day=18, birth_month=11, birth_year=1920,
            mother=("Olga",), father=("Donato",),
            places={PlaceType.BIRTH: (TURIN,), PlaceType.PERMANENT: (CANISCHIO,)},
        ),
    ]


def main() -> None:
    dataset = Dataset(table_1_records(), name="foa")

    print("Table 1 — the three victim reports:")
    for record in dataset:
        print(f"  BookID {record.book_id}: {' '.join(record.first)} "
              f"{' '.join(record.last)}, born "
              f"{record.birth_day:02d}/{record.birth_month:02d}/{record.birth_year}")

    naive = [r.book_id for r in dataset
             if "Guido" in r.first and "Foa" in r.last]
    print(f"\nNaive query first=Guido AND last=Foa finds: {naive}")
    print("-> BookID 1028769 ('Guido Foy', Canischio) is missed, as the "
          "paper's introduction warns.\n")

    pipeline = UncertainERPipeline(
        PipelineConfig(max_minsup=2, ng=4.0, expert_weighting=True)
    )
    resolution = pipeline.run(dataset)

    print("Ranked candidate pairs from MFIBlocks:")
    for evidence in resolution.ranked():
        print(f"  {evidence.pair}  similarity={evidence.similarity:.3f}")

    father_score = resolution[(1028769, 1059654)].ranking_key
    entities = resolution.entities(certainty=father_score * 0.9,
                                   include_singletons=True)
    print(f"\nEntities at certainty {father_score * 0.9:.2f}:")
    for cluster in entities:
        profile = merge_entity(0, [dataset[rid] for rid in sorted(cluster)])
        print(f"  {sorted(cluster)} -> {profile.display_name()}")

    father_cluster = next(c for c in entities if 1059654 in c)
    profile = merge_entity(0, [dataset[rid] for rid in sorted(father_cluster)])
    print(f"\nNarrative:\n  {narrative_for(profile)}")

    graph = build_knowledge_graph(dataset, resolution,
                                  certainty=father_score * 0.9)

    # Figure 2's final piece: Yad Vashem also commemorates rescuers.
    # Clotilde Boggio hid a child named Massimo in Cuorgne, 1944-1945;
    # linking her record completes the family's story.
    clotilde = RescuerRecord(
        rescuer_id=1, name="Clotilde Boggio", place="Cuorgne",
        period="1944-1945", hidden_first_name="Massimo",
    )
    gazetteer = build_gazetteer(["italy"])
    massimo = VictimRecord(
        book_id=1070001,
        source=SourceRef(SourceKind.TESTIMONY, "submitter-c"),
        first=("Massimo",), last=("Foa",), gender=Gender.MALE,
        father=("Guido",),
        places={PlaceType.WARTIME: (
            Place(city="Cuorgne", county="Torino", region="Piemonte",
                  country="Italy", coords=GeoPoint(45.3900, 7.6500)),
        )},
    )
    extended = Dataset(table_1_records() + [massimo], name="foa+massimo")
    extended_resolution = UncertainERPipeline(
        PipelineConfig(max_minsup=2, ng=4.0, expert_weighting=True)
    ).run(extended)
    graph = build_knowledge_graph(extended, extended_resolution,
                                  certainty=father_score * 0.9)
    n_links = link_rescuers(graph, [clotilde], geo_lookup=gazetteer.lookup)

    print(f"\nKnowledge graph (with Massimo's record and the rescuer): "
          f"{graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges, "
          f"{n_links} rescuer link(s)")
    for u, v, data in graph.edges(data=True):
        label_u = graph.nodes[u].get("label", u)
        label_v = graph.nodes[v].get("label", v)
        extra = f" [{data['period']}]" if data.get("period") else ""
        print(f"  ({label_u}) --{data['relation']}--> ({label_v}){extra}")


if __name__ == "__main__":
    main()
