#!/usr/bin/env python
"""Family-level resolution: the Capelluto scenario (Figures 13-14).

Sibling reports — shared last name, father, mother, and home town — are
false positives for person-level ER but exactly what a family-narrative
researcher wants. This example runs the same corpus at person and family
granularity and prints the family stories it recovers.

Run:  python examples/family_narratives.py
"""

from __future__ import annotations

from collections import Counter

from repro import (
    GoldStandard,
    PipelineConfig,
    UncertainERPipeline,
    build_corpus,
    family_config,
    family_gold_standard,
)
from repro.evaluation import format_table
from repro.graph import merge_entity, narrative_for


def main() -> None:
    dataset, persons = build_corpus(
        n_persons=300, communities=("greece",), seed=77, name="families"
    )
    person_gold = GoldStandard.from_dataset(dataset)
    fam_gold = family_gold_standard(dataset, persons)
    print(f"Corpus: {len(dataset)} reports; {len(person_gold)} person pairs, "
          f"{len(fam_gold)} family pairs in the gold standard\n")

    base = PipelineConfig(max_minsup=5, ng=2.5, expert_weighting=True,
                          same_source_discard=True)
    person_resolution = UncertainERPipeline(base).run(dataset)

    loose = family_config(base)  # denser neighborhoods, no SameSrc
    family_resolution = UncertainERPipeline(loose).run(dataset)

    rows = []
    for label, resolution in (("person-level", person_resolution),
                              ("family-level", family_resolution)):
        for gold_name, gold in (("person", person_gold), ("family", fam_gold)):
            quality = gold.evaluate(resolution.pairs)
            rows.append([label, gold_name, quality.recall, quality.precision])
    print(format_table(
        ["configuration", "gold standard", "recall", "precision"], rows,
        title="Same pipeline, two granularities",
    ))
    print("\nThe loosened configuration recovers more *family* pairs — the "
          "Capelluto-children effect the paper discusses.\n")

    # Show a few recovered family clusters as narratives.
    family_of = {p.person_id: p.family_id for p in persons}
    printed = 0
    for cluster in family_resolution.entities(certainty=0.25):
        if len(cluster) < 3:
            continue
        families = Counter(
            family_of.get(dataset[rid].person_id) for rid in cluster
        )
        family_id, _count = families.most_common(1)[0]
        distinct_persons = {dataset[rid].person_id for rid in cluster}
        if len(distinct_persons) < 2:
            continue  # single person, not a family story
        profile = merge_entity(printed, [dataset[rid] for rid in sorted(cluster)])
        print(f"Family cluster (family #{family_id}, "
              f"{len(distinct_persons)} members, {len(cluster)} reports):")
        print(f"  {narrative_for(profile)}")
        for rid in sorted(cluster):
            record = dataset[rid]
            print(f"    - {rid}: {' '.join(record.first)} "
                  f"{' '.join(record.last)} "
                  f"(father: {' '.join(record.father) or '?'})")
        printed += 1
        if printed >= 3:
            break


if __name__ == "__main__":
    main()
