#!/usr/bin/env python
"""Compare MFIBlocks against the ten baseline blockers (Table 10 style).

Runs every blocking technique on the same corpus and prints recall,
precision, and comparison counts — the precision/recall tradeoff that
motivates MFIBlocks for *uncertain* ER, where blocking is the final
clustering step and precision matters.

Run:  python examples/blocking_comparison.py
"""

from __future__ import annotations

import time

from repro import GoldStandard, MFIBlocks, MFIBlocksConfig, build_corpus
from repro.blocking.baselines import ALL_BASELINES
from repro.evaluation import format_table, reduction_ratio


def main() -> None:
    dataset, _persons = build_corpus(
        n_persons=250, communities=("germany", "ussr"), seed=55,
        name="blocking-comparison",
    )
    gold = GoldStandard.from_dataset(dataset)
    print(f"Corpus: {len(dataset)} records, {len(gold)} true pairs\n")

    algorithms = [MFIBlocks(MFIBlocksConfig(max_minsup=5, ng=3.0))]
    algorithms.extend(cls() for cls in ALL_BASELINES)

    rows = []
    for algorithm in algorithms:
        start = time.perf_counter()  # reprolint: disable=RL005 -- demo prints wall-times on purpose
        result = algorithm.run(dataset)
        elapsed = time.perf_counter() - start  # reprolint: disable=RL005 -- demo prints wall-times on purpose
        quality = gold.evaluate(result.candidate_pairs)
        rows.append([
            algorithm.name,
            quality.recall,
            quality.precision,
            quality.n_candidates,
            reduction_ratio(quality.n_candidates, len(dataset)),
            elapsed,
        ])

    rows.sort(key=lambda row: -row[2])  # by precision, like the paper's story
    print(format_table(
        ["algorithm", "recall", "precision", "pairs", "reduction", "sec"],
        rows,
        title="Blocking techniques compared (cf. Table 10)",
    ))
    print("\nMFIBlocks trades some recall for a precision no baseline "
          "approaches — the balanced tradeoff uncertain ER needs, since "
          "here blocking doubles as the final soft clustering.")


if __name__ == "__main__":
    main()
