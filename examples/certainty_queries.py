#!/usr/bin/env python
"""Certainty-tunable querying: the two applications of Section 4.2.

The paper contrasts a user app that "requires a single deterministic
answer" (victim counts per region) with "a person searching for perished
relatives [who] can control the size of the response by tuning a
certainty parameter". This example implements both against one ranked
resolution.

Run:  python examples/certainty_queries.py
"""

from __future__ import annotations

from collections import Counter

from repro import (
    ExpertTagger,
    GoldStandard,
    PipelineConfig,
    UncertainERPipeline,
    build_corpus,
    simplify_tags,
)
from repro.evaluation import format_table
from repro.records.schema import PlaceType


def relative_search(dataset, resolution, last_name: str, certainty: float):
    """The Web-query interface: find records possibly about relatives."""
    seeds = [r.book_id for r in dataset if last_name in r.last]
    hits = set(seeds)
    for pair in resolution.resolve(certainty):
        a, b = pair
        if a in hits or b in hits:
            hits.update(pair)
    return sorted(hits)


def victim_count_by_country(dataset, resolution, certainty: float) -> Counter:
    """The deterministic-answer app: count entities by wartime country."""
    counts: Counter = Counter()
    for cluster in resolution.entities(certainty, include_singletons=True):
        countries = Counter()
        for rid in cluster:
            for place in dataset[rid].places_of(PlaceType.WARTIME):
                if place.country:
                    countries[place.country] += 1
        if countries:
            counts[countries.most_common(1)[0][0]] += 1
        else:
            counts["(unknown)"] += 1
    return counts


def main() -> None:
    dataset, _persons = build_corpus(
        n_persons=350, communities=("poland", "hungary"), seed=99,
        name="certainty-demo",
    )
    gold = GoldStandard.from_dataset(dataset)

    pipeline = UncertainERPipeline(
        PipelineConfig(max_minsup=5, ng=3.5, expert_weighting=True)
    )
    blocking = pipeline.block(dataset)
    labels = simplify_tags(
        ExpertTagger(dataset, seed=5).tag_pairs(blocking.candidate_pairs),
        maybe_as=None,
    )
    resolution = UncertainERPipeline(
        PipelineConfig(max_minsup=5, ng=3.5, expert_weighting=True,
                       classify=True)
    ).run(dataset, labeled_pairs=labels)

    # -- Scenario A: relative search with a certainty slider ----------------
    surname = next(iter(dataset)).last[0]
    print(f"Scenario A - searching for relatives named {surname!r}:")
    rows = []
    for certainty in (2.0, 1.0, 0.0, -1.0):
        hits = relative_search(dataset, resolution, surname, certainty)
        rows.append([certainty, len(hits)])
    print(format_table(["certainty", "records returned"], rows))
    print("Lowering certainty broadens the response, exactly the "
          "tunable Web-query knob the paper describes.\n")

    # -- Scenario B: deterministic victim counts ------------------------------
    print("Scenario B - entity counts by wartime country (deterministic "
          "answer at a fixed, conservative certainty):")
    counts = victim_count_by_country(dataset, resolution, certainty=1.0)
    rows = [[country, n] for country, n in counts.most_common()]
    print(format_table(["country", "entities"], rows))

    # -- How good is the crisp answer? ----------------------------------------
    quality = resolution.evaluate(gold, certainty=1.0)
    print(f"\nPair quality at certainty 1.0: precision={quality.precision:.3f} "
          f"recall={quality.recall:.3f}")


if __name__ == "__main__":
    main()
