"""Build-version discovery (``repro --version``, RunReport attribution).

The installed distribution's metadata is authoritative — an editable
install of a newer checkout reports that checkout's version, which is
what makes traces attributable to a build. When the package is not
installed (e.g. running from a source tree via ``PYTHONPATH=src``) we
fall back to the hardcoded release version.
"""

from __future__ import annotations

__all__ = ["repro_version", "FALLBACK_VERSION"]

#: Mirrors ``[project] version`` in pyproject.toml; used only when the
#: distribution metadata is unavailable.
FALLBACK_VERSION = "1.0.0"


def repro_version() -> str:
    """The version string stamped into reports, traces, and ``--version``."""
    from importlib.metadata import PackageNotFoundError, version

    try:
        return version("repro")
    except PackageNotFoundError:
        return FALLBACK_VERSION
