"""The 48 pairwise similarity features of Section 5.1.

The paper constructs "every conceivable similarity feature given the
record attributes" — 48 in total — and lets the ADTree learner prune the
useless ones. The feature families it spells out:

* ``sameXName`` (7) — trinary yes/partial/no per name attribute;
* ``XNdist`` (7) — max q-gram Jaccard between the attribute's names;
* ``BXdist`` (3) — birth day/month/year distance (the published trees
  threshold year distance at 1.5/4.5, i.e. *raw* years, so we keep raw
  component distances and note the normalizers in :mod:`repro.similarity.dates`);
* ``samePlaceXPartY`` (16) — binary per (place type, granularity part);
* ``XPGeoDist`` (4) — km between same-type places;
* ``sameSource``, ``sameGender``, ``sameProfession`` (3).

That enumerates 40; the remaining 8 "conceivable" features are not named
in the paper, so we fill the family out with natural candidates (phonetic
name match, Jaro-Winkler name variants, a combined DOB distance, and
item-bag overlap statistics). The ADTree prunes them exactly as the paper
describes — the learned trees select 8-10 features.

Feature names follow the published trees (Tables 7-8): ``sameFFN``,
``MFNdist``, ``FFNdist``, ``B3dist``, ``DPGeoDist``, ...

A feature value is a ``float`` (numeric), a ``str`` (categorical), or
``None`` (missing — either record lacks the underlying attribute). The
ADTree's missing-value semantics skip splitters whose feature is None.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.contracts import batch_kernel, hot_path
from repro.records.itembag import record_to_items
from repro.records.schema import PLACE_PARTS, PlacePart, PlaceType, VictimRecord
from repro.similarity.dates import day_distance, month_distance, year_distance
from repro.geo import haversine_km
from repro.similarity.strings import jaccard_qgrams, jaro_winkler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.records.dataset import Dataset

__all__ = [
    "FeatureKind",
    "FeatureSpec",
    "FeatureVector",
    "FEATURES",
    "FEATURE_NAMES",
    "extract_features",
    "extract_features_batch",
    "soundex",
    "SAME_YES",
    "SAME_PARTIAL",
    "SAME_NO",
]

FeatureValue = Union[float, str, None]
FeatureVector = Dict[str, FeatureValue]

SAME_YES = "yes"
SAME_PARTIAL = "partial"
SAME_NO = "no"


class FeatureKind(str, enum.Enum):
    """Whether a feature yields numbers (thresholdable) or categories."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class FeatureSpec:
    """One pairwise feature: a name, a kind, and an extractor."""

    name: str
    kind: FeatureKind
    extract: Callable[[VictimRecord, VictimRecord], FeatureValue]
    description: str = ""


def soundex(name: str) -> str:
    """American Soundex code of a name (4 characters)."""
    if not name:
        return ""
    codes = {
        "b": "1", "f": "1", "p": "1", "v": "1",
        "c": "2", "g": "2", "j": "2", "k": "2", "q": "2",
        "s": "2", "x": "2", "z": "2",
        "d": "3", "t": "3",
        "l": "4",
        "m": "5", "n": "5",
        "r": "6",
    }
    text = "".join(ch for ch in name.lower() if ch.isalpha())
    if not text:
        return ""
    first = text[0].upper()
    encoded = [codes.get(ch, "") for ch in text]
    result = [first]
    previous = codes.get(text[0], "")
    for i, code in enumerate(encoded[1:], start=1):
        ch = text[i]
        if code and code != previous:
            result.append(code)
        if ch not in "hw":
            previous = code
    return ("".join(result) + "000")[:4]


# -- name-attribute helpers ---------------------------------------------------

#: (feature code, record attribute) for the seven name attributes, in the
#: paper's order: First, Last, Spouse, Father, Mother, Mother's Maiden, Maiden.
_NAME_CODES: Tuple[Tuple[str, str], ...] = (
    ("FN", "first"),
    ("LN", "last"),
    ("SN", "spouse"),
    ("FFN", "father"),
    ("MFN", "mother"),
    ("MMN", "mother_maiden"),
    ("MN", "maiden"),
)

_PLACE_CODES: Tuple[Tuple[str, PlaceType], ...] = (
    ("BP", PlaceType.BIRTH),
    ("PP", PlaceType.PERMANENT),
    ("WP", PlaceType.WARTIME),
    ("DP", PlaceType.DEATH),
)


def _same_name(attribute: str) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        names_a = set(a.names(attribute))
        names_b = set(b.names(attribute))
        if not names_a or not names_b:
            return None
        shared = names_a & names_b
        if names_a == names_b:
            return SAME_YES
        if shared:
            return SAME_PARTIAL
        return SAME_NO

    return extractor


def _name_dist(attribute: str) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        names_a = a.names(attribute)
        names_b = b.names(attribute)
        if not names_a or not names_b:
            return None
        return max(
            jaccard_qgrams(x.lower(), y.lower()) for x in names_a for y in names_b
        )

    return extractor


def _name_jw(attribute: str) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        names_a = a.names(attribute)
        names_b = b.names(attribute)
        if not names_a or not names_b:
            return None
        return max(
            jaro_winkler(x.lower(), y.lower()) for x in names_a for y in names_b
        )

    return extractor


def _name_soundex(attribute: str) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        names_a = a.names(attribute)
        names_b = b.names(attribute)
        if not names_a or not names_b:
            return None
        codes_a = {soundex(name) for name in names_a}
        codes_b = {soundex(name) for name in names_b}
        return SAME_YES if codes_a & codes_b else SAME_NO

    return extractor


# -- date helpers --------------------------------------------------------------


def _birth_component_dist(
    component: str,
) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        value_a = getattr(a, f"birth_{component}")
        value_b = getattr(b, f"birth_{component}")
        if value_a is None or value_b is None:
            return None
        if component == "day":
            return float(day_distance(value_a, value_b))
        if component == "month":
            return float(month_distance(value_a, value_b))
        return float(year_distance(value_a, value_b))

    return extractor


def _full_dob_dist(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    """Approximate distance in days between full birth dates."""
    if None in (a.birth_year, b.birth_year, a.birth_month, b.birth_month,
                a.birth_day, b.birth_day):
        return None
    days_a = a.birth_year * 365 + (a.birth_month - 1) * 30 + a.birth_day
    days_b = b.birth_year * 365 + (b.birth_month - 1) * 30 + b.birth_day
    return float(abs(days_a - days_b))


# -- place helpers ---------------------------------------------------------------


def _same_place_part(
    place_type: PlaceType, part: PlacePart
) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        parts_a = {
            place.part(part)
            for place in a.places_of(place_type)
            if place.part(part) is not None
        }
        parts_b = {
            place.part(part)
            for place in b.places_of(place_type)
            if place.part(part) is not None
        }
        if not parts_a or not parts_b:
            return None
        return SAME_YES if parts_a & parts_b else SAME_NO

    return extractor


def _geo_dist(place_type: PlaceType) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        coords_a = [p.coords for p in a.places_of(place_type) if p.coords is not None]
        coords_b = [p.coords for p in b.places_of(place_type) if p.coords is not None]
        if not coords_a or not coords_b:
            return None
        return min(haversine_km(x, y) for x in coords_a for y in coords_b)

    return extractor


# -- provenance / categorical ------------------------------------------------------


def _same_source(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    return SAME_YES if a.source.key == b.source.key else SAME_NO


def _same_gender(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    if a.gender is None or b.gender is None:
        return None
    return SAME_YES if a.gender is b.gender else SAME_NO


def _same_profession(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    if a.profession is None or b.profession is None:
        return None
    return SAME_YES if a.profession == b.profession else SAME_NO


# -- item-bag overlap ---------------------------------------------------------------


def _shared_item_jaccard(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    items_a = record_to_items(a)
    items_b = record_to_items(b)
    union = items_a | items_b
    if not union:
        return None
    return len(items_a & items_b) / len(union)


def _n_shared_items(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    return float(len(record_to_items(a) & record_to_items(b)))


def _pattern_overlap(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    pattern_a = a.pattern()
    pattern_b = b.pattern()
    union = pattern_a | pattern_b
    if not union:
        return None
    return len(pattern_a & pattern_b) / len(union)


def _build_features() -> List[FeatureSpec]:
    specs: List[FeatureSpec] = []
    for code, attribute in _NAME_CODES:
        specs.append(
            FeatureSpec(
                f"same{code}",
                FeatureKind.CATEGORICAL,
                _same_name(attribute),
                f"yes/partial/no agreement of the {attribute} names",
            )
        )
    for code, attribute in _NAME_CODES:
        specs.append(
            FeatureSpec(
                f"{code}dist",
                FeatureKind.NUMERIC,
                _name_dist(attribute),
                f"max q-gram Jaccard between {attribute} names",
            )
        )
    for index, component in enumerate(("day", "month", "year"), start=1):
        specs.append(
            FeatureSpec(
                f"B{index}dist",
                FeatureKind.NUMERIC,
                _birth_component_dist(component),
                f"birth {component} distance",
            )
        )
    for code, place_type in _PLACE_CODES:
        for part in PLACE_PARTS:
            specs.append(
                FeatureSpec(
                    f"same{code}{part.value.capitalize()}",
                    FeatureKind.CATEGORICAL,
                    _same_place_part(place_type, part),
                    f"same {place_type.value} {part.value}",
                )
            )
    for code, place_type in _PLACE_CODES:
        specs.append(
            FeatureSpec(
                f"{code}GeoDist",
                FeatureKind.NUMERIC,
                _geo_dist(place_type),
                f"km between {place_type.value} places",
            )
        )
    specs.append(
        FeatureSpec("sameSource", FeatureKind.CATEGORICAL, _same_source,
                    "records come from the same list or submitter")
    )
    specs.append(
        FeatureSpec("sameGender", FeatureKind.CATEGORICAL, _same_gender,
                    "records carry the same gender")
    )
    specs.append(
        FeatureSpec("sameProfession", FeatureKind.CATEGORICAL, _same_profession,
                    "records carry the same profession code")
    )
    # The 8 additional "conceivable" features (see module docstring).
    specs.append(
        FeatureSpec("soundexFN", FeatureKind.CATEGORICAL, _name_soundex("first"),
                    "phonetic (Soundex) first-name agreement")
    )
    specs.append(
        FeatureSpec("soundexLN", FeatureKind.CATEGORICAL, _name_soundex("last"),
                    "phonetic (Soundex) last-name agreement")
    )
    specs.append(
        FeatureSpec("FNjw", FeatureKind.NUMERIC, _name_jw("first"),
                    "max Jaro-Winkler between first names")
    )
    specs.append(
        FeatureSpec("LNjw", FeatureKind.NUMERIC, _name_jw("last"),
                    "max Jaro-Winkler between last names")
    )
    specs.append(
        FeatureSpec("fullDOBdist", FeatureKind.NUMERIC, _full_dob_dist,
                    "approximate distance in days between full birth dates")
    )
    specs.append(
        FeatureSpec("itemJaccard", FeatureKind.NUMERIC, _shared_item_jaccard,
                    "Jaccard of the full item bags")
    )
    specs.append(
        FeatureSpec("nSharedItems", FeatureKind.NUMERIC, _n_shared_items,
                    "count of shared items")
    )
    specs.append(
        FeatureSpec("patternOverlap", FeatureKind.NUMERIC, _pattern_overlap,
                    "Jaccard of the records' data patterns")
    )
    return specs


#: The full feature registry, in a stable order.
FEATURES: Tuple[FeatureSpec, ...] = tuple(_build_features())
FEATURE_NAMES: Tuple[str, ...] = tuple(spec.name for spec in FEATURES)

_FEATURES_BY_NAME: Dict[str, FeatureSpec] = {spec.name: spec for spec in FEATURES}

if len(FEATURES) != 48:  # pragma: no cover - structural invariant
    raise AssertionError(f"expected 48 features, built {len(FEATURES)}")


def feature_spec(name: str) -> FeatureSpec:
    """Look up one feature by name."""
    try:
        return _FEATURES_BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown feature: {name!r}") from None


@hot_path
def extract_features(
    a: VictimRecord,
    b: VictimRecord,
    names: Optional[Tuple[str, ...]] = None,
) -> FeatureVector:
    """Compute the feature vector for a candidate record pair.

    ``names`` restricts extraction to a subset (useful for ablations);
    by default all 48 features are computed. Missing attributes yield
    ``None`` values, which the ADTree handles natively.
    """
    selected = FEATURES if names is None else tuple(
        feature_spec(name) for name in names
    )
    return {spec.name: spec.extract(a, b) for spec in selected}


# -- batch extraction ---------------------------------------------------------
#
# ``extract_features_batch`` computes the same feature vectors as
# ``extract_features``, value-for-value, for a whole chunk of pairs at
# once. Candidate pairs inside a block share records and — thanks to
# multi-source reporting — the same few name spellings, so the batch
# form (a) computes per-record artifacts (name tuples, place-part sets,
# item bags) once per record instead of once per pair, (b) memoizes the
# expensive string metrics per *value pair*, and (c) vectorizes the
# date arithmetic with numpy. Every memoized entry is produced by the
# scalar helper itself and the integer date math is exact in float64,
# so each column is equal per pair to the scalar extractor; the
# property suite in ``tests/test_batch_kernels.py`` pins this.

_MemoKey = Tuple[object, ...]


class _BatchFeatureExtractor:
    """One batch call's per-record artifacts and value-pair memos."""

    __slots__ = ("pairs", "records", "_record_memo", "_value_memo")

    def __init__(self, dataset: "Dataset", pairs: Sequence[Tuple[str, str]]):
        self.pairs = pairs
        self.records: Dict[str, VictimRecord] = {
            rid: dataset[rid]
            for rid in sorted({rid for pair in pairs for rid in pair})
        }
        self._record_memo: Dict[_MemoKey, object] = {}
        self._value_memo: Dict[_MemoKey, object] = {}

    def per_record(
        self,
        tag: _MemoKey,
        rid: str,
        build: Callable[[VictimRecord], object],
    ) -> object:
        key = tag + (rid,)
        try:
            return self._record_memo[key]
        except KeyError:
            value = self._record_memo[key] = build(self.records[rid])
            return value

    def best_metric(
        self,
        tag: str,
        reduce_fn: Callable[..., float],
        metric: Callable[[str, str], float],
        values_a: Tuple[object, ...],
        values_b: Tuple[object, ...],
    ) -> float:
        """``reduce_fn(metric(x, y) for x, y in product)``, memoized twice.

        The outer memo keys on the value tuples (record pairs repeat
        them), the inner on individual value pairs (different records
        repeat the same spellings). Both return the scalar helper's own
        floats, so the reduction is over identical values.
        """
        key: _MemoKey = (tag, values_a, values_b)
        memo = self._value_memo
        try:
            return memo[key]  # type: ignore[return-value]
        except KeyError:
            pass
        inner = tag + "1"
        best = reduce_fn(
            self.pair_metric(inner, metric, x, y)
            for x in values_a
            for y in values_b
        )
        memo[key] = best
        return best

    def pair_metric(
        self,
        tag: str,
        metric: Callable[[str, str], float],
        x: object,
        y: object,
    ) -> float:
        key: _MemoKey = (tag, x, y)
        memo = self._value_memo
        try:
            return memo[key]  # type: ignore[return-value]
        except KeyError:
            value = memo[key] = metric(x, y)  # type: ignore[arg-type]
            return value


_ColumnBuilder = Callable[[_BatchFeatureExtractor], List[FeatureValue]]


def _batch_same_name(attribute: str) -> _ColumnBuilder:
    tag: _MemoKey = ("nameset", attribute)

    def build(record: VictimRecord) -> object:
        return set(record.names(attribute))

    def column(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
        out: List[FeatureValue] = []
        for a, b in ex.pairs:
            names_a = ex.per_record(tag, a, build)
            names_b = ex.per_record(tag, b, build)
            if not names_a or not names_b:
                out.append(None)
            elif names_a == names_b:
                out.append(SAME_YES)
            elif names_a & names_b:  # type: ignore[operator]
                out.append(SAME_PARTIAL)
            else:
                out.append(SAME_NO)
        return out

    return column


def _lowered_qgram_jaccard(x: str, y: str) -> float:
    return jaccard_qgrams(x.lower(), y.lower())


def _lowered_jaro_winkler(x: str, y: str) -> float:
    return jaro_winkler(x.lower(), y.lower())


def _batch_name_metric(
    attribute: str, tag: str, metric: Callable[[str, str], float]
) -> _ColumnBuilder:
    names_tag: _MemoKey = ("names", attribute)

    def build(record: VictimRecord) -> object:
        return record.names(attribute)

    def column(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
        out: List[FeatureValue] = []
        for a, b in ex.pairs:
            names_a = ex.per_record(names_tag, a, build)
            names_b = ex.per_record(names_tag, b, build)
            if not names_a or not names_b:
                out.append(None)
            else:
                out.append(
                    ex.best_metric(tag, max, metric, names_a, names_b)  # type: ignore[arg-type]
                )
        return out

    return column


def _batch_name_soundex(attribute: str) -> _ColumnBuilder:
    tag: _MemoKey = ("soundex", attribute)

    def build(record: VictimRecord) -> object:
        names = record.names(attribute)
        if not names:
            return None
        return {soundex(name) for name in names}

    def column(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
        out: List[FeatureValue] = []
        for a, b in ex.pairs:
            codes_a = ex.per_record(tag, a, build)
            codes_b = ex.per_record(tag, b, build)
            if codes_a is None or codes_b is None:
                out.append(None)
            else:
                out.append(
                    SAME_YES if codes_a & codes_b else SAME_NO  # type: ignore[operator]
                )
        return out

    return column


def _batch_birth_component(component: str) -> _ColumnBuilder:
    attr = f"birth_{component}"
    if component == "day":
        cycle, checker = 31, day_distance
    elif component == "month":
        cycle, checker = 12, month_distance
    else:
        cycle, checker = 0, year_distance

    def column(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
        count = len(ex.pairs)
        a_arr = np.zeros(count, dtype=np.int64)
        b_arr = np.zeros(count, dtype=np.int64)
        valid = np.zeros(count, dtype=bool)
        records = ex.records
        for index, (a, b) in enumerate(ex.pairs):
            value_a = getattr(records[a], attr)
            value_b = getattr(records[b], attr)
            if value_a is not None and value_b is not None:
                valid[index] = True
                a_arr[index] = value_a
                b_arr[index] = value_b
        diff = np.abs(a_arr - b_arr)
        if cycle:
            in_range = (
                (a_arr >= 1) & (a_arr <= cycle) & (b_arr >= 1) & (b_arr <= cycle)
            )
            bad = valid & ~in_range
            if bad.any():
                # Replicate the scalar helper's range ValueError.
                first = int(np.flatnonzero(bad)[0])
                checker(int(a_arr[first]), int(b_arr[first]))
            dist = np.minimum(diff, cycle - diff)
        else:
            dist = diff
        # Distances are small exact integers; int64 → float64 is exact.
        values: List[float] = dist.astype(np.float64).tolist()
        valid_list: List[bool] = valid.tolist()
        return [
            values[index] if valid_list[index] else None
            for index in range(count)
        ]

    return column


_DOB_TAG: _MemoKey = ("dob",)


def _dob_triple(record: VictimRecord) -> object:
    return (record.birth_year, record.birth_month, record.birth_day)


def _batch_full_dob(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
    count = len(ex.pairs)
    days_a = np.zeros(count, dtype=np.int64)
    days_b = np.zeros(count, dtype=np.int64)
    valid = np.zeros(count, dtype=bool)
    for index, (a, b) in enumerate(ex.pairs):
        year_a, month_a, day_a = ex.per_record(_DOB_TAG, a, _dob_triple)  # type: ignore[misc]
        year_b, month_b, day_b = ex.per_record(_DOB_TAG, b, _dob_triple)  # type: ignore[misc]
        if None in (year_a, year_b, month_a, month_b, day_a, day_b):
            continue
        valid[index] = True
        days_a[index] = year_a * 365 + (month_a - 1) * 30 + day_a
        days_b[index] = year_b * 365 + (month_b - 1) * 30 + day_b
    values: List[float] = (
        np.abs(days_a - days_b).astype(np.float64).tolist()
    )
    valid_list: List[bool] = valid.tolist()
    return [
        values[index] if valid_list[index] else None for index in range(count)
    ]


def _batch_same_place_part(
    place_type: PlaceType, part: PlacePart
) -> _ColumnBuilder:
    tag: _MemoKey = ("placepart", place_type, part)

    def build(record: VictimRecord) -> object:
        return {
            place.part(part)
            for place in record.places_of(place_type)
            if place.part(part) is not None
        }

    def column(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
        out: List[FeatureValue] = []
        for a, b in ex.pairs:
            parts_a = ex.per_record(tag, a, build)
            parts_b = ex.per_record(tag, b, build)
            if not parts_a or not parts_b:
                out.append(None)
            else:
                out.append(
                    SAME_YES if parts_a & parts_b else SAME_NO  # type: ignore[operator]
                )
        return out

    return column


def _batch_geo_dist(place_type: PlaceType) -> _ColumnBuilder:
    tag: _MemoKey = ("coords", place_type)

    def build(record: VictimRecord) -> object:
        return tuple(
            place.coords
            for place in record.places_of(place_type)
            if place.coords is not None
        )

    def column(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
        out: List[FeatureValue] = []
        for a, b in ex.pairs:
            coords_a = ex.per_record(tag, a, build)
            coords_b = ex.per_record(tag, b, build)
            if not coords_a or not coords_b:
                out.append(None)
            else:
                out.append(
                    ex.best_metric(
                        "geo", min, haversine_km, coords_a, coords_b  # type: ignore[arg-type]
                    )
                )
        return out

    return column


def _batch_same_source(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
    records = ex.records
    return [
        SAME_YES if records[a].source.key == records[b].source.key else SAME_NO
        for a, b in ex.pairs
    ]


def _batch_same_gender(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
    records = ex.records
    out: List[FeatureValue] = []
    for a, b in ex.pairs:
        gender_a = records[a].gender
        gender_b = records[b].gender
        if gender_a is None or gender_b is None:
            out.append(None)
        else:
            out.append(SAME_YES if gender_a is gender_b else SAME_NO)
    return out


def _batch_same_profession(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
    records = ex.records
    out: List[FeatureValue] = []
    for a, b in ex.pairs:
        prof_a = records[a].profession
        prof_b = records[b].profession
        if prof_a is None or prof_b is None:
            out.append(None)
        else:
            out.append(SAME_YES if prof_a == prof_b else SAME_NO)
    return out


_ITEMS_TAG: _MemoKey = ("items",)
_PATTERN_TAG: _MemoKey = ("pattern",)


def _record_pattern(record: VictimRecord) -> object:
    return record.pattern()


def _batch_item_jaccard(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
    out: List[FeatureValue] = []
    for a, b in ex.pairs:
        items_a = ex.per_record(_ITEMS_TAG, a, record_to_items)
        items_b = ex.per_record(_ITEMS_TAG, b, record_to_items)
        inter = len(items_a & items_b)  # type: ignore[operator]
        union = len(items_a) + len(items_b) - inter  # type: ignore[arg-type]
        out.append(inter / union if union else None)
    return out


def _batch_n_shared_items(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
    return [
        float(
            len(
                ex.per_record(_ITEMS_TAG, a, record_to_items)
                & ex.per_record(_ITEMS_TAG, b, record_to_items)  # type: ignore[operator]
            )
        )
        for a, b in ex.pairs
    ]


def _batch_pattern_overlap(ex: _BatchFeatureExtractor) -> List[FeatureValue]:
    out: List[FeatureValue] = []
    for a, b in ex.pairs:
        pattern_a = ex.per_record(_PATTERN_TAG, a, _record_pattern)
        pattern_b = ex.per_record(_PATTERN_TAG, b, _record_pattern)
        inter = len(pattern_a & pattern_b)  # type: ignore[operator]
        union = len(pattern_a) + len(pattern_b) - inter  # type: ignore[arg-type]
        out.append(inter / union if union else None)
    return out


def _build_batch_columns() -> Dict[str, _ColumnBuilder]:
    columns: Dict[str, _ColumnBuilder] = {}
    for code, attribute in _NAME_CODES:
        columns[f"same{code}"] = _batch_same_name(attribute)
        columns[f"{code}dist"] = _batch_name_metric(
            attribute, "qgram", _lowered_qgram_jaccard
        )
    for index, component in enumerate(("day", "month", "year"), start=1):
        columns[f"B{index}dist"] = _batch_birth_component(component)
    for code, place_type in _PLACE_CODES:
        for part in PLACE_PARTS:
            columns[f"same{code}{part.value.capitalize()}"] = (
                _batch_same_place_part(place_type, part)
            )
        columns[f"{code}GeoDist"] = _batch_geo_dist(place_type)
    columns["sameSource"] = _batch_same_source
    columns["sameGender"] = _batch_same_gender
    columns["sameProfession"] = _batch_same_profession
    columns["soundexFN"] = _batch_name_soundex("first")
    columns["soundexLN"] = _batch_name_soundex("last")
    columns["FNjw"] = _batch_name_metric("first", "jw", _lowered_jaro_winkler)
    columns["LNjw"] = _batch_name_metric("last", "jw", _lowered_jaro_winkler)
    columns["fullDOBdist"] = _batch_full_dob
    columns["itemJaccard"] = _batch_item_jaccard
    columns["nSharedItems"] = _batch_n_shared_items
    columns["patternOverlap"] = _batch_pattern_overlap
    return columns


#: Column builders for every registered feature, by name.
_BATCH_COLUMNS: Dict[str, _ColumnBuilder] = _build_batch_columns()

if set(_BATCH_COLUMNS) != set(FEATURE_NAMES):  # pragma: no cover - invariant
    raise AssertionError("batch column registry out of sync with FEATURES")


@batch_kernel
def extract_features_batch(
    dataset: "Dataset",
    pairs: Sequence[Tuple[str, str]],
    names: Optional[Tuple[str, ...]] = None,
) -> List[FeatureVector]:
    """Feature vectors for a chunk of pairs; ≡ :func:`extract_features`.

    Returns one :data:`FeatureVector` per pair, in pair order, with the
    keys in the same (selected-spec) order the scalar extractor uses.
    A feature absent from the batch registry falls back to its scalar
    ``extract`` per pair, so subset selection via ``names`` behaves
    identically — including the ``ValueError`` on unknown names.
    """
    selected = FEATURES if names is None else tuple(
        feature_spec(name) for name in names
    )
    pair_list = list(pairs)
    if not pair_list:
        return []
    extractor = _BatchFeatureExtractor(dataset, pair_list)
    columns: List[List[FeatureValue]] = []
    for spec in selected:
        builder = _BATCH_COLUMNS.get(spec.name)
        if builder is None:
            records = extractor.records
            columns.append(
                [spec.extract(records[a], records[b]) for a, b in pair_list]
            )
        else:
            columns.append(builder(extractor))
    return [
        {spec.name: columns[j][index] for j, spec in enumerate(selected)}
        for index in range(len(pair_list))
    ]
