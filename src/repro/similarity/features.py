"""The 48 pairwise similarity features of Section 5.1.

The paper constructs "every conceivable similarity feature given the
record attributes" — 48 in total — and lets the ADTree learner prune the
useless ones. The feature families it spells out:

* ``sameXName`` (7) — trinary yes/partial/no per name attribute;
* ``XNdist`` (7) — max q-gram Jaccard between the attribute's names;
* ``BXdist`` (3) — birth day/month/year distance (the published trees
  threshold year distance at 1.5/4.5, i.e. *raw* years, so we keep raw
  component distances and note the normalizers in :mod:`repro.similarity.dates`);
* ``samePlaceXPartY`` (16) — binary per (place type, granularity part);
* ``XPGeoDist`` (4) — km between same-type places;
* ``sameSource``, ``sameGender``, ``sameProfession`` (3).

That enumerates 40; the remaining 8 "conceivable" features are not named
in the paper, so we fill the family out with natural candidates (phonetic
name match, Jaro-Winkler name variants, a combined DOB distance, and
item-bag overlap statistics). The ADTree prunes them exactly as the paper
describes — the learned trees select 8-10 features.

Feature names follow the published trees (Tables 7-8): ``sameFFN``,
``MFNdist``, ``FFNdist``, ``B3dist``, ``DPGeoDist``, ...

A feature value is a ``float`` (numeric), a ``str`` (categorical), or
``None`` (missing — either record lacks the underlying attribute). The
ADTree's missing-value semantics skip splitters whose feature is None.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.contracts import hot_path
from repro.records.itembag import record_to_items
from repro.records.schema import PLACE_PARTS, PlacePart, PlaceType, VictimRecord
from repro.similarity.dates import day_distance, month_distance, year_distance
from repro.geo import haversine_km
from repro.similarity.strings import jaccard_qgrams, jaro_winkler

__all__ = [
    "FeatureKind",
    "FeatureSpec",
    "FeatureVector",
    "FEATURES",
    "FEATURE_NAMES",
    "extract_features",
    "soundex",
    "SAME_YES",
    "SAME_PARTIAL",
    "SAME_NO",
]

FeatureValue = Union[float, str, None]
FeatureVector = Dict[str, FeatureValue]

SAME_YES = "yes"
SAME_PARTIAL = "partial"
SAME_NO = "no"


class FeatureKind(str, enum.Enum):
    """Whether a feature yields numbers (thresholdable) or categories."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class FeatureSpec:
    """One pairwise feature: a name, a kind, and an extractor."""

    name: str
    kind: FeatureKind
    extract: Callable[[VictimRecord, VictimRecord], FeatureValue]
    description: str = ""


def soundex(name: str) -> str:
    """American Soundex code of a name (4 characters)."""
    if not name:
        return ""
    codes = {
        "b": "1", "f": "1", "p": "1", "v": "1",
        "c": "2", "g": "2", "j": "2", "k": "2", "q": "2",
        "s": "2", "x": "2", "z": "2",
        "d": "3", "t": "3",
        "l": "4",
        "m": "5", "n": "5",
        "r": "6",
    }
    text = "".join(ch for ch in name.lower() if ch.isalpha())
    if not text:
        return ""
    first = text[0].upper()
    encoded = [codes.get(ch, "") for ch in text]
    result = [first]
    previous = codes.get(text[0], "")
    for i, code in enumerate(encoded[1:], start=1):
        ch = text[i]
        if code and code != previous:
            result.append(code)
        if ch not in "hw":
            previous = code
    return ("".join(result) + "000")[:4]


# -- name-attribute helpers ---------------------------------------------------

#: (feature code, record attribute) for the seven name attributes, in the
#: paper's order: First, Last, Spouse, Father, Mother, Mother's Maiden, Maiden.
_NAME_CODES: Tuple[Tuple[str, str], ...] = (
    ("FN", "first"),
    ("LN", "last"),
    ("SN", "spouse"),
    ("FFN", "father"),
    ("MFN", "mother"),
    ("MMN", "mother_maiden"),
    ("MN", "maiden"),
)

_PLACE_CODES: Tuple[Tuple[str, PlaceType], ...] = (
    ("BP", PlaceType.BIRTH),
    ("PP", PlaceType.PERMANENT),
    ("WP", PlaceType.WARTIME),
    ("DP", PlaceType.DEATH),
)


def _same_name(attribute: str) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        names_a = set(a.names(attribute))
        names_b = set(b.names(attribute))
        if not names_a or not names_b:
            return None
        shared = names_a & names_b
        if names_a == names_b:
            return SAME_YES
        if shared:
            return SAME_PARTIAL
        return SAME_NO

    return extractor


def _name_dist(attribute: str) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        names_a = a.names(attribute)
        names_b = b.names(attribute)
        if not names_a or not names_b:
            return None
        return max(
            jaccard_qgrams(x.lower(), y.lower()) for x in names_a for y in names_b
        )

    return extractor


def _name_jw(attribute: str) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        names_a = a.names(attribute)
        names_b = b.names(attribute)
        if not names_a or not names_b:
            return None
        return max(
            jaro_winkler(x.lower(), y.lower()) for x in names_a for y in names_b
        )

    return extractor


def _name_soundex(attribute: str) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        names_a = a.names(attribute)
        names_b = b.names(attribute)
        if not names_a or not names_b:
            return None
        codes_a = {soundex(name) for name in names_a}
        codes_b = {soundex(name) for name in names_b}
        return SAME_YES if codes_a & codes_b else SAME_NO

    return extractor


# -- date helpers --------------------------------------------------------------


def _birth_component_dist(
    component: str,
) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        value_a = getattr(a, f"birth_{component}")
        value_b = getattr(b, f"birth_{component}")
        if value_a is None or value_b is None:
            return None
        if component == "day":
            return float(day_distance(value_a, value_b))
        if component == "month":
            return float(month_distance(value_a, value_b))
        return float(year_distance(value_a, value_b))

    return extractor


def _full_dob_dist(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    """Approximate distance in days between full birth dates."""
    if None in (a.birth_year, b.birth_year, a.birth_month, b.birth_month,
                a.birth_day, b.birth_day):
        return None
    days_a = a.birth_year * 365 + (a.birth_month - 1) * 30 + a.birth_day
    days_b = b.birth_year * 365 + (b.birth_month - 1) * 30 + b.birth_day
    return float(abs(days_a - days_b))


# -- place helpers ---------------------------------------------------------------


def _same_place_part(
    place_type: PlaceType, part: PlacePart
) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        parts_a = {
            place.part(part)
            for place in a.places_of(place_type)
            if place.part(part) is not None
        }
        parts_b = {
            place.part(part)
            for place in b.places_of(place_type)
            if place.part(part) is not None
        }
        if not parts_a or not parts_b:
            return None
        return SAME_YES if parts_a & parts_b else SAME_NO

    return extractor


def _geo_dist(place_type: PlaceType) -> Callable[[VictimRecord, VictimRecord], FeatureValue]:
    def extractor(a: VictimRecord, b: VictimRecord) -> FeatureValue:
        coords_a = [p.coords for p in a.places_of(place_type) if p.coords is not None]
        coords_b = [p.coords for p in b.places_of(place_type) if p.coords is not None]
        if not coords_a or not coords_b:
            return None
        return min(haversine_km(x, y) for x in coords_a for y in coords_b)

    return extractor


# -- provenance / categorical ------------------------------------------------------


def _same_source(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    return SAME_YES if a.source.key == b.source.key else SAME_NO


def _same_gender(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    if a.gender is None or b.gender is None:
        return None
    return SAME_YES if a.gender is b.gender else SAME_NO


def _same_profession(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    if a.profession is None or b.profession is None:
        return None
    return SAME_YES if a.profession == b.profession else SAME_NO


# -- item-bag overlap ---------------------------------------------------------------


def _shared_item_jaccard(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    items_a = record_to_items(a)
    items_b = record_to_items(b)
    union = items_a | items_b
    if not union:
        return None
    return len(items_a & items_b) / len(union)


def _n_shared_items(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    return float(len(record_to_items(a) & record_to_items(b)))


def _pattern_overlap(a: VictimRecord, b: VictimRecord) -> FeatureValue:
    pattern_a = a.pattern()
    pattern_b = b.pattern()
    union = pattern_a | pattern_b
    if not union:
        return None
    return len(pattern_a & pattern_b) / len(union)


def _build_features() -> List[FeatureSpec]:
    specs: List[FeatureSpec] = []
    for code, attribute in _NAME_CODES:
        specs.append(
            FeatureSpec(
                f"same{code}",
                FeatureKind.CATEGORICAL,
                _same_name(attribute),
                f"yes/partial/no agreement of the {attribute} names",
            )
        )
    for code, attribute in _NAME_CODES:
        specs.append(
            FeatureSpec(
                f"{code}dist",
                FeatureKind.NUMERIC,
                _name_dist(attribute),
                f"max q-gram Jaccard between {attribute} names",
            )
        )
    for index, component in enumerate(("day", "month", "year"), start=1):
        specs.append(
            FeatureSpec(
                f"B{index}dist",
                FeatureKind.NUMERIC,
                _birth_component_dist(component),
                f"birth {component} distance",
            )
        )
    for code, place_type in _PLACE_CODES:
        for part in PLACE_PARTS:
            specs.append(
                FeatureSpec(
                    f"same{code}{part.value.capitalize()}",
                    FeatureKind.CATEGORICAL,
                    _same_place_part(place_type, part),
                    f"same {place_type.value} {part.value}",
                )
            )
    for code, place_type in _PLACE_CODES:
        specs.append(
            FeatureSpec(
                f"{code}GeoDist",
                FeatureKind.NUMERIC,
                _geo_dist(place_type),
                f"km between {place_type.value} places",
            )
        )
    specs.append(
        FeatureSpec("sameSource", FeatureKind.CATEGORICAL, _same_source,
                    "records come from the same list or submitter")
    )
    specs.append(
        FeatureSpec("sameGender", FeatureKind.CATEGORICAL, _same_gender,
                    "records carry the same gender")
    )
    specs.append(
        FeatureSpec("sameProfession", FeatureKind.CATEGORICAL, _same_profession,
                    "records carry the same profession code")
    )
    # The 8 additional "conceivable" features (see module docstring).
    specs.append(
        FeatureSpec("soundexFN", FeatureKind.CATEGORICAL, _name_soundex("first"),
                    "phonetic (Soundex) first-name agreement")
    )
    specs.append(
        FeatureSpec("soundexLN", FeatureKind.CATEGORICAL, _name_soundex("last"),
                    "phonetic (Soundex) last-name agreement")
    )
    specs.append(
        FeatureSpec("FNjw", FeatureKind.NUMERIC, _name_jw("first"),
                    "max Jaro-Winkler between first names")
    )
    specs.append(
        FeatureSpec("LNjw", FeatureKind.NUMERIC, _name_jw("last"),
                    "max Jaro-Winkler between last names")
    )
    specs.append(
        FeatureSpec("fullDOBdist", FeatureKind.NUMERIC, _full_dob_dist,
                    "approximate distance in days between full birth dates")
    )
    specs.append(
        FeatureSpec("itemJaccard", FeatureKind.NUMERIC, _shared_item_jaccard,
                    "Jaccard of the full item bags")
    )
    specs.append(
        FeatureSpec("nSharedItems", FeatureKind.NUMERIC, _n_shared_items,
                    "count of shared items")
    )
    specs.append(
        FeatureSpec("patternOverlap", FeatureKind.NUMERIC, _pattern_overlap,
                    "Jaccard of the records' data patterns")
    )
    return specs


#: The full feature registry, in a stable order.
FEATURES: Tuple[FeatureSpec, ...] = tuple(_build_features())
FEATURE_NAMES: Tuple[str, ...] = tuple(spec.name for spec in FEATURES)

_FEATURES_BY_NAME: Dict[str, FeatureSpec] = {spec.name: spec for spec in FEATURES}

if len(FEATURES) != 48:  # pragma: no cover - structural invariant
    raise AssertionError(f"expected 48 features, built {len(FEATURES)}")


def feature_spec(name: str) -> FeatureSpec:
    """Look up one feature by name."""
    try:
        return _FEATURES_BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown feature: {name!r}") from None


@hot_path
def extract_features(
    a: VictimRecord,
    b: VictimRecord,
    names: Optional[Tuple[str, ...]] = None,
) -> FeatureVector:
    """Compute the feature vector for a candidate record pair.

    ``names`` restricts extraction to a subset (useful for ablations);
    by default all 48 features are computed. Missing attributes yield
    ``None`` values, which the ADTree handles natively.
    """
    selected = FEATURES if names is None else tuple(
        feature_spec(name) for name in names
    )
    return {spec.name: spec.extract(a, b) for spec in selected}
