"""The expert item-similarity function of Eq. 1 and item-set similarity.

Eq. 1 in the paper defines a typed similarity between two *items*:

====================  =========================================
item kinds            similarity
====================  =========================================
different kinds       0
Name                  Jaro-Winkler
Year                  ``1 - |y1 - y2| / 50``
Month                 ``1 - monthDiff / 12``
Day                   ``1 - dayDiff / 31``
Geo                   ``max(0, 1 - geoDist / 100)``
====================  =========================================

Geo items are city names; resolving them to coordinates requires a
gazetteer, injected as a ``geo_lookup`` callable. When no gazetteer is
available (or a city is unknown) the Geo branch falls back to exact
match, which keeps the function total.

The module also provides the two record-level similarities MFIBlocks
scoring needs: plain (optionally weighted) Jaccard over item sets, and
the "ExpertSim" soft-Jaccard built on Eq. 1. Note the paper's finding
(Table 9): the expert function *hurts* quality because it breaks the
set-monotonicity the MFIBlocks score relies on — we reproduce it anyway.
"""

from __future__ import annotations

import math
from typing import Callable, FrozenSet, Mapping, Optional

from repro.contracts import hot_path, pure
from repro.records.itembag import Item, ItemKind, ItemType
from repro.similarity import dates
from repro.geo import GeoPoint, geo_similarity
from repro.similarity.strings import jaro_winkler

__all__ = [
    "expert_item_similarity",
    "jaccard_items",
    "weighted_jaccard_items",
    "soft_jaccard_items",
    "GeoLookup",
]

GeoLookup = Callable[[str], Optional[GeoPoint]]


@hot_path
@pure
def expert_item_similarity(
    a: Item, b: Item, geo_lookup: Optional[GeoLookup] = None
) -> float:
    """Eq. 1: typed similarity between two items.

    Items of different *types* (not just kinds) score 0 — a birth city
    and a death city are never compared, per the paper's schema-semantics
    argument.
    """
    if a.type is not b.type:
        return 0.0
    kind = a.type.kind
    if kind is ItemKind.NAME:
        return jaro_winkler(a.value, b.value)
    if kind in (ItemKind.YEAR, ItemKind.MONTH, ItemKind.DAY):
        try:
            value_a, value_b = int(a.value), int(b.value)
            if kind is ItemKind.YEAR:
                return dates.year_similarity(value_a, value_b)
            if kind is ItemKind.MONTH:
                return dates.month_similarity(value_a, value_b)
            return dates.day_similarity(value_a, value_b)
        except ValueError:
            # Malformed date values (OCR noise, out-of-range components)
            # degrade to exact match.
            return 1.0 if a.value == b.value else 0.0
    if kind is ItemKind.GEO:
        if geo_lookup is not None:
            point_a = geo_lookup(a.value)
            point_b = geo_lookup(b.value)
            sim = geo_similarity(point_a, point_b)
            if sim is not None:
                return sim
        return 1.0 if a.value == b.value else 0.0
    # Categorical items: exact match only.
    return 1.0 if a.value == b.value else 0.0


@hot_path
@pure
def jaccard_items(a: FrozenSet[Item], b: FrozenSet[Item]) -> float:
    """Plain Jaccard coefficient between two item sets."""
    if not a and not b:
        return 1.0
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


@hot_path
@pure
def weighted_jaccard_items(
    a: FrozenSet[Item],
    b: FrozenSet[Item],
    weights: Mapping[ItemType, float],
    default_weight: float = 1.0,
) -> float:
    """Item-type-weighted Jaccard (the "Expert Weighting" condition).

    Each item contributes its type's weight to both the intersection and
    the union mass; uniform weights reduce to plain Jaccard.
    """
    if not a and not b:
        return 1.0

    def weight(item: Item) -> float:
        return weights.get(item.type, default_weight)

    # fsum, not sum: these iterate frozensets in hash order, and naive
    # float accumulation is order-sensitive in the low bits — enough to
    # flip ranking ties across PYTHONHASHSEED values. fsum is exactly
    # rounded, so iteration order cannot reach the result.
    union_mass = math.fsum(weight(item) for item in a | b)
    if union_mass == 0:
        return 1.0
    inter_mass = math.fsum(weight(item) for item in a & b)
    return inter_mass / union_mass


@hot_path
@pure
def soft_jaccard_items(
    a: FrozenSet[Item],
    b: FrozenSet[Item],
    geo_lookup: Optional[GeoLookup] = None,
    weights: Optional[Mapping[ItemType, float]] = None,
) -> float:
    """"ExpertSim": Jaccard generalized with Eq.-1 partial item matches.

    Intersection mass is a greedy best-match assignment: each item of the
    smaller set claims its most similar unclaimed counterpart of the same
    type in the other set, contributing the Eq.-1 similarity. Exact
    matches contribute 1, so on disjoint-typed sets this reduces to plain
    Jaccard. This soft score is *not* set-monotone, which is the paper's
    explanation for its poor Table 9 showing.
    """
    if not a and not b:
        return 1.0
    union_size = len(a | b)
    if union_size == 0:
        return 1.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    shared = small & large
    inter_mass = float(len(shared))
    # The greedy claim loop below is order-sensitive (ties go to the
    # first candidate seen), so the leftovers must leave set iteration
    # order behind: sort both lists into a canonical order.
    remaining_small = sorted(
        (item for item in small if item not in shared), key=repr
    )
    remaining_large = sorted(
        (item for item in large if item not in shared), key=repr
    )

    def item_weight(item: Item) -> float:
        if weights is None:
            return 1.0
        return weights.get(item.type, 1.0)

    if weights is not None:
        # fsum for the same reason as weighted_jaccard_items: set
        # iteration order must not reach the float result.
        inter_mass = math.fsum(item_weight(item) for item in shared)
        union_size = math.fsum(item_weight(item) for item in a | b)
        if union_size == 0:
            return 1.0

    claimed = [False] * len(remaining_large)
    for item in remaining_small:
        best_score = 0.0
        best_index = -1
        for j, other in enumerate(remaining_large):
            if claimed[j] or other.type is not item.type:
                continue
            score = expert_item_similarity(item, other, geo_lookup)
            if score > best_score:
                best_score = score
                best_index = j
        if best_index >= 0:
            claimed[best_index] = True
            inter_mass += best_score * item_weight(item)
    return inter_mass / union_size
