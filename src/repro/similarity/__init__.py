"""Similarity substrate: string/date/geo metrics, Eq.-1 item similarity,
and the 48 pairwise features of Section 5.1."""

from __future__ import annotations

from repro.similarity.features import (
    FEATURE_NAMES,
    FEATURES,
    FeatureKind,
    FeatureSpec,
    extract_features,
)
from repro.geo import GeoPoint, geo_similarity, haversine_km
from repro.similarity.items import (
    expert_item_similarity,
    jaccard_items,
    soft_jaccard_items,
    weighted_jaccard_items,
)
from repro.similarity.strings import (
    jaccard,
    jaccard_qgrams,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    qgrams,
)

__all__ = [
    "FEATURE_NAMES",
    "FEATURES",
    "FeatureKind",
    "FeatureSpec",
    "extract_features",
    "GeoPoint",
    "geo_similarity",
    "haversine_km",
    "expert_item_similarity",
    "jaccard_items",
    "soft_jaccard_items",
    "weighted_jaccard_items",
    "jaccard",
    "jaccard_qgrams",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "qgrams",
]
