"""Date-component distances for the ``BXDist`` features and Eq. 1.

The paper treats birth dates as three independent components — day, month,
year — because multi-source reports frequently disagree on (or omit) parts
of a date. Each component distance is normalized by a maximal distance:
31 for days, 12 for months, and 100 for years (Section 5.1), while the
expert item-similarity function (Eq. 1) normalizes years by 50.

Month distance is *cyclic* (December and January are one month apart),
matching ``monthDiff`` in Eq. 1; day distance is likewise cyclic within a
month (``dayDiff``).
"""

from __future__ import annotations

from typing import Optional

from repro.contracts import pure

__all__ = [
    "day_distance",
    "month_distance",
    "year_distance",
    "day_similarity",
    "month_similarity",
    "year_similarity",
    "normalized_component_distance",
    "DAY_NORMALIZER",
    "MONTH_NORMALIZER",
    "YEAR_NORMALIZER",
    "YEAR_NORMALIZER_EQ1",
]

#: Normalization constants from Section 5.1 (feature definitions).
DAY_NORMALIZER = 31
MONTH_NORMALIZER = 12
YEAR_NORMALIZER = 100
#: The expert similarity function (Eq. 1) uses a tighter year normalizer.
YEAR_NORMALIZER_EQ1 = 50


@pure
def day_distance(a: int, b: int) -> int:
    """Cyclic distance between two days-of-month (1..31)."""
    _check_range(a, 1, 31, "day")
    _check_range(b, 1, 31, "day")
    diff = abs(a - b)
    return min(diff, 31 - diff)


@pure
def month_distance(a: int, b: int) -> int:
    """Cyclic distance between two months (1..12)."""
    _check_range(a, 1, 12, "month")
    _check_range(b, 1, 12, "month")
    diff = abs(a - b)
    return min(diff, 12 - diff)


@pure
def year_distance(a: int, b: int) -> int:
    """Absolute distance between two years."""
    return abs(a - b)


@pure
def day_similarity(a: int, b: int) -> float:
    """``1 - dayDiff/31`` — the Day branch of Eq. 1."""
    return 1.0 - day_distance(a, b) / DAY_NORMALIZER


@pure
def month_similarity(a: int, b: int) -> float:
    """``1 - monthDiff/12`` — the Month branch of Eq. 1."""
    return 1.0 - month_distance(a, b) / MONTH_NORMALIZER


@pure
def year_similarity(a: int, b: int, normalizer: int = YEAR_NORMALIZER_EQ1) -> float:
    """``1 - |y1 - y2| / normalizer`` clamped at 0 — the Year branch of Eq. 1."""
    return max(0.0, 1.0 - year_distance(a, b) / normalizer)


@pure
def normalized_component_distance(
    a: Optional[int], b: Optional[int], component: str
) -> Optional[float]:
    """Normalized distance in ``[0, 1]`` for a date component, or ``None``.

    Returns ``None`` when either value is missing — the ADTree treats a
    missing feature as "do not traverse this splitter", so distances must
    not be fabricated for absent values.
    """
    if a is None or b is None:
        return None
    if component == "day":
        return day_distance(a, b) / DAY_NORMALIZER
    if component == "month":
        return month_distance(a, b) / MONTH_NORMALIZER
    if component == "year":
        return min(1.0, year_distance(a, b) / YEAR_NORMALIZER)
    raise ValueError(f"unknown date component: {component!r}")


def _check_range(value: int, lo: int, hi: int, name: str) -> None:
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
