"""Vectorized batch forms of the item-set similarity kernels.

Each kernel here computes, for a *list* of record pairs at once, the
same float the scalar reference in :mod:`repro.similarity.items`
computes per pair — **bit for bit**. The scalar functions remain the
reference implementations (and the property suite in
``tests/test_batch_kernels.py`` pins the equivalence); these batch
forms exist so a chunk of thousands of pairs costs a handful of numpy
passes instead of thousands of frozenset walks.

Bit-identity arguments, per kernel:

* :func:`jaccard_items_batch` — ``len(a & b) / len(a | b)`` is a single
  correctly-rounded division of two small exact integers; popcounts of
  packed bitsets produce the same integers, and numpy's ``int64``
  division through float64 is the same IEEE operation.
* :func:`weighted_jaccard_items_batch` — the scalar uses ``math.fsum``,
  which returns the correctly rounded *exact* sum. With every weight
  rewritten as an exact integer over a common power-of-two denominator
  ``D`` (:class:`~repro.similarity.interning.ScaledWeights`), the exact
  mass is an integer ``N`` and Python's ``N / D`` is the same correctly
  rounded value. A nonzero exact mass is at least ``1 / D`` in
  magnitude, which never underflows to ``0.0``, so the ``== 0`` branch
  agrees with ``fsum`` exactly as well.
* :func:`soft_jaccard_items_batch` — the greedy Eq.-1 assignment only
  contributes when *both* sides keep unshared items of a common type;
  the per-type popcounts detect exactly those pairs, which are scored
  by the scalar reference itself. All remaining pairs reduce to the
  (weighted) set-overlap arithmetic above.

Every kernel is ``@batch_kernel``: the reprolint perf pass (RL300)
neither analyzes the body nor traverses into it from hot callers.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.contracts import batch_kernel, pure
from repro.records.itembag import ItemType
from repro.similarity.interning import InternedCorpus, Pair, ScaledWeights
from repro.similarity.items import (
    GeoLookup,
    soft_jaccard_items,
    weighted_jaccard_items,
)

__all__ = [
    "jaccard_items_batch",
    "weighted_jaccard_items_batch",
    "soft_jaccard_items_batch",
]

#: Float division by the common denominator is a pure exponent shift
#: (hence rounding-preserving) only while every nonzero ``mass / D``
#: stays in the normal float range. ``|mass| >= 1``, so ``D <= 2**1022``
#: guarantees it; larger denominators (subnormal weights) take the
#: exact Python-int division path instead.
_FLOAT_EXACT_DEN = 1 << 1022


def _popcount_rows(bits2d: np.ndarray) -> np.ndarray:
    return np.bitwise_count(bits2d).sum(axis=1, dtype=np.int64)


@batch_kernel
@pure
def jaccard_items_batch(
    corpus: InternedCorpus, pairs: Sequence[Pair]
) -> List[float]:
    """Plain Jaccard for every pair; ≡ :func:`jaccard_items` per pair."""
    if not pairs:
        return []
    a_rows, b_rows = corpus.pair_rows(pairs)
    inter = _popcount_rows(corpus.bits[a_rows] & corpus.bits[b_rows])
    union = corpus.sizes[a_rows] + corpus.sizes[b_rows] - inter
    # union == 0 iff both bags are empty, which the scalar defines as
    # 1.0; the maximum() only guards the division at those positions.
    out = np.where(union > 0, inter / np.maximum(union, 1), 1.0)
    result: List[float] = out.tolist()
    return result


@batch_kernel
@pure
def weighted_jaccard_items_batch(
    corpus: InternedCorpus,
    pairs: Sequence[Pair],
    weights: Mapping[ItemType, float],
    default_weight: float = 1.0,
) -> List[float]:
    """Type-weighted Jaccard; ≡ :func:`weighted_jaccard_items` per pair."""
    if not pairs:
        return []
    scaled = corpus.scaled_weights(weights, default_weight)
    if scaled is None:
        # A non-finite weight defeats exact integer scaling: defer to
        # the scalar reference, which is the semantics by definition.
        bags = corpus.bags
        return [
            weighted_jaccard_items(bags[a], bags[b], weights, default_weight)
            for a, b in pairs
        ]
    a_rows, b_rows = corpus.pair_rows(pairs)
    and_bits = corpus.bits[a_rows] & corpus.bits[b_rows]
    if (
        scaled.vec64 is not None
        and scaled.record_masses is not None
        and scaled.seg_vec64 is not None
        and scaled.denominator <= _FLOAT_EXACT_DEN
    ):
        inter_arr = corpus.seg_counts_of(and_bits) @ scaled.seg_vec64
        union_arr = (
            scaled.record_masses[a_rows]
            + scaled.record_masses[b_rows]
            - inter_arr
        )
        return _mass_ratio(inter_arr, union_arr, scaled.denominator)
    inter_tc = corpus.type_counts_of(and_bits)
    union_tc = (
        corpus.type_counts[a_rows] + corpus.type_counts[b_rows] - inter_tc
    )
    inter_mass, union_mass = _masses(scaled, inter_tc, union_tc)
    both_empty = (
        (corpus.sizes[a_rows] + corpus.sizes[b_rows]) == 0
    ).tolist()
    denominator = scaled.denominator
    out: List[float] = []
    for index in range(len(pairs)):
        if both_empty[index]:
            out.append(1.0)
            continue
        union_n = union_mass[index]
        if union_n == 0:
            # Exactly the scalar's ``union_mass == 0`` branch: a zero
            # integer mass is the only way fsum returns 0.0.
            out.append(1.0)
            continue
        out.append((inter_mass[index] / denominator) / (union_n / denominator))
    return out


@batch_kernel
@pure
def soft_jaccard_items_batch(
    corpus: InternedCorpus,
    pairs: Sequence[Pair],
    geo_lookup: Optional[GeoLookup] = None,
    weights: Optional[Mapping[ItemType, float]] = None,
) -> List[float]:
    """Eq.-1 soft Jaccard; ≡ :func:`soft_jaccard_items` per pair.

    The greedy partial-match assignment engages only when both records
    keep unshared items of a common type; those pairs are delegated to
    the scalar reference on the original frozensets, so the greedy
    order, tie-breaks and float accumulation are the reference's own.
    """
    if not pairs:
        return []
    scaled = None
    if weights is not None:
        scaled = corpus.scaled_weights(weights, 1.0)
        if scaled is None:
            bags = corpus.bags
            return [
                soft_jaccard_items(bags[a], bags[b], geo_lookup, weights)
                for a, b in pairs
            ]
    a_rows, b_rows = corpus.pair_rows(pairs)
    inter_tc = corpus.type_counts_of(corpus.bits[a_rows] & corpus.bits[b_rows])
    type_counts_a = corpus.type_counts[a_rows]
    type_counts_b = corpus.type_counts[b_rows]
    needs_greedy = (
        ((type_counts_a - inter_tc) > 0) & ((type_counts_b - inter_tc) > 0)
    ).any(axis=1)
    inter = inter_tc.sum(axis=1)
    union = corpus.sizes[a_rows] + corpus.sizes[b_rows] - inter
    union_list: List[int] = union.tolist()
    greedy_list: List[bool] = needs_greedy.tolist()
    if weights is None:
        fast = (inter / np.maximum(union, 1)).tolist()
        inter_mass: List[int] = []
        union_mass: List[int] = []
        denominator = 1
    else:
        assert scaled is not None
        fast = []
        union_tc = type_counts_a + type_counts_b - inter_tc
        inter_mass, union_mass = _masses(scaled, inter_tc, union_tc)
        denominator = scaled.denominator
    bags = corpus.bags
    out: List[float] = []
    for index, (rid_a, rid_b) in enumerate(pairs):
        if union_list[index] == 0:
            # Both bags empty: the scalar's first branch.
            out.append(1.0)
        elif greedy_list[index]:
            out.append(
                soft_jaccard_items(
                    bags[rid_a], bags[rid_b], geo_lookup, weights
                )
            )
        elif weights is None:
            out.append(fast[index])
        else:
            union_n = union_mass[index]
            if union_n == 0:
                out.append(1.0)
            else:
                out.append(
                    (inter_mass[index] / denominator)
                    / (union_n / denominator)
                )
    return out


def _mass_ratio(
    inter_arr: np.ndarray, union_arr: np.ndarray, denominator: int
) -> List[float]:
    """``round(Ni/D) / round(Nu/D)`` vectorized, bit-equal to fsum.

    ``int64 → float64`` conversion is correctly rounded, and dividing
    by the exact power-of-two ``D`` only shifts the exponent, so
    ``float64(N) / D == round(N / D)`` for every nonzero mass in the
    normal range (guaranteed by the ``_FLOAT_EXACT_DEN`` gate). A zero
    integer mass is exactly the scalar's ``fsum == 0`` branch.
    """
    den = float(denominator)
    inter_f = inter_arr.astype(np.float64) / den
    union_f = union_arr.astype(np.float64) / den
    safe = np.where(union_arr != 0, union_f, 1.0)
    out = np.where(union_arr == 0, 1.0, inter_f / safe)
    result: List[float] = out.tolist()
    return result


def _masses(
    scaled: ScaledWeights,
    inter_tc: np.ndarray,
    union_tc: np.ndarray,
) -> "tuple[List[int], List[int]]":
    """Exact integer masses of per-type counts under scaled weights.

    The ``int64`` matmul is used only under the corpus's proven
    overflow bound; otherwise the fallback runs exact Python-int
    arithmetic. ``tolist()`` converts to Python ints *before* any
    division — ``np.int64`` division routes through float64.
    """
    if scaled.vec64 is not None:
        inter_mass: List[int] = (inter_tc @ scaled.vec64).tolist()
        union_mass: List[int] = (union_tc @ scaled.vec64).tolist()
        return inter_mass, union_mass
    ints = scaled.ints
    inter_mass = [
        sum(count * weight for count, weight in zip(row, ints) if count)
        for row in inter_tc.tolist()
    ]
    union_mass = [
        sum(count * weight for count, weight in zip(row, ints) if count)
        for row in union_tc.tolist()
    ]
    return inter_mass, union_mass
