"""Re-export of the geographic primitives (kept at :mod:`repro.geo` so the
records substrate can use coordinates without importing this package)."""

from __future__ import annotations

from repro.geo import (
    EARTH_RADIUS_KM,
    GEO_NORMALIZER_KM,
    GeoPoint,
    geo_similarity,
    haversine_km,
)

__all__ = [
    "EARTH_RADIUS_KM",
    "GEO_NORMALIZER_KM",
    "GeoPoint",
    "geo_similarity",
    "haversine_km",
]
