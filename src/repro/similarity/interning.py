"""Interned integer encoding of record item bags for batch kernels.

The scalar similarity functions in :mod:`repro.similarity.items` work
on ``FrozenSet[Item]`` — per pair, per call. At corpus scale that is
the RL300-flagged hot chain: every pair rebuilds set intersections of
tuples of strings. :class:`InternedCorpus` removes the string work
once and for all:

* the corpus vocabulary is sorted canonically by ``(item type, value)``
  and interned to dense integer ids, so every :class:`ItemType` owns a
  contiguous id range;
* each record's bag becomes a packed ``uint64`` bitset row, so pair
  intersection/union sizes are ``AND``/``popcount`` over a handful of
  machine words (``numpy.bitwise_count``), and *per-type* counts are
  popcounts over the type's word range with boundary masks;
* weighted masses are computed in **exact integer arithmetic**: every
  float weight is a dyadic rational (``float.as_integer_ratio`` always
  yields a power-of-two denominator), so all weights share a common
  denominator ``D`` and the weighted mass of any item multiset is an
  integer ``N`` with exact value ``N / D``. ``math.fsum`` — what the
  scalar reference uses — returns the correctly rounded exact sum, and
  Python's int/int true division is also correctly rounded, so
  ``N / D == math.fsum(weights)`` **bit for bit**. This is the identity
  that lets the batch kernels in :mod:`repro.similarity.batch` promise
  byte-identical ranked output (docs/PARALLELISM.md, "Batch kernels").

Integer overflow is handled, not assumed away: the ``int64`` matmul
fast path is used only when the largest conceivable scaled mass is
provably below ``2**62``; otherwise the mass falls back to exact
Python-int arithmetic. Note ``numpy`` integer scalars must be converted
to Python ints *before* the final division — ``np.int64 / int`` routes
through float64 and loses the correct rounding above ``2**53``.

The corpus is read-only after construction, picklable, and fork-safe —
the shared-state registry (:mod:`repro.parallel.shared`) publishes it
once per run and workers score pairs against the inherited arrays
without any per-chunk corpus pickling.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.contracts import deterministic
from repro.records.itembag import Item, ItemType

__all__ = ["InternedCorpus", "ScaledWeights", "TYPE_ORDER"]

Pair = Tuple[int, int]

#: Canonical item-type order: enum definition order, which is fixed at
#: import time and independent of hash seeds.
TYPE_ORDER: Tuple[ItemType, ...] = tuple(ItemType)

_TYPE_INDEX: Dict[ItemType, int] = {t: i for i, t in enumerate(TYPE_ORDER)}

_WORD_BITS = 64
_ALL_ONES = (1 << _WORD_BITS) - 1

#: ``int64`` matmul is used only when the largest possible scaled mass
#: is provably below this bound (2**62 leaves a 2x safety margin).
_INT64_SAFE_BOUND = 1 << 62


class ScaledWeights:
    """An item-type weight table as exact integers over one denominator.

    ``value(t) == ints[t] / denominator`` exactly, for every type index
    ``t`` in :data:`TYPE_ORDER` order. When integer matmul is provably
    overflow-safe for the owning corpus, three derived arrays are
    attached (else all three are ``None`` and callers must use exact
    Python-int arithmetic):

    * ``vec64`` — ``int64`` copy of ``ints``;
    * ``seg_vec64`` — per-segment scaled weight (the owning corpus's
      word-segment table, see ``seg_counts_of``);
    * ``record_masses`` — precomputed scaled mass of every record's
      full bag, so a pair's union mass is ``mass_a + mass_b - inter``.
    """

    __slots__ = ("denominator", "ints", "vec64", "seg_vec64", "record_masses")

    def __init__(
        self,
        denominator: int,
        ints: Tuple[int, ...],
        vec64: Optional["np.ndarray"],
        seg_vec64: Optional["np.ndarray"] = None,
        record_masses: Optional["np.ndarray"] = None,
    ) -> None:
        self.denominator = denominator
        self.ints = ints
        self.vec64 = vec64
        self.seg_vec64 = seg_vec64
        self.record_masses = record_masses


def _scale_weights(values: Sequence[float]) -> Optional[Tuple[int, Tuple[int, ...]]]:
    """Rewrite float weights as integers over a common denominator.

    Returns ``(denominator, ints)`` with ``values[i] == ints[i] /
    denominator`` exactly, or ``None`` when a weight is non-finite (the
    caller then falls back to the scalar reference per pair).
    """
    ratios: List[Tuple[int, int]] = []
    for value in values:
        try:
            ratios.append(float(value).as_integer_ratio())
        except (OverflowError, ValueError):  # inf / nan
            return None
    # as_integer_ratio denominators are always powers of two, so their
    # least common multiple is simply the largest one.
    denominator = 1
    for _num, den in ratios:
        if den > denominator:
            denominator = den
    ints = tuple(num * (denominator // den) for num, den in ratios)
    return denominator, ints


class InternedCorpus:
    """Item bags interned to dense ids and packed bitset rows.

    Construction is deterministic: record rows follow sorted record id
    order and vocabulary ids follow ``(type, value)`` order, so the
    arrays — and everything computed from them — are independent of
    set/dict iteration order and hash seeds.
    """

    def __init__(self, item_bags: Mapping[int, FrozenSet[Item]]) -> None:
        rids = sorted(item_bags)
        self.rids: Tuple[int, ...] = tuple(rids)
        self.row_of: Dict[int, int] = {rid: row for row, rid in enumerate(rids)}
        #: Original bags, for scalar-fallback paths (soft-jaccard greedy
        #: matching, non-finite weights).
        self.bags: Dict[int, FrozenSet[Item]] = {
            rid: item_bags[rid] for rid in rids
        }

        vocab = sorted(
            {item for bag in self.bags.values() for item in bag},
            key=lambda item: (_TYPE_INDEX[item.type], item.value),
        )
        self.vocab: Tuple[Item, ...] = tuple(vocab)
        self.id_of: Dict[Item, int] = {item: i for i, item in enumerate(vocab)}

        n_records = len(rids)
        n_items = len(vocab)
        n_words = max(1, (n_items + _WORD_BITS - 1) // _WORD_BITS)
        bits = np.zeros((n_records, n_words), dtype=np.uint64)
        id_of = self.id_of
        for row, rid in enumerate(rids):
            bag = self.bags[rid]
            if not bag:
                continue
            ids = np.fromiter(
                (id_of[item] for item in bag), dtype=np.uint64, count=len(bag)
            )
            np.bitwise_or.at(
                bits[row],
                ids >> np.uint64(6),
                np.uint64(1) << (ids & np.uint64(63)),
            )
        self.bits: np.ndarray = bits

        # [lo, hi) vocabulary-id range per type, in TYPE_ORDER order.
        ranges: List[Tuple[int, int]] = []
        cursor = 0
        for type_index in range(len(TYPE_ORDER)):
            lo = cursor
            while cursor < n_items and _TYPE_INDEX[vocab[cursor].type] == type_index:
                cursor += 1
            ranges.append((lo, cursor))
        self.type_ranges: Tuple[Tuple[int, int], ...] = tuple(ranges)

        # Word-segment table: the flat list of (word, mask, type) spans
        # covering the vocabulary, so one vectorized popcount over
        # ``(n, S)`` columns replaces a per-type masked loop.
        seg_words: List[int] = []
        seg_masks: List[int] = []
        seg_types: List[int] = []
        for type_index, (lo, hi) in enumerate(ranges):
            if lo == hi:
                continue
            word_lo = lo // _WORD_BITS
            word_hi = (hi - 1) // _WORD_BITS
            for word in range(word_lo, word_hi + 1):
                mask = _ALL_ONES
                if word == word_lo:
                    mask &= (~((1 << (lo % _WORD_BITS)) - 1)) & _ALL_ONES
                if word == word_hi:
                    last_bits = ((hi - 1) % _WORD_BITS) + 1
                    mask &= ((1 << last_bits) - 1) & _ALL_ONES
                seg_words.append(word)
                seg_masks.append(mask)
                seg_types.append(type_index)
        self._seg_words = np.array(seg_words, dtype=np.intp)
        self._seg_masks = np.array(seg_masks, dtype=np.uint64)
        self._seg_types = np.array(seg_types, dtype=np.intp)
        seg_to_type = np.zeros(
            (len(seg_words), len(TYPE_ORDER)), dtype=np.int64
        )
        if seg_words:
            seg_to_type[np.arange(len(seg_words)), self._seg_types] = 1
        self._seg_to_type = seg_to_type

        self.sizes: np.ndarray = np.bitwise_count(bits).sum(
            axis=1, dtype=np.int64
        )
        #: Per-record item count per type, ``int64[n_records, n_types]``.
        self.type_counts: np.ndarray = self.type_counts_of(bits)

        # Overflow bound for scaled-weight masses: a pair's union never
        # holds more items than the two largest bags combined.
        largest = int(self.sizes.max()) if n_records else 0
        self.max_pair_items: int = 2 * largest
        self._weights_cache: Dict[
            Tuple[float, ...], Optional[ScaledWeights]
        ] = {}

    # -- row lookups ---------------------------------------------------------

    def pair_rows(self, pairs: Sequence[Pair]) -> Tuple[np.ndarray, np.ndarray]:
        """Row indexes of the left and right record of every pair."""
        row_of = self.row_of
        count = len(pairs)
        a_rows = np.fromiter(
            (row_of[pair[0]] for pair in pairs), dtype=np.intp, count=count
        )
        b_rows = np.fromiter(
            (row_of[pair[1]] for pair in pairs), dtype=np.intp, count=count
        )
        return a_rows, b_rows

    # -- popcount kernels ----------------------------------------------------

    @deterministic
    def seg_counts_of(self, bits2d: np.ndarray) -> np.ndarray:
        """Per-word-segment popcounts: ``int64[len(bits2d), S]``.

        A segment is a (word, mask) span owned by one item type; the
        whole table is evaluated in a single vectorized popcount.
        """
        masked = bits2d[:, self._seg_words] & self._seg_masks
        return np.bitwise_count(masked).astype(np.int64)

    @deterministic
    def type_counts_of(self, bits2d: np.ndarray) -> np.ndarray:
        """Per-type popcounts of packed bitset rows.

        Each type's count is the popcount of its contiguous id range.
        Returns ``int64[len(bits2d), len(TYPE_ORDER)]``.
        """
        return self.seg_counts_of(bits2d) @ self._seg_to_type

    # -- exact weight scaling ------------------------------------------------

    def scaled_weights(
        self,
        weights: Mapping[ItemType, float],
        default_weight: float = 1.0,
    ) -> Optional[ScaledWeights]:
        """The exact integer form of a weight table (cached).

        ``None`` means a weight is non-finite and the caller must use
        the scalar reference implementation per pair.
        """
        key = (float(default_weight),) + tuple(
            float(weights.get(item_type, default_weight))
            for item_type in TYPE_ORDER
        )
        if key in self._weights_cache:
            return self._weights_cache[key]
        scaled = _scale_weights(key[1:])
        entry: Optional[ScaledWeights] = None
        if scaled is not None:
            denominator, ints = scaled
            max_abs = max((abs(value) for value in ints), default=0)
            vec64: Optional[np.ndarray] = None
            seg_vec64: Optional[np.ndarray] = None
            record_masses: Optional[np.ndarray] = None
            if max_abs * max(1, self.max_pair_items) < _INT64_SAFE_BOUND:
                vec64 = np.array(ints, dtype=np.int64)
                seg_vec64 = vec64[self._seg_types]
                record_masses = self.type_counts @ vec64
            entry = ScaledWeights(
                denominator, ints, vec64, seg_vec64, record_masses
            )
        self._weights_cache[key] = entry
        return entry

    # -- shared-memory support ----------------------------------------------

    _SHARED_ARRAYS = ("bits", "sizes", "type_counts")

    def export_arrays(self) -> Dict[str, np.ndarray]:
        """The large read-only arrays, for shared-memory publication."""
        return {name: getattr(self, name) for name in self._SHARED_ARRAYS}

    def adopt_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Rebind the large arrays (to shared-memory views, or back)."""
        for name in self._SHARED_ARRAYS:
            setattr(self, name, arrays[name])

    def copy_arrays_private(self) -> None:
        """Replace array views with private in-process copies.

        Called before a shared-memory segment is closed so no live view
        pins the mapping (``docs/PARALLELISM.md``, lifecycle).
        """
        self.adopt_arrays(
            {
                name: np.array(getattr(self, name), copy=True)
                for name in self._SHARED_ARRAYS
            }
        )
