"""String similarity measures used throughout the pipeline.

The paper relies on a small set of classic string metrics:

* **Jaccard coefficient** over token sets and q-gram sets — used by the
  ``XnameDist`` features (Section 5.1) and by the default MFIBlocks block
  scoring.
* **Jaro** and **Jaro-Winkler** — the ``Name`` branch of the expert item
  similarity function (Eq. 1).
* **Levenshtein** — used by the attribute-clustering baseline and by the
  synthetic-noise generator to validate typo injection.

All functions are pure, accept plain ``str`` arguments, and return a float
in ``[0.0, 1.0]`` where ``1.0`` means identical.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Set

from repro.contracts import hot_path, pure

__all__ = [
    "jaccard",
    "jaccard_qgrams",
    "qgrams",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "dice_qgrams",
    "monge_elkan",
]


@pure
def qgrams(text: str, q: int = 2, pad: bool = True) -> FrozenSet[str]:
    """Return the set of ``q``-grams of ``text``.

    When ``pad`` is true the string is padded with ``q - 1`` leading and
    trailing ``#``/``$`` sentinels so that prefixes and suffixes produce
    distinguishable grams — the convention used by q-grams blocking
    (Gravano et al., VLDB'01).
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if not text:
        return frozenset()
    if pad and q > 1:
        text = "#" * (q - 1) + text + "$" * (q - 1)
    if len(text) < q:
        return frozenset({text})
    return frozenset(text[i:i + q] for i in range(len(text) - q + 1))


@pure
def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard coefficient ``|A ∩ B| / |A ∪ B|`` between two collections.

    Empty-vs-empty is defined as ``1.0`` (two records that both lack a
    value are not evidence *against* a match); empty-vs-nonempty is 0.
    """
    set_a: Set[str] = set(a)
    set_b: Set[str] = set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


@pure
def jaccard_qgrams(a: str, b: str, q: int = 2) -> float:
    """Jaccard coefficient between the q-gram sets of two strings."""
    return jaccard(qgrams(a, q), qgrams(b, q))


@pure
def dice_qgrams(a: str, b: str, q: int = 2) -> float:
    """Sorensen-Dice coefficient between q-gram sets (used by ACl)."""
    grams_a = qgrams(a, q)
    grams_b = qgrams(b, q)
    if not grams_a and not grams_b:
        return 1.0
    total = len(grams_a) + len(grams_b)
    if total == 0:
        return 1.0
    return 2.0 * len(grams_a & grams_b) / total


@hot_path
@pure
def jaro(a: str, b: str) -> float:
    """Jaro similarity between two strings.

    Implements the standard definition: matches within a window of
    ``max(|a|, |b|) // 2 - 1`` and transposition counting over the matched
    characters in order.
    """
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0

    window = max(len_a, len_b) // 2 - 1
    if window < 0:
        window = 0

    match_a = [False] * len_a
    match_b = [False] * len_b
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if not match_b[j] and b[j] == ch:
                match_a[i] = True
                match_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Count transpositions between the matched subsequences.
    transpositions = 0
    k = 0
    for i in range(len_a):
        if match_a[i]:
            while not match_b[k]:
                k += 1
            if a[i] != b[k]:
                transpositions += 1
            k += 1
    transpositions //= 2

    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


@hot_path
@pure
def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a shared-prefix bonus.

    ``prefix_scale`` must be in ``[0, 0.25]`` to keep the result bounded
    by 1. This is the metric the paper uses for the ``Name`` branch of the
    expert item-similarity function (Eq. 1).
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    base = jaro(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a[:max_prefix], b[:max_prefix]):
        if ch_a != ch_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


@pure
def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert / delete / substitute, unit costs)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop for memory locality.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


@pure
def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalized to a ``[0, 1]`` similarity."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


@pure
def monge_elkan(tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
    """Monge-Elkan: average best Jaro-Winkler match of each token in ``a``.

    Used for multi-word attribute values (the paper's "trinary" comparisons
    apply to attributes where records may hold several names).
    """
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token in tokens_a:
        total += max(jaro_winkler(token, other) for other in tokens_b)
    return total / len(tokens_a)
