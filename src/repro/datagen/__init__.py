"""Synthetic Names-Project corpus generation (the paper's private data,
rebuilt statistically — see DESIGN.md for the substitution argument)."""

from __future__ import annotations

from repro.datagen.corpus import build_corpus, build_italy_set, build_random_set
from repro.datagen.generator import CorpusGenerator, GeneratorConfig, PersonProfile
from repro.datagen.places import Gazetteer, build_gazetteer
from repro.datagen.tagging import ExpertTagger, Tag, TaggedPair, simplify_tags

__all__ = [
    "build_corpus",
    "build_italy_set",
    "build_random_set",
    "CorpusGenerator",
    "GeneratorConfig",
    "PersonProfile",
    "Gazetteer",
    "build_gazetteer",
    "ExpertTagger",
    "Tag",
    "TaggedPair",
    "simplify_tags",
]
