"""Corpus builders: ItalySet- and RandomSet-style datasets (Section 5.1).

The paper evaluates on two extracts of the Names Project database:

* **ItalySet** — all ~9,499 records with Italy as the victim's residence,
  expert-tagged; includes the "MV" bulk submitter who filed 1,400 pages
  with a fixed five-field pattern.
* **RandomSet** — a 100,000-record stratified sample over six regions
  representing distinct pre-Holocaust communities.

Both are private; these builders produce synthetic analogues at any
scale. ``scale=1.0`` reproduces the published sizes; tests and quick
benchmarks use much smaller scales.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.datagen.generator import CorpusGenerator, GeneratorConfig, PersonProfile
from repro.datagen.names import COMMUNITIES
from repro.records.dataset import Dataset

__all__ = ["build_corpus", "build_italy_set", "build_random_set"]

#: Expected reports per person under the default reports_weights.
_MEAN_REPORTS = 2.255

#: Published sizes (records).
_ITALY_RECORDS = 9_499
_ITALY_MV_RECORDS = 1_400
_RANDOM_RECORDS = 100_000


def build_corpus(
    n_persons: int,
    communities: Sequence[str] = COMMUNITIES,
    seed: int = 17,
    mv_reports: int = 0,
    name: str = "corpus",
) -> Tuple[Dataset, List[PersonProfile]]:
    """Generate a corpus with explicit person count and community mix."""
    config = GeneratorConfig(
        n_persons=n_persons,
        communities=tuple(communities),
        seed=seed,
        mv_reports=mv_reports,
    )
    records, persons = CorpusGenerator(config).generate()
    return Dataset(records, name=name), persons


def build_italy_set(
    scale: float = 1.0, seed: int = 23
) -> Tuple[Dataset, List[PersonProfile]]:
    """An ItalySet analogue: Italian community + the MV bulk submitter.

    At ``scale=1.0`` the corpus lands near the published 9,499 records of
    which ~1,400 are MV's. Smaller scales shrink both proportionally.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    mv_reports = max(1, int(round(_ITALY_MV_RECORDS * scale)))
    organic = _ITALY_RECORDS * scale - mv_reports
    n_persons = max(2, int(round(organic / _MEAN_REPORTS)))
    return build_corpus(
        n_persons=n_persons,
        communities=("italy",),
        seed=seed,
        mv_reports=mv_reports,
        name="italy-set",
    )


def build_random_set(
    scale: float = 1.0, seed: int = 29
) -> Tuple[Dataset, List[PersonProfile]]:
    """A RandomSet analogue: stratified over the six communities."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    n_persons = max(2, int(round(_RANDOM_RECORDS * scale / _MEAN_REPORTS)))
    return build_corpus(
        n_persons=n_persons,
        communities=COMMUNITIES,
        seed=seed,
        name="random-set",
    )
