"""Person and report generation: the synthetic Names-Project corpus.

The generator builds *ground-truth persons* organized into families, then
emits 1-8 *victim reports* per person from a mix of testimony and list
sources, each report carrying a source-specific field pattern and
realistic noise:

* name spelling variants and nicknames (transliteration drift);
* rare clerical typos (the paper's ``Bella -> Della`` example);
* birth-year slips of a year or two;
* place-granularity truncation (a list may only know the country) and
  city-name variants (Torino/Turin);
* occasional multi-valued first names.

Families matter twice: children share last name, parents' first names,
and places — generating the "meaningful false positives" of the
Capelluto example (Figure 13) — and a family-designated submitter files
testimonies for several relatives, which the ``sameSource`` feature /
SameSrc filter then discards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datagen.names import COMMUNITIES, FEMALE_FIRST, LAST, MALE_FIRST, PROFESSIONS
from repro.datagen.places import City, DEATH_PLACES, HOME_CITIES
from repro.datagen.surnames import synthesize_surname
from repro.datagen.sources import (
    LIST_TEMPLATES,
    MV_TEMPLATE,
    SourceTemplate,
    TESTIMONY_TEMPLATE,
)
from repro.records.schema import (
    Gender,
    Place,
    PlaceType,
    SourceKind,
    SourceRef,
    VictimRecord,
)

__all__ = ["PersonProfile", "GeneratorConfig", "CorpusGenerator"]

NameVariants = Tuple[str, ...]


@dataclass(frozen=True)
class PersonProfile:
    """Ground truth for one person; reports are noisy projections of this."""

    person_id: int
    family_id: int
    community: str
    gender: Gender
    first: NameVariants
    last: NameVariants
    father_first: NameVariants
    mother_first: NameVariants
    mother_maiden: NameVariants
    spouse_first: Optional[NameVariants]
    maiden: Optional[NameVariants]
    birth_day: int
    birth_month: int
    birth_year: int
    birth_city: City
    permanent_city: City
    wartime_city: City
    death_city: Optional[City]
    profession: Optional[str]


@dataclass
class GeneratorConfig:
    """Knobs of the corpus generator.

    ``reports_weights`` are relative odds of a person having 1..8 reports
    (archival experts estimate at most eight duplicates; most persons
    have one to three). ``testimony_fraction`` matches the paper's "a
    third was obtained from Pages of Testimony". ``mv_reports`` adds that
    many extra reports filed by the single bulk submitter "MV" with his
    fixed five-field pattern.
    """

    n_persons: int = 1000
    communities: Sequence[str] = COMMUNITIES
    seed: int = 17
    reports_weights: Sequence[float] = (0.42, 0.26, 0.14, 0.08, 0.05, 0.03, 0.015, 0.005)
    child_weights: Sequence[float] = (0.25, 0.25, 0.22, 0.16, 0.12)  # 0..4 children
    testimony_fraction: float = 0.34
    p_family_submitter: float = 0.6
    #: Probability that an additional report about a person reuses one of
    #: their earlier testimony submitters — a relative re-filing a Page of
    #: Testimony in a later campaign (1955-57 vs 1999). These true pairs
    #: share a source, which is what the SameSrc filter trades recall for.
    p_repeat_submitter: float = 0.14
    p_name_variant: float = 0.28
    p_typo: float = 0.02
    p_second_first_name: float = 0.04
    p_year_slip: float = 0.06
    #: Probability a family's surname is synthesized by the morphology
    #: factory instead of drawn from the hand pool — this is what gives
    #: surnames the Table 4 cardinality (~6 records per distinct name).
    p_synth_surname: float = 0.72
    lists_per_flavor: int = 3
    mv_reports: int = 0
    first_book_id: int = 1_000_000

    def __post_init__(self) -> None:
        if self.n_persons < 1:
            raise ValueError(f"n_persons must be positive, got {self.n_persons}")
        if len(self.reports_weights) != 8:
            raise ValueError("reports_weights must have 8 entries (1..8 reports)")
        unknown = set(self.communities) - set(COMMUNITIES)
        if unknown:
            raise ValueError(f"unknown communities: {unknown}")
        if not 0.0 <= self.testimony_fraction <= 1.0:
            raise ValueError("testimony_fraction must be in [0, 1]")


#: Death places weighted per community (deportation routes differed —
#: the "progression of persecution" differences behind the RandomSet).
_COMMUNITY_DEATH_PLACES: Dict[str, Tuple[str, ...]] = {
    "italy": ("Auschwitz", "Auschwitz", "Mauthausen", "Bergen-Belsen"),
    "poland": ("Auschwitz", "Treblinka", "Sobibor", "Majdanek", "Stutthof"),
    "germany": ("Auschwitz", "Theresienstadt", "Dachau", "Bergen-Belsen"),
    "hungary": ("Auschwitz", "Auschwitz", "Mauthausen", "Bergen-Belsen"),
    "greece": ("Auschwitz", "Auschwitz", "Treblinka"),
    "ussr": ("Babi Yar", "Transnistria", "Transnistria", "Auschwitz"),
}

_DEATH_BY_NAME: Dict[str, City] = {
    city.canonical: city for city in DEATH_PLACES
}


class CorpusGenerator:
    """Generates a deterministic synthetic corpus from a config + seed."""

    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._next_person_id = 1
        self._next_family_id = 1
        self._next_submitter = 1
        self._next_book_id = config.first_book_id
        #: Victim lists were extracted with fixed columns, so every
        #: report from one list shares a single data pattern (this is
        #: what concentrates millions of records into a few patterns in
        #: Figure 11). Lists of the same flavor share a canonical column
        #: set per community; individual lists may deviate by one field.
        self._list_fields: Dict[str, frozenset] = {}
        self._flavor_fields: Dict[str, frozenset] = {}
        #: Lists also record places at one consistent granularity.
        self._list_granularity: Dict[str, int] = {}

    # -- public API -----------------------------------------------------------

    def generate(self) -> Tuple[List[VictimRecord], List[PersonProfile]]:
        """Generate persons and their reports.

        Returns the flat report list (ordered by book id) and the
        ground-truth person profiles.
        """
        persons = self._generate_persons()
        records: List[VictimRecord] = []
        for person in persons:
            records.extend(self._reports_for(person))
        if self.config.mv_reports > 0:
            records.extend(self._mv_reports(persons))
        return records, persons

    # -- person generation ------------------------------------------------------

    def _generate_persons(self) -> List[PersonProfile]:
        persons: List[PersonProfile] = []
        rng = self._rng
        while len(persons) < self.config.n_persons:
            community = rng.choice(list(self.config.communities))
            persons.extend(self._generate_family(community))
        return persons[: self.config.n_persons]

    def _generate_family(self, community: str) -> List[PersonProfile]:
        """One family: a couple (or a single adult) plus children."""
        rng = self._rng
        family_id = self._next_family_id
        self._next_family_id += 1

        surname = self._pick_surname(community)
        home = rng.choice(HOME_CITIES[community])
        wartime = self._wartime_city(community, home)

        father_first = rng.choice(MALE_FIRST[community])
        mother_first = rng.choice(FEMALE_FIRST[community])
        mother_maiden = self._pick_surname(community)
        # Grandparent names for the couple's own father/mother attributes.
        f_father = rng.choice(MALE_FIRST[community])
        f_mother = rng.choice(FEMALE_FIRST[community])
        f_mother_maiden = self._pick_surname(community)
        m_father = rng.choice(MALE_FIRST[community])
        m_mother = rng.choice(FEMALE_FIRST[community])
        m_mother_maiden = self._pick_surname(community)

        base_year = rng.randint(1880, 1912)
        members: List[PersonProfile] = []

        single = rng.random() < 0.25
        father = self._make_person(
            family_id, community, Gender.MALE, father_first, surname,
            f_father, f_mother, f_mother_maiden,
            spouse=None if single else mother_first, maiden=None,
            birth_year=base_year + rng.randint(-3, 3),
            home=home, wartime=wartime,
        )
        members.append(father)
        if not single:
            mother = self._make_person(
                family_id, community, Gender.FEMALE, mother_first, surname,
                m_father, m_mother, m_mother_maiden,
                spouse=father_first, maiden=mother_maiden,
                birth_year=base_year + rng.randint(-2, 6),
                home=home, wartime=wartime,
            )
            members.append(mother)
            n_children = rng.choices(
                range(len(self.config.child_weights)),
                weights=self.config.child_weights,
            )[0]
            for _ in range(n_children):
                child_gender = rng.choice((Gender.MALE, Gender.FEMALE))
                pool = MALE_FIRST if child_gender is Gender.MALE else FEMALE_FIRST
                child_first = rng.choice(pool[community])
                child = self._make_person(
                    family_id, community, child_gender, child_first, surname,
                    father_first, mother_first, mother_maiden,
                    spouse=None, maiden=None,
                    birth_year=base_year + rng.randint(20, 38),
                    home=home, wartime=wartime,
                )
                members.append(child)
        return members

    def _pick_surname(self, community: str) -> NameVariants:
        rng = self._rng
        if rng.random() < self.config.p_synth_surname:
            return synthesize_surname(community, rng)
        return rng.choice(LAST[community])

    def _make_person(
        self,
        family_id: int,
        community: str,
        gender: Gender,
        first: NameVariants,
        last: NameVariants,
        father_first: NameVariants,
        mother_first: NameVariants,
        mother_maiden: NameVariants,
        spouse: Optional[NameVariants],
        maiden: Optional[NameVariants],
        birth_year: int,
        home: City,
        wartime: City,
    ) -> PersonProfile:
        rng = self._rng
        person_id = self._next_person_id
        self._next_person_id += 1
        birth_city = home if rng.random() < 0.7 else rng.choice(
            HOME_CITIES[community]
        )
        death_city = None
        if rng.random() < 0.8:
            name = rng.choice(_COMMUNITY_DEATH_PLACES[community])
            death_city = _DEATH_BY_NAME[name]
        profession = (
            rng.choice(PROFESSIONS) if rng.random() < 0.85 else None
        )
        return PersonProfile(
            person_id=person_id,
            family_id=family_id,
            community=community,
            gender=gender,
            first=first,
            last=last,
            father_first=father_first,
            mother_first=mother_first,
            mother_maiden=mother_maiden,
            spouse_first=spouse,
            maiden=maiden,
            birth_day=rng.randint(1, 28),
            birth_month=rng.randint(1, 12),
            birth_year=max(1880, min(1944, birth_year)),
            birth_city=birth_city,
            permanent_city=home,
            wartime_city=wartime,
            death_city=death_city,
            profession=profession,
        )

    def _wartime_city(self, community: str, home: City) -> City:
        rng = self._rng
        roll = rng.random()
        if roll < 0.6:
            return home
        if roll < 0.9:
            return rng.choice(HOME_CITIES[community])
        return rng.choice(DEATH_PLACES)

    # -- report generation ---------------------------------------------------------

    def _reports_for(self, person: PersonProfile) -> List[VictimRecord]:
        rng = self._rng
        n_reports = rng.choices(range(1, 9), weights=self.config.reports_weights)[0]
        used_sources: Set[Tuple[str, str]] = set()
        used_submitters: List[str] = []
        reports: List[VictimRecord] = []
        for _ in range(n_reports):
            if used_submitters and rng.random() < self.config.p_repeat_submitter:
                # A relative re-files about the same person (same source).
                submitter = rng.choice(used_submitters)
                source = SourceRef(SourceKind.TESTIMONY, submitter)
                template = TESTIMONY_TEMPLATE
            else:
                source, template = self._pick_source(person, used_sources)
            used_sources.add(source.key)
            if source.kind is SourceKind.TESTIMONY:
                used_submitters.append(source.identifier)
            reports.append(self._build_report(person, source, template))
        return reports

    def _pick_source(
        self, person: PersonProfile, used: Set[Tuple[str, str]]
    ) -> Tuple[SourceRef, SourceTemplate]:
        """Choose a source the person does not already appear in."""
        rng = self._rng
        for _ in range(20):  # retry loop; collisions are rare
            if rng.random() < self.config.testimony_fraction:
                if rng.random() < self.config.p_family_submitter:
                    submitter = f"fam{person.family_id}"
                else:
                    submitter = f"sub{self._next_submitter}"
                    self._next_submitter += 1
                source = SourceRef(SourceKind.TESTIMONY, submitter)
                template = TESTIMONY_TEMPLATE
            else:
                flavor = rng.choice(list(LIST_TEMPLATES))
                index = rng.randint(1, self.config.lists_per_flavor)
                source = SourceRef(
                    SourceKind.LIST, f"{person.community}-{flavor}-{index}"
                )
                template = LIST_TEMPLATES[flavor]
            if source.key not in used:
                return source, template
        # Fall back to a guaranteed-fresh submitter.
        submitter = f"sub{self._next_submitter}"
        self._next_submitter += 1
        return SourceRef(SourceKind.TESTIMONY, submitter), TESTIMONY_TEMPLATE

    def _fields_for_list(
        self, list_id: str, template: SourceTemplate
    ) -> frozenset:
        """Fixed per-list field set, near-canonical per (community, flavor).

        List ids look like ``{community}-{flavor}-{index}``; the flavor's
        canonical column set is sampled once and individual lists deviate
        by at most one toggled optional field.
        """
        cached = self._list_fields.get(list_id)
        if cached is not None:
            return cached
        rng = self._rng
        flavor_key = list_id.rsplit("-", 1)[0]
        canonical = self._flavor_fields.get(flavor_key)
        if canonical is None:
            canonical = template.sample_fields(rng)
            self._flavor_fields[flavor_key] = canonical
        fields = set(canonical)
        if rng.random() < 0.4:
            candidates = [
                name for name, probability in template.probabilities.items()
                if 0.0 < probability < 1.0
            ]
            if candidates:
                toggled = rng.choice(candidates)
                if toggled in fields:
                    fields.discard(toggled)
                else:
                    fields.add(toggled)
        result = frozenset(fields)
        self._list_fields[list_id] = result
        return result

    def _mv_reports(self, persons: List[PersonProfile]) -> List[VictimRecord]:
        """Extra reports filed by the bulk submitter MV (fixed pattern)."""
        rng = self._rng
        source = SourceRef(SourceKind.TESTIMONY, "MV")
        count = min(self.config.mv_reports, len(persons))
        chosen = rng.sample(persons, count)
        return [self._build_report(person, source, MV_TEMPLATE) for person in chosen]

    def _build_report(
        self,
        person: PersonProfile,
        source: SourceRef,
        template: SourceTemplate,
    ) -> VictimRecord:
        rng = self._rng
        granularity = None
        if source.kind is SourceKind.LIST:
            fields = self._fields_for_list(source.identifier, template)
            granularity = self._list_granularity.setdefault(
                source.identifier, self._sample_granularity()
            )
        else:
            fields = template.sample_fields(rng)
        book_id = self._next_book_id
        self._next_book_id += 1

        first = self._render_names(person.first, multi_ok=True) if "first" in fields else ()
        last = self._render_names(person.last) if "last" in fields else ()
        father = self._render_names(person.father_first) if "father" in fields else ()
        mother = self._render_names(person.mother_first) if "mother" in fields else ()
        mother_maiden = (
            self._render_names(person.mother_maiden)
            if "mother_maiden" in fields else ()
        )
        spouse = (
            self._render_names(person.spouse_first)
            if "spouse" in fields and person.spouse_first else ()
        )
        maiden = (
            self._render_names(person.maiden)
            if "maiden" in fields and person.maiden else ()
        )

        birth_year = None
        birth_month = None
        birth_day = None
        if "birth_year" in fields:
            birth_year = person.birth_year
            if rng.random() < self.config.p_year_slip:
                birth_year += rng.choice((-2, -1, 1, 2))
            if "birth_month" in fields:
                birth_month = person.birth_month
                if "birth_day" in fields:
                    birth_day = person.birth_day
                    if rng.random() < 0.02 and birth_day <= 12:
                        # day/month transposition, a classic clerical slip
                        birth_day, birth_month = birth_month, birth_day

        places: Dict[PlaceType, Tuple[Place, ...]] = {}
        place_map = (
            ("birth_place", PlaceType.BIRTH, person.birth_city),
            ("permanent_place", PlaceType.PERMANENT, person.permanent_city),
            ("wartime_place", PlaceType.WARTIME, person.wartime_city),
            ("death_place", PlaceType.DEATH, person.death_city),
        )
        for field_name, place_type, city in place_map:
            if field_name in fields and city is not None:
                places[place_type] = (self._render_place(city, granularity),)

        return VictimRecord(
            book_id=book_id,
            source=source,
            first=first,
            last=last,
            maiden=maiden,
            father=father,
            mother=mother,
            mother_maiden=mother_maiden,
            spouse=spouse,
            gender=person.gender if "gender" in fields else None,
            birth_day=birth_day,
            birth_month=birth_month,
            birth_year=birth_year,
            profession=person.profession if "profession" in fields else None,
            places=places,
            person_id=person.person_id,
        )

    # -- noise -------------------------------------------------------------------

    def _render_names(
        self, variants: NameVariants, multi_ok: bool = False
    ) -> Tuple[str, ...]:
        rng = self._rng
        name = self._pick_spelling(variants)
        if rng.random() < self.config.p_typo:
            name = _typo(name, rng)
        if multi_ok and len(variants) > 1 and rng.random() < self.config.p_second_first_name:
            other = self._pick_spelling(tuple(v for v in variants if v != name))
            if other != name:
                return (name, other)
        return (name,)

    def _pick_spelling(self, variants: NameVariants) -> str:
        rng = self._rng
        if len(variants) > 1 and rng.random() < self.config.p_name_variant:
            return rng.choice(variants[1:])
        return variants[0]

    def _sample_granularity(self) -> int:
        roll = self._rng.random()
        if roll < 0.78:
            return 4
        if roll < 0.86:
            return 3
        if roll < 0.92:
            return 2
        return 1

    def _render_place(self, city: City, granularity: Optional[int] = None) -> Place:
        rng = self._rng
        if granularity is None:
            granularity = self._sample_granularity()
        name = None
        if granularity >= 4 and len(city.names) > 1:
            if rng.random() < self.config.p_name_variant:
                name = rng.choice(city.names[1:])
        return city.to_place(name=name, granularity=granularity)


def _typo(name: str, rng: random.Random) -> str:
    """Inject one clerical error: substitute, transpose, or drop a letter."""
    if len(name) < 3:
        return name
    op = rng.choice(("substitute", "transpose", "delete"))
    index = rng.randrange(len(name))
    if op == "substitute":
        replacement = rng.choice("abcdefghilmnoprstuvz")
        return name[:index] + replacement + name[index + 1:]
    if op == "transpose" and index < len(name) - 1:
        return (
            name[:index] + name[index + 1] + name[index] + name[index + 2:]
        )
    if index > 0:  # never drop the initial, tags stay plausible
        return name[:index] + name[index + 1:]
    return name
