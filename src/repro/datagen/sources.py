"""Source model: field-presence profiles for testimonies and lists.

A third of the Names Project records come from Pages of Testimony and the
rest from ~16k victim lists (Section 2). Each source kind exposes a
characteristic *data pattern* — which fields it records — and the blend
of sources produces the prevalence profile of Table 3 and the pattern
skew of Figure 11.

A :class:`SourceTemplate` assigns each field an independent presence
probability; sampling a template yields the field set of one report.
The special :data:`MV_TEMPLATE` reproduces the paper's "MV" submitter
(Section 6.4): one person who filed 1,400 pages, all with the exact
fixed pattern {FirstName, LastName, FatherName, BirthPlace, DeathPlace}.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Set, Tuple

__all__ = [
    "FIELDS",
    "SourceTemplate",
    "TESTIMONY_TEMPLATE",
    "LIST_TEMPLATES",
    "MV_TEMPLATE",
]

#: Field keys a template can toggle. Date components and place slots are
#: sampled with conditional structure (month/day only if year; city part
#: granularity handled by the report builder).
FIELDS: Tuple[str, ...] = (
    "first",
    "last",
    "gender",
    "birth_year",
    "birth_month",
    "birth_day",
    "father",
    "mother",
    "spouse",
    "maiden",
    "mother_maiden",
    "permanent_place",
    "wartime_place",
    "birth_place",
    "death_place",
    "profession",
)


@dataclass(frozen=True)
class SourceTemplate:
    """Presence probabilities per field for one source type.

    ``birth_month`` and ``birth_day`` probabilities are *conditional* on
    the year being present (sources that record a date record the year
    first). A probability of exactly 1.0 or 0.0 pins the field, which is
    how MV's fixed pattern is expressed.
    """

    name: str
    probabilities: Mapping[str, float]

    def __post_init__(self) -> None:
        unknown = set(self.probabilities) - set(FIELDS)
        if unknown:
            raise ValueError(f"unknown fields in template {self.name}: {unknown}")
        for key, value in self.probabilities.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}.{key}: probability {value} not in [0,1]")

    def probability(self, field_name: str) -> float:
        return self.probabilities.get(field_name, 0.0)

    def sample_fields(self, rng: random.Random) -> FrozenSet[str]:
        """Draw the set of fields one report from this source will carry."""
        present: Set[str] = set()
        for field_name in FIELDS:
            if field_name in ("birth_month", "birth_day"):
                continue  # handled conditionally below
            if rng.random() < self.probability(field_name):
                present.add(field_name)
        if "birth_year" in present:
            if rng.random() < self.probability("birth_month"):
                present.add("birth_month")
                if rng.random() < self.probability("birth_day"):
                    present.add("birth_day")
        return frozenset(present)


#: Pages of Testimony: filed by relatives, rich in family linkage.
TESTIMONY_TEMPLATE = SourceTemplate(
    "testimony",
    {
        "first": 0.99,
        "last": 0.99,
        "gender": 0.96,
        "birth_year": 0.74,
        "birth_month": 0.55,
        "birth_day": 0.80,
        "father": 0.72,
        "mother": 0.60,
        "spouse": 0.75,
        "maiden": 0.55,
        "mother_maiden": 0.32,
        "permanent_place": 0.88,
        "wartime_place": 0.55,
        "birth_place": 0.48,
        "death_place": 0.52,
        "profession": 0.42,
    },
)

#: Victim lists, keyed by list flavor. Deportation manifests know little
#: beyond identity and origin; camp card files carry full dates and
#: professions; ghetto registrations record residence; memorial books
#: lean on patronymics.
LIST_TEMPLATES: Dict[str, SourceTemplate] = {
    "deportation": SourceTemplate(
        "deportation",
        {
            "first": 1.0,
            "last": 1.0,
            "gender": 0.92,
            "birth_year": 0.60,
            "birth_month": 0.35,
            "birth_day": 0.60,
            "permanent_place": 0.75,
            "wartime_place": 0.55,
            "birth_place": 0.25,
            "death_place": 0.30,
            "father": 0.38,
            "mother": 0.12,
            "profession": 0.20,
            "maiden": 0.45,
            "spouse": 0.38,
        },
    ),
    "camp": SourceTemplate(
        "camp",
        {
            "first": 1.0,
            "last": 1.0,
            "gender": 0.90,
            "birth_year": 0.85,
            "birth_month": 0.80,
            "birth_day": 0.90,
            "birth_place": 0.55,
            "permanent_place": 0.45,
            "wartime_place": 0.75,
            "death_place": 0.35,
            "profession": 0.65,
            "father": 0.42,
            "mother": 0.15,
            "maiden": 0.35,
            "spouse": 0.30,
        },
    ),
    "ghetto": SourceTemplate(
        "ghetto",
        {
            "first": 1.0,
            "last": 1.0,
            "gender": 0.88,
            "birth_year": 0.50,
            "birth_month": 0.30,
            "birth_day": 0.50,
            "permanent_place": 0.80,
            "wartime_place": 0.85,
            "father": 0.52,
            "mother": 0.30,
            "profession": 0.40,
            "maiden": 0.30,
            "spouse": 0.35,
        },
    ),
    "memorial": SourceTemplate(
        "memorial",
        {
            "first": 1.0,
            "last": 1.0,
            "gender": 0.85,
            "birth_year": 0.40,
            "birth_month": 0.20,
            "birth_day": 0.35,
            "father": 0.62,
            "mother": 0.40,
            "spouse": 0.50,
            "permanent_place": 0.65,
            "death_place": 0.45,
            "birth_place": 0.20,
            "mother_maiden": 0.06,
            "maiden": 0.30,
            "spouse": 0.35,
        },
    ),
}

#: The MV bulk submitter's fixed pattern (Section 6.4): exactly
#: {FirstName, LastName, FatherName, BirthPlace, DeathPlace}.
MV_TEMPLATE = SourceTemplate(
    "mv",
    {
        "first": 1.0,
        "last": 1.0,
        "father": 1.0,
        "birth_place": 1.0,
        "death_place": 1.0,
    },
)
