"""Name pools per pre-Holocaust Jewish community, with spelling variants.

The Names Project sources span 30+ languages and four alphabets; the same
person's name appears under different transliterations and nicknames
(Section 2). The RandomSet of the paper stratifies six geographic regions
"each representing a different pre-Holocaust Jewish community"; we model
six such communities with distinct name distributions.

Each pool entry is a tuple of spellings; the first is canonical, the rest
are variants the noise model may substitute (transliterations, nicknames,
clerical-error-prone forms). Pools are intentionally modest in size so
synthetic corpora reproduce the cardinality profile of Table 4 — a few
hundred first names against thousands of records.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "Community",
    "COMMUNITIES",
    "MALE_FIRST",
    "FEMALE_FIRST",
    "LAST",
    "PROFESSIONS",
]

NameVariants = Tuple[str, ...]
NamePool = Tuple[NameVariants, ...]

#: The six communities of the stratified RandomSet (our instantiation).
COMMUNITIES: Tuple[str, ...] = (
    "italy",
    "poland",
    "germany",
    "hungary",
    "greece",
    "ussr",
)

Community = str

MALE_FIRST: Dict[Community, NamePool] = {
    "italy": (
        ("Guido",), ("Massimo",), ("Donato",), ("Italo",), ("Alberto",),
        ("Giacomo", "Jacob"), ("Davide", "David"), ("Emanuele", "Emanuel"),
        ("Giuseppe", "Beppe"), ("Angelo",), ("Enrico", "Heinrich"),
        ("Salvatore",), ("Mario",), ("Aldo",), ("Bruno",), ("Carlo",),
        ("Ettore",), ("Franco",), ("Giorgio",), ("Leone", "Leon"),
        ("Marco",), ("Renato",), ("Sergio",), ("Vittorio", "Vittore"),
        ("Amedeo",), ("Cesare",), ("Dario",), ("Elio",), ("Fabio",),
        ("Gino",),
    ),
    "poland": (
        ("Avraham", "Abram", "Abraham"), ("Yitzhak", "Icek", "Izaak"),
        ("Moshe", "Moszek", "Moses"), ("Yaakov", "Jakub", "Jankiel"),
        ("Shmuel", "Szmul", "Samuel"), ("Chaim", "Haim"),
        ("Mordechai", "Mordka", "Mordko"), ("Yosef", "Josek", "Jozef"),
        ("David", "Dawid"), ("Aharon", "Aron"), ("Eliezer", "Lejzor"),
        ("Hersh", "Hersz", "Tzvi"), ("Leib", "Lejb", "Arie"),
        ("Mendel", "Menachem"), ("Naftali",), ("Pinchas", "Pinkus"),
        ("Shlomo", "Szlama"), ("Wolf", "Zeev"), ("Berl", "Ber", "Dov"),
        ("Fishel", "Fiszel"), ("Gershon", "Gerszon"), ("Meir", "Majer"),
        ("Nachman",), ("Shimon", "Szymon"), ("Tuvia", "Tobiasz"),
        ("Yehuda", "Juda", "Idel"), ("Zelig",), ("Baruch", "Borech"),
        ("Efraim", "Froim"), ("Kalman",),
    ),
    "germany": (
        ("Siegfried",), ("Heinrich", "Heinz"), ("Ludwig",), ("Max",),
        ("Julius",), ("Hermann",), ("Walter",), ("Kurt",), ("Fritz",),
        ("Ernst",), ("Otto",), ("Richard",), ("Alfred",), ("Arthur",),
        ("Bruno",), ("Emil",), ("Felix",), ("Georg",), ("Hugo",),
        ("Jakob", "Jacob"), ("Karl",), ("Leopold",), ("Moritz",),
        ("Paul",), ("Rudolf",), ("Salomon", "Sally"), ("Siegmund", "Sigmund"),
        ("Theodor",), ("Wilhelm", "Willi"), ("Adolf",),
    ),
    "hungary": (
        ("Laszlo", "Laci"), ("Istvan", "Pista"), ("Ferenc", "Feri"),
        ("Sandor",), ("Jozsef", "Joska"), ("Gyula",), ("Imre",),
        ("Karoly",), ("Miklos",), ("Zoltan",), ("Bela",), ("Dezso",),
        ("Erno",), ("Geza",), ("Gyorgy", "Gyuri"), ("Janos",),
        ("Lajos",), ("Mihaly",), ("Pal",), ("Tibor",), ("Vilmos",),
        ("Andor",), ("Arpad",), ("Ede",), ("Jeno",), ("Kalman",),
        ("Marton",), ("Odon",), ("Rezso",), ("Samu", "Samuel"),
    ),
    "greece": (
        ("Avram", "Avraam"), ("Isaak", "Isak"), ("Mois", "Moise"),
        ("Iakov", "Jacko"), ("Samouil", "Sami"), ("Chaim", "Haim"),
        ("Mordohai",), ("Iosif", "Pepo"), ("David", "Dario"),
        ("Aron",), ("Eliau", "Elias"), ("Matathias",), ("Leon", "Leone"),
        ("Menahem",), ("Nissim",), ("Pinhas",), ("Solomon", "Salomon"),
        ("Vital", "Chaim-Vital"), ("Bohor", "Bochor"), ("Saul",),
        ("Gabriel",), ("Markos",), ("Nahman",), ("Simantov",),
        ("Raphael", "Rafael"), ("Yeuda", "Juda"), ("Zacharia",),
        ("Baruh",), ("Ovadia",), ("Haskel",),
    ),
    "ussr": (
        ("Abram", "Avraam"), ("Isaak", "Itsik"), ("Moisei", "Movsha"),
        ("Yakov", "Yankel"), ("Samuil", "Shmuil"), ("Khaim", "Chaim"),
        ("Mordukh", "Motel"), ("Iosif", "Yosel"), ("David", "Dodik"),
        ("Aron",), ("Lazar", "Leizer"), ("Grigori", "Girsh"),
        ("Lev", "Leiba"), ("Mikhail", "Mendel"), ("Naum", "Nokhim"),
        ("Pinkhas", "Pinya"), ("Solomon", "Zalman"), ("Vladimir", "Velvel"),
        ("Boris", "Berko"), ("Efim", "Khaim"), ("Semyon", "Simkha"),
        ("Mark", "Mordko"), ("Roman", "Rakhmil"), ("Ilya", "Elya"),
        ("Iona",), ("Zinovi", "Zelik"), ("Arkadi", "Aron"),
        ("Veniamin", "Benyamin"), ("Matvei", "Motl"), ("Savely", "Shaul"),
    ),
}

FEMALE_FIRST: Dict[Community, NamePool] = {
    "italy": (
        ("Estela", "Stella"), ("Helena", "Elena"), ("Olga",),
        ("Clotilde",), ("Zimbul",), ("Elsa",), ("Giulia", "Julia"),
        ("Ada",), ("Alba",), ("Amalia",), ("Bianca",), ("Bruna",),
        ("Carla",), ("Clara", "Chiara"), ("Dora",), ("Elvira",),
        ("Emma",), ("Gemma",), ("Ida",), ("Lina",), ("Luisa", "Louise"),
        ("Margherita", "Rita"), ("Maria",), ("Noemi",), ("Pia",),
        ("Rosa",), ("Silvia",), ("Teresa",), ("Vittoria",), ("Wanda",),
    ),
    "poland": (
        ("Sara", "Sura"), ("Rivka", "Rywka", "Rebeka"),
        ("Lea", "Laja"), ("Rachel", "Ruchla", "Rochl"),
        ("Chana", "Hana"), ("Ester", "Estera"), ("Feiga", "Fajga"),
        ("Gitel", "Gitla"), ("Miriam", "Mariem"), ("Perla", "Perel"),
        ("Tauba", "Toba"), ("Zlata", "Zlota"), ("Bluma",),
        ("Chaja", "Chaya"), ("Dvora", "Dwojra"), ("Frida", "Frajda"),
        ("Golda",), ("Hinda",), ("Ita",), ("Liba",), ("Malka",),
        ("Necha",), ("Pesia", "Pesla"), ("Rojza", "Roza"),
        ("Shifra", "Szyfra"), ("Sheindel", "Szajndla"), ("Tema",),
        ("Udel",), ("Yenta", "Jenta"), ("Zisel",),
    ),
    "germany": (
        ("Bella", "Della"), ("Frieda",), ("Gertrud", "Trude"),
        ("Hedwig",), ("Irma",), ("Johanna",), ("Klara", "Clara"),
        ("Lotte", "Charlotte"), ("Margarete", "Grete"), ("Martha",),
        ("Paula",), ("Recha",), ("Rosa", "Rosi"), ("Selma",),
        ("Thea",), ("Erna",), ("Else",), ("Emma",), ("Fanny",),
        ("Helene", "Lene"), ("Henriette",), ("Ida",), ("Jenny",),
        ("Kaethe", "Kate"), ("Lina",), ("Meta",), ("Olga",),
        ("Regina",), ("Sophie",), ("Toni",),
    ),
    "hungary": (
        ("Erzsebet", "Erzsi"), ("Ilona", "Ilus"), ("Margit",),
        ("Maria",), ("Roza", "Rozsi"), ("Szeren",), ("Aranka",),
        ("Berta",), ("Etel",), ("Gizella", "Gizi"), ("Hermina",),
        ("Iren",), ("Julia", "Juliska"), ("Katalin", "Kato"),
        ("Klara",), ("Lenke",), ("Lili",), ("Magda", "Magdolna"),
        ("Olga",), ("Piroska",), ("Regina",), ("Sarolta", "Sari"),
        ("Terez", "Terezia"), ("Vilma",), ("Zsofia", "Zsofi"),
        ("Agnes",), ("Anna", "Annus"), ("Borbala", "Boriska"),
        ("Eva", "Evi"), ("Flora",),
    ),
    "greece": (
        ("Allegra",), ("Bella",), ("Doudoun",), ("Esterina", "Ester"),
        ("Fortunee", "Mazaltov"), ("Gracia",), ("Lucia", "Luna"),
        ("Matilde", "Mathilde"), ("Miriam",), ("Palomba", "Paloma"),
        ("Rebecca", "Riketa"), ("Regina", "Rena"), ("Sarina", "Sara"),
        ("Sol", "Soultana"), ("Vida",), ("Zimboul", "Zimbul"),
        ("Djoya", "Gioia"), ("Klara",), ("Lea",), ("Malkouna",),
        ("Nina",), ("Oro",), ("Perla",), ("Rachel", "Rahel"),
        ("Signora",), ("Tamar",), ("Victoria", "Vittoria"),
        ("Flor",), ("Kadena",), ("Simha",),
    ),
    "ussr": (
        ("Sara", "Sarra"), ("Riva", "Rivka"), ("Liya", "Leya"),
        ("Rakhil", "Rokhl"), ("Khana", "Anna"), ("Esfir", "Ester"),
        ("Feiga", "Fanya"), ("Gita", "Guta"), ("Mariya", "Mariam"),
        ("Polina", "Perl"), ("Tsilya", "Tsipa"), ("Zlata",),
        ("Basya",), ("Khaya", "Chaya"), ("Dvoira", "Vera"),
        ("Frida",), ("Genya", "Golda"), ("Inda",), ("Ida",),
        ("Lyuba", "Liba"), ("Malka", "Manya"), ("Nekhama", "Nina"),
        ("Pesya",), ("Roza", "Reizl"), ("Shifra",), ("Sonya", "Sofiya"),
        ("Tamara",), ("Udlya",), ("Yenta",), ("Zina", "Zisla"),
    ),
}

LAST: Dict[Community, NamePool] = {
    "italy": (
        ("Foa", "Foy"), ("Capelluto",), ("Levi", "Levy"),
        ("Segre",), ("Ovazza",), ("Treves",), ("Luzzatti", "Luzzatto"),
        ("Momigliano",), ("Artom",), ("Bachi",), ("Cases",),
        ("Colombo",), ("Della Torre",), ("Diena",), ("Finzi",),
        ("Fubini",), ("Jona", "Giona"), ("Lattes",), ("Malvano",),
        ("Milano",), ("Modigliani",), ("Morpurgo",), ("Norzi",),
        ("Ottolenghi",), ("Pavia",), ("Pugliese",), ("Ravenna",),
        ("Sacerdote", "Sacerdoti"), ("Terracini",), ("Valabrega",),
        ("Vitale", "Vidal"), ("Zargani",), ("Anau",), ("Bassani",),
        ("Camerino",),
    ),
    "poland": (
        ("Kesler", "Keszler"), ("Apoteker", "Apteker"), ("Postel", "Postol"),
        ("Goldberg", "Goldberg"), ("Rozenberg", "Rosenberg"),
        ("Szwarc", "Schwartz", "Shvarts"), ("Grinberg", "Gruenberg"),
        ("Kac", "Katz"), ("Rubin", "Rubinsztejn"), ("Wajs", "Weiss"),
        ("Cukier", "Zucker"), ("Fridman", "Friedman"), ("Lewin", "Levin"),
        ("Sztern", "Stern"), ("Zylberman", "Silberman"),
        ("Blumenfeld",), ("Edelman",), ("Fajnsztejn", "Feinstein"),
        ("Gelbart",), ("Hochman",), ("Jakubowicz",), ("Kirszenbaum",),
        ("Lichtensztejn",), ("Mandelbaum",), ("Nusbaum", "Nussbaum"),
        ("Orenstein",), ("Perelman",), ("Rotsztejn", "Rothstein"),
        ("Szpilman",), ("Tenenbaum",), ("Wajnberg", "Weinberg"),
        ("Zingier", "Singer"), ("Borensztejn",), ("Cymerman", "Zimmerman"),
        ("Dymant",),
    ),
    "germany": (
        ("Rosenthal",), ("Blumenthal",), ("Oppenheimer",),
        ("Kaufmann", "Kaufman"), ("Hirsch",), ("Wolff", "Wolf"),
        ("Baum",), ("Cohn", "Cohen"), ("Dreyfuss", "Dreyfus"),
        ("Ehrlich",), ("Feuchtwanger",), ("Goldschmidt",),
        ("Heilbronn",), ("Israel",), ("Jacobsohn", "Jacobson"),
        ("Kahn",), ("Lehmann",), ("Marx",), ("Neumann",),
        ("Pinkus",), ("Rothschild",), ("Seligmann", "Seligman"),
        ("Strauss",), ("Ullmann", "Ullman"), ("Veit",),
        ("Wertheimer",), ("Baer",), ("Einstein",), ("Frank",),
        ("Guggenheim",), ("Hamburger",), ("Katzenstein",),
        ("Loewenthal",), ("Mannheimer",), ("Nathan",),
    ),
    "hungary": (
        ("Kovacs",), ("Szabo",), ("Weisz", "Weiss"), ("Klein",),
        ("Nagy",), ("Grosz", "Gross"), ("Braun",), ("Schwarcz", "Schwartz"),
        ("Fekete",), ("Fischer",), ("Gal",), ("Hegedus",),
        ("Horvath",), ("Kertesz",), ("Lakatos",), ("Lovas",),
        ("Molnar",), ("Pollak", "Polak"), ("Reich",), ("Roth",),
        ("Rozsa",), ("Solyom",), ("Steiner",), ("Szekely",),
        ("Toth",), ("Ungar",), ("Vamos",), ("Varga",),
        ("Winkler",), ("Zilahi",), ("Balog",), ("Csillag",),
        ("Deutsch",), ("Erdos",), ("Friedmann", "Friedman"),
    ),
    "greece": (
        ("Capelluto", "Kapeluto"), ("Alhadeff", "Alchadef"),
        ("Benveniste", "Benvenisti"), ("Camhi", "Kamchi"),
        ("Cohen", "Koen"), ("Errera",), ("Franco",), ("Gattegno",),
        ("Hasson", "Chasson"), ("Leon",), ("Matalon",), ("Menasce",),
        ("Modiano",), ("Molho",), ("Nahmias",), ("Notrica",),
        ("Pardo",), ("Pinto",), ("Revah", "Revach"), ("Saltiel",),
        ("Saporta",), ("Sarfati", "Tsarfati"), ("Soriano",),
        ("Tiano",), ("Varon",), ("Ventura",), ("Yohai", "Yochai"),
        ("Amarillo",), ("Beraha", "Beracha"), ("Carasso", "Karaso"),
        ("Djivre",), ("Eskenazi", "Ashkenazi"), ("Florentin",),
        ("Gabbai",), ("Habib",),
    ),
    "ussr": (
        ("Abramovich",), ("Berman",), ("Chernyak",), ("Davidov", "Davydov"),
        ("Epshtein", "Epstein"), ("Feldman",), ("Gurevich", "Gurvich"),
        ("Izrailev",), ("Kagan", "Kogan"), ("Lifshits", "Lifschitz"),
        ("Margolin",), ("Novik",), ("Olshansky",), ("Perelmuter",),
        ("Rabinovich",), ("Shapiro", "Szapiro"), ("Tsukerman",),
        ("Uritsky",), ("Vainshtein", "Weinstein"), ("Yoffe", "Ioffe"),
        ("Zaslavsky",), ("Brodsky",), ("Dunaevsky",), ("Ginzburg",),
        ("Khait",), ("Lerner",), ("Mirkin",), ("Nemirovsky",),
        ("Polyak",), ("Reznik",), ("Slutsky",), ("Temkin",),
        ("Umansky",), ("Vilenkin",), ("Zhitomirsky",),
    ),
}

#: Profession codes, as the Names Project records them.
PROFESSIONS: Tuple[str, ...] = (
    "tailor", "merchant", "teacher", "shoemaker", "baker", "physician",
    "rabbi", "seamstress", "clerk", "carpenter", "watchmaker", "pharmacist",
    "lawyer", "engineer", "butcher", "glazier", "bookkeeper", "printer",
    "furrier", "housewife", "student", "musician",
)
