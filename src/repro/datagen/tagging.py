"""Expert-tag simulation: the five-level tagging of Section 5.1.

Yad Vashem archival experts tagged candidate pairs with one of
``{Yes, Probably Yes, Maybe, Probably No, No}``; a ``Maybe`` means the
pair carries too little information to decide. The paper then simplifies
Yes+ProbablyYes -> match and No+ProbablyNo -> non-match, and studies
three treatments of Maybe (Table 5).

Since the real experts are unavailable, :class:`ExpertTagger` simulates
them from ground truth plus *information content*: true pairs with rich
shared information get confident Yes tags, information-poor pairs drift
toward Maybe, and similar-looking non-matches (typically family members
sharing surname, parents, and places — the Capelluto effect) receive
Maybe/Probably-No rather than a clean No. The resulting tag-vs-similarity
profile reproduces Figure 8.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.records.dataset import Dataset
from repro.records.schema import PLACE_TYPES, VictimRecord

__all__ = ["Tag", "TaggedPair", "ExpertTagger", "simplify_tags"]

Pair = Tuple[int, int]


class Tag(str, enum.Enum):
    """The five expert tags, ordered from confident match to non-match."""

    YES = "yes"
    PROBABLY_YES = "probably_yes"
    MAYBE = "maybe"
    PROBABLY_NO = "probably_no"
    NO = "no"

    def simplified(self) -> Optional[bool]:
        """Collapse to match / non-match; ``None`` for Maybe.

        This is the paper's simplification: Yes joins Probably Yes, No
        joins Probably No.
        """
        if self in (Tag.YES, Tag.PROBABLY_YES):
            return True
        if self in (Tag.NO, Tag.PROBABLY_NO):
            return False
        return None


@dataclass(frozen=True)
class TaggedPair:
    """One expert-tagged candidate pair."""

    pair: Pair
    tag: Tag

    @property
    def label(self) -> Optional[bool]:
        return self.tag.simplified()


def _information_content(a: VictimRecord, b: VictimRecord) -> int:
    """Count attribute groups where *both* records carry values."""
    info = 0
    for attribute in ("first", "last", "father", "mother", "spouse",
                      "maiden", "mother_maiden"):
        if a.names(attribute) and b.names(attribute):
            info += 1
    if a.gender is not None and b.gender is not None:
        info += 1
    if a.birth_year is not None and b.birth_year is not None:
        info += 1
    for place_type in PLACE_TYPES:
        if a.places_of(place_type) and b.places_of(place_type):
            info += 1
    if a.profession is not None and b.profession is not None:
        info += 1
    return info


def _agreements(a: VictimRecord, b: VictimRecord) -> int:
    """Count attribute groups where the records visibly agree."""
    hits = 0
    for attribute in ("first", "last", "father", "mother", "spouse",
                      "maiden", "mother_maiden"):
        if set(a.names(attribute)) & set(b.names(attribute)):
            hits += 1
    if a.gender is not None and a.gender is b.gender:
        hits += 1
    if a.birth_year is not None and a.birth_year == b.birth_year:
        hits += 1
    for place_type in PLACE_TYPES:
        cities_a = {p.city for p in a.places_of(place_type) if p.city}
        cities_b = {p.city for p in b.places_of(place_type) if p.city}
        if cities_a & cities_b:
            hits += 1
    return hits


class ExpertTagger:
    """Simulates the archival experts' five-level pair tagging."""

    def __init__(self, dataset: Dataset, seed: int = 97) -> None:
        self.dataset = dataset
        self._rng = random.Random(seed)

    def tag_pair(self, pair: Pair) -> TaggedPair:
        """Tag one candidate pair."""
        a = self.dataset[pair[0]]
        b = self.dataset[pair[1]]
        is_match = (
            a.person_id is not None and a.person_id == b.person_id
        )
        info = _information_content(a, b)
        agreements = _agreements(a, b)
        tag = self._draw_tag(is_match, info, agreements)
        return TaggedPair(pair, tag)

    def tag_pairs(self, pairs: Iterable[Pair]) -> List[TaggedPair]:
        """Tag candidate pairs (sorted for determinism)."""
        return [self.tag_pair(pair) for pair in sorted(set(pairs))]

    def _draw_tag(self, is_match: bool, info: int, agreements: int) -> Tag:
        rng = self._rng
        if is_match:
            if info >= 5:
                choices = ((Tag.YES, 0.88), (Tag.PROBABLY_YES, 0.12))
            elif info >= 3:
                choices = (
                    (Tag.YES, 0.55), (Tag.PROBABLY_YES, 0.32), (Tag.MAYBE, 0.13)
                )
            else:
                choices = (
                    (Tag.PROBABLY_YES, 0.35), (Tag.MAYBE, 0.55),
                    (Tag.PROBABLY_NO, 0.10),
                )
        else:
            if agreements >= 4 and info <= 6:
                # Family members: lots of visible agreement, little to
                # tell siblings apart — the experts hedge.
                choices = (
                    (Tag.MAYBE, 0.40), (Tag.PROBABLY_NO, 0.45), (Tag.NO, 0.15)
                )
            elif agreements >= 2:
                choices = (
                    (Tag.MAYBE, 0.06), (Tag.PROBABLY_NO, 0.44), (Tag.NO, 0.50)
                )
            else:
                choices = ((Tag.PROBABLY_NO, 0.07), (Tag.NO, 0.93))
        roll = rng.random()
        cumulative = 0.0
        for tag, probability in choices:
            cumulative += probability
            if roll < cumulative:
                return tag
        return choices[-1][0]


def simplify_tags(
    tagged: Iterable[TaggedPair], maybe_as: Optional[bool] = None
) -> Dict[Pair, bool]:
    """Collapse tags to binary labels.

    ``maybe_as`` controls the Table 5 treatments: ``None`` omits Maybe
    pairs, ``False`` folds them into non-match, ``True`` into match.
    """
    labels: Dict[Pair, bool] = {}
    for entry in tagged:
        label = entry.label
        if label is None:
            if maybe_as is None:
                continue
            label = maybe_as
        labels[entry.pair] = label
    return labels
