"""Synthetic surname morphology, calibrated to Table 4's cardinality.

The hand-curated pools in :mod:`repro.datagen.names` hold ~35 surnames
per community — far fewer than the real data (Table 4: 1,495 distinct
last names among 9,499 Italian records, ~6 records per name). Sampling
families only from the pools makes surnames ~4x too frequent, which
distorts blocking (suffix keys become ultra-common) and inflates block
sizes.

This module synthesizes additional plausible surnames from
community-specific stems and suffixes (Ashkenazi compounds like
``Gold + berg``, Hungarian toponymics like ``Szegedi``, Italian and
Sephardi forms), optionally with a transliteration variant, so surname
cardinality scales with corpus size the way the real data's does.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

__all__ = ["synthesize_surname", "SURNAME_STEMS", "SURNAME_SUFFIXES"]

NameVariants = Tuple[str, ...]

#: Stems per community. Ashkenazi communities share the compound style;
#: stems are kept distinct per community for regional flavor.
SURNAME_STEMS: Dict[str, Tuple[str, ...]] = {
    "poland": (
        "Gold", "Rozen", "Zylber", "Wajn", "Grin", "Szpir", "Kirsz",
        "Birn", "Tannen", "Eizen", "Kupfer", "Morgen", "Apfel", "Blumen",
        "Ejdel", "Finkel", "Gersz", "Hamer", "Lewen", "Mandel",
    ),
    "germany": (
        "Gold", "Rosen", "Silber", "Wein", "Gruen", "Loewen", "Kirsch",
        "Birn", "Tannen", "Eisen", "Kupfer", "Morgen", "Apfel", "Blumen",
        "Edel", "Finkel", "Hirsch", "Hammer", "Lichten", "Mandel",
    ),
    "ussr": (
        "Gold", "Rozen", "Zilber", "Vain", "Grin", "Shpil", "Kirzh",
        "Berdi", "Tomash", "Eizen", "Kuper", "Morgen", "Apel", "Blium",
        "Edel", "Finkel", "Gersh", "Gamer", "Leven", "Mendel",
    ),
    "hungary": (
        "Szegedi", "Debreceni", "Pesti", "Budai", "Miskolczi", "Varadi",
        "Kolozsvari", "Pecsi", "Gyori", "Szatmari", "Kallai", "Soproni",
        "Egri", "Tokaji", "Szolnoki", "Kassai", "Temesvari", "Aradi",
        "Zalai", "Somogyi",
    ),
    "italy": (
        "Montefior", "Carmagnol", "Moncalv", "Saluzz", "Casal", "Fossan",
        "Cherasc", "Saviglian", "Alessandri", "Vercell", "Asti", "Cune",
        "Vigevan", "Cremon", "Mantovan", "Modenes", "Anconet", "Urbinat",
        "Senigalli", "Ferrares",
    ),
    "greece": (
        "Benros", "Benvenist", "Alvo", "Beraj", "Kounio", "Nachmia",
        "Arditt", "Moshon", "Navarr", "Siakk", "Mallah", "Angel",
        "Faradj", "Barzila", "Albala", "Abastad", "Perachi", "Rousso",
        "Sevill", "Castr",
    ),
}

SURNAME_SUFFIXES: Dict[str, Tuple[str, ...]] = {
    "poland": ("berg", "sztejn", "man", "baum", "feld", "blat", "holc",
               "zweig", "wicz", "blum", "kranc", "sohn"),
    "germany": ("berg", "stein", "mann", "baum", "feld", "blatt", "holz",
                "thal", "heim", "bach", "dorf", "burg"),
    "ussr": ("berg", "shtein", "man", "baum", "feld", "blat", "golts",
             "son", "ovich", "sky", "kin", "er"),
    "hungary": ("", "y", "falvi", "hegyi"),  # toponymic morphology
    "italy": ("i", "o", "a", "e", "ini", "etti", "one", "ato", "ese", "ano"),
    "greece": ("o", "el", "i", "a", "ul", "es", "on", "ides"),
}

#: Transliteration pairs applied to make an occasional variant spelling.
_VARIANT_RULES: Tuple[Tuple[str, str], ...] = (
    ("sztejn", "stein"),
    ("shtein", "stein"),
    ("man", "mann"),
    ("baum", "boim"),
    ("berg", "bergh"),
    ("w", "v"),
    ("j", "y"),
    ("cz", "ch"),
    ("sz", "sh"),
)


def synthesize_surname(community: str, rng: random.Random) -> NameVariants:
    """Build a plausible surname (with an occasional spelling variant)."""
    try:
        stems = SURNAME_STEMS[community]
        suffixes = SURNAME_SUFFIXES[community]
    except KeyError:
        raise ValueError(f"unknown community: {community!r}") from None
    stem = rng.choice(stems)
    suffix = rng.choice(suffixes)
    surname = stem + suffix
    if rng.random() < 0.3:
        for old, new in _VARIANT_RULES:
            if old in surname.lower():
                variant = surname.lower().replace(old, new, 1).capitalize()
                if variant.lower() != surname.lower():
                    return (surname, variant)
    return (surname,)
