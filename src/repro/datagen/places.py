"""Synthetic gazetteer: cities with variants, hierarchy, and coordinates.

Each community has a set of home towns (birth / permanent / wartime
places) with realistic coordinates, and Europe-wide death places (camps
and ghettos) shared across communities. City names carry transliteration
variants (Torino/Turin, Lwow/Lvov) exactly where the paper's running
examples need them.

The gazetteer also backs the ``PlaceXGeoDistance`` features and the Geo
branch of Eq. 1: :func:`Gazetteer.lookup` resolves a city name (any
variant) to coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.records.schema import Place
from repro.geo import GeoPoint

__all__ = ["City", "Gazetteer", "HOME_CITIES", "DEATH_PLACES", "build_gazetteer"]


@dataclass(frozen=True)
class City:
    """A gazetteer entry: name variants, hierarchy, coordinates."""

    names: Tuple[str, ...]
    county: str
    region: str
    country: str
    coords: GeoPoint

    @property
    def canonical(self) -> str:
        return self.names[0]

    def to_place(self, name: Optional[str] = None, granularity: int = 4) -> Place:
        """Materialize a Place, optionally truncated to ``granularity`` parts.

        ``granularity`` counts parts kept from coarsest: 1 = country only,
        2 = +region, 3 = +county, 4 = full (city included). Coordinates
        are attached only when the city part is present.
        """
        if not 1 <= granularity <= 4:
            raise ValueError(f"granularity must be 1..4, got {granularity}")
        return Place(
            city=(name or self.canonical) if granularity >= 4 else None,
            county=self.county if granularity >= 3 else None,
            region=self.region if granularity >= 2 else None,
            country=self.country,
            coords=self.coords if granularity >= 4 else None,
        )


HOME_CITIES: Dict[str, Tuple[City, ...]] = {
    "italy": (
        City(("Torino", "Turin"), "Torino", "Piemonte", "Italy",
             GeoPoint(45.0703, 7.6869)),
        City(("Cuorgne", "Cuorgnè"), "Torino", "Piemonte", "Italy",
             GeoPoint(45.3900, 7.6500)),
        City(("Canischio",), "Torino", "Piemonte", "Italy",
             GeoPoint(45.3742, 7.5961)),
        City(("Moncalieri",), "Torino", "Piemonte", "Italy",
             GeoPoint(44.9997, 7.6822)),
        City(("Milano", "Milan"), "Milano", "Lombardia", "Italy",
             GeoPoint(45.4642, 9.1900)),
        City(("Roma", "Rome"), "Roma", "Lazio", "Italy",
             GeoPoint(41.9028, 12.4964)),
        City(("Firenze", "Florence"), "Firenze", "Toscana", "Italy",
             GeoPoint(43.7696, 11.2558)),
        City(("Venezia", "Venice"), "Venezia", "Veneto", "Italy",
             GeoPoint(45.4408, 12.3155)),
        City(("Trieste",), "Trieste", "Friuli", "Italy",
             GeoPoint(45.6495, 13.7768)),
        City(("Genova", "Genoa"), "Genova", "Liguria", "Italy",
             GeoPoint(44.4056, 8.9463)),
        City(("Ferrara",), "Ferrara", "Emilia", "Italy",
             GeoPoint(44.8381, 11.6198)),
        City(("Livorno", "Leghorn"), "Livorno", "Toscana", "Italy",
             GeoPoint(43.5485, 10.3106)),
        # Rhodes was under Italian control; its community reported via Italy.
        City(("Rhodes", "Rodi"), "Rhodes", "Dodecanese", "Greece",
             GeoPoint(36.4349, 28.2176)),
    ),
    "poland": (
        City(("Warszawa", "Warsaw", "Varshava"), "Warszawa", "Mazowsze",
             "Poland", GeoPoint(52.2297, 21.0122)),
        City(("Lwow", "Lvov", "Lemberg"), "Lwow", "Galicja", "Poland",
             GeoPoint(49.8397, 24.0297)),
        City(("Lubaczow", "Lubaczo"), "Lubaczow", "Galicja", "Poland",
             GeoPoint(50.1566, 23.1232)),
        City(("Krakow", "Cracow", "Kroke"), "Krakow", "Malopolska", "Poland",
             GeoPoint(50.0647, 19.9450)),
        City(("Lublin",), "Lublin", "Lubelskie", "Poland",
             GeoPoint(51.2465, 22.5684)),
        City(("Lodz", "Lodzh", "Litzmannstadt"), "Lodz", "Lodzkie", "Poland",
             GeoPoint(51.7592, 19.4560)),
        City(("Bialystok",), "Bialystok", "Podlasie", "Poland",
             GeoPoint(53.1325, 23.1688)),
        City(("Antopol",), "Kobryn", "Polesie", "Poland",
             GeoPoint(52.2033, 24.7839)),
        City(("Kobryn",), "Kobryn", "Polesie", "Poland",
             GeoPoint(52.2140, 24.3565)),
        City(("Wilno", "Vilna", "Vilnius"), "Wilno", "Wilenskie", "Poland",
             GeoPoint(54.6872, 25.2797)),
        City(("Radom",), "Radom", "Kieleckie", "Poland",
             GeoPoint(51.4027, 21.1471)),
        City(("Czestochowa",), "Czestochowa", "Kieleckie", "Poland",
             GeoPoint(50.8118, 19.1203)),
    ),
    "germany": (
        City(("Berlin",), "Berlin", "Brandenburg", "Germany",
             GeoPoint(52.5200, 13.4050)),
        City(("Frankfurt",), "Frankfurt", "Hessen", "Germany",
             GeoPoint(50.1109, 8.6821)),
        City(("Hamburg",), "Hamburg", "Hamburg", "Germany",
             GeoPoint(53.5511, 9.9937)),
        City(("Muenchen", "Munich"), "Muenchen", "Bayern", "Germany",
             GeoPoint(48.1351, 11.5820)),
        City(("Koeln", "Cologne"), "Koeln", "Rheinland", "Germany",
             GeoPoint(50.9375, 6.9603)),
        City(("Breslau", "Wroclaw"), "Breslau", "Schlesien", "Germany",
             GeoPoint(51.1079, 17.0385)),
        City(("Leipzig",), "Leipzig", "Sachsen", "Germany",
             GeoPoint(51.3397, 12.3731)),
        City(("Nuernberg", "Nuremberg"), "Nuernberg", "Bayern", "Germany",
             GeoPoint(49.4521, 11.0767)),
        City(("Stuttgart",), "Stuttgart", "Wuerttemberg", "Germany",
             GeoPoint(48.7758, 9.1829)),
        City(("Wien", "Vienna"), "Wien", "Ostmark", "Germany",
             GeoPoint(48.2082, 16.3738)),
    ),
    "hungary": (
        City(("Budapest",), "Pest", "Pest", "Hungary",
             GeoPoint(47.4979, 19.0402)),
        City(("Debrecen",), "Hajdu", "Tiszantul", "Hungary",
             GeoPoint(47.5316, 21.6273)),
        City(("Szeged",), "Csongrad", "Alfold", "Hungary",
             GeoPoint(46.2530, 20.1414)),
        City(("Miskolc",), "Borsod", "Eszak", "Hungary",
             GeoPoint(48.1035, 20.7784)),
        City(("Munkacs", "Mukachevo"), "Bereg", "Karpatalja", "Hungary",
             GeoPoint(48.4414, 22.7136)),
        City(("Nagyvarad", "Oradea"), "Bihar", "Partium", "Hungary",
             GeoPoint(47.0465, 21.9189)),
        City(("Kolozsvar", "Cluj"), "Kolozs", "Erdely", "Hungary",
             GeoPoint(46.7712, 23.6236)),
        City(("Pecs",), "Baranya", "Dunantul", "Hungary",
             GeoPoint(46.0727, 18.2323)),
        City(("Gyor",), "Gyor", "Dunantul", "Hungary",
             GeoPoint(47.6875, 17.6504)),
        City(("Szatmarnemeti", "Satu Mare"), "Szatmar", "Partium", "Hungary",
             GeoPoint(47.7928, 22.8857)),
    ),
    "greece": (
        City(("Salonika", "Thessaloniki", "Saloniki"), "Salonika",
             "Macedonia", "Greece", GeoPoint(40.6401, 22.9444)),
        City(("Athens", "Athina"), "Attica", "Attica", "Greece",
             GeoPoint(37.9838, 23.7275)),
        City(("Rhodes", "Rodi"), "Rhodes", "Dodecanese", "Greece",
             GeoPoint(36.4349, 28.2176)),
        City(("Ioannina", "Yanina"), "Ioannina", "Epirus", "Greece",
             GeoPoint(39.6650, 20.8537)),
        City(("Corfu", "Kerkyra"), "Corfu", "Ionian Islands", "Greece",
             GeoPoint(39.6243, 19.9217)),
        City(("Kavala",), "Kavala", "Macedonia", "Greece",
             GeoPoint(40.9396, 24.4129)),
        City(("Volos",), "Magnesia", "Thessaly", "Greece",
             GeoPoint(39.3622, 22.9422)),
        City(("Kastoria",), "Kastoria", "Macedonia", "Greece",
             GeoPoint(40.5193, 21.2687)),
    ),
    "ussr": (
        City(("Minsk",), "Minsk", "Belorussia", "USSR",
             GeoPoint(53.9006, 27.5590)),
        City(("Kiev", "Kyiv"), "Kiev", "Ukraine", "USSR",
             GeoPoint(50.4501, 30.5234)),
        City(("Odessa",), "Odessa", "Ukraine", "USSR",
             GeoPoint(46.4825, 30.7233)),
        City(("Vitebsk",), "Vitebsk", "Belorussia", "USSR",
             GeoPoint(55.1904, 30.2049)),
        City(("Kharkov", "Kharkiv"), "Kharkov", "Ukraine", "USSR",
             GeoPoint(49.9935, 36.2304)),
        City(("Berdichev",), "Zhitomir", "Ukraine", "USSR",
             GeoPoint(49.8919, 28.6000)),
        City(("Mogilev",), "Mogilev", "Belorussia", "USSR",
             GeoPoint(53.9007, 30.3314)),
        City(("Zhitomir",), "Zhitomir", "Ukraine", "USSR",
             GeoPoint(50.2547, 28.6587)),
        City(("Gomel",), "Gomel", "Belorussia", "USSR",
             GeoPoint(52.4345, 30.9754)),
        City(("Kishinev", "Chisinau"), "Kishinev", "Bessarabia", "USSR",
             GeoPoint(47.0105, 28.8638)),
    ),
}

#: Camps, ghettos, and killing sites used as death / wartime places.
DEATH_PLACES: Tuple[City, ...] = (
    City(("Auschwitz", "Oswiecim"), "Bielsko", "Schlesien", "Poland",
         GeoPoint(50.0343, 19.2098)),
    City(("Sobibor",), "Wlodawa", "Lubelskie", "Poland",
         GeoPoint(51.4467, 23.5928)),
    City(("Treblinka",), "Sokolow", "Mazowsze", "Poland",
         GeoPoint(52.6311, 22.0500)),
    City(("Mauthausen",), "Perg", "Oberoesterreich", "Austria",
         GeoPoint(48.2567, 14.5153)),
    City(("Drancy",), "Seine", "Ile-de-France", "France",
         GeoPoint(48.9234, 2.4450)),
    City(("Bergen-Belsen", "Belsen"), "Celle", "Niedersachsen", "Germany",
         GeoPoint(52.7580, 9.9078)),
    City(("Dachau",), "Dachau", "Bayern", "Germany",
         GeoPoint(48.2699, 11.4683)),
    City(("Majdanek",), "Lublin", "Lubelskie", "Poland",
         GeoPoint(51.2220, 22.5989)),
    City(("Babi Yar", "Babyn Yar"), "Kiev", "Ukraine", "USSR",
         GeoPoint(50.4716, 30.4497)),
    City(("Transnistria",), "Transnistria", "Transnistria", "USSR",
         GeoPoint(47.7500, 29.0000)),
    City(("Theresienstadt", "Terezin"), "Litomerice", "Bohemia",
         "Czechoslovakia", GeoPoint(50.5110, 14.1509)),
    City(("Stutthof",), "Danzig", "Pomorze", "Poland",
         GeoPoint(54.3275, 19.1522)),
)


class Gazetteer:
    """Resolves city names (any spelling variant) to gazetteer entries."""

    def __init__(self, cities: List[City]) -> None:
        self.cities = list(cities)
        self._by_name: Dict[str, City] = {}
        for city in self.cities:
            for name in city.names:
                # First registration wins; duplicates (e.g. Rhodes listed
                # under both italy and greece) refer to the same place.
                self._by_name.setdefault(name.lower(), city)

    def find(self, name: str) -> Optional[City]:
        """Look up a city by any of its spellings (case-insensitive)."""
        return self._by_name.get(name.lower())

    def lookup(self, name: str) -> Optional[GeoPoint]:
        """GeoLookup adapter for Eq. 1: city name -> coordinates."""
        city = self.find(name)
        return city.coords if city else None

    def __len__(self) -> int:
        return len(self.cities)


def build_gazetteer(communities: Optional[List[str]] = None) -> Gazetteer:
    """Build a gazetteer covering the given communities plus death places."""
    selected = communities or list(HOME_CITIES)
    cities: List[City] = []
    for community in selected:
        try:
            cities.extend(HOME_CITIES[community])
        except KeyError:
            raise ValueError(f"unknown community: {community!r}") from None
    cities.extend(DEATH_PLACES)
    return Gazetteer(cities)
