"""Determinism contracts: declarative markers checked by reprolint.

The paper's evaluation rests on ranked pair lists being byte-identical
run over run; PR 1's reprolint enforces that *within* a line, and the
inter-procedural pass (``repro lint --contracts``, rules RL100-RL103 in
``tools/reprolint/contracts.py``) enforces it across function
boundaries. These decorators are the vocabulary of that pass:

``@pure``
    No observable effects and output depends only on the arguments.
    The item-similarity functions of Eq. 1 are the canonical example.
``@deterministic``
    Output depends only on the arguments (effects such as tracing are
    allowed) — same inputs, same outputs, every run, every
    ``PYTHONHASHSEED``.
``@ordered_output``
    ``@deterministic`` whose returned collection order is part of the
    contract: ranked pair lists, mined itemset lists, CSV row streams.
``@seeded(param="rng")``
    Deterministic *given* the named seed/RNG parameter: all randomness
    flows from it, and calls into other ``@seeded`` functions must
    thread it (rule RL102).
``@impure(reason)``
    Declared, reviewed nondeterminism — the contract-layer counterpart
    of an RL005 path exemption. ``repro.obs.clock`` is the sole
    wall-clock holder of this marker in ``src/``; a contracted function
    that reaches a declared-impure one is an RL100 violation.

The parallel-safety pass (``repro lint --parallel-safety``, rules
RL200-RL205 in ``tools/reprolint/parallel_safety.py``) adds four more
markers for code that crosses a process boundary:

``@picklable_work``
    A chunk work function handed to ``Executor.map_chunks``: module
    level, picklable, and argument-determined. The linter makes every
    such function a parallel-safety root whether or not it can see the
    submission site.
``@fork_safe``
    Safe to execute in a forked/spawned worker: reaches no inherited
    file handle, live RNG, tracer/sink, or connection object (RL203).
``@commutative_merge``
    An order-independent fold of chunk results — invariant under any
    permutation of its input chunks. RL202 requires every
    ``map_chunks`` result to flow through one of these.
``@shared_readonly``
    Declares that the module-global state a work function reads is
    reviewed as effectively immutable; RL201 still forbids writes to
    it anywhere reachable from worker code.

The performance pass (``repro lint --perf``, rules RL300-RL305 in
``tools/reprolint/perf_lint.py``) adds two cost markers. They make no
determinism claim — a ``@hot_path`` function can be ``@pure`` or not —
and they never silence the determinism or parallel-safety passes:

``@hot_path``
    A measured hot entry point: the profile baseline attributes real
    run time to this function (or the vectorization plan targets it).
    The perf pass roots its loop-cost analysis here, alongside executor
    work roots.
``@batch_kernel``
    A batch implementation whose inner loop is the *point* (a
    vectorized kernel, a tight primitive the plan already accepted).
    The perf pass neither analyzes its body nor traverses into it —
    the declared endpoint of a completed vectorization.

At runtime the decorators only attach ``__repro_contracts__`` metadata
(queryable via :func:`contracts_of`) and return the function unchanged:
zero overhead, no wrapping, signatures and identities preserved. All
enforcement is static — the linter recognizes the decorator syntax —
plus dynamic spot-checks by the ``repro sanitize`` hash-order harness.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple, TypeVar

__all__ = [
    "pure",
    "deterministic",
    "ordered_output",
    "seeded",
    "impure",
    "picklable_work",
    "fork_safe",
    "commutative_merge",
    "shared_readonly",
    "hot_path",
    "batch_kernel",
    "contracts_of",
]

F = TypeVar("F", bound=Callable[..., Any])

#: Attribute attached to decorated callables: a tuple of marker strings
#: such as ``("pure",)`` or ``("seeded:rng",)``.
CONTRACT_ATTR = "__repro_contracts__"


def _attach(func: F, marker: str) -> F:
    existing: Tuple[str, ...] = getattr(func, CONTRACT_ATTR, ())
    setattr(func, CONTRACT_ATTR, existing + (marker,))
    return func


def pure(func: F) -> F:
    """Mark ``func`` as pure: argument-determined output, no effects."""
    return _attach(func, "pure")


def deterministic(func: F) -> F:
    """Mark ``func`` as deterministic: argument-determined output."""
    return _attach(func, "deterministic")


def ordered_output(func: F) -> F:
    """Mark ``func`` deterministic including its output *ordering*."""
    return _attach(func, "ordered_output")


def seeded(param: str = "rng") -> Callable[[F], F]:
    """Mark a function deterministic given the seed parameter ``param``."""

    def decorate(func: F) -> F:
        return _attach(func, f"seeded:{param}")

    return decorate


def impure(reason: str) -> Callable[[F], F]:
    """Declare reviewed nondeterminism (wall clock, entropy, I/O order).

    ``reason`` is mandatory: an undocumented impurity declaration is as
    suspect as an unjustified lint suppression.
    """
    if not reason or not reason.strip():
        raise ValueError("impure() requires a non-empty reason")

    def decorate(func: F) -> F:
        return _attach(func, "impure")

    return decorate


def picklable_work(func: F) -> F:
    """Mark ``func`` as an executor work function: picklable, module
    level, argument-determined (parallel-safety root for RL200/RL201)."""
    return _attach(func, "picklable_work")


def fork_safe(func: F) -> F:
    """Mark ``func`` safe to run in a forked/spawned worker process:
    no inherited handle, live RNG, tracer, or connection is reachable."""
    return _attach(func, "fork_safe")


def commutative_merge(func: F) -> F:
    """Mark ``func`` as an order-independent chunk-result fold.

    The result must be invariant under any permutation of the chunk
    results it consumes — the property that makes ``--workers N``
    byte-identical to ``--workers 1`` (RL202).
    """
    return _attach(func, "commutative_merge")


def shared_readonly(func: F) -> F:
    """Declare the module-global state ``func`` reads as reviewed
    read-only; RL201 still forbids mutating it from worker code."""
    return _attach(func, "shared_readonly")


def hot_path(func: F) -> F:
    """Mark ``func`` as a measured hot entry point: a root of the
    RL300-RL305 performance pass (``repro lint --perf``)."""
    return _attach(func, "hot_path")


def batch_kernel(func: F) -> F:
    """Mark ``func`` as a batch kernel whose inner loop is intentional;
    the performance pass neither analyzes nor traverses into it."""
    return _attach(func, "batch_kernel")


def contracts_of(func: Callable[..., Any]) -> Tuple[str, ...]:
    """The contract markers attached to ``func`` (empty if none)."""
    markers: Tuple[str, ...] = getattr(func, CONTRACT_ATTR, ())
    return markers
