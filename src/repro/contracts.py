"""Determinism contracts: declarative markers checked by reprolint.

The paper's evaluation rests on ranked pair lists being byte-identical
run over run; PR 1's reprolint enforces that *within* a line, and the
inter-procedural pass (``repro lint --contracts``, rules RL100-RL103 in
``tools/reprolint/contracts.py``) enforces it across function
boundaries. These decorators are the vocabulary of that pass:

``@pure``
    No observable effects and output depends only on the arguments.
    The item-similarity functions of Eq. 1 are the canonical example.
``@deterministic``
    Output depends only on the arguments (effects such as tracing are
    allowed) — same inputs, same outputs, every run, every
    ``PYTHONHASHSEED``.
``@ordered_output``
    ``@deterministic`` whose returned collection order is part of the
    contract: ranked pair lists, mined itemset lists, CSV row streams.
``@seeded(param="rng")``
    Deterministic *given* the named seed/RNG parameter: all randomness
    flows from it, and calls into other ``@seeded`` functions must
    thread it (rule RL102).
``@impure(reason)``
    Declared, reviewed nondeterminism — the contract-layer counterpart
    of an RL005 path exemption. ``repro.obs.clock`` is the sole
    wall-clock holder of this marker in ``src/``; a contracted function
    that reaches a declared-impure one is an RL100 violation.

At runtime the decorators only attach ``__repro_contracts__`` metadata
(queryable via :func:`contracts_of`) and return the function unchanged:
zero overhead, no wrapping, signatures and identities preserved. All
enforcement is static — the linter recognizes the decorator syntax —
plus dynamic spot-checks by the ``repro sanitize`` hash-order harness.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple, TypeVar

__all__ = [
    "pure",
    "deterministic",
    "ordered_output",
    "seeded",
    "impure",
    "contracts_of",
]

F = TypeVar("F", bound=Callable[..., Any])

#: Attribute attached to decorated callables: a tuple of marker strings
#: such as ``("pure",)`` or ``("seeded:rng",)``.
CONTRACT_ATTR = "__repro_contracts__"


def _attach(func: F, marker: str) -> F:
    existing: Tuple[str, ...] = getattr(func, CONTRACT_ATTR, ())
    setattr(func, CONTRACT_ATTR, existing + (marker,))
    return func


def pure(func: F) -> F:
    """Mark ``func`` as pure: argument-determined output, no effects."""
    return _attach(func, "pure")


def deterministic(func: F) -> F:
    """Mark ``func`` as deterministic: argument-determined output."""
    return _attach(func, "deterministic")


def ordered_output(func: F) -> F:
    """Mark ``func`` deterministic including its output *ordering*."""
    return _attach(func, "ordered_output")


def seeded(param: str = "rng") -> Callable[[F], F]:
    """Mark a function deterministic given the seed parameter ``param``."""

    def decorate(func: F) -> F:
        return _attach(func, f"seeded:{param}")

    return decorate


def impure(reason: str) -> Callable[[F], F]:
    """Declare reviewed nondeterminism (wall clock, entropy, I/O order).

    ``reason`` is mandatory: an undocumented impurity declaration is as
    suspect as an unjustified lint suppression.
    """
    if not reason or not reason.strip():
        raise ValueError("impure() requires a non-empty reason")

    def decorate(func: F) -> F:
        return _attach(func, "impure")

    return decorate


def contracts_of(func: Callable[..., Any]) -> Tuple[str, ...]:
    """The contract markers attached to ``func`` (empty if none)."""
    markers: Tuple[str, ...] = getattr(func, CONTRACT_ATTR, ())
    return markers
