"""Submitter data model and synthetic submitter-record generation.

Section 2: testimony submitters have no unique id — "grouping the
submitters by first name, last name, and city results in 514,251
different submitters. Some are obvious duplicates, misspellings of names
and city names, usage of a nickname, or a different transliteration of
the foreign name, but short of performing entity resolution on the
submitter data, we must remain with this figure."

This package performs that left-open entity resolution. The generator
here creates ground-truth submitters and the noisy (first, last, city)
signatures their testimonies carry — one signature per filed page, with
the same corruption channels as the victim reports (spelling variants,
typos, city transliterations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.datagen.generator import _typo
from repro.datagen.names import COMMUNITIES, FEMALE_FIRST, LAST, MALE_FIRST
from repro.datagen.places import HOME_CITIES

__all__ = ["SubmitterRecord", "SubmitterGenerator", "group_by_signature"]


@dataclass(frozen=True)
class SubmitterRecord:
    """One testimony's submitter signature (what the database stores)."""

    record_id: int
    first: str
    last: str
    city: str
    #: Ground truth, evaluation-only.
    submitter_id: int

    @property
    def signature(self) -> Tuple[str, str, str]:
        """The paper's grouping key: (first, last, city)."""
        return (self.first, self.last, self.city)


class SubmitterGenerator:
    """Generates submitters and the noisy signatures on their pages.

    Each ground-truth submitter files 1-5 pages (the paper: "most
    submitters submit 1-5 testimony pages"); every page re-renders the
    submitter's name and city with the usual noise, so one person can
    appear under several distinct signatures — the double-counting the
    naive grouping suffers from.
    """

    def __init__(
        self,
        n_submitters: int = 200,
        communities: Sequence[str] = COMMUNITIES,
        seed: int = 61,
        p_variant: float = 0.25,
        p_typo: float = 0.03,
        pages_weights: Sequence[float] = (0.45, 0.27, 0.15, 0.08, 0.05),
    ) -> None:
        if n_submitters < 1:
            raise ValueError(f"n_submitters must be >= 1, got {n_submitters}")
        unknown = set(communities) - set(COMMUNITIES)
        if unknown:
            raise ValueError(f"unknown communities: {unknown}")
        if len(pages_weights) != 5:
            raise ValueError("pages_weights must have 5 entries (1..5 pages)")
        self.n_submitters = n_submitters
        self.communities = tuple(communities)
        self.p_variant = p_variant
        self.p_typo = p_typo
        self.pages_weights = tuple(pages_weights)
        self._rng = random.Random(seed)

    def generate(self) -> List[SubmitterRecord]:
        """Return the flat list of per-page submitter signatures."""
        rng = self._rng
        records: List[SubmitterRecord] = []
        record_id = 1
        for submitter_id in range(1, self.n_submitters + 1):
            community = rng.choice(self.communities)
            pool = MALE_FIRST if rng.random() < 0.5 else FEMALE_FIRST
            first = rng.choice(pool[community])
            last = rng.choice(LAST[community])
            city = rng.choice(HOME_CITIES[community])
            n_pages = rng.choices(range(1, 6), weights=self.pages_weights)[0]
            for _ in range(n_pages):
                records.append(
                    SubmitterRecord(
                        record_id=record_id,
                        first=self._render(first),
                        last=self._render(last),
                        city=self._render(city.names),
                        submitter_id=submitter_id,
                    )
                )
                record_id += 1
        return records

    def _render(self, variants: Tuple[str, ...]) -> str:
        rng = self._rng
        if len(variants) > 1 and rng.random() < self.p_variant:
            value = rng.choice(variants[1:])
        else:
            value = variants[0]
        if rng.random() < self.p_typo:
            value = _typo(value, rng)
        return value


def group_by_signature(
    records: Sequence[SubmitterRecord],
) -> Dict[Tuple[str, str, str], List[SubmitterRecord]]:
    """The paper's naive grouping: exact (first, last, city) buckets."""
    groups: Dict[Tuple[str, str, str], List[SubmitterRecord]] = {}
    for record in records:
        groups.setdefault(record.signature, []).append(record)
    return groups
