"""Submitter entity resolution: collapsing the 514k naive signatures.

A compact ER pipeline over submitter signatures, reusing the repository's
substrates: Soundex blocking on last names, Jaro-Winkler pairwise
similarity over (first, last, city), and greedy agglomeration of the
signature groups. The output is a clustering of signatures into
submitter entities, plus the headline number the paper could not
compute: how many *distinct* submitters the naive figure overcounts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.resolution import connected_components
from repro.similarity.features import soundex
from repro.similarity.strings import jaro_winkler
from repro.submitters.model import SubmitterRecord, group_by_signature

__all__ = ["SubmitterDedupeResult", "signature_similarity", "dedupe_submitters"]

Signature = Tuple[str, str, str]


def signature_similarity(a: Signature, b: Signature) -> float:
    """Similarity of two (first, last, city) signatures in [0, 1].

    Last name dominates (it is the family anchor), city corroborates;
    all three compared with Jaro-Winkler to absorb transliterations.
    """
    first = jaro_winkler(a[0].lower(), b[0].lower())
    last = jaro_winkler(a[1].lower(), b[1].lower())
    city = jaro_winkler(a[2].lower(), b[2].lower())
    return 0.35 * first + 0.4 * last + 0.25 * city


@dataclass
class SubmitterDedupeResult:
    """Outcome of submitter ER."""

    n_records: int
    n_signatures: int
    clusters: List[FrozenSet[Signature]]

    @property
    def n_entities(self) -> int:
        return len(self.clusters)

    @property
    def overcount_ratio(self) -> float:
        """How much the naive signature count inflates the entity count."""
        if self.n_entities == 0:
            return 1.0
        return self.n_signatures / self.n_entities

    def evaluate(
        self, records: Sequence[SubmitterRecord]
    ) -> Tuple[float, float]:
        """Pairwise (precision, recall) against ground-truth submitters.

        Operates at signature granularity: a signature pair is *true*
        when some records bearing the two signatures share a submitter.
        """
        truth_of: Dict[Signature, Set[int]] = {}
        for record in records:
            truth_of.setdefault(record.signature, set()).add(
                record.submitter_id
            )
        cluster_of: Dict[Signature, int] = {}
        for index, cluster in enumerate(self.clusters):
            for signature in cluster:
                cluster_of[signature] = index

        signatures = sorted(truth_of)
        tp = fp = fn = 0
        for i, sig_a in enumerate(signatures):
            for sig_b in signatures[i + 1:]:
                same_truth = bool(truth_of[sig_a] & truth_of[sig_b])
                same_cluster = cluster_of.get(sig_a) == cluster_of.get(sig_b)
                if same_cluster and same_truth:
                    tp += 1
                elif same_cluster:
                    fp += 1
                elif same_truth:
                    fn += 1
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / (tp + fn) if tp + fn else 1.0
        return precision, recall


def dedupe_submitters(
    records: Sequence[SubmitterRecord],
    threshold: float = 0.93,
) -> SubmitterDedupeResult:
    """Resolve submitter signatures into entities.

    Blocking: signatures sharing a last-name Soundex code (plus, to catch
    last-name typos, a first-name Soundex + city block). Pairs within a
    block whose :func:`signature_similarity` reaches ``threshold`` are
    merged; clusters are the connected components.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    signatures = sorted(group_by_signature(records))
    index_of = {signature: i for i, signature in enumerate(signatures)}

    blocks: Dict[Tuple[str, str], List[int]] = {}
    for signature in signatures:
        first, last, city = signature
        blocks.setdefault(("L", soundex(last)), []).append(index_of[signature])
        blocks.setdefault(
            ("FC", soundex(first) + "|" + city.lower()), []
        ).append(index_of[signature])

    edges: Set[Tuple[int, int]] = set()
    for members in blocks.values():
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                pair = (min(a, b), max(a, b))
                if pair in edges:
                    continue
                if signature_similarity(
                    signatures[pair[0]], signatures[pair[1]]
                ) >= threshold:
                    edges.add(pair)

    components = connected_components(
        edges, seeds=range(len(signatures))
    )
    clusters = [
        frozenset(signatures[i] for i in component)
        for component in components
    ]
    return SubmitterDedupeResult(
        n_records=len(records),
        n_signatures=len(signatures),
        clusters=clusters,
    )
