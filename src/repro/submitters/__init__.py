"""Submitter entity resolution — the sub-problem the paper leaves open
(Section 2's 514,251 naively-grouped submitters)."""

from __future__ import annotations

from repro.submitters.dedupe import (
    SubmitterDedupeResult,
    dedupe_submitters,
    signature_similarity,
)
from repro.submitters.model import (
    SubmitterGenerator,
    SubmitterRecord,
    group_by_signature,
)

__all__ = [
    "SubmitterDedupeResult",
    "dedupe_submitters",
    "signature_similarity",
    "SubmitterGenerator",
    "SubmitterRecord",
    "group_by_signature",
]
