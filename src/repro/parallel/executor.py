"""Executors: serial and process-pool dispatch of chunked work.

The pipeline's hot paths (pairwise scoring, FPMax mining, classifier
ranking) are embarrassingly parallel; what they must never be is
*schedule-dependent*. The contract here is determinism **by merge, not
by schedule** (``docs/PARALLELISM.md``):

* chunk plans come from :mod:`repro.parallel.chunking` and are pure
  functions of the work list;
* :meth:`Executor.map_chunks` returns results in **submission order**
  regardless of completion order;
* chunk work functions are module-level and argument-determined (they
  run identically in a worker, in-process, or in a crash retry);
* every consumer merges chunk results with an order-independent
  function from :mod:`repro.parallel.merge`.

Under those four rules a run with ``--workers 4`` is byte-identical to
``--workers 1``, which is what the parity harness in
``tests/test_parallel.py`` pins.

Resilience: a :class:`~repro.resilience.faults.WorkerCrashPlan` can kill
one worker mid-chunk (the ``repro chaos`` ``worker-crash`` scenario). A
broken pool loses the results of every unfinished chunk; the executor
recomputes exactly those chunks in-process — the work functions are
deterministic, so the retry reproduces what the worker would have
returned, and the merged output is unchanged. A *hung* worker (a
:class:`~repro.resilience.faults.WorkerHangPlan` in tests; a deadlock or
I/O stall in production) is handled the same way when a per-chunk
``timeout`` is set: the overdue chunk is declared lost, recomputed
in-process exactly once, and counted as ``parallel.chunks_timed_out`` —
bounded retries, deterministic outcome.
"""

from __future__ import annotations

import abc
import os
import pickle
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.contracts import deterministic, impure
from repro.obs.clock import Clock
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.obs.worker import (
    ChunkProfile,
    DispatchProfile,
    ParallelProfile,
    merge_worker_events,
)
from repro.parallel.chunking import fixed_chunks, partition_evenly
from repro.parallel.shared import shared_generation, shared_state_supported
from repro.parallel.work import run_traced_chunk
from repro.resilience.faults import (
    WorkerCrashPlan,
    WorkerHangPlan,
    hang_worker,
    kill_current_worker,
)

__all__ = [
    "ExecutorStats",
    "Executor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "make_executor",
]

T = TypeVar("T")

#: A chunk work function: module-level, picklable, argument-determined.
ChunkFunc = Callable[[Any], Any]


@dataclass
class ExecutorStats:
    """Dispatch accounting, echoed into the run report ``parallel`` block.

    Counts are deterministic for a given workload and worker count —
    except ``worker_retries``/``kills_armed``, which are only non-zero
    under injected faults.
    """

    map_calls: int = 0
    chunks: int = 0
    worker_chunks: int = 0
    inline_chunks: int = 0
    worker_retries: int = 0
    kills_armed: int = 0
    hangs_armed: int = 0
    chunks_timed_out: int = 0
    shared_dispatches: int = 0
    bytes_not_pickled: int = 0
    shared_segment_bytes: int = 0
    pools_created: int = 0

    def to_echo(self) -> Dict[str, int]:
        return {
            "map_calls": self.map_calls,
            "chunks": self.chunks,
            "worker_chunks": self.worker_chunks,
            "inline_chunks": self.inline_chunks,
            "worker_retries": self.worker_retries,
            "kills_armed": self.kills_armed,
            "hangs_armed": self.hangs_armed,
            "chunks_timed_out": self.chunks_timed_out,
            "shared_dispatches": self.shared_dispatches,
            "bytes_not_pickled": self.bytes_not_pickled,
            "shared_segment_bytes": self.shared_segment_bytes,
            "pools_created": self.pools_created,
        }


class Executor(abc.ABC):
    """Runs chunked work; subclasses choose where chunks execute.

    ``workers`` is the parallelism degree; ``chunk_size`` optionally
    overrides the default one-chunk-per-worker plan with fixed-size
    chunks (useful to test merge behavior across many small chunks).
    """

    name: str = "executor"

    #: Whether callers should use pickle-free shared-state payloads
    #: (``repro.parallel.shared``) with this executor. Subclasses that
    #: run chunks in-process (or fork workers) may enable it.
    shared_state: bool = False

    #: Below this many work items a shared-capable caller should score
    #: inline with the batch kernels instead of paying dispatch; 0
    #: means "always dispatch". Advisory — results are identical either
    #: way, this only moves where the chunk runs.
    min_dispatch_items: int = 0

    def __init__(self, workers: int, chunk_size: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.stats = ExecutorStats()

    @property
    def parallel(self) -> bool:
        """True when this executor actually dispatches to workers."""
        return self.workers > 1

    def close(self) -> None:
        """Release any retained resources (warm pools); idempotent."""

    @deterministic
    def plan_chunks(self, items: Sequence[T]) -> List[List[T]]:
        """The deterministic chunk plan for ``items`` (a partition)."""
        if self.chunk_size is not None:
            return fixed_chunks(items, self.chunk_size)
        return partition_evenly(items, self.workers)

    def to_echo(self) -> Dict[str, Any]:
        """JSON-safe self-description for run reports and debugging."""
        echo: Dict[str, Any] = {
            "executor": self.name,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
        }
        echo.update(self.stats.to_echo())
        return echo

    def profile_echo(self) -> Dict[str, Any]:
        """The additive ``parallel_profile`` report block.

        ``{}`` unless this executor recorded per-chunk overhead (only
        traced :class:`MultiprocessExecutor` dispatches do), so serial
        and untraced reports keep their previous shape. Like
        :meth:`to_echo` this is measurement, not configuration — it
        never reaches config echoes or checkpoint fingerprints
        (reprolint RL205).
        """
        return {}

    @abc.abstractmethod
    def map_chunks(
        self,
        func: ChunkFunc,
        payloads: Sequence[Any],
        tracer: Optional[Tracer] = None,
        label: str = "parallel.map",
        shared_bytes: Optional[int] = None,
    ) -> List[Any]:
        """Apply ``func`` to every payload; results in submission order.

        ``shared_bytes`` is set by shared-state dispatches: the pickled
        size of the published objects each payload *omits*. Executors
        use it only for ``bytes_not_pickled`` accounting — it never
        influences execution.
        """


class SerialExecutor(Executor):
    """In-process execution: the reference the parallel paths must match."""

    name = "serial"

    def __init__(self, chunk_size: Optional[int] = None) -> None:
        super().__init__(1, chunk_size)

    @deterministic
    def map_chunks(
        self,
        func: ChunkFunc,
        payloads: Sequence[Any],
        tracer: Optional[Tracer] = None,
        label: str = "parallel.map",
        shared_bytes: Optional[int] = None,
    ) -> List[Any]:
        tracer = tracer if tracer is not None else NULL_TRACER
        stats = self.stats
        stats.map_calls += 1
        stats.chunks += len(payloads)
        stats.inline_chunks += len(payloads)
        with tracer.span(label, executor=self.name, chunks=len(payloads)):
            return [func(payload) for payload in payloads]


class MultiprocessExecutor(Executor):
    """ProcessPoolExecutor-backed dispatch with deterministic crash retry.

    Chunk *results* are collected in submission order, so completion
    order — the one thing the OS scheduler controls — never reaches a
    caller. With a disabled tracer (the default) workers run the bare
    chunk function and one ``label`` span worth of stats is all the
    parent records. With tracing enabled the dispatch goes through
    :meth:`_map_chunks_traced`: each chunk runs under a
    :class:`~repro.obs.worker.WorkerTracer` whose buffered events ship
    back with the result and merge into the parent trace keyed by chunk
    index, while the executor's :class:`~repro.obs.worker.
    ParallelProfile` ledger records per-chunk pickle bytes/time, queue
    wait vs compute, and (with ``profile_memory``) tracemalloc peaks.
    Both paths run the same module-level chunk function on the same
    payloads, so traced output is byte-identical to untraced
    (``tests/test_worker_trace.py``).

    ``worker_fault`` is the chaos hook: when the targeted chunk comes
    up, :func:`~repro.resilience.faults.kill_current_worker` is
    submitted in its place, the pool breaks, and the lost chunks are
    recomputed in-process.

    ``timeout`` bounds how long the parent waits for each chunk (the
    collection loop walks futures in submission order, so a chunk's
    budget starts when its predecessor is collected). An overdue chunk
    is treated exactly like one lost to a crash: declared lost,
    recomputed in-process once, and counted in
    ``stats.chunks_timed_out``. The stuck worker is abandoned —
    shutdown does not wait for it — so a single hang costs one timeout
    plus one in-process recompute, never a stuck run. ``worker_hang``
    is the matching chaos hook: the targeted chunk is replaced with
    :func:`~repro.resilience.faults.hang_worker`.
    """

    name = "multiprocess"

    #: Workers are forked, so they inherit the shared-state registry;
    #: callers should prefer pickle-free payloads when supported.
    shared_state = True

    def __init__(
        self,
        workers: int,
        chunk_size: Optional[int] = None,
        worker_fault: Optional[WorkerCrashPlan] = None,
        profile_memory: bool = False,
        timeout: Optional[float] = None,
        worker_hang: Optional[WorkerHangPlan] = None,
        shared_state: Optional[bool] = None,
        min_dispatch_items: int = 512,
    ) -> None:
        super().__init__(workers, chunk_size)
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if min_dispatch_items < 0:
            raise ValueError(
                f"min_dispatch_items must be >= 0, got {min_dispatch_items}"
            )
        self.worker_fault = worker_fault
        self.worker_hang = worker_hang
        self.timeout = timeout
        self.profile_memory = profile_memory
        self.profile = ParallelProfile()
        if shared_state is not None:
            self.shared_state = shared_state
        self.shared_state = self.shared_state and shared_state_supported()
        self.min_dispatch_items = min_dispatch_items
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = -1
        self._pool_finalizer: Optional[weakref.finalize] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The warm worker pool, rebuilt only when it must be.

        A pool is reusable while the shared-state registry generation
        it forked under is current — workers inherit the registry at
        fork, so a publish/close after the fork makes their snapshot
        stale. Faulted or timed-out pools are discarded by the dispatch
        paths. The pool is always ``self.workers`` wide (workers spawn
        lazily, so an undersized dispatch never pays for idle slots).
        """
        generation = shared_generation()
        pool = self._pool
        if pool is not None and self._pool_generation == generation:
            return pool
        self._discard_pool(wait=True)
        pool = ProcessPoolExecutor(max_workers=self.workers)
        self._pool = pool
        self._pool_generation = generation
        # GC safety net: an executor dropped without close() must not
        # leave idle workers behind for the rest of the process.
        self._pool_finalizer = weakref.finalize(
            self, _abandon_pool, pool
        )
        self.stats.pools_created += 1
        return pool

    def _discard_pool(self, wait: bool) -> None:
        """Shut the warm pool down (broken, stale, or at close())."""
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        self._pool_generation = -1
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        pool.shutdown(wait=wait, cancel_futures=not wait)

    def close(self) -> None:
        self._discard_pool(wait=True)

    @impure(
        reason="spawns OS worker processes whose completion order is "
               "scheduler-dependent; callers restore determinism by "
               "collecting in submission order and merging order-"
               "independently (docs/PARALLELISM.md)"
    )
    def map_chunks(
        self,
        func: ChunkFunc,
        payloads: Sequence[Any],
        tracer: Optional[Tracer] = None,
        label: str = "parallel.map",
        shared_bytes: Optional[int] = None,
    ) -> List[Any]:
        tracer = tracer if tracer is not None else NULL_TRACER
        stats = self.stats
        call_index = stats.map_calls
        stats.map_calls += 1
        work = list(payloads)
        stats.chunks += len(work)
        if not work:
            return []
        if shared_bytes is not None:
            stats.shared_dispatches += 1
            stats.bytes_not_pickled += shared_bytes * len(work)
        if tracer.enabled:
            return self._map_chunks_traced(
                func, work, tracer, label, call_index
            )
        if (
            len(work) == 1
            and self.worker_fault is None
            and self.worker_hang is None
        ):
            # One chunk gains nothing from a pool; skip the process cost.
            stats.inline_chunks += 1
            with tracer.span(label, executor=self.name, chunks=1):
                return [func(work[0])]

        results: Dict[int, Any] = {}
        failed: List[int] = []
        timed_out: List[int] = []
        with tracer.span(label, executor=self.name, chunks=len(work)):
            pool = self._ensure_pool()
            try:
                futures: List["Future[Any]"] = []
                try:
                    for index, payload in enumerate(work):
                        fault = self.worker_fault
                        hang = self.worker_hang
                        if fault is not None and fault.should_kill(
                            call_index, index
                        ):
                            stats.kills_armed += 1
                            futures.append(pool.submit(kill_current_worker))
                        elif hang is not None and hang.should_hang(
                            call_index, index
                        ):
                            stats.hangs_armed += 1
                            futures.append(
                                pool.submit(hang_worker, hang.seconds)
                            )
                        else:
                            futures.append(pool.submit(func, payload))
                except BrokenProcessPool:
                    # A warm worker died while chunks were still being
                    # submitted; everything unsubmitted is lost and
                    # recomputed below, like any other broken-pool loss.
                    pass
                for index in range(len(work)):
                    if index >= len(futures):
                        failed.append(index)
                        continue
                    try:
                        if self.timeout is not None:
                            results[index] = futures[index].result(
                                timeout=self.timeout
                            )
                        else:
                            results[index] = futures[index].result()
                    except BrokenProcessPool:
                        # The worker died before returning this chunk;
                        # remember it and recompute below. Anything
                        # else (a real exception raised by ``func``)
                        # propagates unchanged.
                        failed.append(index)
                    except FuturesTimeout:
                        # The worker is wedged, not dead: same lost-
                        # chunk treatment, but the pool must not be
                        # waited on at shutdown.
                        timed_out.append(index)
                        futures[index].cancel()
            finally:
                # A clean dispatch keeps the pool warm for the next
                # call. A broken pool is useless and a hung worker
                # must never park shutdown — discard without waiting
                # (not-yet-started futures are cancelled).
                if failed or timed_out:
                    self._discard_pool(wait=False)
            lost = sorted(failed + timed_out)
            stats.worker_chunks += len(work) - len(lost)
            for index in lost:
                # Deterministic retry: the same func + payload yields
                # the same result the worker would have produced.
                results[index] = func(work[index])
                stats.worker_retries += 1
            stats.chunks_timed_out += len(timed_out)
            tracer.count("parallel.chunks", len(work))
            if lost:
                tracer.count("parallel.worker_retries", len(lost))
            if timed_out:
                tracer.count("parallel.chunks_timed_out", len(timed_out))
        return [results[index] for index in range(len(work))]

    @impure(
        reason="measures scheduler-dependent queue wait and worker pids; "
               "chunk results and merged trace content stay schedule-"
               "independent (submission-order collection, chunk-index-"
               "keyed trace merge)"
    )
    def _map_chunks_traced(
        self,
        func: ChunkFunc,
        work: List[Any],
        tracer: Tracer,
        label: str,
        call_index: int,
    ) -> List[Any]:
        """Traced dispatch: explicit pickling + worker-trace round trip.

        The parent pickles payloads itself — instead of letting the
        pool do it invisibly — so payload bytes and serialize time are
        measurable; workers run :func:`run_traced_chunk`, which ships
        back ``(result pickle, trace buffer)``; the parent unpickles
        results (measured), derives per-chunk queue wait from done-
        callback completion stamps, merges worker events keyed by chunk
        index, and records a :class:`DispatchProfile`. The parent-side
        buckets (serialize/submit/collect/teardown/retry/deserialize/
        merge) partition the dispatch span's wall time, which is what
        keeps ``accounted_fraction`` >= 0.9.
        """
        clock = tracer.clock
        stats = self.stats
        count = len(work)
        inline = (
            count == 1
            and self.worker_fault is None
            and self.worker_hang is None
        )
        wrapped: Dict[int, Tuple[bytes, Dict[str, Any]]] = {}
        submitted_at: List[float] = [0.0] * count
        completed_at: Dict[int, float] = {}
        failed: List[int] = []
        timed_out: List[int] = []
        lost: List[int] = []
        submit_seconds = collect_seconds = 0.0
        teardown_seconds = retry_seconds = 0.0
        with tracer.span(label, executor=self.name, chunks=count):
            wall_start = clock.now()
            chunk_serialize: List[float] = []
            blobs: List[bytes] = []
            for payload in work:
                t0 = clock.now()
                blobs.append(
                    pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
                )
                chunk_serialize.append(clock.now() - t0)
            if inline:
                stats.inline_chunks += 1
                submitted_at[0] = clock.now()
                wrapped[0] = run_traced_chunk(
                    (func, 0, blobs[0], self.profile_memory)
                )
                completed_at[0] = clock.now()
                collect_seconds = completed_at[0] - submitted_at[0]
            else:
                pool = self._ensure_pool()
                try:
                    t0 = clock.now()
                    futures: List["Future[Any]"] = []
                    try:
                        for index, blob in enumerate(blobs):
                            fault = self.worker_fault
                            hang = self.worker_hang
                            submitted_at[index] = clock.now()
                            if fault is not None and fault.should_kill(
                                call_index, index
                            ):
                                stats.kills_armed += 1
                                future = pool.submit(kill_current_worker)
                            elif hang is not None and hang.should_hang(
                                call_index, index
                            ):
                                stats.hangs_armed += 1
                                future = pool.submit(hang_worker, hang.seconds)
                            else:
                                future = pool.submit(
                                    run_traced_chunk,
                                    (func, index, blob, self.profile_memory),
                                )
                            future.add_done_callback(
                                _completion_marker(completed_at, index, clock)
                            )
                            futures.append(future)
                    except BrokenProcessPool:
                        # A warm worker died mid-submission; everything
                        # unsubmitted is lost and recomputed below.
                        pass
                    submit_seconds = clock.now() - t0
                    for index in range(count):
                        if index >= len(futures):
                            failed.append(index)
                            continue
                        t0 = clock.now()
                        try:
                            if self.timeout is not None:
                                wrapped[index] = futures[index].result(
                                    timeout=self.timeout
                                )
                            else:
                                wrapped[index] = futures[index].result()
                        except BrokenProcessPool:
                            # Same contract as the untraced path: only
                            # a dead worker is retried; real exceptions
                            # from ``func`` propagate unchanged.
                            failed.append(index)
                        except FuturesTimeout:
                            # Wedged worker: lost-chunk treatment, and
                            # shutdown must not wait for it below.
                            timed_out.append(index)
                            futures[index].cancel()
                        collect_seconds += clock.now() - t0
                finally:
                    t0 = clock.now()
                    # Same retention policy as the untraced path: keep
                    # the pool warm unless this dispatch broke it.
                    if failed or timed_out:
                        self._discard_pool(wait=False)
                    teardown_seconds = clock.now() - t0
                lost = sorted(failed + timed_out)
                stats.worker_chunks += count - len(lost)
                t0 = clock.now()
                for index in lost:
                    # Deterministic retry, still traced: the in-process
                    # rerun produces the same result bytes and a trace
                    # attributed to the parent pid.
                    wrapped[index] = run_traced_chunk(
                        (func, index, blobs[index], self.profile_memory)
                    )
                    completed_at[index] = clock.now()
                    stats.worker_retries += 1
                stats.chunks_timed_out += len(timed_out)
                retry_seconds = clock.now() - t0

            deserialize_seconds = 0.0
            results: List[Any] = []
            profiles: List[ChunkProfile] = []
            traces: List[Dict[str, Any]] = []
            for index in range(count):
                result_blob, trace = wrapped[index]
                t0 = clock.now()
                results.append(pickle.loads(result_blob))
                result_deserialize = clock.now() - t0
                deserialize_seconds += result_deserialize
                traces.append(trace)
                done = completed_at.get(index, submitted_at[index])
                round_trip = max(0.0, done - submitted_at[index])
                worker_seconds = float(trace.get("worker_seconds", 0.0))
                peak = trace.get("tracemalloc_peak_bytes")
                profiles.append(
                    ChunkProfile(
                        chunk=index,
                        worker=int(trace.get("pid", 0)),
                        inline=inline,
                        retried=index in lost,
                        payload_bytes_in=len(blobs[index]),
                        payload_bytes_out=len(result_blob),
                        serialize_seconds=chunk_serialize[index],
                        deserialize_seconds=float(
                            trace.get("deserialize_seconds", 0.0)
                        ),
                        compute_seconds=float(
                            trace.get("compute_seconds", 0.0)
                        ),
                        result_serialize_seconds=float(
                            trace.get("serialize_seconds", 0.0)
                        ),
                        result_deserialize_seconds=result_deserialize,
                        queue_seconds=max(0.0, round_trip - worker_seconds),
                        round_trip_seconds=round_trip,
                        tracemalloc_peak_bytes=(
                            int(peak) if peak is not None else None
                        ),
                    )
                )
            t0 = clock.now()
            merge_worker_events(tracer, traces)
            merge_seconds = clock.now() - t0
            tracer.count("parallel.chunks", count)
            tracer.count(
                "parallel.payload_bytes_in", sum(len(b) for b in blobs)
            )
            tracer.count(
                "parallel.payload_bytes_out",
                sum(p.payload_bytes_out for p in profiles),
            )
            if lost:
                tracer.count("parallel.worker_retries", len(lost))
            if timed_out:
                tracer.count("parallel.chunks_timed_out", len(timed_out))
            peaks = [
                p.tracemalloc_peak_bytes
                for p in profiles
                if p.tracemalloc_peak_bytes is not None
            ]
            if peaks:
                tracer.gauge(
                    "parallel.tracemalloc_peak_bytes", float(max(peaks))
                )
            wall_seconds = clock.now() - wall_start
        self.profile.add(
            DispatchProfile(
                label=label,
                map_call=call_index,
                wall_seconds=wall_seconds,
                serialize_seconds=sum(chunk_serialize),
                submit_seconds=submit_seconds,
                collect_seconds=collect_seconds,
                teardown_seconds=teardown_seconds,
                retry_seconds=retry_seconds,
                deserialize_seconds=deserialize_seconds,
                merge_seconds=merge_seconds,
                chunks=profiles,
            )
        )
        return results

    def profile_echo(self) -> Dict[str, Any]:
        return self.profile.to_block(
            executor=self.name,
            workers=self.workers,
            parent_pid=os.getpid(),
            profile_memory=self.profile_memory,
        )


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """weakref.finalize target: reap a warm pool its executor dropped.

    Must not reference the executor (the finalizer fires because it is
    gone). No waiting — idle workers exit as soon as they see the
    shutdown sentinel.
    """
    pool.shutdown(wait=False, cancel_futures=True)


def _completion_marker(
    completed_at: Dict[int, float], index: int, clock: Clock
) -> Callable[["Future[Any]"], None]:
    """A done-callback stamping when a chunk's future settled.

    Fires on the pool's callback thread the instant the future
    completes — before the parent thread unblocks from ``result()`` on
    an *earlier* chunk — so per-chunk queue wait is not inflated by the
    parent's submission-order collection. Dict assignment is atomic
    under the GIL; distinct chunks write distinct keys.
    """

    def mark(_future: "Future[Any]") -> None:
        completed_at[index] = clock.now()

    return mark


def make_executor(
    workers: int,
    chunk_size: Optional[int] = None,
    profile_memory: bool = False,
    timeout: Optional[float] = None,
    shared_state: Optional[bool] = None,
    min_dispatch_items: int = 512,
) -> Executor:
    """The executor for a ``--workers N`` request (serial when N <= 1)."""
    if workers <= 1:
        return SerialExecutor(chunk_size=chunk_size)
    return MultiprocessExecutor(
        workers,
        chunk_size=chunk_size,
        profile_memory=profile_memory,
        timeout=timeout,
        shared_state=shared_state,
        min_dispatch_items=min_dispatch_items,
    )
