"""Executors: serial and process-pool dispatch of chunked work.

The pipeline's hot paths (pairwise scoring, FPMax mining, classifier
ranking) are embarrassingly parallel; what they must never be is
*schedule-dependent*. The contract here is determinism **by merge, not
by schedule** (``docs/PARALLELISM.md``):

* chunk plans come from :mod:`repro.parallel.chunking` and are pure
  functions of the work list;
* :meth:`Executor.map_chunks` returns results in **submission order**
  regardless of completion order;
* chunk work functions are module-level and argument-determined (they
  run identically in a worker, in-process, or in a crash retry);
* every consumer merges chunk results with an order-independent
  function from :mod:`repro.parallel.merge`.

Under those four rules a run with ``--workers 4`` is byte-identical to
``--workers 1``, which is what the parity harness in
``tests/test_parallel.py`` pins.

Resilience: a :class:`~repro.resilience.faults.WorkerCrashPlan` can kill
one worker mid-chunk (the ``repro chaos`` ``worker-crash`` scenario). A
broken pool loses the results of every unfinished chunk; the executor
recomputes exactly those chunks in-process — the work functions are
deterministic, so the retry reproduces what the worker would have
returned, and the merged output is unchanged.
"""

from __future__ import annotations

import abc
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro.contracts import deterministic, impure
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.chunking import fixed_chunks, partition_evenly
from repro.resilience.faults import WorkerCrashPlan, kill_current_worker

__all__ = [
    "ExecutorStats",
    "Executor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "make_executor",
]

T = TypeVar("T")

#: A chunk work function: module-level, picklable, argument-determined.
ChunkFunc = Callable[[Any], Any]


@dataclass
class ExecutorStats:
    """Dispatch accounting, echoed into the run report ``parallel`` block.

    Counts are deterministic for a given workload and worker count —
    except ``worker_retries``/``kills_armed``, which are only non-zero
    under injected faults.
    """

    map_calls: int = 0
    chunks: int = 0
    worker_chunks: int = 0
    inline_chunks: int = 0
    worker_retries: int = 0
    kills_armed: int = 0

    def to_echo(self) -> Dict[str, int]:
        return {
            "map_calls": self.map_calls,
            "chunks": self.chunks,
            "worker_chunks": self.worker_chunks,
            "inline_chunks": self.inline_chunks,
            "worker_retries": self.worker_retries,
            "kills_armed": self.kills_armed,
        }


class Executor(abc.ABC):
    """Runs chunked work; subclasses choose where chunks execute.

    ``workers`` is the parallelism degree; ``chunk_size`` optionally
    overrides the default one-chunk-per-worker plan with fixed-size
    chunks (useful to test merge behavior across many small chunks).
    """

    name: str = "executor"

    def __init__(self, workers: int, chunk_size: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.stats = ExecutorStats()

    @property
    def parallel(self) -> bool:
        """True when this executor actually dispatches to workers."""
        return self.workers > 1

    @deterministic
    def plan_chunks(self, items: Sequence[T]) -> List[List[T]]:
        """The deterministic chunk plan for ``items`` (a partition)."""
        if self.chunk_size is not None:
            return fixed_chunks(items, self.chunk_size)
        return partition_evenly(items, self.workers)

    def to_echo(self) -> Dict[str, Any]:
        """JSON-safe self-description for run reports and debugging."""
        echo: Dict[str, Any] = {
            "executor": self.name,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
        }
        echo.update(self.stats.to_echo())
        return echo

    @abc.abstractmethod
    def map_chunks(
        self,
        func: ChunkFunc,
        payloads: Sequence[Any],
        tracer: Optional[Tracer] = None,
        label: str = "parallel.map",
    ) -> List[Any]:
        """Apply ``func`` to every payload; results in submission order."""


class SerialExecutor(Executor):
    """In-process execution: the reference the parallel paths must match."""

    name = "serial"

    def __init__(self, chunk_size: Optional[int] = None) -> None:
        super().__init__(1, chunk_size)

    @deterministic
    def map_chunks(
        self,
        func: ChunkFunc,
        payloads: Sequence[Any],
        tracer: Optional[Tracer] = None,
        label: str = "parallel.map",
    ) -> List[Any]:
        tracer = tracer if tracer is not None else NULL_TRACER
        stats = self.stats
        stats.map_calls += 1
        stats.chunks += len(payloads)
        stats.inline_chunks += len(payloads)
        with tracer.span(label, executor=self.name, chunks=len(payloads)):
            return [func(payload) for payload in payloads]


class MultiprocessExecutor(Executor):
    """ProcessPoolExecutor-backed dispatch with deterministic crash retry.

    Workers cannot reach the parent tracer, so per-chunk timing stays
    parent-side: one ``label`` span wraps the whole dispatch and the
    stats record chunk counts. Chunk *results* are collected in
    submission order, so completion order — the one thing the OS
    scheduler controls — never reaches a caller.

    ``worker_fault`` is the chaos hook: when the targeted chunk comes
    up, :func:`~repro.resilience.faults.kill_current_worker` is
    submitted in its place, the pool breaks, and the lost chunks are
    recomputed in-process.
    """

    name = "multiprocess"

    def __init__(
        self,
        workers: int,
        chunk_size: Optional[int] = None,
        worker_fault: Optional[WorkerCrashPlan] = None,
    ) -> None:
        super().__init__(workers, chunk_size)
        self.worker_fault = worker_fault

    @impure(
        reason="spawns OS worker processes whose completion order is "
               "scheduler-dependent; callers restore determinism by "
               "collecting in submission order and merging order-"
               "independently (docs/PARALLELISM.md)"
    )
    def map_chunks(
        self,
        func: ChunkFunc,
        payloads: Sequence[Any],
        tracer: Optional[Tracer] = None,
        label: str = "parallel.map",
    ) -> List[Any]:
        tracer = tracer if tracer is not None else NULL_TRACER
        stats = self.stats
        call_index = stats.map_calls
        stats.map_calls += 1
        work = list(payloads)
        stats.chunks += len(work)
        if not work:
            return []
        if len(work) == 1 and self.worker_fault is None:
            # One chunk gains nothing from a pool; skip the process cost.
            stats.inline_chunks += 1
            with tracer.span(label, executor=self.name, chunks=1):
                return [func(work[0])]

        results: Dict[int, Any] = {}
        failed: List[int] = []
        with tracer.span(label, executor=self.name, chunks=len(work)):
            max_workers = min(self.workers, len(work))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures: List["Future[Any]"] = []
                for index, payload in enumerate(work):
                    fault = self.worker_fault
                    if fault is not None and fault.should_kill(
                        call_index, index
                    ):
                        stats.kills_armed += 1
                        futures.append(pool.submit(kill_current_worker))
                    else:
                        futures.append(pool.submit(func, payload))
                for index in range(len(work)):
                    try:
                        results[index] = futures[index].result()
                    except BrokenProcessPool:
                        # The worker died before returning this chunk;
                        # remember it and recompute below. Anything
                        # else (a real exception raised by ``func``)
                        # propagates unchanged.
                        failed.append(index)
            stats.worker_chunks += len(work) - len(failed)
            for index in failed:
                # Deterministic retry: the same func + payload yields
                # the same result the worker would have produced.
                results[index] = func(work[index])
                stats.worker_retries += 1
            tracer.count("parallel.chunks", len(work))
            if failed:
                tracer.count("parallel.worker_retries", len(failed))
        return [results[index] for index in range(len(work))]


def make_executor(
    workers: int, chunk_size: Optional[int] = None
) -> Executor:
    """The executor for a ``--workers N`` request (serial when N <= 1)."""
    if workers <= 1:
        return SerialExecutor(chunk_size=chunk_size)
    return MultiprocessExecutor(workers, chunk_size=chunk_size)
