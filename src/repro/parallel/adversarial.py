"""Adversarial scheduling: seeded permutation of chunk execution order.

``MultiprocessExecutor`` promises determinism *by merge, not by
schedule*: whatever order the OS completes chunks in, submission-order
collection plus order-independent merges make the output byte-identical
across worker counts. The OS scheduler, however, is a lazy adversary —
on an idle CI box chunks mostly finish in submission order, so a merge
that silently depends on completion order can pass the parity tests for
months.

:class:`AdversarialScheduleExecutor` is the malicious scheduler the
real one refuses to be. It executes every chunk **in-process** but in a
seeded pseudo-random permutation of submission order — deterministic
per ``(schedule_seed, dispatch index)``, so a failure replays exactly —
while still honoring the ``map_chunks`` contract of returning results
in submission order. Any state the work functions share in-process is
therefore exercised under a hostile interleaving, and the schedule
sanitizer (``repro sanitize --schedule``) asserts ranked output stays
byte-identical across seeds × worker counts. The permutation is logged
per dispatch (:attr:`schedule_log`) so tests can prove the adversary
actually reordered something.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from repro.contracts import deterministic
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.executor import ChunkFunc, Executor

__all__ = ["AdversarialScheduleExecutor"]

#: Mixes the per-dispatch index into the schedule seed; any odd
#: constant works, a large prime keeps neighboring seeds uncorrelated.
_DISPATCH_STRIDE = 1_000_003


class AdversarialScheduleExecutor(Executor):
    """In-process executor running chunks in a seeded hostile order.

    ``workers`` only shapes the chunk *plan* (``plan_chunks``), exactly
    as it does for the real pool — so sweeping worker counts under a
    fixed corpus varies chunk boundaries while the seed varies
    execution order, covering both axes the OS controls in production.
    """

    name = "adversarial-schedule"

    #: Chunks run in-process, where the shared-state registry is simply
    #: the parent's — so the hostile schedule also exercises the
    #: pickle-free dispatch path the real pool uses.
    shared_state = True

    def __init__(
        self,
        workers: int,
        schedule_seed: int,
        chunk_size: Optional[int] = None,
    ) -> None:
        super().__init__(workers, chunk_size)
        self.schedule_seed = schedule_seed
        #: One entry per dispatch: the execution-order permutation used.
        self.schedule_log: List[List[int]] = []

    def to_echo(self) -> Dict[str, Any]:
        """Report echo with the schedule seed, so a sanitize run's
        report says which hostile permutation it survived. Echoes are
        measurement output only — the seed never reaches configs or
        checkpoint fingerprints (reprolint RL205), and
        ``profile_echo()`` stays ``{}``: an in-process executor has no
        pickle/queue overhead to attribute.
        """
        echo = super().to_echo()
        echo["schedule_seed"] = self.schedule_seed
        return echo

    @deterministic
    def map_chunks(
        self,
        func: ChunkFunc,
        payloads: Sequence[Any],
        tracer: Optional[Tracer] = None,
        label: str = "parallel.map",
        shared_bytes: Optional[int] = None,
    ) -> List[Any]:
        tracer = tracer if tracer is not None else NULL_TRACER
        stats = self.stats
        call_index = stats.map_calls
        stats.map_calls += 1
        work = list(payloads)
        stats.chunks += len(work)
        stats.inline_chunks += len(work)
        if shared_bytes is not None:
            stats.shared_dispatches += 1
            stats.bytes_not_pickled += shared_bytes * len(work)
        if not work:
            self.schedule_log.append([])
            return []
        order = list(range(len(work)))
        # Seeded per dispatch: the same (seed, dispatch) always yields
        # the same permutation, so a divergence replays exactly.
        rng = random.Random(
            self.schedule_seed * _DISPATCH_STRIDE + call_index
        )
        rng.shuffle(order)
        self.schedule_log.append(list(order))
        results = {}
        with tracer.span(label, executor=self.name, chunks=len(work)):
            for index in order:
                results[index] = func(work[index])
        return [results[index] for index in range(len(work))]
