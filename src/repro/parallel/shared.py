"""Pickle-free shared worker state for the multiprocess executor.

PR 7's overhead ledger measured where the parallel layer's negative
scaling comes from: every chunk re-pickles the corpus (item bags or the
dataset plus a trained model) into its payload, and queue wait dwarfs
compute. This module removes the corpus from the payload entirely:

* The parent *publishes* the heavy, read-only objects once under a
  deterministic token (:func:`publish_shared_state`). Publication puts
  them in a module-global registry that forked workers inherit, and
  moves an :class:`~repro.similarity.interning.InternedCorpus`'s big
  numpy arrays into ``multiprocessing.shared_memory`` segments so the
  per-worker cost is a page-table entry, not a copy.
* Chunk payloads shrink to ``(token, pairs)``; the worker resolves the
  token via :func:`shared_state` against its inherited registry.
* A *generation* counter (:func:`shared_generation`) increments on
  every publish/close, so the executor knows a warm worker pool forked
  before the current publication cannot see it and must be rebuilt.

Ownership (reprolint RL204): the :class:`SharedStateHandle` returned by
:func:`publish_shared_state` owns the segments — its ``close()`` both
``close()``\\ s and ``unlink()``\\ s every one, after rebinding the
corpus to private copies of the arrays so no live view dangles into a
freed buffer. Handles are context managers; the mining/classify callers
publish in a ``with`` block (or ``try/finally``) around dispatch.

Fork-only: the registry crosses the process boundary by inheritance,
so shared dispatch is supported exactly when the ``multiprocessing``
start method is ``fork`` (:func:`shared_state_supported`). On spawn
platforms callers fall back to the legacy pickled payloads — same
bytes out, just slower.

Workers treat the registry as frozen: work functions that read it are
``@shared_readonly`` and never write. Only the parent mutates it, in
publish/close pairs.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
from multiprocessing import shared_memory
from typing import Any, Dict, Iterator, List, Mapping, Tuple

import numpy as np

from repro.contracts import deterministic
from repro.similarity.interning import InternedCorpus

__all__ = [
    "SharedStateHandle",
    "publish_shared_state",
    "shared_state",
    "shared_generation",
    "shared_state_supported",
]

#: token -> published objects; forked workers inherit a snapshot.
_REGISTRY: Dict[str, Mapping[str, Any]] = {}

#: Bumped on every publish/close so executors can detect stale pools.
_GENERATION: int = 0

#: Deterministic token source (reprolint forbids uuid/random here).
_TOKENS: Iterator[int] = itertools.count(1)


@deterministic
def shared_state_supported() -> bool:
    """True when forked workers inherit the parent's registry."""
    return multiprocessing.get_start_method(allow_none=False) == "fork"


def shared_generation() -> int:
    """The current registry generation (see module docstring)."""
    return _GENERATION


def shared_state(token: str) -> Mapping[str, Any]:
    """Resolve a published token (in the parent or a forked worker)."""
    try:
        return _REGISTRY[token]
    except KeyError:
        raise RuntimeError(
            f"shared state {token!r} is not published in this process; "
            "the worker pool predates the publication (stale generation) "
            "or the handle was closed before dispatch finished"
        ) from None


class SharedStateHandle:
    """Owner of one publication: registry entry + shm segments.

    ``segment_bytes`` is the total shared-memory footprint (0 when the
    published objects carried no interned corpus); ``baseline_bytes``
    is what one pickled copy of the published objects costs — the
    executor multiplies it by dispatched chunks to report
    ``bytes_not_pickled``.
    """

    def __init__(
        self,
        token: str,
        objects: Mapping[str, Any],
        segments: List[shared_memory.SharedMemory],
        corpora: List[InternedCorpus],
        baseline_bytes: int,
    ) -> None:
        self.token = token
        self.objects = objects
        self.baseline_bytes = baseline_bytes
        self.segment_bytes = sum(segment.size for segment in segments)
        self._segments = segments
        self._corpora = corpora
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unpublish and release every owned shm segment (idempotent)."""
        global _GENERATION
        if self._closed:
            return
        self._closed = True
        _REGISTRY.pop(self.token, None)
        _GENERATION += 1
        for corpus in self._corpora:
            # Rebind the corpus to private copies so its arrays outlive
            # the segments (and so close() below has no live exports).
            corpus.copy_arrays_private()
        for segment in self._segments:
            segment.close()
            segment.unlink()

    def __enter__(self) -> "SharedStateHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _allocate_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create one shm segment; ownership transfers to the caller's
    :class:`SharedStateHandle`, whose ``close()`` pairs ``close()`` +
    ``unlink()`` for every segment it owns (reprolint RL204)."""
    return shared_memory.SharedMemory(create=True, size=max(1, nbytes))


def _move_to_shared_memory(
    corpus: InternedCorpus,
) -> List[shared_memory.SharedMemory]:
    """Rehome the corpus's big arrays into shm segments it then reads."""
    segments: List[shared_memory.SharedMemory] = []
    views: Dict[str, np.ndarray] = {}
    arrays = corpus.export_arrays()
    for name, array in arrays.items():
        segment = _allocate_segment(array.nbytes)
        segments.append(segment)
        view: np.ndarray = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf
        )
        view[...] = array
        views[name] = view
    corpus.adopt_arrays(views)
    return segments


def publish_shared_state(**objects: Any) -> SharedStateHandle:
    """Publish read-only objects for pickle-free worker access.

    Any :class:`InternedCorpus` among ``objects`` has its arrays moved
    into shared memory; everything is registered under a fresh
    deterministic token. Returns the owning handle — close it (or use
    it as a context manager) once dispatch is done.

    Side effects (reviewed, parent-side only): creates OS shared-memory
    segments (owned by the returned handle) and mutates the process-
    local publication registry. The published *values* are frozen, and
    the token sequence is a deterministic process-local counter, so
    contracted callers stay byte-reproducible.
    """
    global _GENERATION
    token = f"shared:{next(_TOKENS)}"
    baseline_bytes = len(
        pickle.dumps(dict(objects), protocol=pickle.HIGHEST_PROTOCOL)
    )
    segments: List[shared_memory.SharedMemory] = []
    corpora: List[InternedCorpus] = []
    for value in objects.values():
        if isinstance(value, InternedCorpus):
            corpora.append(value)
            segments.extend(_move_to_shared_memory(value))
    _REGISTRY[token] = dict(objects)
    _GENERATION += 1
    return SharedStateHandle(token, objects, segments, corpora, baseline_bytes)


#: Payload of a shared-dispatch chunk: (token, pairs).
SharedChunk = Tuple[str, List[Tuple[int, int]]]
