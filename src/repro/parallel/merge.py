"""Order-independent merges — the determinism half of the parallel layer.

A parallel stage is deterministic when (1) its chunk plan is a partition
of the work (:mod:`repro.parallel.chunking`) and (2) its merge is
invariant under any permutation of the chunk results. Max-merge has that
invariance because ``max`` is commutative, associative, and idempotent:
whatever order worker results arrive in, every key ends with the same
score. This is exactly the accumulation MFIBlocks already performs
serially — a pair's score is its best score over all admitting blocks —
so the parallel path computes the *same function*, not an approximation.

One caveat the callers must own: a merged ``dict`` carries an insertion
order that *does* depend on arrival order. Mapping equality is
order-insensitive, and every consumer in this codebase sorts before
producing ordered output (``BlockingResult.ranked_pairs``,
``PairClassifier.rank``), which is what makes ranked output byte-
identical across worker counts. See ``docs/PARALLELISM.md``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple, TypeVar

from repro.contracts import commutative_merge, deterministic

__all__ = ["merge_scored_chunks", "max_merge_into"]

K = TypeVar("K", bound=Hashable)


@commutative_merge
@deterministic
def max_merge_into(
    target: Dict[K, float], updates: Iterable[Tuple[K, float]]
) -> Dict[K, float]:
    """Max-merge ``(key, score)`` updates into ``target`` in place.

    Returns ``target`` for chaining. Any permutation of the updates (or
    of successive calls) yields an equal mapping.
    """
    for key, score in updates:
        current = target.get(key)
        if current is None or score > current:
            target[key] = score
    return target


@commutative_merge
@deterministic
def merge_scored_chunks(
    chunks: Iterable[List[Tuple[K, float]]]
) -> Dict[K, float]:
    """Fold scored chunks into one mapping, keeping the max per key."""
    merged: Dict[K, float] = {}
    for chunk in chunks:
        max_merge_into(merged, chunk)
    return merged
