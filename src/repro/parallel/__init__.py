"""Deterministic parallel execution for blocking and pairwise scoring.

The layer has four small parts (full design in ``docs/PARALLELISM.md``):

* **chunking** (:mod:`repro.parallel.chunking`) — pure partition
  planners; no element lost, duplicated, or reordered;
* **executors** (:mod:`repro.parallel.executor`) — :class:`SerialExecutor`
  (the reference) and the ``ProcessPoolExecutor``-backed
  :class:`MultiprocessExecutor` with submission-order result collection
  and deterministic in-process retry of chunks lost to a worker crash;
* **merges** (:mod:`repro.parallel.merge`) — order-independent folds of
  chunk results (max per canonical pair key);
* **work functions** (:mod:`repro.parallel.work`) — module-level,
  picklable, argument-determined chunk bodies.

Together they make ``repro resolve --workers 4`` byte-identical to
``--workers 1`` — determinism by merge, not by schedule — which
``tests/test_parallel.py`` pins with a parity matrix and
``tests/test_property_invariants.py`` pins property-by-property.
"""

from __future__ import annotations

from repro.parallel.adversarial import AdversarialScheduleExecutor
from repro.parallel.chunking import fixed_chunks, partition_evenly
from repro.parallel.executor import (
    Executor,
    ExecutorStats,
    MultiprocessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.parallel.merge import max_merge_into, merge_scored_chunks
from repro.parallel.shared import (
    SharedStateHandle,
    publish_shared_state,
    shared_generation,
    shared_state,
    shared_state_supported,
)
from repro.parallel.work import (
    classify_pair_chunk,
    classify_pair_chunk_shared,
    run_traced_chunk,
    score_pair_chunk,
    score_pair_chunk_shared,
)

__all__ = [
    "AdversarialScheduleExecutor",
    "fixed_chunks",
    "partition_evenly",
    "Executor",
    "ExecutorStats",
    "MultiprocessExecutor",
    "SerialExecutor",
    "make_executor",
    "max_merge_into",
    "merge_scored_chunks",
    "SharedStateHandle",
    "publish_shared_state",
    "shared_generation",
    "shared_state",
    "shared_state_supported",
    "classify_pair_chunk",
    "classify_pair_chunk_shared",
    "run_traced_chunk",
    "score_pair_chunk",
    "score_pair_chunk_shared",
]
