"""Deterministic chunk planning for parallel dispatch.

Both planners produce a *partition* of the input: every element appears
in exactly one chunk, chunks preserve the input order, and the plan is a
pure function of ``(items, parameter)`` — never of worker count ordering,
scheduling, or hash seeds. That partition property is half of the
determinism-by-merge argument (``docs/PARALLELISM.md``); the other half
is the order-independent merges in :mod:`repro.parallel.merge`. Property
tests in ``tests/test_property_invariants.py`` pin both.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

from repro.contracts import pure

__all__ = ["partition_evenly", "fixed_chunks"]

T = TypeVar("T")


@pure
def partition_evenly(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced runs.

    Chunk sizes differ by at most one (the first ``len % n`` chunks get
    the extra element), no chunk is empty, and concatenating the chunks
    reproduces ``items`` exactly.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    materialized = list(items)
    if not materialized:
        return []
    n_chunks = min(n_chunks, len(materialized))
    base, extra = divmod(len(materialized), n_chunks)
    chunks: List[List[T]] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(materialized[start:start + size])
        start += size
    return chunks


@pure
def fixed_chunks(items: Sequence[T], chunk_size: int) -> List[List[T]]:
    """Split ``items`` into contiguous runs of ``chunk_size`` elements.

    The final chunk may be shorter; no chunk is empty, and concatenating
    the chunks reproduces ``items`` exactly.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    materialized = list(items)
    return [
        materialized[start:start + chunk_size]
        for start in range(0, len(materialized), chunk_size)
    ]
