"""Picklable chunk-work functions executed inside pool workers.

A worker process shares nothing with the parent but the pickled
payload: no tracer, no caches, no ambient state. Each function here is
therefore a pure function of its payload — the property that makes a
chunk's result identical whether it runs in a worker, in-process on the
serial path, or in a deterministic retry after a worker crash
(``docs/PARALLELISM.md``). Payloads carry everything the computation
needs (scorer/model plus just the item bags or records the chunk's
pairs touch), keeping pickling cost proportional to the chunk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.contracts import fork_safe, picklable_work, pure
from repro.similarity.features import extract_features

if TYPE_CHECKING:
    from repro.blocking.scoring import BlockScorer
    from repro.classify.adtree import ADTreeModel
    from repro.records.dataset import Dataset
    from repro.records.itembag import Item

__all__ = ["score_pair_chunk", "classify_pair_chunk"]

Pair = Tuple[int, int]

#: (scorer, item bags restricted to the chunk's records, pairs to score)
ScoreChunk = Tuple["BlockScorer", Dict[int, FrozenSet["Item"]], List[Pair]]

#: (dataset, trained model, feature-name subset, pairs to score)
ClassifyChunk = Tuple[
    "Dataset", "ADTreeModel", Optional[Tuple[str, ...]], List[Pair]
]


@picklable_work
@fork_safe
@pure
def score_pair_chunk(payload: ScoreChunk) -> List[Tuple[Pair, float]]:
    """Blocking pair similarity for one chunk of candidate pairs.

    The same ``BlockScorer.pair_similarity`` call the serial path makes,
    so the floats are bit-identical.
    """
    scorer, item_bags, pairs = payload
    return [
        (pair, scorer.pair_similarity(item_bags[pair[0]], item_bags[pair[1]]))
        for pair in pairs
    ]


@picklable_work
@fork_safe
@pure
def classify_pair_chunk(payload: ClassifyChunk) -> List[Tuple[Pair, float]]:
    """ADTree confidences for one chunk of candidate pairs.

    Mirrors ``PairClassifier.score_pair`` without the classifier wrapper
    (whose tracer must not cross the process boundary): extract the
    pair's features, score them with the trained model.
    """
    dataset, model, feature_names, pairs = payload
    scored: List[Tuple[Pair, float]] = []
    for a, b in pairs:
        vector = extract_features(dataset[a], dataset[b], names=feature_names)
        scored.append(((a, b), model.score(vector)))
    return scored
