"""Picklable chunk-work functions executed inside pool workers.

A worker process shares nothing with the parent but the pickled
payload: no tracer, no caches, no ambient state. Each function here is
therefore a pure function of its payload — the property that makes a
chunk's result identical whether it runs in a worker, in-process on the
serial path, or in a deterministic retry after a worker crash
(``docs/PARALLELISM.md``). Payloads carry everything the computation
needs (scorer/model plus just the item bags or records the chunk's
pairs touch), keeping pickling cost proportional to the chunk.
"""

from __future__ import annotations

import pickle
import tracemalloc
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
)

from repro.contracts import (
    fork_safe,
    impure,
    picklable_work,
    pure,
    shared_readonly,
)
from repro.obs.worker import (
    WORKER_CHUNK_SPAN,
    WORKER_COMPUTE_SPAN,
    WORKER_DESERIALIZE_SPAN,
    WORKER_SERIALIZE_SPAN,
    WorkerTracer,
)
from repro.parallel.shared import shared_state
from repro.similarity.features import extract_features, extract_features_batch

if TYPE_CHECKING:
    from repro.blocking.scoring import BlockScorer
    from repro.classify.adtree import ADTreeModel
    from repro.records.dataset import Dataset
    from repro.records.itembag import Item
    from repro.similarity.interning import InternedCorpus

__all__ = [
    "score_pair_chunk",
    "score_pair_chunk_shared",
    "classify_pair_chunk",
    "classify_pair_chunk_shared",
    "run_traced_chunk",
]

Pair = Tuple[int, int]

#: (chunk function, chunk index, pickled chunk payload, profile memory?)
TracedChunk = Tuple[Callable[[Any], Any], int, bytes, bool]

#: (scorer, item bags restricted to the chunk's records, pairs to score)
ScoreChunk = Tuple["BlockScorer", Dict[int, FrozenSet["Item"]], List[Pair]]

#: (dataset, trained model, feature-name subset, pairs to score)
ClassifyChunk = Tuple[
    "Dataset", "ADTreeModel", Optional[Tuple[str, ...]], List[Pair]
]

#: (published shared-state token, pairs to score) — the pickle-free
#: payload shape; everything heavy lives behind the token.
SharedPairChunk = Tuple[str, List[Pair]]


@picklable_work
@fork_safe
@pure
def score_pair_chunk(payload: ScoreChunk) -> List[Tuple[Pair, float]]:
    """Blocking pair similarity for one chunk of candidate pairs.

    The same ``BlockScorer.pair_similarity`` call the serial path makes,
    so the floats are bit-identical.
    """
    scorer, item_bags, pairs = payload
    return [
        (pair, scorer.pair_similarity(item_bags[pair[0]], item_bags[pair[1]]))
        for pair in pairs
    ]


@picklable_work
@fork_safe
@shared_readonly
def score_pair_chunk_shared(
    payload: SharedPairChunk,
) -> List[Tuple[Pair, float]]:
    """Pickle-free variant of :func:`score_pair_chunk`.

    The payload carries only a token and the chunk's pairs; the scorer
    and the interned corpus come from the fork-inherited shared-state
    registry (:mod:`repro.parallel.shared`), which workers read but
    never write. Scoring runs through the batch kernels, which are
    bit-identical to the scalar ``pair_similarity`` per pair — so the
    result matches :func:`score_pair_chunk` byte for byte.
    """
    token, pairs = payload
    state = shared_state(token)
    scorer: "BlockScorer" = state["scorer"]
    corpus: "InternedCorpus" = state["corpus"]
    scores = scorer.pair_similarity_batch(corpus, pairs)
    return [(pair, score) for pair, score in zip(pairs, scores)]


@picklable_work
@fork_safe
@pure
def classify_pair_chunk(payload: ClassifyChunk) -> List[Tuple[Pair, float]]:
    """ADTree confidences for one chunk of candidate pairs.

    Mirrors ``PairClassifier.score_pair`` without the classifier wrapper
    (whose tracer must not cross the process boundary): extract the
    pair's features, score them with the trained model.
    """
    dataset, model, feature_names, pairs = payload
    scored: List[Tuple[Pair, float]] = []
    for a, b in pairs:
        vector = extract_features(dataset[a], dataset[b], names=feature_names)
        scored.append(((a, b), model.score(vector)))
    return scored


@picklable_work
@fork_safe
@shared_readonly
def classify_pair_chunk_shared(
    payload: SharedPairChunk,
) -> List[Tuple[Pair, float]]:
    """Pickle-free variant of :func:`classify_pair_chunk`.

    Dataset, model and feature-name subset resolve through the shared-
    state registry; feature vectors come from the batch extractor,
    which is value-identical to ``extract_features`` per pair, so the
    confidences match the legacy chunk function exactly.
    """
    token, pairs = payload
    state = shared_state(token)
    dataset: "Dataset" = state["dataset"]
    model: "ADTreeModel" = state["model"]
    feature_names: Optional[Tuple[str, ...]] = state["feature_names"]
    vectors = extract_features_batch(dataset, pairs, names=feature_names)
    return [
        (pair, model.score(vector)) for pair, vector in zip(pairs, vectors)
    ]


@picklable_work
@fork_safe
@impure(
    reason="reads the worker clock and pid to attribute per-chunk time; "
           "the wrapped chunk function stays pure, so the unpickled "
           "result is identical to the untraced path's"
)
def run_traced_chunk(payload: TracedChunk) -> Tuple[bytes, Dict[str, Any]]:
    """Run one chunk under a :class:`WorkerTracer`; ship trace + result.

    The traced executor pickles the chunk payload itself (measuring
    bytes and serialize time parent-side), so this wrapper receives raw
    bytes: it times the unpickle, runs the *same* module-level chunk
    function the untraced path runs under a ``worker.compute`` span —
    optionally under ``tracemalloc`` — and times the result pickle.
    Returns ``(result pickle, worker-trace payload)``; the parent
    unpickles the result (measuring that too) and merges the trace
    keyed by chunk index. Runs identically in a pool worker, inline,
    or in a crash retry — only the pid in the trace differs.
    """
    func, chunk_index, blob, profile_memory = payload
    tracer = WorkerTracer()
    peak: Optional[int] = None
    with tracer.span(WORKER_CHUNK_SPAN, chunk=chunk_index):
        with tracer.span(WORKER_DESERIALIZE_SPAN):
            chunk_payload = pickle.loads(blob)
        if profile_memory:
            tracemalloc.start()
        try:
            with tracer.span(WORKER_COMPUTE_SPAN):
                result = func(chunk_payload)
        finally:
            if profile_memory:
                peak = tracemalloc.get_traced_memory()[1]
                tracemalloc.stop()
        with tracer.span(WORKER_SERIALIZE_SPAN):
            result_blob = pickle.dumps(
                result, protocol=pickle.HIGHEST_PROTOCOL
            )
    return result_blob, tracer.export(
        chunk_index,
        result_bytes=len(result_blob),
        tracemalloc_peak_bytes=peak,
    )
