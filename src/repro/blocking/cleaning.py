"""Block-cleaning and comparison-cleaning steps (Papadakis et al.).

Section 6.6 classifies blocking techniques into *block building*, *block
cleaning* ("prune whole blocks") and *comparison cleaning* ("remove
records from blocks"). The baselines in :mod:`repro.blocking.baselines`
are block builders; this module supplies the cleaning stages of the
survey's standard workflow so they can be composed with any builder:

* :class:`BlockPurging` — drop oversized blocks (above a size chosen
  from the block-size distribution);
* :class:`BlockFiltering` — keep each record only in its ``ratio``
  smallest (most discriminative) blocks;
* :class:`WeightedEdgePruning` — meta-blocking: score each candidate
  pair by its co-occurrence weight across blocks and keep pairs above
  the mean weight (the survey's WEP with common-blocks weighting).

The paper itself performs comparison cleaning "through a highly specific
classification method" (the ADTree) instead; these utilities exist so
the Table-10 comparison can also be run under the survey's own cleaning
workflow (see ``bench_tab10_blocking``'s notes).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.blocking.base import Block, BlockingResult

__all__ = ["BlockPurging", "BlockFiltering", "WeightedEdgePruning"]

Pair = Tuple[int, int]


@dataclass
class BlockPurging:
    """Drop blocks larger than a percentile of the size distribution.

    ``percentile`` of 1.0 keeps everything; the survey default removes
    the largest blocks whose comparisons dominate the workload while
    contributing almost no matches.
    """

    percentile: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 1.0:
            raise ValueError(
                f"percentile must be in (0, 1], got {self.percentile}"
            )

    def apply(self, result: BlockingResult) -> BlockingResult:
        if not result.blocks:
            return BlockingResult()
        sizes = sorted(len(block) for block in result.blocks)
        index = min(len(sizes) - 1, int(math.ceil(self.percentile * len(sizes))) - 1)
        max_size = sizes[max(0, index)]
        cleaned = BlockingResult()
        for block in result.blocks:
            if len(block) <= max_size:
                cleaned.add_block(block)
        return cleaned


@dataclass
class BlockFiltering:
    """Keep each record only in its smallest (most selective) blocks.

    ``ratio`` is the fraction of a record's blocks retained (survey
    default 0.8); blocks that lose all but one record disappear.
    """

    ratio: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio}")

    def apply(self, result: BlockingResult) -> BlockingResult:
        # Rank each record's blocks by ascending size.
        blocks_of: Dict[int, List[int]] = {}
        for index, block in enumerate(result.blocks):
            for rid in block.records:
                blocks_of.setdefault(rid, []).append(index)
        keep: Dict[int, set] = {}
        for rid, indices in blocks_of.items():
            indices.sort(key=lambda i: (len(result.blocks[i]), i))
            kept = max(1, int(math.ceil(self.ratio * len(indices))))
            keep[rid] = set(indices[:kept])

        cleaned = BlockingResult()
        for index, block in enumerate(result.blocks):
            members = frozenset(
                rid for rid in block.records if index in keep.get(rid, ())
            )
            if len(members) >= 2:
                cleaned.add_block(
                    Block(records=members, key=block.key, score=block.score)
                )
        return cleaned


@dataclass
class WeightedEdgePruning:
    """Meta-blocking WEP: prune pairs below the mean co-occurrence weight.

    The weight of a pair is the number of blocks it co-occurs in
    (common-blocks scheme); pairs at or below the global mean weight are
    discarded. Returns a new result whose blocks are the surviving pairs
    themselves (meta-blocking abandons the original block structure).
    """

    def apply(self, result: BlockingResult) -> BlockingResult:
        weights: Counter = Counter()
        for block in result.blocks:
            for pair in block.pairs():
                weights[pair] += 1
        if not weights:
            return BlockingResult()
        mean_weight = sum(weights.values()) / len(weights)
        cleaned = BlockingResult()
        for pair, weight in weights.items():
            if weight > mean_weight:
                cleaned.add_block(
                    Block(records=frozenset(pair), score=float(weight))
                )
        return cleaned
