"""Block scoring and the compact-set / sparse-neighborhood machinery.

MFIBlocks constrains blocks to satisfy the *compact set* (CS) and
*sparse neighborhood* (SN) properties of Chaudhuri et al. [7]:

* **CS** — records in a block should be more similar to each other than
  to records outside it. Operationally the block score is an aggregate
  of pairwise record similarity, and low-scoring blocks are pruned by a
  threshold (``minTh``) that rises as SN violations are observed.
* **SN** — each record's candidate neighborhood must stay small. The
  Neighborhood Growth (NG) parameter caps it: a record in one pure block
  of size ``minsup`` has ``minsup - 1`` neighbors, so we allow at most
  ``NG * (minsup - 1)`` distinct neighbors per record (and Algorithm 1
  line 8 separately caps block size at ``minsup * NG``).

Three scoring variants reproduce the Table 9 conditions:

* ``uniform`` — plain Jaccard over item bags (the Base condition);
* ``weighted`` — item-type-weighted Jaccard (Expert Weighting);
* ``expert`` — Eq.-1 soft Jaccard (ExpertSim; *not* set-monotone, which
  the paper identifies as the reason it underperforms).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.contracts import batch_kernel, deterministic, hot_path, pure
from repro.records.itembag import Item, ItemType
from repro.similarity.batch import (
    jaccard_items_batch,
    soft_jaccard_items_batch,
    weighted_jaccard_items_batch,
)
from repro.similarity.interning import InternedCorpus
from repro.similarity.items import (
    GeoLookup,
    jaccard_items,
    soft_jaccard_items,
    weighted_jaccard_items,
)

__all__ = [
    "ScoringMethod",
    "BlockScorer",
    "DEFAULT_EXPERT_WEIGHTS",
    "SparseNeighborhoodFilter",
    "neighborhood_cap",
]


class ScoringMethod(str, enum.Enum):
    """Which record-pair similarity aggregates into the block score."""

    UNIFORM = "uniform"
    WEIGHTED = "weighted"
    EXPERT = "expert"


#: An expert-derived weighting of item types (the "Expert Weighting"
#: condition). Identifying attributes — names, birth year — weigh more
#: than broad categorical ones; the exact values are our re-derivation in
#: the spirit of the paper (the original weights were not published).
DEFAULT_EXPERT_WEIGHTS: Mapping[ItemType, float] = {
    ItemType.FIRST_NAME: 2.0,
    ItemType.LAST_NAME: 2.5,
    ItemType.MAIDEN_NAME: 2.0,
    ItemType.FATHER_NAME: 1.8,
    ItemType.MOTHER_NAME: 1.8,
    ItemType.MOTHER_MAIDEN: 1.8,
    ItemType.SPOUSE_NAME: 1.6,
    ItemType.BIRTH_YEAR: 1.5,
    ItemType.BIRTH_MONTH: 0.8,
    ItemType.BIRTH_DAY: 0.8,
    ItemType.GENDER: 0.3,
    ItemType.PROFESSION: 0.6,
    ItemType.BIRTH_CITY: 1.2,
    ItemType.BIRTH_COUNTY: 0.8,
    ItemType.BIRTH_REGION: 0.5,
    ItemType.BIRTH_COUNTRY: 0.2,
    ItemType.PERM_CITY: 1.2,
    ItemType.PERM_COUNTY: 0.8,
    ItemType.PERM_REGION: 0.5,
    ItemType.PERM_COUNTRY: 0.2,
    ItemType.WAR_CITY: 1.0,
    ItemType.WAR_COUNTY: 0.7,
    ItemType.WAR_REGION: 0.4,
    ItemType.WAR_COUNTRY: 0.2,
    ItemType.DEATH_CITY: 1.0,
    ItemType.DEATH_COUNTY: 0.7,
    ItemType.DEATH_REGION: 0.4,
    ItemType.DEATH_COUNTRY: 0.2,
}


@dataclass
class BlockScorer:
    """Scores blocks as the mean pairwise similarity of member records.

    ``weights`` of ``None`` means uniform item weights; the WEIGHTED
    method falls back to :data:`DEFAULT_EXPERT_WEIGHTS` in that case,
    while the EXPERT (Eq.-1 soft) method composes with whatever weights
    are set — matching Table 9, where the ExpertSim condition runs on
    top of Expert Weighting.
    """

    method: ScoringMethod = ScoringMethod.UNIFORM
    weights: Optional[Mapping[ItemType, float]] = None
    geo_lookup: Optional[GeoLookup] = None

    @hot_path
    @pure
    def pair_similarity(self, a: FrozenSet[Item], b: FrozenSet[Item]) -> float:
        """Similarity between two records' item bags under the method."""
        if self.method is ScoringMethod.UNIFORM:
            return jaccard_items(a, b)
        if self.method is ScoringMethod.WEIGHTED:
            weights = self.weights if self.weights is not None else DEFAULT_EXPERT_WEIGHTS
            return weighted_jaccard_items(a, b, weights)
        return soft_jaccard_items(a, b, self.geo_lookup, self.weights)

    @hot_path
    @pure
    def score_block(
        self,
        records: Sequence[int],
        item_bags: Mapping[int, FrozenSet[Item]],
    ) -> float:
        """Mean pairwise similarity over the block's record pairs.

        This aggregate respects the compact-set intuition: a block whose
        members broadly share items scores high; a block glued together
        by one incidental MFI scores low and gets pruned by ``minTh``.
        """
        members = sorted(records)
        if len(members) < 2:
            return 0.0
        total = 0.0
        n_pairs = 0
        for i, rid_a in enumerate(members):
            bag_a = item_bags[rid_a]
            for rid_b in members[i + 1:]:
                total += self.pair_similarity(bag_a, item_bags[rid_b])
                n_pairs += 1
        return total / n_pairs

    @batch_kernel
    @pure
    def pair_similarity_batch(
        self, corpus: InternedCorpus, pairs: Sequence[Tuple[int, int]]
    ) -> List[float]:
        """Batch form of :meth:`pair_similarity` over an interned corpus.

        Returns one float per pair, bit-equal to the scalar method on
        the corresponding item bags (see :mod:`repro.similarity.batch`).
        """
        if self.method is ScoringMethod.UNIFORM:
            return jaccard_items_batch(corpus, pairs)
        if self.method is ScoringMethod.WEIGHTED:
            weights = self.weights if self.weights is not None else DEFAULT_EXPERT_WEIGHTS
            return weighted_jaccard_items_batch(corpus, pairs, weights)
        return soft_jaccard_items_batch(corpus, pairs, self.geo_lookup, self.weights)

    @batch_kernel
    @pure
    def score_blocks_batch(
        self,
        blocks: Sequence[Sequence[int]],
        corpus: InternedCorpus,
    ) -> List[float]:
        """Batch form of :meth:`score_block` for many blocks at once.

        All member pairs across all blocks are scored in one kernel
        call; per-block accumulation then replays :meth:`score_block`'s
        pair order and sequential float addition, so each returned mean
        is byte-identical to the scalar aggregate.
        """
        members_list: List[List[int]] = []
        spans: List[Tuple[int, int]] = []
        pairs: List[Tuple[int, int]] = []
        for records in blocks:
            members = sorted(records)
            members_list.append(members)
            start = len(pairs)
            for i, rid_a in enumerate(members):
                for rid_b in members[i + 1:]:
                    pairs.append((rid_a, rid_b))
            spans.append((start, len(pairs)))
        sims = self.pair_similarity_batch(corpus, pairs)
        out: List[float] = []
        for index, members in enumerate(members_list):
            if len(members) < 2:
                out.append(0.0)
                continue
            start, end = spans[index]
            total = 0.0
            for value in sims[start:end]:
                total += value
            out.append(total / (end - start))
        return out


@pure
def neighborhood_cap(ng: float, minsup: int) -> int:
    """Maximum distinct neighbors a record may accumulate (SN bound).

    The cap mirrors the block-size cap of Algorithm 1 line 8
    (``size <= minsup * NG``): a record admitted into one maximal block
    gains ``minsup * NG - 1`` neighbors, so the neighborhood bound is
    ``floor(minsup * NG)`` — any tighter and a single admissible block
    could violate SN by itself. The floor keeps fractional NG meaningful
    (NG=3.5, minsup=4 -> cap 14).
    """
    if ng <= 0:
        raise ValueError(f"NG must be positive, got {ng}")
    if minsup < 2:
        raise ValueError(f"minsup must be >= 2, got {minsup}")
    return max(1, math.floor(ng * minsup))


class SparseNeighborhoodFilter:
    """Implements lines 9-16 of Algorithm 1: the NG constraint on blocks.

    Blocks are admitted in descending score order; admitting a block that
    would push any member record's neighborhood past the NG cap is a
    *violation*. Two enforcement modes are provided:

    * ``"skip"`` (default) — violating blocks are discarded individually;
      lower-scoring non-violating blocks may still be admitted. This
      calibrates to the paper's published Base precision/recall and is
      what the quality experiments use.
    * ``"threshold"`` — the literal reading of Algorithm 1: the first
      violation raises ``minTh`` to the violating block's score, pruning
      it *and every lower-scoring block* of the iteration ("finding the
      minimal block score that will prune those blocks violating the
      sparse-neighborhood condition", lines 9-15). Noticeably more
      aggressive; kept for the NG-enforcement ablation benchmark.

    The filter is stateful across Algorithm 1 iterations: neighborhoods
    accumulated at a higher minsup still count against the cap later.
    """

    MODES = ("skip", "threshold")

    def __init__(self, ng: float, mode: str = "skip") -> None:
        if ng <= 0:
            raise ValueError(f"NG must be positive, got {ng}")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.ng = ng
        self.mode = mode
        self.neighbors: Dict[int, Set[int]] = {}
        self.min_threshold = 0.0

    def _would_violate(self, records: FrozenSet[int], cap: int) -> bool:
        for rid in records:
            current = self.neighbors.get(rid, set())
            added = records - {rid} - current
            if len(current) + len(added) > cap:
                return True
        return False

    def _admit(self, records: FrozenSet[int]) -> None:
        for rid in records:
            bucket = self.neighbors.setdefault(rid, set())
            bucket.update(records - {rid})

    @deterministic
    def filter_blocks(
        self,
        scored_blocks: List[Tuple[FrozenSet[int], FrozenSet[Item], float]],
        minsup: int,
    ) -> List[Tuple[FrozenSet[int], FrozenSet[Item], float]]:
        """Return the admitted blocks of one Algorithm 1 iteration.

        ``scored_blocks`` holds (records, key, score) triples; the result
        preserves only blocks above the (possibly raised) ``minTh`` that
        do not violate the SN cap.
        """
        cap = neighborhood_cap(self.ng, minsup)
        admitted: List[Tuple[FrozenSet[int], FrozenSet[Item], float]] = []
        for records, key, score in sorted(
            scored_blocks, key=lambda entry: (-entry[2], sorted(entry[0]))
        ):
            if score <= self.min_threshold:
                break
            if self._would_violate(records, cap):
                if self.mode == "threshold":
                    # Raise minTh: this block and everything below it is out.
                    self.min_threshold = max(self.min_threshold, score)
                    break
                continue
            self._admit(records)
            admitted.append((records, key, score))
        return admitted
