"""The MFIBlocks blocking algorithm (Algorithm 1 of the paper).

MFIBlocks turns blocking into soft clustering: record item-bags are mined
for Maximal Frequent Itemsets, each MFI's support set becomes a candidate
block, and blocks are filtered by size (``minsup * NG``), by the
compact-set score threshold ``minTh``, and by the sparse-neighborhood
(NG) constraint. The loop starts at ``MaxMinSup`` and decreases
``minsup`` each iteration, mining only records not yet covered by an
admitted candidate pair, until everything is covered or ``minsup`` falls
below 2.

Key properties the paper highlights (Section 4.1):

* no manual blocking-key design — any item combination supported by the
  data can key a block ("lets the data talk");
* soft clusters — the same record may appear in several blocks under
  different keys, which is what uncertain ER needs;
* tunable granularity — looser CS/SN settings broaden entities from a
  person to a family (see :mod:`repro.core.granularity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.blocking.base import (
    Block,
    BlockingAlgorithm,
    BlockingResult,
    pairs_of_block,
)
from repro.blocking.scoring import BlockScorer, SparseNeighborhoodFilter
from repro.contracts import ordered_output, pure
from repro.mining.fpgrowth import maximal_frequent_itemsets
from repro.mining.pruning import prune_frequent_items
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.executor import Executor
from repro.parallel.merge import max_merge_into
from repro.parallel.shared import SharedStateHandle, publish_shared_state
from repro.parallel.work import score_pair_chunk, score_pair_chunk_shared
from repro.records.dataset import Dataset
from repro.records.itembag import Item
from repro.resilience.budgets import BudgetMeter, StageBudget
from repro.similarity.interning import InternedCorpus

__all__ = ["MFIBlocksConfig", "MFIBlocks"]


def _pair_count(
    blocks: List[Tuple[FrozenSet[int], FrozenSet[Item], float]]
) -> int:
    """Candidate pairs implied by a list of (records, key, score) blocks."""
    return sum(len(records) * (len(records) - 1) // 2 for records, _, _ in blocks)


@dataclass
class MFIBlocksConfig:
    """Tuning knobs of Algorithm 1 (Section 6.5's configurable options).

    ``max_minsup``
        Starting (maximal) ``minsup``; the loop then runs with
        ``minsup = max_minsup, max_minsup - 1, ..., 2``. Table 9 fixes 5.
    ``ng``
        Neighborhood Growth: caps block size at ``minsup * ng`` and each
        record's neighborhood at ``ng * (minsup - 1)``. Figures 15-16
        sweep 1.5-5.
    ``scoring``
        Block scoring method: uniform Jaccard (Base), expert-weighted
        Jaccard (Expert Weighting), or Eq.-1 soft Jaccard (ExpertSim).
    ``prune_fraction``
        Fraction of most-frequent items removed before mining (Section
        6.3 uses 0.03%); ``None`` disables pruning.
    ``min_block_size``
        Supports below this are never blocks (2 = candidate pairs exist).
    ``sn_mode``
        Sparse-neighborhood enforcement: ``"skip"`` (default, calibrated
        to the paper's published quality) or ``"threshold"`` (the literal
        Algorithm 1 minTh semantics; see
        :class:`~repro.blocking.scoring.SparseNeighborhoodFilter`).
    ``budget``
        Optional :class:`~repro.resilience.budgets.StageBudget` bounding
        the work: each ``minsup`` level charges one unit, and the FPMax
        recursion charges per node expansion against the same meter. An
        exhausted budget stops the descent and returns the best-so-far
        blocking with ``degraded=True`` (anytime semantics).
    """

    max_minsup: int = 5
    ng: float = 3.0
    scoring: BlockScorer = field(default_factory=BlockScorer)
    prune_fraction: Optional[float] = None
    min_block_size: int = 2
    sn_mode: str = "skip"
    budget: Optional[StageBudget] = None

    def __post_init__(self) -> None:
        if self.max_minsup < 2:
            raise ValueError(f"max_minsup must be >= 2, got {self.max_minsup}")
        if self.ng <= 0:
            raise ValueError(f"NG must be positive, got {self.ng}")
        if self.min_block_size < 2:
            raise ValueError(
                f"min_block_size must be >= 2, got {self.min_block_size}"
            )


class MFIBlocks(BlockingAlgorithm):
    """Algorithm 1: iterative MFI mining with CS/SN block filtering."""

    name = "MFIBlocks"

    def __init__(
        self,
        config: Optional[MFIBlocksConfig] = None,
        tracer: Optional[Tracer] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.config = config or MFIBlocksConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Like the tracer, the executor is execution machinery, not
        # configuration: it never enters config echoes or checkpoint
        # fingerprints, so any worker count can resume any checkpoint.
        self.executor = executor

    @property
    def _parallel(self) -> bool:
        return self.executor is not None and self.executor.parallel

    @ordered_output
    def run(self, dataset: Dataset) -> BlockingResult:
        config = self.config
        tracer = self.tracer
        with tracer.span("mfiblocks.run"):
            item_bags: Dict[int, FrozenSet[Item]] = dict(dataset.item_bags)
            tracer.count("mfiblocks.records", len(item_bags))
            if config.prune_fraction is not None:
                item_bags, _ = prune_frequent_items(
                    item_bags, config.prune_fraction, tracer=tracer
                )

            covered: Set[int] = set()
            sn_filter = SparseNeighborhoodFilter(config.ng, mode=config.sn_mode)
            result = BlockingResult()
            meter = BudgetMeter(config.budget)

            # One interned corpus serves every minsup level: block and
            # pair scoring run through the batch kernels against it
            # (bit-identical to the scalar scorer, see
            # repro/similarity/batch.py). When the executor supports
            # pickle-free dispatch the corpus is published once here —
            # outside the descent loop — so the forked warm pool stays
            # valid across iterations.
            with tracer.span("mfiblocks.intern"):
                corpus = InternedCorpus(item_bags)
            handle: Optional[SharedStateHandle] = None
            executor = self.executor
            if (
                self._parallel
                and executor is not None
                and executor.shared_state
            ):
                handle = publish_shared_state(
                    scorer=config.scoring, corpus=corpus
                )
                executor.stats.shared_segment_bytes = max(
                    executor.stats.shared_segment_bytes, handle.segment_bytes
                )
            try:
                for minsup in range(config.max_minsup, 1, -1):
                    uncovered = [
                        rid for rid in item_bags if rid not in covered
                    ]
                    if not uncovered:
                        break
                    if meter.exhausted():
                        break
                    meter.charge()
                    with tracer.span("mfiblocks.minsup", minsup=minsup):
                        admitted = self._one_iteration(
                            uncovered, item_bags, corpus, minsup, sn_filter,
                            meter,
                        )
                        for records, key, score in admitted:
                            result.blocks.append(Block(records, key, score))
                            covered.update(records)
                        if self._parallel:
                            self._score_pairs_parallel(
                                admitted, item_bags, result, corpus, handle
                            )
                        else:
                            self._score_pairs_batch(admitted, corpus, result)
                    tracer.count("mfiblocks.blocks_admitted", len(admitted))
                    if meter.degraded:
                        # Mining was cut short: the admitted blocks are
                        # valid but coverage stops here.
                        break
            finally:
                if handle is not None:
                    handle.close()
            if meter.degraded:
                result.degraded = True
                tracer.count("mfiblocks.budget_exhausted", 1)
            tracer.count("mfiblocks.candidate_pairs", len(result.pair_scores))
        return result

    # -- internals -----------------------------------------------------------

    @ordered_output
    def _one_iteration(
        self,
        uncovered: List[int],
        item_bags: Dict[int, FrozenSet[Item]],
        corpus: InternedCorpus,
        minsup: int,
        sn_filter: SparseNeighborhoodFilter,
        meter: Optional[BudgetMeter] = None,
    ) -> List[Tuple[FrozenSet[int], FrozenSet[Item], float]]:
        """Mine, support, size-filter, score, and SN-filter one minsup level."""
        config = self.config
        tracer = self.tracer
        transactions = [item_bags[rid] for rid in uncovered]
        with tracer.span("mfiblocks.mine", minsup=minsup):
            mfis = maximal_frequent_itemsets(
                transactions, minsup, tracer=tracer, budget=meter,
                executor=self.executor,
            )
        tracer.count("mfiblocks.mfis_mined", len(mfis))
        if not mfis:
            return []

        # Support finding and block scoring used to share one span;
        # they are separated so ``mfiblocks.score`` measures exactly
        # the batched scoring compute lane (the perf ledger's batch-
        # throughput metric is pairs_pre_cs_sn / this span's seconds).
        with tracer.span("mfiblocks.support", minsup=minsup):
            index = self._index_for(uncovered, item_bags)
            max_size = int(minsup * config.ng)
            candidates: List[Tuple[FrozenSet[int], FrozenSet[Item]]] = []
            seen_supports: Set[FrozenSet[int]] = set()
            rejected_size = 0
            for mfi in mfis:
                support = self._find_support(mfi.items, index)
                if not config.min_block_size <= len(support) <= max_size:
                    rejected_size += 1
                    continue
                if support in seen_supports:
                    continue  # distinct MFIs can share a support set
                seen_supports.add(support)
                candidates.append((support, mfi.items))
        with tracer.span("mfiblocks.score", minsup=minsup):
            scores = config.scoring.score_blocks_batch(
                [sorted(support) for support, _key in candidates], corpus
            )
            scored = [
                (support, key, score)
                for (support, key), score in zip(candidates, scores)
            ]
        tracer.count("mfiblocks.blocks_rejected_size", rejected_size)
        with tracer.span("mfiblocks.sn_filter", minsup=minsup):
            admitted = sn_filter.filter_blocks(scored, minsup)
        tracer.count(
            "mfiblocks.blocks_rejected_cs_sn", len(scored) - len(admitted)
        )
        tracer.count("mfiblocks.pairs_pre_cs_sn", _pair_count(scored))
        tracer.count("mfiblocks.pairs_post_cs_sn", _pair_count(admitted))
        return admitted

    @staticmethod
    def _index_for(
        uncovered: List[int], item_bags: Dict[int, FrozenSet[Item]]
    ) -> Dict[Item, Set[int]]:
        """Inverted index restricted to the uncovered records."""
        index: Dict[Item, Set[int]] = {}
        for rid in uncovered:
            for item in item_bags[rid]:
                index.setdefault(item, set()).add(rid)
        return index

    @staticmethod
    @pure
    def _find_support(
        items: FrozenSet[Item], index: Dict[Item, Set[int]]
    ) -> FrozenSet[int]:
        """FindSupport (Algorithm 1, line 7): records containing all items."""
        if not items:
            return frozenset()
        postings = sorted(
            (index.get(item, set()) for item in items), key=len
        )
        support = set(postings[0])
        for posting in postings[1:]:
            support &= posting
            if not support:
                break
        return frozenset(support)

    @staticmethod
    def _unique_pairs(
        admitted: List[Tuple[FrozenSet[int], FrozenSet[Item], float]],
    ) -> List[Tuple[int, int]]:
        """The sorted, de-duplicated candidate pairs of admitted blocks."""
        return sorted(
            {
                pair
                for records, _key, _score in admitted
                for pair in pairs_of_block(records)
            }
        )

    def _score_pairs_batch(
        self,
        admitted: List[Tuple[FrozenSet[int], FrozenSet[Item], float]],
        corpus: InternedCorpus,
        result: BlockingResult,
    ) -> None:
        """Record pair-level similarity for ranked resolution (serial).

        Each admitted block contributes its member pairs; the pair
        score is the *record-pair* similarity under the configured
        scorer (not the block mean), maximized across blocks — the
        similarity value the uncertain-ER output associates with each
        match. Scoring runs through the batch kernels, which are
        bit-identical per pair to ``pair_similarity``; the max-merge is
        order-independent, so the mapping equals the historical
        per-block loop's.
        """
        pairs = self._unique_pairs(admitted)
        if not pairs:
            return
        scores = self.config.scoring.pair_similarity_batch(corpus, pairs)
        max_merge_into(result.pair_scores, list(zip(pairs, scores)))

    def _score_pairs_parallel(
        self,
        admitted: List[Tuple[FrozenSet[int], FrozenSet[Item], float]],
        item_bags: Dict[int, FrozenSet[Item]],
        result: BlockingResult,
        corpus: InternedCorpus,
        handle: Optional[SharedStateHandle],
    ) -> None:
        """One minsup level's pair scoring, chunked across workers.

        Computes the same function as :meth:`_score_pairs_batch` over
        all admitted blocks. With a published shared-state ``handle``
        the chunks carry only ``(token, pairs)`` — the scorer and the
        interned corpus come from the fork-inherited registry — and a
        pair list below the executor's ``min_dispatch_items`` skips
        dispatch entirely, running the same batch kernels inline.
        Without a handle (shared state unsupported) the legacy pickled
        payloads are used. All three routes score with bit-identical
        kernels, chunking is a deterministic partition of the sorted
        pair list, and the max-merge is order-independent, so the
        resulting mapping — and the ranked output downstream — is
        byte-identical across routes and worker counts
        (docs/PARALLELISM.md).
        """
        executor = self.executor
        if executor is None:  # pragma: no cover - guarded by _parallel
            raise RuntimeError("parallel scoring requires an executor")
        pairs = self._unique_pairs(admitted)
        if not pairs:
            return
        scorer = self.config.scoring
        if handle is not None:
            if len(pairs) < executor.min_dispatch_items:
                # Too small to amortize dispatch: same kernels, inline.
                scores = scorer.pair_similarity_batch(corpus, pairs)
                max_merge_into(result.pair_scores, list(zip(pairs, scores)))
                return
            payloads: List[object] = [
                (handle.token, chunk) for chunk in executor.plan_chunks(pairs)
            ]
            chunk_results = executor.map_chunks(
                score_pair_chunk_shared, payloads,
                tracer=self.tracer, label="mfiblocks.score_pairs",
                shared_bytes=handle.baseline_bytes,
            )
        else:
            payloads = []
            for chunk in executor.plan_chunks(pairs):
                # Ship only the item bags this chunk's pairs touch.
                bags: Dict[int, FrozenSet[Item]] = {}
                for rid_a, rid_b in chunk:
                    bags[rid_a] = item_bags[rid_a]
                    bags[rid_b] = item_bags[rid_b]
                payloads.append((scorer, bags, chunk))
            chunk_results = executor.map_chunks(
                score_pair_chunk, payloads,
                tracer=self.tracer, label="mfiblocks.score_pairs",
            )
        for chunk_result in chunk_results:
            max_merge_into(result.pair_scores, chunk_result)
