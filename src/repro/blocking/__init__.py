"""Blocking layer: MFIBlocks (Algorithm 1) and the Table-10 baselines."""

from __future__ import annotations

from repro.blocking.base import Block, BlockingAlgorithm, BlockingResult, canonical_pair
from repro.blocking.mfiblocks import MFIBlocks, MFIBlocksConfig
from repro.blocking.scoring import (
    DEFAULT_EXPERT_WEIGHTS,
    BlockScorer,
    ScoringMethod,
    SparseNeighborhoodFilter,
    neighborhood_cap,
)

__all__ = [
    "Block",
    "BlockingAlgorithm",
    "BlockingResult",
    "canonical_pair",
    "MFIBlocks",
    "MFIBlocksConfig",
    "DEFAULT_EXPERT_WEIGHTS",
    "BlockScorer",
    "ScoringMethod",
    "SparseNeighborhoodFilter",
    "neighborhood_cap",
]
