"""Shared plumbing for the baseline blocking techniques of Table 10.

The baselines follow Papadakis et al.'s survey framework: records are
reduced to *blocking keys* (attribute values, tokens, q-grams, suffixes,
...), each key induces a block, and blocks of fewer than two records are
dropped. Since our item bags are exactly attribute-prefixed values, the
key extractors work off :attr:`Dataset.item_bags`.

A ``max_block_size`` knob implements block purging (oversized blocks are
discarded); the survey applies purging by default, and without it the
all-pairs explosion of keys like ``G M`` dominates the runtime without
changing the headline result (recall ~1, precision <0.001).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
)

from repro.blocking.base import Block, BlockingAlgorithm, BlockingResult
from repro.records.dataset import Dataset
from repro.records.itembag import Item

__all__ = ["key_blocks", "blocks_from_keys", "KeyedBlocking"]


def blocks_from_keys(
    record_keys: Dict[int, FrozenSet[Hashable]],
    min_block_size: int = 2,
    max_block_size: Optional[int] = None,
) -> List[FrozenSet[int]]:
    """Invert record -> keys into per-key blocks, size-filtered, deduped."""
    postings: Dict[Hashable, List[int]] = {}
    for rid, keys in record_keys.items():
        for key in keys:
            postings.setdefault(key, []).append(rid)
    seen: Set[FrozenSet[int]] = set()
    blocks: List[FrozenSet[int]] = []
    for key in sorted(postings, key=repr):
        members = frozenset(postings[key])
        if len(members) < min_block_size:
            continue
        if max_block_size is not None and len(members) > max_block_size:
            continue
        if members in seen:
            continue
        seen.add(members)
        blocks.append(members)
    return blocks


def key_blocks(
    dataset: Dataset,
    extractor: Callable[[FrozenSet[Item]], Iterable[Hashable]],
    min_block_size: int = 2,
    max_block_size: Optional[int] = None,
) -> BlockingResult:
    """Run a key-extraction function over a dataset and build blocks.

    ``extractor(items)`` maps one record's item bag to its key set.
    """
    record_keys = {
        rid: frozenset(extractor(items))
        for rid, items in dataset.item_bags.items()
    }
    result = BlockingResult()
    for members in blocks_from_keys(record_keys, min_block_size, max_block_size):
        result.add_block(Block(records=members))
    return result


class KeyedBlocking(BlockingAlgorithm):
    """Base class for baselines defined purely by a key extractor."""

    def __init__(self, max_block_size: Optional[int] = None) -> None:
        self.max_block_size = max_block_size

    def keys_for(self, items: FrozenSet[Item]) -> Iterable[Hashable]:
        raise NotImplementedError

    def run(self, dataset: Dataset) -> BlockingResult:
        return key_blocks(
            dataset, self.keys_for, max_block_size=self.max_block_size
        )
