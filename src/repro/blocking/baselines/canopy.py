"""Canopy clustering baselines: CaCl and ECaCl (Table 10).

CaCl (McCallum et al., KDD'00) iteratively removes a random seed record
from the candidate pool and forms a block from records sufficiently
similar to it under a cheap metric — here Jaccard over the records'
q-gram key sets, the keys being given by the QGBl method as in the
survey. Records above the tight threshold ``t2`` leave the pool (blocks
are inherently non-overlapping); records above the loose ``t1`` join the
canopy but stay available.

ECaCl additionally assigns every record left unblocked to its most
similar existing canopy.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Set

from repro.blocking.base import Block, BlockingAlgorithm, BlockingResult
from repro.records.dataset import Dataset
from repro.similarity.strings import qgrams

__all__ = ["CanopyClustering", "ExtendedCanopyClustering"]


def _qgram_keys(dataset: Dataset, q: int) -> Dict[int, FrozenSet]:
    keys: Dict[int, FrozenSet] = {}
    for rid, items in dataset.item_bags.items():
        record_keys = set()
        for item in items:
            for gram in qgrams(item.value.lower(), q, pad=False):
                record_keys.add((item.type.prefix, gram))
        keys[rid] = frozenset(record_keys)
    return keys


def _jaccard(a: FrozenSet, b: FrozenSet) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 1.0


class CanopyClustering(BlockingAlgorithm):
    """CaCl: random-seed canopies over q-gram key similarity."""

    name = "CaCl"

    def __init__(
        self,
        t1: float = 0.35,
        t2: float = 0.6,
        q: int = 3,
        seed: int = 41,
        max_block_size: Optional[int] = None,
    ) -> None:
        if not 0.0 <= t1 <= t2 <= 1.0:
            raise ValueError(
                f"need 0 <= t1 <= t2 <= 1, got t1={t1}, t2={t2}"
            )
        self.t1 = t1
        self.t2 = t2
        self.q = q
        self.seed = seed
        self.max_block_size = max_block_size

    def _build_canopies(self, dataset: Dataset) -> List[Set[int]]:
        keys = _qgram_keys(dataset, self.q)
        pool = sorted(keys)
        rng = random.Random(self.seed)
        canopies: List[Set[int]] = []
        while pool:
            seed_rid = pool.pop(rng.randrange(len(pool)))
            seed_keys = keys[seed_rid]
            canopy = {seed_rid}
            removed: Set[int] = set()
            for rid in pool:
                similarity = _jaccard(seed_keys, keys[rid])
                if similarity >= self.t1:
                    canopy.add(rid)
                    if similarity >= self.t2:
                        removed.add(rid)
            if removed:
                pool = [rid for rid in pool if rid not in removed]
            canopies.append(canopy)
        return canopies

    def run(self, dataset: Dataset) -> BlockingResult:
        result = BlockingResult()
        for canopy in self._build_canopies(dataset):
            if len(canopy) < 2:
                continue
            if self.max_block_size is not None and len(canopy) > self.max_block_size:
                continue
            result.add_block(Block(records=frozenset(canopy)))
        return result


class ExtendedCanopyClustering(CanopyClustering):
    """ECaCl: CaCl plus assignment of unblocked records to canopies."""

    name = "ECaCl"

    def run(self, dataset: Dataset) -> BlockingResult:
        keys = _qgram_keys(dataset, self.q)
        canopies = self._build_canopies(dataset)
        blocked = set().union(*(c for c in canopies if len(c) >= 2)) if canopies else set()
        leftovers = [rid for rid in keys if rid not in blocked]
        multi = [c for c in canopies if len(c) >= 2]
        if multi:
            # Representative key set per canopy: union of member keys.
            canopy_keys = [
                frozenset().union(*(keys[rid] for rid in canopy))
                for canopy in multi
            ]
            for rid in leftovers:
                best_index = -1
                best_score = 0.0
                for index, ck in enumerate(canopy_keys):
                    score = _jaccard(keys[rid], ck)
                    if score > best_score:
                        best_score = score
                        best_index = index
                if best_index >= 0 and best_score > 0.0:
                    multi[best_index].add(rid)
        result = BlockingResult()
        for canopy in multi:
            if len(canopy) < 2:
                continue
            if self.max_block_size is not None and len(canopy) > self.max_block_size:
                continue
            result.add_block(Block(records=frozenset(canopy)))
        return result
