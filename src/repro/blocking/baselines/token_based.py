"""Token- and q-gram-based baselines: StBl, ACl, QGBl, EQGBl (Table 10).

* **StBl** — Standard Blocking (Christen'12): one block per attribute
  value shared by more than one record.
* **ACl** — Attribute Clustering (Papadakis'13): similar attribute
  values (``John``/``Jhon``) are grouped into one key before standard
  blocking.
* **QGBl** — Q-Grams Blocking (Gravano'01): each attribute value is
  replaced by its q-grams, each q-gram is a key.
* **EQGBl** — Extended Q-Grams: keys are concatenations of q-gram
  subsets (all combinations of ``ceil(L * T)`` of the ``L`` grams),
  increasing key discriminativeness.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.blocking.base import Block, BlockingAlgorithm, BlockingResult
from repro.blocking.baselines.common import KeyedBlocking, blocks_from_keys
from repro.records.dataset import Dataset
from repro.records.itembag import Item, ItemType
from repro.similarity.strings import dice_qgrams, qgrams

__all__ = [
    "StandardBlocking",
    "AttributeClustering",
    "QGramsBlocking",
    "ExtendedQGramsBlocking",
]


class StandardBlocking(KeyedBlocking):
    """StBl: one block per (attribute, value) key."""

    name = "StBl"

    def keys_for(self, items: FrozenSet[Item]) -> Iterable[Hashable]:
        return items


class QGramsBlocking(KeyedBlocking):
    """QGBl: one block per (attribute, q-gram of the value)."""

    name = "QGBl"

    def __init__(self, q: int = 3, max_block_size: Optional[int] = None) -> None:
        super().__init__(max_block_size)
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = q

    def keys_for(self, items: FrozenSet[Item]) -> Iterable[Hashable]:
        keys = set()
        for item in items:
            for gram in qgrams(item.value.lower(), self.q, pad=False):
                keys.add((item.type.prefix, gram))
        return keys


class ExtendedQGramsBlocking(KeyedBlocking):
    """EQGBl: keys concatenate combinations of ceil(L*T) q-grams.

    ``threshold`` is the survey's T parameter (default 0.95); a
    combination cap keeps pathological long values tractable.
    """

    name = "EQGBl"

    def __init__(
        self,
        q: int = 3,
        threshold: float = 0.95,
        max_combinations: int = 32,
        max_block_size: Optional[int] = None,
    ) -> None:
        super().__init__(max_block_size)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.q = q
        self.threshold = threshold
        self.max_combinations = max_combinations

    def keys_for(self, items: FrozenSet[Item]) -> Iterable[Hashable]:
        keys = set()
        for item in items:
            grams = sorted(qgrams(item.value.lower(), self.q, pad=False))
            if not grams:
                continue
            take = max(1, int(-(-len(grams) * self.threshold // 1)))  # ceil
            n_combos = 1
            for i in range(take):
                n_combos = n_combos * (len(grams) - i) // (i + 1)
            if n_combos > self.max_combinations:
                keys.add((item.type.prefix, "".join(grams)))
                continue
            for combo in combinations(grams, take):
                keys.add((item.type.prefix, "".join(combo)))
        return keys


class AttributeClustering(BlockingAlgorithm):
    """ACl: cluster similar values per attribute, then standard-block.

    Values of the same item type whose q-gram Dice similarity reaches
    ``threshold`` share a key. Clustering is greedy: each value joins the
    first existing cluster whose representative it matches.
    """

    name = "ACl"

    def __init__(
        self,
        threshold: float = 0.8,
        q: int = 2,
        max_block_size: Optional[int] = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.q = q
        self.max_block_size = max_block_size

    def run(self, dataset: Dataset) -> BlockingResult:
        cluster_of = self._cluster_values(dataset)
        record_keys: Dict[int, FrozenSet[Hashable]] = {}
        for rid, items in dataset.item_bags.items():
            keys = set()
            for item in items:
                keys.add((item.type.prefix, cluster_of[(item.type, item.value)]))
            record_keys[rid] = frozenset(keys)
        result = BlockingResult()
        for members in blocks_from_keys(
            record_keys, max_block_size=self.max_block_size
        ):
            result.add_block(Block(records=members))
        return result

    def _cluster_values(
        self, dataset: Dataset
    ) -> Dict[Tuple[ItemType, str], int]:
        """Greedy per-type clustering of attribute values."""
        by_type: Dict[ItemType, List[str]] = {}
        for item in dataset.item_index:
            by_type.setdefault(item.type, []).append(item.value)
        cluster_of: Dict[Tuple[ItemType, str], int] = {}
        next_cluster = 0
        for item_type in sorted(by_type, key=lambda t: t.prefix):
            representatives: List[Tuple[str, int]] = []
            for value in sorted(by_type[item_type]):
                assigned = None
                for representative, cluster_id in representatives:
                    if dice_qgrams(
                        value.lower(), representative.lower(), self.q
                    ) >= self.threshold:
                        assigned = cluster_id
                        break
                if assigned is None:
                    assigned = next_cluster
                    next_cluster += 1
                    representatives.append((value, assigned))
                cluster_of[(item_type, value)] = assigned
        return cluster_of
