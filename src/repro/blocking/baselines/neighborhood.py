"""Sorting- and suffix-based baselines: ESoNe, SuAr, ESuAr (Table 10).

* **ESoNe** — Extended Sorted Neighborhood (Christen'12): attribute
  values are sorted alphabetically; a fixed-size window slides over the
  sorted *values* and all records holding any value inside the window
  form a block.
* **SuAr** — Suffix Arrays (Aizawa & Oyama'05): each value contributes
  its suffixes of length >= ``min_length``; frequent suffixes (block
  bigger than ``max_frequency``) are discarded for robustness.
* **ESuAr** — Extended Suffix Arrays: all substrings of length >=
  ``min_length``, not just suffixes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set

from repro.blocking.base import Block, BlockingAlgorithm, BlockingResult
from repro.blocking.baselines.common import KeyedBlocking
from repro.records.dataset import Dataset
from repro.records.itembag import Item

__all__ = [
    "ExtendedSortedNeighborhood",
    "SuffixArraysBlocking",
    "ExtendedSuffixArraysBlocking",
]


class ExtendedSortedNeighborhood(BlockingAlgorithm):
    """ESoNe: sliding window over the sorted distinct attribute values."""

    name = "ESoNe"

    def __init__(self, window: int = 3, max_block_size: Optional[int] = None) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = window
        self.max_block_size = max_block_size

    def run(self, dataset: Dataset) -> BlockingResult:
        postings: Dict[str, Set[int]] = {}
        for rid, items in dataset.item_bags.items():
            for item in items:
                postings.setdefault(item.value.lower(), set()).add(rid)
        ordered = sorted(postings)
        result = BlockingResult()
        seen: Set[FrozenSet[int]] = set()
        for start in range(max(1, len(ordered) - self.window + 1)):
            members: Set[int] = set()
            for value in ordered[start:start + self.window]:
                members |= postings[value]
            block = frozenset(members)
            if len(block) < 2 or block in seen:
                continue
            if self.max_block_size is not None and len(block) > self.max_block_size:
                continue
            seen.add(block)
            result.add_block(Block(records=block))
        return result


class SuffixArraysBlocking(KeyedBlocking):
    """SuAr: suffixes of length >= min_length as blocking keys."""

    name = "SuAr"

    def __init__(
        self,
        min_length: int = 6,
        max_frequency: int = 18,
        max_block_size: Optional[int] = None,
    ) -> None:
        # max_frequency is the classic suffix-array big-block cutoff; an
        # explicit max_block_size would be redundant but is accepted for
        # interface uniformity (the tighter of the two applies).
        cap = max_frequency if max_block_size is None else min(
            max_frequency, max_block_size
        )
        super().__init__(max_block_size=cap)
        if min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {min_length}")
        self.min_length = min_length

    def keys_for(self, items: FrozenSet[Item]) -> Iterable[Hashable]:
        keys = set()
        for item in items:
            value = item.value.lower()
            if len(value) < self.min_length:
                keys.add(value)
                continue
            for start in range(len(value) - self.min_length + 1):
                keys.add(value[start:])
        return keys


class ExtendedSuffixArraysBlocking(KeyedBlocking):
    """ESuAr: all substrings of length >= min_length as blocking keys."""

    name = "ESuAr"

    def __init__(
        self,
        min_length: int = 6,
        max_frequency: int = 39,
        max_block_size: Optional[int] = None,
    ) -> None:
        cap = max_frequency if max_block_size is None else min(
            max_frequency, max_block_size
        )
        super().__init__(max_block_size=cap)
        if min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {min_length}")
        self.min_length = min_length

    def keys_for(self, items: FrozenSet[Item]) -> Iterable[Hashable]:
        keys = set()
        for item in items:
            value = item.value.lower()
            if len(value) < self.min_length:
                keys.add(value)
                continue
            for length in range(self.min_length, len(value) + 1):
                for start in range(len(value) - length + 1):
                    keys.add(value[start:start + length])
        return keys
