"""The ten baseline blocking techniques compared in Table 10."""

from __future__ import annotations

from repro.blocking.baselines.canopy import CanopyClustering, ExtendedCanopyClustering
from repro.blocking.baselines.neighborhood import (
    ExtendedSortedNeighborhood,
    ExtendedSuffixArraysBlocking,
    SuffixArraysBlocking,
)
from repro.blocking.baselines.token_based import (
    AttributeClustering,
    ExtendedQGramsBlocking,
    QGramsBlocking,
    StandardBlocking,
)
from repro.blocking.baselines.typimatch import TYPiMatch

#: Table 10 row order (excluding MFIBlocks itself).
ALL_BASELINES = (
    StandardBlocking,
    AttributeClustering,
    CanopyClustering,
    ExtendedCanopyClustering,
    QGramsBlocking,
    ExtendedQGramsBlocking,
    ExtendedSortedNeighborhood,
    SuffixArraysBlocking,
    ExtendedSuffixArraysBlocking,
    TYPiMatch,
)

__all__ = [
    "CanopyClustering",
    "ExtendedCanopyClustering",
    "ExtendedSortedNeighborhood",
    "ExtendedSuffixArraysBlocking",
    "SuffixArraysBlocking",
    "AttributeClustering",
    "ExtendedQGramsBlocking",
    "QGramsBlocking",
    "StandardBlocking",
    "TYPiMatch",
    "ALL_BASELINES",
]
