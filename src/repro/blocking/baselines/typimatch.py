"""TYPiMatch baseline (Ma & Tran, WSDM'13) — Table 10's last row.

TYPiMatch learns entity *types* from a token co-occurrence graph: tokens
that frequently co-occur form maximal cliques, each clique defines a
type, records are assigned to the types whose tokens they contain, and
each type's (large) block is decomposed by standard blocking within it.

This implementation follows that outline: the co-occurrence graph keeps
an edge between two tokens when their conditional co-occurrence ratio
reaches ``epsilon``; ``networkx`` enumerates maximal cliques (bounded
for tractability); standard blocking then runs inside each type's
record set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from repro.blocking.base import Block, BlockingAlgorithm, BlockingResult
from repro.blocking.baselines.common import blocks_from_keys
from repro.records.dataset import Dataset

__all__ = ["TYPiMatch"]


class TYPiMatch(BlockingAlgorithm):
    """Type-specific blocking via token co-occurrence cliques."""

    name = "TYPiMatch"

    def __init__(
        self,
        epsilon: float = 0.35,
        min_token_support: int = 2,
        max_cliques: int = 200,
        max_block_size: Optional[int] = None,
    ) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.epsilon = epsilon
        self.min_token_support = min_token_support
        self.max_cliques = max_cliques
        self.max_block_size = max_block_size

    def run(self, dataset: Dataset) -> BlockingResult:
        tokens_of: Dict[int, FrozenSet[str]] = {
            rid: frozenset(item.value.lower() for item in items)
            for rid, items in dataset.item_bags.items()
        }
        graph = self._cooccurrence_graph(tokens_of)
        types = self._types(graph)

        result = BlockingResult()
        seen: Set[FrozenSet[int]] = set()
        for type_tokens in types:
            members = [
                rid
                for rid, tokens in tokens_of.items()
                if len(tokens & type_tokens) >= 2
            ]
            if len(members) < 2:
                continue
            # Decompose each type's record set by standard blocking.
            record_keys = {
                rid: frozenset(dataset.item_bags[rid]) for rid in members
            }
            for block_members in blocks_from_keys(
                record_keys, max_block_size=self.max_block_size
            ):
                if block_members in seen:
                    continue
                seen.add(block_members)
                result.add_block(Block(records=block_members))
        return result

    def _cooccurrence_graph(
        self, tokens_of: Dict[int, FrozenSet[str]]
    ) -> "nx.Graph":
        support: Dict[str, int] = {}
        co_count: Dict[Tuple[str, str], int] = {}
        for tokens in tokens_of.values():
            ordered = sorted(tokens)
            for token in ordered:
                support[token] = support.get(token, 0) + 1
            for i, a in enumerate(ordered):
                for b in ordered[i + 1:]:
                    co_count[(a, b)] = co_count.get((a, b), 0) + 1

        graph = nx.Graph()
        for (a, b), count in co_count.items():
            if support[a] < self.min_token_support:
                continue
            if support[b] < self.min_token_support:
                continue
            ratio = count / min(support[a], support[b])
            if ratio >= self.epsilon:
                graph.add_edge(a, b)
        return graph

    def _types(self, graph: "nx.Graph") -> List[FrozenSet[str]]:
        types: List[FrozenSet[str]] = []
        for clique in nx.find_cliques(graph):
            if len(clique) < 2:
                continue
            types.append(frozenset(clique))
            if len(types) >= self.max_cliques:
                break
        return types
