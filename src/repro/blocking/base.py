"""Common blocking types: blocks, candidate pairs, and the algorithm ABC.

Terminology follows the paper: *blocking* creates (possibly overlapping)
groups of records; the Cartesian product within each group yields the
*candidate pairs* passed downstream. In the uncertain-ER model the
blocking step doubles as the final soft clustering (Section 3.2), so
blocks carry their key itemset and quality score.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.records.dataset import Dataset
from repro.records.itembag import Item

__all__ = [
    "Block",
    "BlockingResult",
    "BlockingAlgorithm",
    "canonical_pair",
    "pairs_of_block",
]

Pair = Tuple[int, int]


def canonical_pair(a: int, b: int) -> Pair:
    """Order a record-id pair canonically (smaller id first)."""
    if a == b:
        raise ValueError(f"a pair must join two distinct records, got {a} twice")
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class Block:
    """A block: its member record ids, optional key itemset, and score.

    ``key`` is the MFI that generated the block for MFIBlocks, or a
    human-readable surrogate for baseline algorithms (e.g. the blocking
    key value). ``score`` is the block-quality score used by the CS/SN
    filters; baselines that do not score blocks leave it at 0.
    """

    records: FrozenSet[int]
    key: FrozenSet[Item] = frozenset()
    score: float = 0.0

    def __post_init__(self) -> None:
        if len(self.records) < 2:
            raise ValueError("a block must contain at least two records")

    def __len__(self) -> int:
        return len(self.records)

    def pairs(self) -> Iterator[Pair]:
        """All candidate pairs inside the block, canonicalized."""
        members = sorted(self.records)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                yield (a, b)


def pairs_of_block(records: Iterable[int]) -> Iterator[Pair]:
    """Candidate pairs of an arbitrary record-id collection."""
    members = sorted(set(records))
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            yield (a, b)


@dataclass
class BlockingResult:
    """The outcome of a blocking run.

    ``pair_scores`` maps each candidate pair to the best (highest) score
    among the blocks that produced it — the ranked-resolution signal the
    uncertain-ER model keeps instead of a crisp match decision.

    ``degraded`` marks a blocking cut short by an exhausted
    :class:`~repro.resilience.budgets.StageBudget`: the blocks present
    are valid, but coverage is best-so-far rather than complete
    (progressive/anytime semantics). Downstream consumers must
    propagate the flag, never drop it.
    """

    blocks: List[Block] = field(default_factory=list)
    pair_scores: Dict[Pair, float] = field(default_factory=dict)
    degraded: bool = False

    @property
    def candidate_pairs(self) -> FrozenSet[Pair]:
        return frozenset(self.pair_scores)

    def add_block(self, block: Block) -> None:
        self.blocks.append(block)
        for pair in block.pairs():
            current = self.pair_scores.get(pair)
            if current is None or block.score > current:
                self.pair_scores[pair] = block.score

    def ranked_pairs(self) -> List[Tuple[Pair, float]]:
        """Candidate pairs sorted by descending score (ties: by pair id)."""
        return sorted(self.pair_scores.items(), key=lambda kv: (-kv[1], kv[0]))

    def comparisons(self) -> int:
        """Number of distinct pairwise comparisons the blocking implies."""
        return len(self.pair_scores)

    def neighborhoods(self) -> Dict[int, int]:
        """Per-record count of distinct records it is paired with."""
        counts: Dict[int, set] = {}
        for a, b in self.pair_scores:
            counts.setdefault(a, set()).add(b)
            counts.setdefault(b, set()).add(a)
        return {rid: len(neighbors) for rid, neighbors in counts.items()}


class BlockingAlgorithm(abc.ABC):
    """Interface shared by MFIBlocks and the Table-10 baselines."""

    #: Short name used in reports (e.g. "MFIBlocks", "StBl").
    name: str = "blocking"

    @abc.abstractmethod
    def run(self, dataset: Dataset) -> BlockingResult:
        """Block the dataset and return blocks plus scored candidate pairs."""

    def run_traced(
        self, dataset: Dataset, tracer: Optional[Tracer] = None
    ) -> BlockingResult:
        """Run under a span with block/pair counters.

        Baseline algorithms get uniform instrumentation for free:
        wall time under ``blocking.<name>`` plus ``blocking.blocks`` /
        ``blocking.candidate_pairs`` counters, so Table-10 style
        comparisons can chart cost next to quality. MFIBlocks callers
        wanting deep (per-minsup, mining) spans should instead pass a
        tracer to its constructor.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        with tracer.span(f"blocking.{self.name}", algorithm=self.name):
            result = self.run(dataset)
        tracer.count("blocking.blocks", len(result.blocks))
        tracer.count("blocking.candidate_pairs", len(result.pair_scores))
        return result

    def candidate_pairs(self, dataset: Dataset) -> FrozenSet[Pair]:
        """Convenience: just the candidate pair set."""
        return self.run(dataset).candidate_pairs
