"""ADTree classification substrate (Freund & Mason, as used via Weka in
the paper): model, boosting learner, training harness, tree printer."""

from __future__ import annotations

from repro.classify.adtree import (
    ADTreeModel,
    CategoricalCondition,
    Condition,
    NumericCondition,
    PredictionNode,
    SplitterNode,
)
from repro.classify.boosting import ADTreeLearner
from repro.classify.cart import CartLearner, CartModel
from repro.classify.printer import render_tree
from repro.classify.training import (
    EvaluationResult,
    OneVsRestADTree,
    PairClassifier,
    cross_validate,
    evaluate_model,
    pair_features,
    train_test_split,
)

__all__ = [
    "ADTreeModel",
    "CategoricalCondition",
    "Condition",
    "NumericCondition",
    "PredictionNode",
    "SplitterNode",
    "ADTreeLearner",
    "CartLearner",
    "CartModel",
    "render_tree",
    "EvaluationResult",
    "OneVsRestADTree",
    "PairClassifier",
    "cross_validate",
    "evaluate_model",
    "pair_features",
    "train_test_split",
]
