"""A CART-style binary decision tree — the classifier ablation baseline.

The paper argues for ADTrees over standard decision trees because of
their robustness "to disparity between record attributes" (sparse,
schema-diverse features) and their native confidence score. This module
provides the standard-decision-tree side of that argument: a greedy
Gini-impurity tree over the same feature vectors.

Missing values are routed down the *majority* branch of each split (a
common CART heuristic) — unlike the ADTree, which simply skips the
splitter, a standard tree must commit, which is exactly the brittleness
the ablation benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.contracts import deterministic
from repro.similarity.features import FeatureVector

__all__ = ["CartLearner", "CartModel"]


@dataclass
class _Leaf:
    """Terminal node: positive-class probability."""

    probability: float


@dataclass
class _Split:
    """Internal node: a test plus yes/no subtrees."""

    feature: str
    threshold: Optional[float]  # numeric test: value < threshold
    category: Optional[str]  # categorical test: value == category
    missing_goes_yes: bool
    yes: Union["_Split", _Leaf]
    no: Union["_Split", _Leaf]

    def route(self, features: FeatureVector) -> Union["_Split", _Leaf]:
        value = features.get(self.feature)
        if value is None:
            branch = self.missing_goes_yes
        elif self.threshold is not None:
            branch = float(value) < self.threshold
        else:
            branch = value == self.category
        return self.yes if branch else self.no


class CartModel:
    """A trained CART tree over pairwise feature vectors."""

    def __init__(self, root: Union[_Split, _Leaf]) -> None:
        self.root = root

    def probability(self, features: FeatureVector) -> float:
        """Positive-class probability for one feature vector."""
        node = self.root
        while isinstance(node, _Split):
            node = node.route(features)
        return node.probability

    def score(self, features: FeatureVector) -> float:
        """Centered score in [-0.5, 0.5] so 0 is the decision boundary,
        mirroring the ADTree's sign-based interface."""
        return self.probability(features) - 0.5

    def classify(self, features: FeatureVector, threshold: float = 0.0) -> bool:
        return self.score(features) > threshold

    def depth(self) -> int:
        def walk(node: Union[_Split, _Leaf]) -> int:
            if isinstance(node, _Leaf):
                return 0
            return 1 + max(walk(node.yes), walk(node.no))

        return walk(self.root)

    def n_leaves(self) -> int:
        def walk(node: Union[_Split, _Leaf]) -> int:
            if isinstance(node, _Leaf):
                return 1
            return walk(node.yes) + walk(node.no)

        return walk(self.root)


def _gini(n_pos: int, n_neg: int) -> float:
    total = n_pos + n_neg
    if total == 0:
        return 0.0
    p = n_pos / total
    return 2.0 * p * (1.0 - p)


class CartLearner:
    """Greedy Gini-impurity CART learner."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 8,
        min_samples_leaf: int = 3,
        max_numeric_thresholds: int = 16,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_numeric_thresholds = max_numeric_thresholds

    @deterministic
    def fit(
        self,
        features: Sequence[FeatureVector],
        labels: Sequence[bool],
    ) -> CartModel:
        if len(features) != len(labels):
            raise ValueError("features and labels lengths disagree")
        if not features:
            raise ValueError("cannot fit on an empty training set")
        names = sorted({name for vector in features for name in vector})
        indices = list(range(len(features)))
        root = self._build(features, labels, indices, names, depth=0)
        return CartModel(root)

    # -- internals -----------------------------------------------------------

    def _leaf(self, labels: Sequence[bool], indices: List[int]) -> _Leaf:
        n_pos = sum(1 for i in indices if labels[i])
        return _Leaf(n_pos / len(indices) if indices else 0.5)

    def _build(
        self,
        features: Sequence[FeatureVector],
        labels: Sequence[bool],
        indices: List[int],
        names: List[str],
        depth: int,
    ) -> Union[_Split, _Leaf]:
        n_pos = sum(1 for i in indices if labels[i])
        n_neg = len(indices) - n_pos
        if (
            depth >= self.max_depth
            or len(indices) < self.min_samples_split
            or n_pos == 0
            or n_neg == 0
        ):
            return self._leaf(labels, indices)

        best = self._best_split(features, labels, indices, names)
        if best is None:
            return self._leaf(labels, indices)
        feature, threshold, category, yes_idx, no_idx, missing_yes = best
        return _Split(
            feature=feature,
            threshold=threshold,
            category=category,
            missing_goes_yes=missing_yes,
            yes=self._build(features, labels, yes_idx, names, depth + 1),
            no=self._build(features, labels, no_idx, names, depth + 1),
        )

    def _candidate_tests(
        self,
        features: Sequence[FeatureVector],
        indices: List[int],
        name: str,
    ) -> List[Tuple[Optional[float], Optional[str]]]:
        values = [features[i].get(name) for i in indices]
        present = [v for v in values if v is not None]
        if not present:
            return []
        sample = present[0]
        tests: List[Tuple[Optional[float], Optional[str]]] = []
        if isinstance(sample, (int, float)) and not isinstance(sample, bool):
            unique = sorted({float(v) for v in present})
            if len(unique) < 2:
                return []
            midpoints = [
                (a + b) / 2.0 for a, b in zip(unique[:-1], unique[1:])
            ]
            if len(midpoints) > self.max_numeric_thresholds:
                step = len(midpoints) / self.max_numeric_thresholds
                midpoints = [
                    midpoints[int(i * step)]
                    for i in range(self.max_numeric_thresholds)
                ]
            tests.extend((m, None) for m in midpoints)
        else:
            for category in sorted({str(v) for v in present}):
                tests.append((None, category))
        return tests

    def _best_split(
        self,
        features: Sequence[FeatureVector],
        labels: Sequence[bool],
        indices: List[int],
        names: List[str],
    ) -> Optional[
        Tuple[str, Optional[float], Optional[str], List[int], List[int], bool]
    ]:
        parent_gini = _gini(
            sum(1 for i in indices if labels[i]),
            sum(1 for i in indices if not labels[i]),
        )
        best_gain = 1e-9
        best: Optional[
            Tuple[str, Optional[float], Optional[str], List[int], List[int], bool]
        ] = None
        for name in names:
            for threshold, category in self._candidate_tests(
                features, indices, name
            ):
                yes_idx: List[int] = []
                no_idx: List[int] = []
                missing_idx: List[int] = []
                for i in indices:
                    value = features[i].get(name)
                    if value is None:
                        missing_idx.append(i)
                    elif threshold is not None:
                        (yes_idx if float(value) < threshold else no_idx).append(i)
                    else:
                        (yes_idx if value == category else no_idx).append(i)
                if not yes_idx or not no_idx:
                    continue
                # Missing values follow the majority branch.
                missing_yes = len(yes_idx) >= len(no_idx)
                (yes_idx if missing_yes else no_idx).extend(missing_idx)
                if (
                    len(yes_idx) < self.min_samples_leaf
                    or len(no_idx) < self.min_samples_leaf
                ):
                    continue
                gini_yes = _gini(
                    sum(1 for i in yes_idx if labels[i]),
                    sum(1 for i in yes_idx if not labels[i]),
                )
                gini_no = _gini(
                    sum(1 for i in no_idx if labels[i]),
                    sum(1 for i in no_idx if not labels[i]),
                )
                total = len(yes_idx) + len(no_idx)
                weighted = (
                    len(yes_idx) / total * gini_yes
                    + len(no_idx) / total * gini_no
                )
                gain = parent_gini - weighted
                if gain > best_gain:
                    best_gain = gain
                    best = (name, threshold, category, yes_idx, no_idx,
                            missing_yes)
        return best
