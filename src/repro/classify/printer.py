"""Render a learned ADTree in the paper's Tables 7-8 text format.

The published models are printed as an indented outline:

    : -0.289
    | (1)sameFFN = no: -1.314
    | | (6)MFNdist < 0.728: -0.718
    | | (6)MFNdist >= 0.728: 1.528
    | (1)sameFFN != no: 0.539
    ...

— the root prediction value first, then each splitter's two branches
with the boosting-round order in parentheses, nested under the
prediction node they were attached to.
"""

from __future__ import annotations

from typing import List

from repro.classify.adtree import ADTreeModel, PredictionNode

__all__ = ["render_tree"]


def render_tree(model: ADTreeModel, indent: str = "| ") -> str:
    """Return the tree in the paper's indented text format."""
    lines: List[str] = [f": {model.root.value:.3f}"]

    def walk(node: PredictionNode, depth: int) -> None:
        for splitter in sorted(node.splitters, key=lambda s: s.order):
            prefix = indent * depth
            for branch, child in ((True, splitter.yes), (False, splitter.no)):
                description = splitter.condition.describe(branch)
                lines.append(
                    f"{prefix}({splitter.order}){description}: {child.value:.3f}"
                )
                walk(child, depth + 1)

    walk(model.root, 1)
    return "\n".join(lines)
