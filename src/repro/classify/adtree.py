"""Alternating Decision Tree model (Freund & Mason, ICML'99).

An ADTree alternates *prediction nodes* (real-valued confidences) and
*splitter nodes* (tests). Classification sums the prediction values along
**every** reachable path — a splitter whose feature is missing is simply
not traversed, which is the graceful missing-value handling the paper
relies on for its schema-diverse data (Section 4.2).

The raw score doubles as a confidence: the paper "disregards the sign
operation and uses the resulting score ... as the basis of a ranked
decision instead of a deterministic classification".

This module is the *model*; learning lives in
:mod:`repro.classify.boosting`.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.contracts import pure
from repro.similarity.features import FeatureVector

__all__ = [
    "Condition",
    "NumericCondition",
    "CategoricalCondition",
    "PredictionNode",
    "SplitterNode",
    "ADTreeModel",
]


class Condition(abc.ABC):
    """A splitter test over one feature.

    ``evaluate`` returns ``True``/``False`` for present values and
    ``None`` when the feature is missing (the splitter is then skipped).
    """

    feature: str

    @abc.abstractmethod
    def evaluate(self, features: FeatureVector) -> Optional[bool]:
        """Outcome of the test, or None if the feature is missing."""

    @abc.abstractmethod
    def describe(self, branch: bool) -> str:
        """Human-readable form of the yes (True) / no (False) branch."""

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Condition":
        kind = payload["kind"]
        if kind == "numeric":
            return NumericCondition(payload["feature"], payload["threshold"])
        if kind == "categorical":
            return CategoricalCondition(payload["feature"], payload["value"])
        raise ValueError(f"unknown condition kind: {kind!r}")


@dataclass(frozen=True)
class NumericCondition(Condition):
    """``feature < threshold`` (yes branch) vs ``feature >= threshold``."""

    feature: str
    threshold: float

    def evaluate(self, features: FeatureVector) -> Optional[bool]:
        value = features.get(self.feature)
        if value is None:
            return None
        return float(value) < self.threshold

    def describe(self, branch: bool) -> str:
        op = "<" if branch else ">="
        return f"{self.feature} {op} {self.threshold:.3f}"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "numeric", "feature": self.feature,
                "threshold": self.threshold}


@dataclass(frozen=True)
class CategoricalCondition(Condition):
    """``feature = value`` (yes branch) vs ``feature != value``."""

    feature: str
    value: str

    def evaluate(self, features: FeatureVector) -> Optional[bool]:
        observed = features.get(self.feature)
        if observed is None:
            return None
        return observed == self.value

    def describe(self, branch: bool) -> str:
        op = "=" if branch else "!="
        return f"{self.feature} {op} {self.value}"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "categorical", "feature": self.feature,
                "value": self.value}


@dataclass
class PredictionNode:
    """A confidence contribution plus any splitters attached below it."""

    value: float
    splitters: List["SplitterNode"] = field(default_factory=list)


@dataclass
class SplitterNode:
    """A test with yes/no prediction children; ``order`` is the boosting
    round that created it (the paper's ``(1)``, ``(2)``, ... labels)."""

    order: int
    condition: Condition
    yes: PredictionNode
    no: PredictionNode


class ADTreeModel:
    """A learned alternating decision tree."""

    def __init__(self, root: PredictionNode) -> None:
        self.root = root

    # -- scoring ----------------------------------------------------------------

    @pure
    def score(self, features: FeatureVector) -> float:
        """Sum of prediction values along all reachable paths.

        Missing features skip their splitter: "the computation considers
        only reachable decision nodes", so accuracy degrades gracefully
        on sparse records.
        """
        return self._score_node(self.root, features)

    def _score_node(self, node: PredictionNode, features: FeatureVector) -> float:
        total = node.value
        for splitter in node.splitters:
            outcome = splitter.condition.evaluate(features)
            if outcome is None:
                continue
            child = splitter.yes if outcome else splitter.no
            total += self._score_node(child, features)
        return total

    def classify(self, features: FeatureVector, threshold: float = 0.0) -> bool:
        """Default decision rule: score above ``threshold`` is a match."""
        return self.score(features) > threshold

    # -- introspection ------------------------------------------------------------

    def iter_splitters(self) -> Iterator[SplitterNode]:
        """All splitter nodes, in creation (boosting-round) order."""
        collected: List[SplitterNode] = []

        def walk(node: PredictionNode) -> None:
            for splitter in node.splitters:
                collected.append(splitter)
                walk(splitter.yes)
                walk(splitter.no)

        walk(self.root)
        collected.sort(key=lambda splitter: splitter.order)
        return iter(collected)

    def features_used(self) -> List[str]:
        """Distinct feature names the tree tests, in first-use order.

        The paper reports the learner "choosing only 8-10 features of the
        48 defined".
        """
        seen: List[str] = []
        for splitter in self.iter_splitters():
            name = splitter.condition.feature
            if name not in seen:
                seen.append(name)
        return seen

    def n_splitters(self) -> int:
        return sum(1 for _ in self.iter_splitters())

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        def node_dict(node: PredictionNode) -> Dict[str, Any]:
            return {
                "value": node.value,
                "splitters": [
                    {
                        "order": splitter.order,
                        "condition": splitter.condition.to_dict(),
                        "yes": node_dict(splitter.yes),
                        "no": node_dict(splitter.no),
                    }
                    for splitter in node.splitters
                ],
            }

        return {"root": node_dict(self.root)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ADTreeModel":
        def build(entry: Dict[str, Any]) -> PredictionNode:
            node = PredictionNode(entry["value"])
            for raw in entry.get("splitters", ()):
                node.splitters.append(
                    SplitterNode(
                        order=raw["order"],
                        condition=Condition.from_dict(raw["condition"]),
                        yes=build(raw["yes"]),
                        no=build(raw["no"]),
                    )
                )
            return node

        return cls(build(payload["root"]))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ADTreeModel":
        return cls.from_dict(json.loads(Path(path).read_text()))
