"""Training and evaluation harness for the pair classifier.

Provides the machinery behind the classifier experiments (Section 6.4):

* feature extraction for tagged candidate pairs;
* deterministic train/test splits and k-fold cross-validated accuracy
  (the paper reports ~95% accuracy across configurations);
* :class:`PairClassifier` — the dataset-facing wrapper that scores and
  ranks candidate pairs with a trained ADTree;
* :class:`OneVsRestADTree` — the three-class variant used by Table 5's
  "identify Maybe values" condition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.classify.adtree import ADTreeModel
from repro.classify.boosting import ADTreeLearner
from repro.contracts import deterministic, ordered_output, seeded
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.executor import Executor
from repro.parallel.merge import merge_scored_chunks
from repro.parallel.shared import publish_shared_state
from repro.parallel.work import classify_pair_chunk, classify_pair_chunk_shared
from repro.records.dataset import Dataset
from repro.similarity.features import (
    FeatureVector,
    extract_features,
    extract_features_batch,
)

__all__ = [
    "EvaluationResult",
    "pair_features",
    "train_test_split",
    "evaluate_model",
    "cross_validate",
    "PairClassifier",
    "OneVsRestADTree",
]

Pair = Tuple[int, int]

T = TypeVar("T")


@dataclass(frozen=True)
class EvaluationResult:
    """Binary-classification quality over a labeled pair set."""

    n: int
    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.n if self.n else 0.0

    @property
    def precision(self) -> float:
        predicted = self.tp + self.fp
        return self.tp / predicted if predicted else 0.0

    @property
    def recall(self) -> float:
        actual = self.tp + self.fn
        return self.tp / actual if actual else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def pair_features(
    dataset: Dataset,
    pairs: Iterable[Pair],
    names: Optional[Tuple[str, ...]] = None,
) -> List[FeatureVector]:
    """Extract the 48 (or a subset of) features for each candidate pair."""
    return [
        extract_features(dataset[a], dataset[b], names=names) for a, b in pairs
    ]


@seeded(param="seed")
def train_test_split(
    items: Sequence[T], test_fraction: float = 0.3, seed: int = 11
) -> Tuple[List[T], List[T]]:
    """Deterministic shuffle split; returns (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    indices = list(range(len(items)))
    random.Random(seed).shuffle(indices)
    n_test = max(1, int(round(len(items) * test_fraction)))
    test_idx = set(indices[:n_test])
    train = [items[i] for i in indices if i not in test_idx]
    test = [items[i] for i in sorted(test_idx)]
    return train, test


def evaluate_model(
    model: ADTreeModel,
    features: Sequence[FeatureVector],
    labels: Sequence[bool],
    threshold: float = 0.0,
) -> EvaluationResult:
    """Confusion counts of a trained model on labeled feature vectors."""
    tp = fp = tn = fn = 0
    for vector, label in zip(features, labels):
        predicted = model.score(vector) > threshold
        if predicted and label:
            tp += 1
        elif predicted and not label:
            fp += 1
        elif not predicted and not label:
            tn += 1
        else:
            fn += 1
    return EvaluationResult(len(features), tp, fp, tn, fn)


@seeded(param="seed")
def cross_validate(
    features: Sequence[FeatureVector],
    labels: Sequence[bool],
    n_folds: int = 5,
    seed: int = 13,
    learner: Optional[ADTreeLearner] = None,
) -> List[EvaluationResult]:
    """k-fold cross validation; returns one result per fold."""
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if len(features) < n_folds:
        raise ValueError("fewer instances than folds")
    learner = learner or ADTreeLearner()
    indices = list(range(len(features)))
    random.Random(seed).shuffle(indices)
    folds = [indices[i::n_folds] for i in range(n_folds)]
    results: List[EvaluationResult] = []
    for held_out in folds:
        held = set(held_out)
        train_x = [features[i] for i in indices if i not in held]
        train_y = [labels[i] for i in indices if i not in held]
        test_x = [features[i] for i in held_out]
        test_y = [labels[i] for i in held_out]
        model = learner.fit(train_x, train_y)
        results.append(evaluate_model(model, test_x, test_y))
    return results


class PairClassifier:
    """Dataset-facing wrapper: train on tagged pairs, score/rank any pair."""

    def __init__(
        self,
        dataset: Dataset,
        learner: Optional[ADTreeLearner] = None,
        feature_names: Optional[Tuple[str, ...]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.dataset = dataset
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.learner = learner if learner is not None else ADTreeLearner(
            tracer=self.tracer
        )
        self.feature_names = feature_names
        self.model: Optional[ADTreeModel] = None

    @deterministic
    def fit(self, labeled_pairs: Mapping[Pair, bool]) -> "PairClassifier":
        """Train the ADTree from pair -> is-match labels."""
        with self.tracer.span("classify.fit", n_pairs=len(labeled_pairs)):
            pairs = sorted(labeled_pairs)
            with self.tracer.span("classify.features"):
                features = pair_features(
                    self.dataset, pairs, names=self.feature_names
                )
            labels = [labeled_pairs[pair] for pair in pairs]
            self.model = self.learner.fit(features, labels)
        self.tracer.count("classify.training_pairs", len(pairs))
        return self

    def _require_model(self) -> ADTreeModel:
        if self.model is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        return self.model

    def score_pair(self, pair: Pair) -> float:
        """ADTree confidence for one pair (positive leans match)."""
        model = self._require_model()
        a, b = pair
        vector = extract_features(
            self.dataset[a], self.dataset[b], names=self.feature_names
        )
        return model.score(vector)

    @ordered_output
    def rank(
        self,
        pairs: Iterable[Pair],
        executor: Optional[Executor] = None,
    ) -> List[Tuple[Pair, float]]:
        """Pairs sorted by descending confidence — the ranked resolution.

        With a parallel ``executor`` the unique pairs are feature-
        extracted and model-scored in worker chunks; the scores are the
        same floats the serial loop computes (identical feature and
        model arithmetic per pair — the batch extractor is value-
        identical to ``extract_features``), and the final sort imposes
        the canonical order either way, so output is byte-identical
        across worker counts and dispatch modes (docs/PARALLELISM.md).

        Shared-state executors get pickle-free ``(token, pairs)``
        payloads — dataset and model are published once instead of
        pickled per chunk — and pair lists below the executor's
        ``min_dispatch_items`` are scored inline with the same batch
        extractor.
        """
        with self.tracer.span("classify.rank"):
            if executor is not None and executor.parallel:
                unique = sorted(set(pairs))
                model = self._require_model()
                if executor.shared_state:
                    chunk_results = self._rank_chunks_shared(
                        unique, model, executor
                    )
                else:
                    chunk_results = executor.map_chunks(
                        classify_pair_chunk,
                        [
                            (self.dataset, model, self.feature_names, chunk)
                            for chunk in executor.plan_chunks(unique)
                        ],
                        tracer=self.tracer,
                        label="classify.score_pairs",
                    )
                merged = merge_scored_chunks(chunk_results)
                scored = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
            else:
                unique = sorted(set(pairs))
                scored = []
                if unique:
                    model = self._require_model()
                    vectors = extract_features_batch(
                        self.dataset, unique, names=self.feature_names
                    )
                    scored = [
                        (pair, model.score(vector))
                        for pair, vector in zip(unique, vectors)
                    ]
                scored.sort(key=lambda kv: (-kv[1], kv[0]))
        self.tracer.count("classify.pairs_scored", len(scored))
        return scored

    def _rank_chunks_shared(
        self,
        unique: List[Pair],
        model: ADTreeModel,
        executor: Executor,
    ) -> List[List[Tuple[Pair, float]]]:
        """Score rank chunks through the pickle-free dispatch path."""
        if len(unique) < executor.min_dispatch_items:
            # Dispatch would cost more than the work; same kernels,
            # in-process, as one "chunk" result.
            vectors = extract_features_batch(
                self.dataset, unique, names=self.feature_names
            )
            return [
                [
                    (pair, model.score(vector))
                    for pair, vector in zip(unique, vectors)
                ]
            ]
        with publish_shared_state(
            dataset=self.dataset,
            model=model,
            feature_names=self.feature_names,
        ) as handle:
            executor.stats.shared_segment_bytes = max(
                executor.stats.shared_segment_bytes, handle.segment_bytes
            )
            return executor.map_chunks(
                classify_pair_chunk_shared,
                [
                    (handle.token, chunk)
                    for chunk in executor.plan_chunks(unique)
                ],
                tracer=self.tracer,
                label="classify.score_pairs",
                shared_bytes=handle.baseline_bytes,
            )

    def filter_matches(
        self, pairs: Iterable[Pair], threshold: float = 0.0
    ) -> List[Pair]:
        """The Cls condition: keep pairs scoring above ``threshold``."""
        return [pair for pair, score in self.rank(pairs) if score > threshold]


class OneVsRestADTree:
    """Three-class classification for the 'identify Maybe' condition.

    Trains one binary ADTree per class (match / maybe / non-match) and
    predicts the argmax score. Used by the Table 5 experiment where
    Maybe is retained as a class to be recognized at run time.
    """

    def __init__(self, learner: Optional[ADTreeLearner] = None) -> None:
        self.learner = learner or ADTreeLearner()
        self.models: Dict[Hashable, ADTreeModel] = {}

    def fit(
        self,
        features: Sequence[FeatureVector],
        labels: Sequence[Hashable],
    ) -> "OneVsRestADTree":
        classes = sorted(set(labels), key=str)
        if len(classes) < 2:
            raise ValueError("need at least two classes")
        for cls in classes:
            binary = [label == cls for label in labels]
            self.models[cls] = self.learner.fit(features, binary)
        return self

    def predict(self, vector: FeatureVector) -> Hashable:
        if not self.models:
            raise RuntimeError("classifier is not fitted; call fit() first")
        scored = [
            (model.score(vector), str(cls), cls)
            for cls, model in self.models.items()
        ]
        scored.sort(key=lambda entry: (-entry[0], entry[1]))
        return scored[0][2]

    def accuracy(
        self, features: Sequence[FeatureVector], labels: Sequence[Hashable]
    ) -> float:
        if not features:
            return 0.0
        hits = sum(
            1
            for vector, label in zip(features, labels)
            if self.predict(vector) == label
        )
        return hits / len(features)
