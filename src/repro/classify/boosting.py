"""ADTree learning via boosting (Freund & Mason's Z-criterion).

Each boosting round adds one splitter node: the (precondition, condition)
pair minimizing

    Z = 2 * ( sqrt(W+(c1 & c2) * W-(c1 & c2))
            + sqrt(W+(c1 & !c2) * W-(c1 & !c2)) )
        + W(!c1) + W(c1 & missing)

where ``c1`` ranges over existing prediction-node paths, ``c2`` over base
conditions (numeric thresholds and categorical equality tests), and
weights are the boosting distribution. The two new prediction values are
smoothed log-odds ``0.5 * ln((W+ + 1) / (W- + 1))`` — the same smoothing
Weka's ADTree uses, so prediction values land in the same range as the
paper's Tables 7-8. Instances with the test feature missing stay outside
both branches (they keep skipping the splitter at prediction time too),
which is how the algorithm tolerates the dataset's sparse patterns.

The search is vectorized with numpy: condition satisfaction/presence is
precomputed as float matrices and each round reduces to a handful of
matrix-vector products, keeping 10 rounds over ~10k pairs sub-second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.classify.adtree import (
    ADTreeModel,
    CategoricalCondition,
    Condition,
    NumericCondition,
    PredictionNode,
    SplitterNode,
)
from repro.contracts import deterministic
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.similarity.features import FeatureVector

__all__ = ["ADTreeLearner"]


@dataclass
class _CandidateSet:
    """Precomputed base conditions with their evaluation matrices."""

    conditions: List[Condition]
    satisfied: NDArray[np.float64]  # (n_cond, n): test passes
    present: NDArray[np.float64]  # (n_cond, n): feature present


class ADTreeLearner:
    """Boosts an alternating decision tree from tagged feature vectors."""

    def __init__(
        self,
        n_rounds: int = 10,
        max_numeric_thresholds: int = 24,
        smoothing: float = 1.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        if max_numeric_thresholds < 1:
            raise ValueError("max_numeric_thresholds must be >= 1")
        if smoothing <= 0:
            raise ValueError(f"smoothing must be positive, got {smoothing}")
        self.n_rounds = n_rounds
        self.max_numeric_thresholds = max_numeric_thresholds
        self.smoothing = smoothing
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- public API ---------------------------------------------------------------

    @deterministic
    def fit(
        self,
        features: Sequence[FeatureVector],
        labels: Sequence[bool],
    ) -> ADTreeModel:
        """Learn a tree from feature vectors and binary match labels."""
        if len(features) != len(labels):
            raise ValueError(
                f"features ({len(features)}) and labels ({len(labels)}) disagree"
            )
        if not features:
            raise ValueError("cannot fit on an empty training set")

        tracer = self.tracer
        n = len(features)
        y = np.where(np.asarray(labels, dtype=bool), 1.0, -1.0)
        with tracer.span("adtree.candidates"):
            candidates = self._build_candidates(features)
        tracer.count("adtree.conditions", len(candidates.conditions))

        # Root prediction: smoothed prior log-odds.
        weights = np.ones(n)
        root_value = self._log_odds(
            float(weights[y > 0].sum()), float(weights[y < 0].sum())
        )
        root = PredictionNode(root_value)
        weights *= np.exp(-y * root_value)

        if not candidates.conditions:
            return ADTreeModel(root)

        # Preconditions: (reachability mask, prediction node to attach to).
        preconditions: List[Tuple[NDArray[np.float64], PredictionNode]] = [
            (np.ones(n), root)
        ]

        for round_index in range(1, self.n_rounds + 1):
            with tracer.span("adtree.round"):
                placement = self._best_split(
                    candidates, preconditions, weights, y
                )
            if placement is None:
                break
            tracer.count("adtree.boosting_rounds")
            pre_index, cond_index, value_yes, value_no = placement
            mask, parent = preconditions[pre_index]
            condition = candidates.conditions[cond_index]
            sat = candidates.satisfied[cond_index]
            pres = candidates.present[cond_index]

            mask_yes = mask * sat
            mask_no = mask * pres * (1.0 - sat)
            splitter = SplitterNode(
                order=round_index,
                condition=condition,
                yes=PredictionNode(value_yes),
                no=PredictionNode(value_no),
            )
            parent.splitters.append(splitter)
            preconditions.append((mask_yes, splitter.yes))
            preconditions.append((mask_no, splitter.no))

            weights *= np.exp(-y * (value_yes * mask_yes + value_no * mask_no))

        return ADTreeModel(root)

    # -- internals ---------------------------------------------------------------

    def _log_odds(self, w_pos: float, w_neg: float) -> float:
        return 0.5 * float(
            np.log((w_pos + self.smoothing) / (w_neg + self.smoothing))
        )

    def _best_split(
        self,
        candidates: _CandidateSet,
        preconditions: List[Tuple[NDArray[np.float64], PredictionNode]],
        weights: NDArray[np.float64],
        y: NDArray[np.float64],
    ) -> Optional[Tuple[int, int, float, float]]:
        """Z-minimizing (precondition, condition) with its branch values."""
        w_pos = weights * (y > 0)
        w_neg = weights * (y < 0)
        total = float(weights.sum())
        not_satisfied = candidates.present - candidates.satisfied

        best: Optional[Tuple[float, int, int, float, float]] = None
        for pre_index, (mask, _node) in enumerate(preconditions):
            wp_in = w_pos * mask
            wn_in = w_neg * mask
            w_in = wp_in + wn_in

            wp_yes = candidates.satisfied @ wp_in
            wn_yes = candidates.satisfied @ wn_in
            wp_no = not_satisfied @ wp_in
            wn_no = not_satisfied @ wn_in
            w_reached = candidates.present @ w_in

            z = (
                2.0 * (np.sqrt(wp_yes * wn_yes) + np.sqrt(wp_no * wn_no))
                + (total - w_reached)
            )
            cond_index = int(np.argmin(z))
            z_value = float(z[cond_index])
            if best is None or z_value < best[0] - 1e-12:
                value_yes = self._log_odds(
                    float(wp_yes[cond_index]), float(wn_yes[cond_index])
                )
                value_no = self._log_odds(
                    float(wp_no[cond_index]), float(wn_no[cond_index])
                )
                best = (z_value, pre_index, cond_index, value_yes, value_no)
        if best is None:
            return None
        _, pre_index, cond_index, value_yes, value_no = best
        return pre_index, cond_index, value_yes, value_no

    def _build_candidates(
        self, features: Sequence[FeatureVector]
    ) -> _CandidateSet:
        """Enumerate base conditions and evaluate them over the data."""
        names = self._feature_names(features)
        n = len(features)
        conditions: List[Condition] = []
        satisfied_rows: List[NDArray[np.float64]] = []
        present_rows: List[NDArray[np.float64]] = []

        for name in names:
            raw = [vector.get(name) for vector in features]
            present = np.array([value is not None for value in raw], dtype=bool)
            if not present.any():
                continue
            sample = next(value for value in raw if value is not None)
            if isinstance(sample, (int, float)) and not isinstance(sample, bool):
                values = np.array(
                    [float(v) if v is not None else np.nan for v in raw]
                )
                for threshold in self._thresholds(values[present]):
                    with np.errstate(invalid="ignore"):
                        passes = (values < threshold) & present
                    conditions.append(NumericCondition(name, float(threshold)))
                    satisfied_rows.append(passes)
                    present_rows.append(present)
            else:
                observed = sorted({str(v) for v in raw if v is not None})
                for value in observed:
                    passes = np.array(
                        [v is not None and str(v) == value for v in raw],
                        dtype=bool,
                    )
                    conditions.append(CategoricalCondition(name, value))
                    satisfied_rows.append(passes)
                    present_rows.append(present)

        if not conditions:
            empty = np.zeros((0, n), dtype=np.float64)
            return _CandidateSet([], empty, empty)
        satisfied = np.array(satisfied_rows, dtype=np.float64)
        present = np.array(present_rows, dtype=np.float64)
        return _CandidateSet(conditions, satisfied, present)

    def _thresholds(self, present_values: NDArray[np.float64]) -> List[float]:
        """Candidate thresholds: midpoints of unique values, quantile-capped."""
        unique = np.unique(present_values)
        if unique.size < 2:
            return []
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        if midpoints.size <= self.max_numeric_thresholds:
            return [float(m) for m in midpoints]
        quantiles = np.linspace(0, 1, self.max_numeric_thresholds + 2)[1:-1]
        picked = np.quantile(midpoints, quantiles)
        return [float(m) for m in np.unique(picked)]

    @staticmethod
    def _feature_names(features: Sequence[FeatureVector]) -> List[str]:
        names: List[str] = []
        seen: Dict[str, None] = {}
        for vector in features:
            for name in vector:
                if name not in seen:
                    seen[name] = None
                    names.append(name)
        return names
