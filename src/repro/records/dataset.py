"""Dataset container: records, item bags, inverted index, serialization.

A :class:`Dataset` holds victim reports keyed by ``book_id`` and provides
the derived artifacts the pipeline needs — item bags and the item →
records inverted index (the preprocessing stage of Figure 9). Both are
computed once and cached.

JSON (de)serialization is provided so generated corpora can be persisted
and reloaded by benchmarks without regenerating.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union

from repro.records.itembag import Item, build_item_index, record_to_items
from repro.records.schema import (
    Gender,
    Place,
    PlaceType,
    SourceKind,
    SourceRef,
    VictimRecord,
)
from repro.contracts import deterministic
from repro.geo import GeoPoint
from repro.resilience.quarantine import Quarantine, QuarantinePolicy

__all__ = ["Dataset", "record_to_dict", "record_from_dict"]


class Dataset:
    """An immutable collection of victim reports with derived indexes."""

    def __init__(self, records: Iterable[VictimRecord], name: str = "dataset"):
        self.name = name
        self._records: Dict[int, VictimRecord] = {}
        for record in records:
            if record.book_id in self._records:
                raise ValueError(f"duplicate book_id: {record.book_id}")
            self._records[record.book_id] = record
        self._item_bags: Optional[Dict[int, FrozenSet[Item]]] = None
        self._item_index: Optional[Dict[Item, List[int]]] = None
        self._content_fingerprint: Optional[str] = None

    # -- basic container protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[VictimRecord]:
        return iter(self._records.values())

    def __contains__(self, book_id: int) -> bool:
        return book_id in self._records

    def __getitem__(self, book_id: int) -> VictimRecord:
        return self._records[book_id]

    @property
    def record_ids(self) -> List[int]:
        return list(self._records)

    def get(self, book_id: int) -> Optional[VictimRecord]:
        return self._records.get(book_id)

    # -- derived artifacts ---------------------------------------------------

    @property
    def item_bags(self) -> Dict[int, FrozenSet[Item]]:
        """Item bag per record id (computed lazily, cached)."""
        if self._item_bags is None:
            self._item_bags = {
                rid: record_to_items(record) for rid, record in self._records.items()
            }
        return self._item_bags

    @property
    def item_index(self) -> Dict[Item, List[int]]:
        """Inverted index item → sorted list of record ids holding it."""
        if self._item_index is None:
            self._item_index = build_item_index(self.item_bags.items())
        return self._item_index

    def content_fingerprint(self) -> str:
        """SHA-256 over the canonical record content (cached).

        Records are serialized sorted by ``book_id`` with sorted keys,
        so the fingerprint depends only on *what* the dataset contains —
        never on construction order or hash seed. Checkpoint identity
        (``docs/RESILIENCE.md``) chains from this value: a resume
        against a different corpus can never hit.
        """
        if self._content_fingerprint is None:
            canonical = json.dumps(
                [
                    _record_to_dict(self._records[rid])
                    for rid in sorted(self._records)
                ],
                sort_keys=True,
                separators=(",", ":"),
                ensure_ascii=False,
            )
            self._content_fingerprint = hashlib.sha256(
                canonical.encode("utf-8")
            ).hexdigest()
        return self._content_fingerprint

    def subset(self, book_ids: Iterable[int], name: Optional[str] = None) -> "Dataset":
        """Return a new dataset restricted to the given record ids."""
        ids = list(book_ids)
        missing = [rid for rid in ids if rid not in self._records]
        if missing:
            raise KeyError(f"unknown book_ids: {missing[:5]}")
        return Dataset(
            (self._records[rid] for rid in ids),
            name=name or f"{self.name}-subset",
        )

    def true_pairs(self) -> FrozenSet[Tuple[int, int]]:
        """All record pairs sharing a ground-truth ``person_id``.

        This is the gold standard for synthetic corpora where every record
        carries its generating person; pairs are canonicalized as
        ``(min_id, max_id)``.
        """
        by_person: Dict[int, List[int]] = {}
        for record in self:
            if record.person_id is not None:
                by_person.setdefault(record.person_id, []).append(record.book_id)
        pairs = set()
        for rids in by_person.values():
            rids.sort()
            for i, a in enumerate(rids):
                for b in rids[i + 1:]:
                    pairs.add((a, b))
        return frozenset(pairs)

    # -- serialization --------------------------------------------------------

    def to_json(self, path: Union[str, Path]) -> None:
        """Write the dataset to a JSON file."""
        payload = {
            "name": self.name,
            "records": [_record_to_dict(record) for record in self],
        }
        Path(path).write_text(json.dumps(payload, ensure_ascii=False, indent=1))

    @classmethod
    def from_json(
        cls,
        path: Union[str, Path],
        policy: QuarantinePolicy = QuarantinePolicy.FAIL_FAST,
        quarantine: Optional[Quarantine] = None,
    ) -> "Dataset":
        """Load a dataset previously written by :meth:`to_json`.

        ``policy`` governs malformed record entries the same way
        :func:`repro.records.io.read_csv` treats bad CSV rows; the
        quarantine ``line_number`` is the 1-based ordinal of the record
        entry (JSON carries no physical line mapping). JSON entries
        have no per-cell repair story, so ``REPAIR`` degrades to
        ``QUARANTINE`` here.
        """
        quarantine = quarantine if quarantine is not None else Quarantine()
        payload = json.loads(Path(path).read_text())
        records = []
        seen_ids = set()
        for ordinal, entry in enumerate(payload["records"], start=1):
            try:
                record = _record_from_dict(entry)
                if record.book_id in seen_ids:
                    raise ValueError(f"duplicate book_id: {record.book_id}")
            except (KeyError, ValueError, TypeError) as error:
                if policy is QuarantinePolicy.FAIL_FAST:
                    raise ValueError(
                        f"{path}: record entry {ordinal}: bad record ({error})"
                    ) from error
                quarantine.record(
                    str(path), ordinal, None, str(error),
                    entry if isinstance(entry, dict) else {"entry": entry},
                )
                continue
            seen_ids.add(record.book_id)
            records.append(record)
        return cls(records, name=payload.get("name", "dataset"))


@deterministic
def record_to_dict(record: VictimRecord) -> dict:
    """The canonical JSON-safe encoding of one record.

    This is the single record codec of the repository: corpus files
    (:meth:`Dataset.to_json`), the content fingerprint, and the
    write-ahead log (:mod:`repro.resilience.wal`) all speak it, so a
    WAL replay reconstructs records byte-for-byte identical to the
    originals.
    """
    return _record_to_dict(record)


@deterministic
def record_from_dict(entry: dict) -> VictimRecord:
    """Inverse of :func:`record_to_dict` (raises on malformed entries)."""
    return _record_from_dict(entry)


def _record_to_dict(record: VictimRecord) -> dict:
    places = {}
    for place_type, values in record.places.items():
        places[place_type.value] = [_place_to_dict(place) for place in values]
    return {
        "book_id": record.book_id,
        "source": {"kind": record.source.kind.value, "id": record.source.identifier},
        "first": list(record.first),
        "last": list(record.last),
        "maiden": list(record.maiden),
        "father": list(record.father),
        "mother": list(record.mother),
        "mother_maiden": list(record.mother_maiden),
        "spouse": list(record.spouse),
        "gender": record.gender.value if record.gender else None,
        "birth_day": record.birth_day,
        "birth_month": record.birth_month,
        "birth_year": record.birth_year,
        "profession": record.profession,
        "places": places,
        "person_id": record.person_id,
    }


def _place_to_dict(place: Place) -> dict:
    return {
        "city": place.city,
        "county": place.county,
        "region": place.region,
        "country": place.country,
        "coords": list(place.coords) if place.coords else None,
    }


def _record_from_dict(entry: dict) -> VictimRecord:
    places = {}
    for type_name, values in entry.get("places", {}).items():
        places[PlaceType(type_name)] = tuple(
            _place_from_dict(value) for value in values
        )
    gender = Gender(entry["gender"]) if entry.get("gender") else None
    source = entry["source"]
    return VictimRecord(
        book_id=entry["book_id"],
        source=SourceRef(SourceKind(source["kind"]), source["id"]),
        first=tuple(entry.get("first", ())),
        last=tuple(entry.get("last", ())),
        maiden=tuple(entry.get("maiden", ())),
        father=tuple(entry.get("father", ())),
        mother=tuple(entry.get("mother", ())),
        mother_maiden=tuple(entry.get("mother_maiden", ())),
        spouse=tuple(entry.get("spouse", ())),
        gender=gender,
        birth_day=entry.get("birth_day"),
        birth_month=entry.get("birth_month"),
        birth_year=entry.get("birth_year"),
        profession=entry.get("profession"),
        places=places,
        person_id=entry.get("person_id"),
    )


def _place_from_dict(entry: dict) -> Place:
    coords = entry.get("coords")
    return Place(
        city=entry.get("city"),
        county=entry.get("county"),
        region=entry.get("region"),
        country=entry.get("country"),
        coords=GeoPoint(*coords) if coords else None,
    )
