"""Data model substrate: victim-report schema, item bags, datasets, patterns."""

from __future__ import annotations

from repro.records.dataset import Dataset, record_from_dict, record_to_dict
from repro.records.itembag import Item, ItemKind, ItemType, record_to_items
from repro.records.schema import (
    Gender,
    Place,
    PlacePart,
    PlaceType,
    SourceKind,
    SourceRef,
    VictimRecord,
)

__all__ = [
    "Dataset",
    "record_to_dict",
    "record_from_dict",
    "Item",
    "ItemKind",
    "ItemType",
    "record_to_items",
    "Gender",
    "Place",
    "PlacePart",
    "PlaceType",
    "SourceKind",
    "SourceRef",
    "VictimRecord",
]
