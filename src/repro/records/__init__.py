"""Data model substrate: victim-report schema, item bags, datasets, patterns."""

from __future__ import annotations

from repro.records.dataset import Dataset
from repro.records.itembag import Item, ItemKind, ItemType, record_to_items
from repro.records.schema import (
    Gender,
    Place,
    PlacePart,
    PlaceType,
    SourceKind,
    SourceRef,
    VictimRecord,
)

__all__ = [
    "Dataset",
    "Item",
    "ItemKind",
    "ItemType",
    "record_to_items",
    "Gender",
    "Place",
    "PlacePart",
    "PlaceType",
    "SourceKind",
    "SourceRef",
    "VictimRecord",
]
