"""Item-bag encoding of victim reports.

MFIBlocks operates on records represented as *bags of items*, where each
item is a field-prefixed value (Table 2 of the paper: the first name
``Avraham`` becomes the item ``F Avraham``). This module defines the item
vocabulary — every item carries an :class:`ItemType` whose *kind* drives
the expert item-similarity function (Eq. 1) — and converts
:class:`~repro.records.schema.VictimRecord` instances to item sets.

Nulls are simply omitted from the bag, which is how the pipeline copes
with the extreme schema variability between sources (Figure 11).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, NamedTuple, Tuple

from repro.records.schema import (
    NAME_ATTRIBUTES,
    PLACE_PARTS,
    PLACE_TYPES,
    PlacePart,
    PlaceType,
    VictimRecord,
)

__all__ = [
    "ItemKind",
    "ItemType",
    "Item",
    "record_to_items",
    "build_item_index",
    "place_item_type",
    "NAME_ITEM_TYPES",
]


class ItemKind(str, enum.Enum):
    """Semantic kind of an item — the dispatch key of Eq. 1."""

    NAME = "name"
    YEAR = "year"
    MONTH = "month"
    DAY = "day"
    GEO = "geo"
    CATEGORY = "category"


class ItemType(enum.Enum):
    """All item types in the vocabulary, with their field prefix and kind.

    The prefixes follow the paper's convention of short field references
    (``F Avraham``, ``L Postel``, ``G 0``, ``P1 Lwow`` ...), expanded so
    every (place type, part) combination gets its own prefix.
    """

    FIRST_NAME = ("FN", ItemKind.NAME)
    LAST_NAME = ("LN", ItemKind.NAME)
    MAIDEN_NAME = ("MN", ItemKind.NAME)
    FATHER_NAME = ("FFN", ItemKind.NAME)
    MOTHER_NAME = ("MFN", ItemKind.NAME)
    MOTHER_MAIDEN = ("MMN", ItemKind.NAME)
    SPOUSE_NAME = ("SN", ItemKind.NAME)
    GENDER = ("G", ItemKind.CATEGORY)
    PROFESSION = ("PROF", ItemKind.CATEGORY)
    BIRTH_DAY = ("BD", ItemKind.DAY)
    BIRTH_MONTH = ("BM", ItemKind.MONTH)
    BIRTH_YEAR = ("BY", ItemKind.YEAR)
    BIRTH_CITY = ("PB1", ItemKind.GEO)
    BIRTH_COUNTY = ("PB2", ItemKind.CATEGORY)
    BIRTH_REGION = ("PB3", ItemKind.CATEGORY)
    BIRTH_COUNTRY = ("PB4", ItemKind.CATEGORY)
    PERM_CITY = ("PP1", ItemKind.GEO)
    PERM_COUNTY = ("PP2", ItemKind.CATEGORY)
    PERM_REGION = ("PP3", ItemKind.CATEGORY)
    PERM_COUNTRY = ("PP4", ItemKind.CATEGORY)
    WAR_CITY = ("PW1", ItemKind.GEO)
    WAR_COUNTY = ("PW2", ItemKind.CATEGORY)
    WAR_REGION = ("PW3", ItemKind.CATEGORY)
    WAR_COUNTRY = ("PW4", ItemKind.CATEGORY)
    DEATH_CITY = ("PD1", ItemKind.GEO)
    DEATH_COUNTY = ("PD2", ItemKind.CATEGORY)
    DEATH_REGION = ("PD3", ItemKind.CATEGORY)
    DEATH_COUNTRY = ("PD4", ItemKind.CATEGORY)

    def __init__(self, prefix: str, kind: ItemKind) -> None:
        self.prefix = prefix
        self.kind = kind

    @classmethod
    def from_prefix(cls, prefix: str) -> "ItemType":
        try:
            return _PREFIX_TO_TYPE[prefix]
        except KeyError:
            raise ValueError(f"unknown item prefix: {prefix!r}") from None


_PREFIX_TO_TYPE: Dict[str, ItemType] = {t.prefix: t for t in ItemType}

#: Mapping from a name attribute of VictimRecord to its item type.
NAME_ITEM_TYPES: Dict[str, ItemType] = {
    "first": ItemType.FIRST_NAME,
    "last": ItemType.LAST_NAME,
    "maiden": ItemType.MAIDEN_NAME,
    "father": ItemType.FATHER_NAME,
    "mother": ItemType.MOTHER_NAME,
    "mother_maiden": ItemType.MOTHER_MAIDEN,
    "spouse": ItemType.SPOUSE_NAME,
}

_PLACE_ITEM_TYPES: Dict[Tuple[PlaceType, PlacePart], ItemType] = {
    (PlaceType.BIRTH, PlacePart.CITY): ItemType.BIRTH_CITY,
    (PlaceType.BIRTH, PlacePart.COUNTY): ItemType.BIRTH_COUNTY,
    (PlaceType.BIRTH, PlacePart.REGION): ItemType.BIRTH_REGION,
    (PlaceType.BIRTH, PlacePart.COUNTRY): ItemType.BIRTH_COUNTRY,
    (PlaceType.PERMANENT, PlacePart.CITY): ItemType.PERM_CITY,
    (PlaceType.PERMANENT, PlacePart.COUNTY): ItemType.PERM_COUNTY,
    (PlaceType.PERMANENT, PlacePart.REGION): ItemType.PERM_REGION,
    (PlaceType.PERMANENT, PlacePart.COUNTRY): ItemType.PERM_COUNTRY,
    (PlaceType.WARTIME, PlacePart.CITY): ItemType.WAR_CITY,
    (PlaceType.WARTIME, PlacePart.COUNTY): ItemType.WAR_COUNTY,
    (PlaceType.WARTIME, PlacePart.REGION): ItemType.WAR_REGION,
    (PlaceType.WARTIME, PlacePart.COUNTRY): ItemType.WAR_COUNTRY,
    (PlaceType.DEATH, PlacePart.CITY): ItemType.DEATH_CITY,
    (PlaceType.DEATH, PlacePart.COUNTY): ItemType.DEATH_COUNTY,
    (PlaceType.DEATH, PlacePart.REGION): ItemType.DEATH_REGION,
    (PlaceType.DEATH, PlacePart.COUNTRY): ItemType.DEATH_COUNTRY,
}


def place_item_type(place_type: PlaceType, part: PlacePart) -> ItemType:
    """Return the item type for one (place type, granularity part) pair."""
    return _PLACE_ITEM_TYPES[(place_type, part)]


class Item(NamedTuple):
    """A field-prefixed value, e.g. ``Item(ItemType.FIRST_NAME, 'Avraham')``."""

    type: ItemType
    value: str

    def __str__(self) -> str:
        return f"{self.type.prefix} {self.value}"

    @classmethod
    def parse(cls, text: str) -> "Item":
        """Parse the ``"PREFIX value"`` string form back into an Item."""
        prefix, _, value = text.partition(" ")
        if not value:
            raise ValueError(f"not an item string: {text!r}")
        return cls(ItemType.from_prefix(prefix), value)


def record_to_items(record: VictimRecord) -> FrozenSet[Item]:
    """Convert a victim report into its item bag.

    Multi-valued attributes contribute one item per value; nulls are
    omitted. The result is a frozen set (the bag-of-items model of
    MFIBlocks treats repeated identical items as one).
    """
    return frozenset(_iter_items(record))


def _iter_items(record: VictimRecord) -> Iterator[Item]:
    for attribute in NAME_ATTRIBUTES:
        item_type = NAME_ITEM_TYPES[attribute]
        for value in record.names(attribute):
            yield Item(item_type, value)
    if record.gender is not None:
        yield Item(ItemType.GENDER, record.gender.value)
    if record.profession is not None:
        yield Item(ItemType.PROFESSION, record.profession)
    if record.birth_day is not None:
        yield Item(ItemType.BIRTH_DAY, str(record.birth_day))
    if record.birth_month is not None:
        yield Item(ItemType.BIRTH_MONTH, str(record.birth_month))
    if record.birth_year is not None:
        yield Item(ItemType.BIRTH_YEAR, str(record.birth_year))
    for place_type in PLACE_TYPES:
        for place in record.places_of(place_type):
            for part in PLACE_PARTS:
                value = place.part(part)
                if value is not None:
                    yield Item(place_item_type(place_type, part), value)


def build_item_index(
    item_bags: Iterable[Tuple[int, FrozenSet[Item]]]
) -> Dict[Item, List[int]]:
    """Build the inverted index mapping each item to the records holding it.

    This is the preprocessing index of Figure 9 ("creates an index that
    maps each item to the list of records in which it appears"); MFIBlocks
    uses it to find block supports and to prune ultra-frequent items.
    """
    index: Dict[Item, List[int]] = {}
    for rid, items in item_bags:
        for item in items:
            index.setdefault(item, []).append(rid)
    return index
