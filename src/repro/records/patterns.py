"""Data-pattern, prevalence, and cardinality analysis (Fig. 11, Tables 3-4).

The multi-source nature of the Names Project shows up as extreme schema
variability: Section 6.2 counts *data patterns* — the set of item types a
record has values for — and finds 96 patterns shared by >10,000 records
covering over four million records alongside 18,567 patterns with fewer
than ten records each.

This module computes:

* :func:`pattern_histogram` — the Figure 11 analysis (pattern counts and
  record sums bucketed by pattern frequency);
* :func:`item_type_prevalence` — Table 3 (records holding each item type);
* :func:`item_type_cardinality` — Table 4 (distinct values and mean
  records per value for each item type).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.records.dataset import Dataset
from repro.records.itembag import Item, ItemType

__all__ = [
    "PatternBucket",
    "pattern_counts",
    "pattern_histogram",
    "item_type_prevalence",
    "CardinalityRow",
    "item_type_cardinality",
    "DEFAULT_BUCKET_EDGES",
]

#: Figure 11 buckets: patterns shared by <=10, <=100, <=1k, <=10k, more records.
DEFAULT_BUCKET_EDGES: Tuple[int, ...] = (10, 100, 1000, 10000)


def pattern_counts(dataset: Dataset) -> Counter:
    """Count how many records share each data pattern."""
    counts: Counter = Counter()
    for record in dataset:
        counts[record.pattern()] += 1
    return counts


@dataclass(frozen=True)
class PatternBucket:
    """One bar of Figure 11.

    ``label`` is the bucket's upper bound ("10", "100", ..., "more");
    ``n_patterns`` is how many distinct patterns fall in the bucket and
    ``n_records`` how many records those patterns cover.
    """

    label: str
    n_patterns: int
    n_records: int


def pattern_histogram(
    dataset: Dataset, edges: Sequence[int] = DEFAULT_BUCKET_EDGES
) -> List[PatternBucket]:
    """Bucket patterns by how many records share them (Figure 11).

    ``edges`` are inclusive upper bounds; a final "more" bucket catches
    patterns above the last edge.
    """
    if list(edges) != sorted(edges):
        raise ValueError("bucket edges must be sorted ascending")
    counts = pattern_counts(dataset)
    labels = [str(edge) for edge in edges] + ["more"]
    n_patterns = [0] * len(labels)
    n_records = [0] * len(labels)
    for count in counts.values():
        index = len(edges)
        for i, edge in enumerate(edges):
            if count <= edge:
                index = i
                break
        n_patterns[index] += 1
        n_records[index] += count
    return [
        PatternBucket(label, patterns, records)
        for label, patterns, records in zip(labels, n_patterns, n_records)
    ]


def full_information_pattern_count(dataset: Dataset) -> int:
    """Number of records holding the maximal (union) pattern of the dataset.

    The paper notes the full-information pattern is rare (40,191 of 6.5M).
    """
    all_fields: FrozenSet[str] = frozenset().union(
        *(record.pattern() for record in dataset)
    ) if len(dataset) else frozenset()
    return sum(1 for record in dataset if record.pattern() == all_fields)


#: Table 3 row order (item types grouped as the paper prints them).
_PREVALENCE_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("Last Name", "name:last"),
    ("First Name", "name:first"),
    ("Gender", "gender"),
    ("DOB", "dob"),
    ("Father's Name", "name:father"),
    ("Mother's Name", "name:mother"),
    ("Spouse Name", "name:spouse"),
    ("Maiden Name", "name:maiden"),
    ("Mother's Maiden", "name:mother_maiden"),
    ("Permanent Place", "place:permanent"),
    ("Wartime Place", "place:wartime"),
    ("Birth Place", "place:birth"),
    ("Death Place", "place:death"),
    ("Profession", "profession"),
)


def item_type_prevalence(dataset: Dataset) -> List[Tuple[str, int, float]]:
    """Table 3: per item type, how many records hold it and the fraction.

    Place types count a record once if *any* granularity part is present;
    DOB counts a record once if any date component is present.
    """
    total = len(dataset)
    counts: Counter = Counter()
    for record in dataset:
        fields = record.pattern()
        for label, key in _PREVALENCE_FIELDS:
            if key == "dob":
                present = record.has_dob()
            elif key.startswith("place:"):
                place_type = key.split(":")[1]
                present = any(
                    field.startswith(f"place:{place_type}:") for field in fields
                )
            else:
                present = key in fields
            if present:
                counts[label] += 1
    return [
        (label, counts[label], counts[label] / total if total else 0.0)
        for label, _ in _PREVALENCE_FIELDS
    ]


@dataclass(frozen=True)
class CardinalityRow:
    """One row of Table 4: distinct items and mean records per item."""

    item_type: ItemType
    n_items: int
    records_per_item: float


def item_type_cardinality(dataset: Dataset) -> List[CardinalityRow]:
    """Table 4: distinct values and average records per value, by item type."""
    values: Dict[ItemType, set] = {t: set() for t in ItemType}
    record_hits: Dict[ItemType, int] = {t: 0 for t in ItemType}
    for items in dataset.item_bags.values():
        seen_types = set()
        for item in items:
            values[item.type].add(item.value)
            seen_types.add(item.type)
        for item_type in seen_types:
            record_hits[item_type] += 1
    rows = []
    for item_type in ItemType:
        n_items = len(values[item_type])
        per_item = record_hits[item_type] / n_items if n_items else 0.0
        rows.append(CardinalityRow(item_type, n_items, per_item))
    return rows


def most_frequent_items(dataset: Dataset, top_fraction: float) -> List[Item]:
    """The ``top_fraction`` most frequent items (for the Fig. 12 pruning).

    Section 6.3 prunes the 0.03% most frequent items before mining; this
    helper returns that set sorted by descending support.
    """
    if not 0.0 <= top_fraction <= 1.0:
        raise ValueError(f"top_fraction must be in [0, 1], got {top_fraction}")
    index = dataset.item_index
    ranked = sorted(index.items(), key=lambda kv: (-len(kv[1]), str(kv[0])))
    keep = int(round(len(ranked) * top_fraction))
    return [item for item, _ in ranked[:keep]]
