"""CSV ingestion and export for victim-report datasets.

The Names Project extracts circulate as flat tables (the paper's public
ItalySet was a CSV-style dump); this module defines a canonical flat
layout so real extracts can be loaded into :class:`Dataset` and synthetic
corpora exported for external tools.

Layout: one row per report. Multi-valued name attributes are joined with
``|``; each place type occupies ``{type}_{part}`` columns plus optional
``{type}_lat`` / ``{type}_lon`` coordinates; ``person_id`` is an optional
ground-truth column used only by evaluation.

Ingestion is resilience-aware: real multi-source extracts contain
malformed rows as a matter of course, so :func:`read_csv` takes a
:class:`~repro.resilience.quarantine.QuarantinePolicy`. The default
(``FAIL_FAST``) raises on the first bad row with the 1-based line
number *and* the offending column; ``QUARANTINE`` collects bad rows
into a :class:`~repro.resilience.quarantine.Quarantine` and loads the
rest; ``REPAIR`` additionally blanks unparseable optional cells and
keeps the repaired row (recording what was blanked). Duplicate
``book_id`` rows are handled under the same policy.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple, TypeVar, Union

from repro.geo import GeoPoint
from repro.records.dataset import Dataset
from repro.records.schema import (
    NAME_ATTRIBUTES,
    PLACE_PARTS,
    PLACE_TYPES,
    Gender,
    Place,
    PlaceType,
    SourceKind,
    SourceRef,
    VictimRecord,
)
from repro.resilience.quarantine import Quarantine, QuarantinePolicy, RowError

__all__ = ["CSV_COLUMNS", "REQUIRED_COLUMNS", "write_csv", "read_csv"]

_MULTI_SEPARATOR = "|"

_T = TypeVar("_T")


def _place_columns() -> List[str]:
    columns: List[str] = []
    for place_type in PLACE_TYPES:
        for part in PLACE_PARTS:
            columns.append(f"{place_type.value}_{part.value}")
        columns.append(f"{place_type.value}_lat")
        columns.append(f"{place_type.value}_lon")
    return columns


#: The canonical column order.
CSV_COLUMNS: Tuple[str, ...] = tuple(
    ["book_id", "source_kind", "source_id"]
    + list(NAME_ATTRIBUTES)
    + ["gender", "birth_day", "birth_month", "birth_year", "profession"]
    + _place_columns()
    + ["person_id"]
)

#: Columns a row cannot exist without — unrepairable when malformed.
REQUIRED_COLUMNS: Tuple[str, ...] = ("book_id", "source_kind", "source_id")


def write_csv(dataset: Dataset, path: Union[str, Path]) -> None:
    """Write a dataset in the canonical flat layout."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(CSV_COLUMNS))
        writer.writeheader()
        for record in dataset:
            writer.writerow(_record_to_row(record))


def read_csv(
    path: Union[str, Path],
    name: Optional[str] = None,
    policy: QuarantinePolicy = QuarantinePolicy.FAIL_FAST,
    quarantine: Optional[Quarantine] = None,
) -> Dataset:
    """Load a dataset from the canonical flat layout.

    ``policy`` decides what happens to malformed rows (see module
    docstring); pass a :class:`Quarantine` to receive the structured
    entries — with the non-default policies and no collector supplied,
    the rejected rows would be accounted only in the collector this
    function discards, so callers that care must provide one.
    """
    quarantine = quarantine if quarantine is not None else Quarantine()
    source_label = str(path)
    records: List[VictimRecord] = []
    seen_ids: Set[int] = set()
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = {"book_id", "source_kind", "source_id"} - set(
            reader.fieldnames or ()
        )
        if missing:
            raise ValueError(f"CSV is missing required columns: {missing}")
        for row in reader:
            line_number = reader.line_num
            try:
                record = _parse_row(
                    row, policy, quarantine, source_label, line_number
                )
            except RowError as error:
                raise ValueError(
                    f"{path}:{line_number}: bad row "
                    f"(field {error.field!r}: {error})"
                ) from error
            if record is None:
                continue
            if record.book_id in seen_ids:
                duplicate = RowError(
                    "book_id", f"duplicate book_id: {record.book_id}"
                )
                if policy is QuarantinePolicy.FAIL_FAST:
                    raise ValueError(
                        f"{path}:{line_number}: bad row "
                        f"(field 'book_id': {duplicate})"
                    ) from duplicate
                quarantine.record(
                    source_label, line_number, duplicate.field,
                    str(duplicate), dict(row),
                )
                continue
            seen_ids.add(record.book_id)
            records.append(record)
    return Dataset(records, name=name or Path(path).stem)


def _parse_row(
    row: Dict[str, str],
    policy: QuarantinePolicy,
    quarantine: Quarantine,
    source_label: str,
    line_number: int,
) -> Optional[VictimRecord]:
    """Parse one row under the policy; ``None`` means quarantined."""
    try:
        return _row_to_record(row)
    except RowError as error:
        if policy is QuarantinePolicy.FAIL_FAST:
            raise
        if policy is QuarantinePolicy.REPAIR:
            repaired = _repair_row(row)
            if repaired is not None:
                record, blanked = repaired
                quarantine.record(
                    source_label, line_number, error.field, str(error),
                    dict(row), repaired=True, repaired_fields=blanked,
                )
                return record
        quarantine.record(
            source_label, line_number, error.field, str(error), dict(row)
        )
        return None


def _repair_row(
    row: Dict[str, str]
) -> Optional[Tuple[VictimRecord, Tuple[str, ...]]]:
    """Blank unparseable optional cells until the row parses.

    Returns the record plus the blanked column names, or ``None`` when
    the row is unrepairable (a required identity column is bad). The
    loop is bounded by the column count: every iteration either
    succeeds or permanently blanks one more cell.
    """
    patched = dict(row)
    blanked: List[str] = []
    for _ in range(len(CSV_COLUMNS) + 1):
        try:
            return _row_to_record(patched), tuple(blanked)
        except RowError as error:
            if error.field is None or error.field in REQUIRED_COLUMNS:
                return None
            if patched.get(error.field, "") == "":
                return None  # blanking did not help; give up
            patched[error.field] = ""
            blanked.append(error.field)
    return None


def _record_to_row(record: VictimRecord) -> Dict[str, str]:
    row: Dict[str, str] = {
        "book_id": str(record.book_id),
        "source_kind": record.source.kind.value,
        "source_id": record.source.identifier,
        "gender": record.gender.value if record.gender else "",
        "birth_day": _opt(record.birth_day),
        "birth_month": _opt(record.birth_month),
        "birth_year": _opt(record.birth_year),
        "profession": record.profession or "",
        "person_id": _opt(record.person_id),
    }
    for attribute in NAME_ATTRIBUTES:
        row[attribute] = _MULTI_SEPARATOR.join(record.names(attribute))
    for place_type in PLACE_TYPES:
        places = record.places_of(place_type)
        place = places[0] if places else Place()
        for part in PLACE_PARTS:
            row[f"{place_type.value}_{part.value}"] = place.part(part) or ""
        row[f"{place_type.value}_lat"] = (
            repr(place.coords.lat) if place.coords else ""
        )
        row[f"{place_type.value}_lon"] = (
            repr(place.coords.lon) if place.coords else ""
        )
    return row


def _field(
    row: Dict[str, str], column: str, convert: Callable[[Optional[str]], _T]
) -> _T:
    """Convert one cell, wrapping failures with the column name."""
    try:
        return convert(row.get(column))
    except (KeyError, ValueError, TypeError) as error:
        raise RowError(column, f"{error}") from error


def _required_str(column: str) -> Callable[[Optional[str]], str]:
    def convert(text: Optional[str]) -> str:
        if text is None or text == "":
            raise ValueError(f"missing required value for {column!r}")
        return text

    return convert


def _row_to_record(row: Dict[str, str]) -> VictimRecord:
    places: Dict[PlaceType, Tuple[Place, ...]] = {}
    for place_type in PLACE_TYPES:
        parts = {
            part.value: (row.get(f"{place_type.value}_{part.value}") or None)
            for part in PLACE_PARTS
        }
        lat_column = f"{place_type.value}_lat"
        lon_column = f"{place_type.value}_lon"
        lat_text = row.get(lat_column) or ""
        lon_text = row.get(lon_column) or ""
        coords: Optional[GeoPoint] = None
        if lat_text and lon_text:
            lat = _field(row, lat_column, lambda text: float(text or ""))
            lon = _field(row, lon_column, lambda text: float(text or ""))
            coords = GeoPoint(lat, lon)
        place = Place(coords=coords, **parts)
        if not place.is_empty():
            places[place_type] = (place,)

    gender_text = (row.get("gender") or "").strip()
    gender: Optional[Gender] = None
    if gender_text:
        gender = _field(row, "gender", lambda _text: Gender(gender_text))
    return VictimRecord(
        book_id=_field(
            row, "book_id",
            lambda text: int(_required_str("book_id")(text)),
        ),
        source=SourceRef(
            _field(
                row, "source_kind",
                lambda text: SourceKind(_required_str("source_kind")(text)),
            ),
            _field(row, "source_id", _required_str("source_id")),
        ),
        gender=gender,
        birth_day=_field(row, "birth_day", _int_or_none),
        birth_month=_field(row, "birth_month", _int_or_none),
        birth_year=_field(row, "birth_year", _int_or_none),
        profession=(row.get("profession") or None),
        places=places,
        person_id=_field(row, "person_id", _int_or_none),
        **{
            attribute: _split_multi(row.get(attribute))
            for attribute in NAME_ATTRIBUTES
        },
    )


def _split_multi(text: Optional[str]) -> Tuple[str, ...]:
    if not text:
        return ()
    return tuple(part for part in text.split(_MULTI_SEPARATOR) if part)


def _opt(value: Optional[object]) -> str:
    return "" if value is None else str(value)


def _int_or_none(text: Optional[str]) -> Optional[int]:
    if text is None or text.strip() == "":
        return None
    return int(text)
