"""CSV ingestion and export for victim-report datasets.

The Names Project extracts circulate as flat tables (the paper's public
ItalySet was a CSV-style dump); this module defines a canonical flat
layout so real extracts can be loaded into :class:`Dataset` and synthetic
corpora exported for external tools.

Layout: one row per report. Multi-valued name attributes are joined with
``|``; each place type occupies ``{type}_{part}`` columns plus optional
``{type}_lat`` / ``{type}_lon`` coordinates; ``person_id`` is an optional
ground-truth column used only by evaluation.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.geo import GeoPoint
from repro.records.dataset import Dataset
from repro.records.schema import (
    NAME_ATTRIBUTES,
    PLACE_PARTS,
    PLACE_TYPES,
    Gender,
    Place,
    PlaceType,
    SourceKind,
    SourceRef,
    VictimRecord,
)

__all__ = ["CSV_COLUMNS", "write_csv", "read_csv"]

_MULTI_SEPARATOR = "|"


def _place_columns() -> List[str]:
    columns: List[str] = []
    for place_type in PLACE_TYPES:
        for part in PLACE_PARTS:
            columns.append(f"{place_type.value}_{part.value}")
        columns.append(f"{place_type.value}_lat")
        columns.append(f"{place_type.value}_lon")
    return columns


#: The canonical column order.
CSV_COLUMNS: Tuple[str, ...] = tuple(
    ["book_id", "source_kind", "source_id"]
    + list(NAME_ATTRIBUTES)
    + ["gender", "birth_day", "birth_month", "birth_year", "profession"]
    + _place_columns()
    + ["person_id"]
)


def write_csv(dataset: Dataset, path: Union[str, Path]) -> None:
    """Write a dataset in the canonical flat layout."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(CSV_COLUMNS))
        writer.writeheader()
        for record in dataset:
            writer.writerow(_record_to_row(record))


def read_csv(path: Union[str, Path], name: Optional[str] = None) -> Dataset:
    """Load a dataset from the canonical flat layout."""
    records: List[VictimRecord] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = {"book_id", "source_kind", "source_id"} - set(
            reader.fieldnames or ()
        )
        if missing:
            raise ValueError(f"CSV is missing required columns: {missing}")
        for line_number, row in enumerate(reader, start=2):
            try:
                records.append(_row_to_record(row))
            except (KeyError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: bad row ({error})"
                ) from error
    return Dataset(records, name=name or Path(path).stem)


def _record_to_row(record: VictimRecord) -> Dict[str, str]:
    row: Dict[str, str] = {
        "book_id": str(record.book_id),
        "source_kind": record.source.kind.value,
        "source_id": record.source.identifier,
        "gender": record.gender.value if record.gender else "",
        "birth_day": _opt(record.birth_day),
        "birth_month": _opt(record.birth_month),
        "birth_year": _opt(record.birth_year),
        "profession": record.profession or "",
        "person_id": _opt(record.person_id),
    }
    for attribute in NAME_ATTRIBUTES:
        row[attribute] = _MULTI_SEPARATOR.join(record.names(attribute))
    for place_type in PLACE_TYPES:
        places = record.places_of(place_type)
        place = places[0] if places else Place()
        for part in PLACE_PARTS:
            row[f"{place_type.value}_{part.value}"] = place.part(part) or ""
        row[f"{place_type.value}_lat"] = (
            repr(place.coords.lat) if place.coords else ""
        )
        row[f"{place_type.value}_lon"] = (
            repr(place.coords.lon) if place.coords else ""
        )
    return row


def _row_to_record(row: Dict[str, str]) -> VictimRecord:
    places: Dict[PlaceType, Tuple[Place, ...]] = {}
    for place_type in PLACE_TYPES:
        parts = {
            part.value: (row.get(f"{place_type.value}_{part.value}") or None)
            for part in PLACE_PARTS
        }
        lat = row.get(f"{place_type.value}_lat") or ""
        lon = row.get(f"{place_type.value}_lon") or ""
        coords = GeoPoint(float(lat), float(lon)) if lat and lon else None
        place = Place(coords=coords, **parts)
        if not place.is_empty():
            places[place_type] = (place,)

    gender_text = (row.get("gender") or "").strip()
    return VictimRecord(
        book_id=int(row["book_id"]),
        source=SourceRef(SourceKind(row["source_kind"]), row["source_id"]),
        gender=Gender(gender_text) if gender_text else None,
        birth_day=_int_or_none(row.get("birth_day")),
        birth_month=_int_or_none(row.get("birth_month")),
        birth_year=_int_or_none(row.get("birth_year")),
        profession=(row.get("profession") or None),
        places=places,
        person_id=_int_or_none(row.get("person_id")),
        **{
            attribute: _split_multi(row.get(attribute))
            for attribute in NAME_ATTRIBUTES
        },
    )


def _split_multi(text: Optional[str]) -> Tuple[str, ...]:
    if not text:
        return ()
    return tuple(part for part in text.split(_MULTI_SEPARATOR) if part)


def _opt(value) -> str:
    return "" if value is None else str(value)


def _int_or_none(text: Optional[str]) -> Optional[int]:
    if text is None or text.strip() == "":
        return None
    return int(text)
