"""Data model for Names-Project-style victim reports.

Mirrors the entity-relationship diagram of the Names Project database
(Figure 3 in the paper): a central *victim report* record (``BookID``)
carrying name attributes, birth-date components, four typed places
(birth / permanent / wartime / death) each with four granularity parts
(city / county / region / country) plus GPS coordinates, a profession,
and provenance (source list or testimony submitter).

Several attributes are multi-valued — the paper notes "a person may have
multiple occurrences in some attributes, such as first name, and war-time
place" — so every name field and every place slot is a tuple.

The ``person_id`` field is *ground truth* used only by the synthetic-data
gold standard and by evaluation; the ER algorithms never read it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.geo import GeoPoint

__all__ = [
    "Gender",
    "PlaceType",
    "PlacePart",
    "Place",
    "SourceKind",
    "SourceRef",
    "VictimRecord",
    "NAME_ATTRIBUTES",
    "PLACE_TYPES",
    "PLACE_PARTS",
]


class Gender(str, enum.Enum):
    """Victim gender as recorded on the report."""

    MALE = "M"
    FEMALE = "F"


class PlaceType(str, enum.Enum):
    """The four place semantics the schema distinguishes.

    The paper's schema reconciliation gives "reasonable confidence in the
    semantics of the different place attributes", so places are never
    compared across types.
    """

    BIRTH = "birth"
    PERMANENT = "permanent"
    WARTIME = "wartime"
    DEATH = "death"


class PlacePart(str, enum.Enum):
    """Granularity parts of a place, finest to coarsest."""

    CITY = "city"
    COUNTY = "county"
    REGION = "region"
    COUNTRY = "country"


#: The seven name attributes compared by the sameXName / XnameDist features.
NAME_ATTRIBUTES: Tuple[str, ...] = (
    "first",
    "last",
    "spouse",
    "father",
    "mother",
    "mother_maiden",
    "maiden",
)

PLACE_TYPES: Tuple[PlaceType, ...] = tuple(PlaceType)
PLACE_PARTS: Tuple[PlacePart, ...] = tuple(PlacePart)


@dataclass(frozen=True)
class Place:
    """A place value: up to four granularity parts plus coordinates."""

    city: Optional[str] = None
    county: Optional[str] = None
    region: Optional[str] = None
    country: Optional[str] = None
    coords: Optional[GeoPoint] = None

    def part(self, part: PlacePart) -> Optional[str]:
        """Return the value of one granularity part."""
        return getattr(self, part.value)

    def parts(self) -> Dict[PlacePart, str]:
        """Return the non-null parts keyed by :class:`PlacePart`."""
        result: Dict[PlacePart, str] = {}
        for part in PLACE_PARTS:
            value = self.part(part)
            if value is not None:
                result[part] = value
        return result

    def is_empty(self) -> bool:
        return not self.parts() and self.coords is None


class SourceKind(str, enum.Enum):
    """Where a report came from: a Page of Testimony or an extracted list."""

    TESTIMONY = "testimony"
    LIST = "list"


@dataclass(frozen=True)
class SourceRef:
    """Provenance of a report.

    For testimonies the ``submitter_id`` is a (first, last, city)-derived
    pseudo-identifier — the paper notes no unique submitter id exists, so
    grouping by name+city is the best available key. For lists the
    ``list_id`` identifies one of the ~16k victim lists.

    Two reports "share a source" (the ``sameSource`` feature / SameSrc
    filter) when they come from the same list or from testimonies by the
    same submitter.
    """

    kind: SourceKind
    identifier: str

    @property
    def key(self) -> Tuple[str, str]:
        return (self.kind.value, self.identifier)


@dataclass(frozen=True)
class VictimRecord:
    """A single victim report (one row of the Names Project database)."""

    book_id: int
    source: SourceRef
    first: Tuple[str, ...] = ()
    last: Tuple[str, ...] = ()
    maiden: Tuple[str, ...] = ()
    father: Tuple[str, ...] = ()
    mother: Tuple[str, ...] = ()
    mother_maiden: Tuple[str, ...] = ()
    spouse: Tuple[str, ...] = ()
    gender: Optional[Gender] = None
    birth_day: Optional[int] = None
    birth_month: Optional[int] = None
    birth_year: Optional[int] = None
    profession: Optional[str] = None
    places: Mapping[PlaceType, Tuple[Place, ...]] = field(default_factory=dict)
    #: Ground-truth person identifier; evaluation-only, never an input
    #: to blocking or classification.
    person_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.birth_day is not None and not 1 <= self.birth_day <= 31:
            raise ValueError(f"birth_day out of range: {self.birth_day}")
        if self.birth_month is not None and not 1 <= self.birth_month <= 12:
            raise ValueError(f"birth_month out of range: {self.birth_month}")
        if self.birth_year is not None and not 1800 <= self.birth_year <= 1946:
            raise ValueError(f"birth_year out of range: {self.birth_year}")

    def names(self, attribute: str) -> Tuple[str, ...]:
        """Return the values of one of the seven name attributes."""
        if attribute not in NAME_ATTRIBUTES:
            raise ValueError(f"unknown name attribute: {attribute!r}")
        return getattr(self, attribute)

    def places_of(self, place_type: PlaceType) -> Tuple[Place, ...]:
        """Return the places recorded under one place type."""
        return tuple(self.places.get(place_type, ()))

    def iter_present_fields(self) -> Iterator[str]:
        """Yield the names of populated fields, for data-pattern analysis.

        A "pattern" in the paper's sense (Figure 11) is the set of item
        types a record has values for. Place fields yield one entry per
        (type, part) combination, matching the item-type granularity of
        Tables 3 and 4.
        """
        for attribute in NAME_ATTRIBUTES:
            if self.names(attribute):
                yield f"name:{attribute}"
        if self.gender is not None:
            yield "gender"
        if self.birth_day is not None:
            yield "birth_day"
        if self.birth_month is not None:
            yield "birth_month"
        if self.birth_year is not None:
            yield "birth_year"
        if self.profession is not None:
            yield "profession"
        for place_type in PLACE_TYPES:
            seen_parts = set()
            for place in self.places_of(place_type):
                seen_parts.update(place.parts())
            for part in PLACE_PARTS:
                if part in seen_parts:
                    yield f"place:{place_type.value}:{part.value}"

    def pattern(self) -> frozenset:
        """The record's data pattern: the frozen set of populated fields."""
        return frozenset(self.iter_present_fields())

    def has_dob(self) -> bool:
        return (
            self.birth_day is not None
            or self.birth_month is not None
            or self.birth_year is not None
        )
