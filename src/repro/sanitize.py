"""Hash-order sanitizer: prove resolution output ignores PYTHONHASHSEED.

Python randomizes ``str``/``bytes`` hashing per process unless
``PYTHONHASHSEED`` pins it, so any code path that lets ``set``/``dict``
iteration order reach output produces *different bytes on different
runs*. reprolint's RL002 and the RL100-RL103 contract pass catch such
paths statically; this module is the dynamic counterpart — an
end-to-end experiment:

1. run a small, fully seeded corpus-generation + resolution in a child
   process with a **baseline** ``PYTHONHASHSEED``;
2. repeat under ``n`` further hash seeds, permuting every hash-dependent
   iteration order in the interpreter;
3. assert the ranked resolution output is **byte-identical** across all
   runs, and render a unified diff of the first divergence otherwise.

The child entry point is ``python -m repro.sanitize --emit`` (it prints
the ranked-pairs CSV to stdout); :func:`run_sanitize` drives it through
a pluggable *runner* so tests can exercise the comparison logic without
spawning processes. Exit codes mirror reprolint: 0 identical, 1
divergence, 2 bad invocation.

``--schedule`` runs the *adversarial-schedule* variant instead: the
same seeded resolution executed under
:class:`repro.parallel.AdversarialScheduleExecutor`, which permutes
chunk execution order per ``(schedule seed, dispatch)`` while sweeping
worker counts (and with them chunk boundaries). It is the dynamic
counterpart of reprolint's RL200-RL205 parallel-safety pass: the static
pass proves work functions capture no shared state and merges are
declared order-independent; the schedule sanitizer *executes* a hostile
schedule and requires the ranked CSV to stay byte-identical to the
serial reference across every seed × worker-count cell.
"""

from __future__ import annotations

import argparse
import difflib
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "SanitizeConfig",
    "SeedRun",
    "SanitizeResult",
    "ScheduleConfig",
    "ScheduleRun",
    "ScheduleResult",
    "emit_resolution",
    "subprocess_runner",
    "run_sanitize",
    "inprocess_schedule_runner",
    "run_schedule_sanitize",
    "main",
]

#: Maps a PYTHONHASHSEED value to the emitted resolution text.
Runner = Callable[[int], str]

#: Maps (schedule seed or None for the serial reference, workers) to the
#: emitted resolution text.
ScheduleRunner = Callable[[Optional[int], int], str]


@dataclass(frozen=True)
class SanitizeConfig:
    """What to resolve and under which hash seeds to re-run it."""

    persons: int = 40
    communities: Tuple[str, ...] = ("italy",)
    corpus_seed: int = 17
    ng: float = 3.5
    expert_weighting: bool = True
    baseline_hash_seed: int = 0
    hash_seeds: Tuple[int, ...] = (1, 2, 3)
    timeout: float = 120.0
    workers: int = 1

    def __post_init__(self) -> None:
        if self.persons < 2:
            raise ValueError(f"persons must be >= 2, got {self.persons}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not self.hash_seeds:
            raise ValueError("need at least one non-baseline hash seed")
        if self.baseline_hash_seed in self.hash_seeds:
            raise ValueError(
                f"baseline hash seed {self.baseline_hash_seed} must not "
                "recur in hash_seeds"
            )


@dataclass(frozen=True)
class SeedRun:
    """Outcome of one hash-seed run, compared against the baseline."""

    hash_seed: int
    matches_baseline: bool
    n_lines: int


@dataclass
class SanitizeResult:
    """Baseline plus per-seed comparisons and the first divergence diff."""

    baseline_hash_seed: int
    baseline_output: str
    runs: List[SeedRun] = field(default_factory=list)
    diff: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(run.matches_baseline for run in self.runs)

    @property
    def divergent_seeds(self) -> List[int]:
        return [r.hash_seed for r in self.runs if not r.matches_baseline]

    def write_diff(self, path: Path) -> None:
        """Persist the divergence diff (empty file when clean) for CI."""
        path.write_text(self.diff or "", encoding="utf-8")


def _resolve_ranked(
    persons: int,
    communities: Tuple[str, ...],
    corpus_seed: int,
    ng: float,
    expert_weighting: bool,
    executor: object,
) -> str:
    """Build the sanitizer corpus, resolve it, render the ranked CSV.

    The one resolution both sanitizer modes share; they differ only in
    which executor they hand in and which axis they permute around it.
    """
    # Imported here so the child process pays for the pipeline only when
    # actually resolving and the module stays importable for config/diff
    # logic even in stripped-down environments.
    from repro.core import PipelineConfig, UncertainERPipeline
    from repro.datagen import build_corpus

    dataset, _persons = build_corpus(
        n_persons=persons,
        communities=communities,
        seed=corpus_seed,
        name="sanitize",
    )
    pipeline = UncertainERPipeline(
        PipelineConfig(ng=ng, expert_weighting=expert_weighting),
        executor=executor,
    )
    resolution = pipeline.run(dataset)
    lines = ["book_id_a,book_id_b,similarity"]
    for evidence in resolution.ranked():
        a, b = evidence.pair
        lines.append(f"{a},{b},{evidence.similarity:.6f}")
    return "\n".join(lines) + "\n"


def emit_resolution(config: SanitizeConfig) -> str:
    """Generate the sanitizer corpus, resolve it, render the ranked CSV.

    Everything downstream of the interpreter's hash seed is exercised:
    item-bag construction, MFI mining, blocking, scoring, and ranking.
    All explicit RNG is seeded from ``config``, so the *only* free
    variable across child processes is PYTHONHASHSEED. With
    ``workers > 1`` the resolution runs through the parallel executor,
    which folds the parallel layer's chunking and merging into the same
    byte-identity requirement (hash seeds × worker schedules).
    """
    from repro.parallel import make_executor

    return _resolve_ranked(
        persons=config.persons,
        communities=config.communities,
        corpus_seed=config.corpus_seed,
        ng=config.ng,
        expert_weighting=config.expert_weighting,
        executor=make_executor(config.workers),
    )


def subprocess_runner(config: SanitizeConfig) -> Runner:
    """Real runner: one ``python -m repro.sanitize --emit`` per hash seed."""

    def run(hash_seed: int) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(hash_seed)
        # The child must resolve `repro` to the same tree as this process.
        package_root = str(Path(__file__).resolve().parents[1])
        previous = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not previous
            else package_root + os.pathsep + previous
        )
        argv = [
            sys.executable,
            "-m",
            "repro.sanitize",
            "--emit",
            "--persons", str(config.persons),
            "--corpus-seed", str(config.corpus_seed),
            "--ng", str(config.ng),
            "--communities", *config.communities,
        ]
        if not config.expert_weighting:
            argv.append("--no-expert-weighting")
        if config.workers != 1:
            argv += ["--workers", str(config.workers)]
        completed = subprocess.run(
            argv,
            env=env,
            capture_output=True,
            text=True,
            timeout=config.timeout,
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"sanitizer child (PYTHONHASHSEED={hash_seed}) failed with "
                f"exit code {completed.returncode}:\n{completed.stderr}"
            )
        return completed.stdout

    return run


def run_sanitize(
    config: SanitizeConfig, runner: Optional[Runner] = None
) -> SanitizeResult:
    """Run the baseline plus every configured hash seed and compare."""
    runner = runner if runner is not None else subprocess_runner(config)
    baseline = runner(config.baseline_hash_seed)
    result = SanitizeResult(
        baseline_hash_seed=config.baseline_hash_seed,
        baseline_output=baseline,
    )
    for hash_seed in config.hash_seeds:
        output = runner(hash_seed)
        matches = output == baseline
        result.runs.append(
            SeedRun(
                hash_seed=hash_seed,
                matches_baseline=matches,
                n_lines=output.count("\n"),
            )
        )
        if not matches and result.diff is None:
            result.diff = "".join(
                difflib.unified_diff(
                    baseline.splitlines(keepends=True),
                    output.splitlines(keepends=True),
                    fromfile=f"PYTHONHASHSEED={config.baseline_hash_seed}",
                    tofile=f"PYTHONHASHSEED={hash_seed}",
                )
            )
    return result


@dataclass(frozen=True)
class ScheduleConfig:
    """What to resolve and which hostile schedules to re-run it under."""

    persons: int = 40
    communities: Tuple[str, ...] = ("italy",)
    corpus_seed: int = 17
    ng: float = 3.5
    expert_weighting: bool = True
    schedule_seeds: Tuple[int, ...] = (1, 2, 3)
    worker_counts: Tuple[int, ...] = (1, 2, 4)

    def __post_init__(self) -> None:
        if self.persons < 2:
            raise ValueError(f"persons must be >= 2, got {self.persons}")
        if not self.schedule_seeds:
            raise ValueError("need at least one schedule seed")
        if not self.worker_counts:
            raise ValueError("need at least one worker count")
        bad = [w for w in self.worker_counts if w < 1]
        if bad:
            raise ValueError(f"worker counts must be >= 1, got {bad}")


@dataclass(frozen=True)
class ScheduleRun:
    """One (schedule seed, worker count) cell compared to the baseline."""

    schedule_seed: int
    workers: int
    matches_baseline: bool
    n_lines: int


@dataclass
class ScheduleResult:
    """Serial baseline plus the seeds × workers comparison matrix."""

    baseline_output: str
    runs: List[ScheduleRun] = field(default_factory=list)
    diff: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(run.matches_baseline for run in self.runs)

    @property
    def divergent_cells(self) -> List[Tuple[int, int]]:
        return [
            (r.schedule_seed, r.workers)
            for r in self.runs
            if not r.matches_baseline
        ]

    def write_diff(self, path: Path) -> None:
        """Persist the divergence diff (empty file when clean) for CI."""
        path.write_text(self.diff or "", encoding="utf-8")


def inprocess_schedule_runner(config: ScheduleConfig) -> ScheduleRunner:
    """Real schedule runner: resolve in-process under a chosen executor.

    ``schedule_seed=None`` selects the serial reference executor; any
    integer selects :class:`~repro.parallel.AdversarialScheduleExecutor`
    with that seed. No subprocesses: the adversarial permutation is the
    experiment's only free variable, so PYTHONHASHSEED may stay fixed.
    """

    def run(schedule_seed: Optional[int], workers: int) -> str:
        from repro.parallel import AdversarialScheduleExecutor, make_executor

        if schedule_seed is None:
            executor: object = make_executor(workers)
        else:
            executor = AdversarialScheduleExecutor(workers, schedule_seed)
        return _resolve_ranked(
            persons=config.persons,
            communities=config.communities,
            corpus_seed=config.corpus_seed,
            ng=config.ng,
            expert_weighting=config.expert_weighting,
            executor=executor,
        )

    return run


def run_schedule_sanitize(
    config: ScheduleConfig, runner: Optional[ScheduleRunner] = None
) -> ScheduleResult:
    """Serial baseline, then every schedule seed × worker count cell.

    The baseline is ``runner(None, 1)`` — the serial reference path with
    no adversary — so every parallel cell is compared against the output
    the paper-facing CLI produces by default.
    """
    runner = runner if runner is not None else inprocess_schedule_runner(config)
    baseline = runner(None, 1)
    result = ScheduleResult(baseline_output=baseline)
    for schedule_seed in config.schedule_seeds:
        for workers in config.worker_counts:
            output = runner(schedule_seed, workers)
            matches = output == baseline
            result.runs.append(
                ScheduleRun(
                    schedule_seed=schedule_seed,
                    workers=workers,
                    matches_baseline=matches,
                    n_lines=output.count("\n"),
                )
            )
            if not matches and result.diff is None:
                result.diff = "".join(
                    difflib.unified_diff(
                        baseline.splitlines(keepends=True),
                        output.splitlines(keepends=True),
                        fromfile="serial baseline",
                        tofile=(
                            f"schedule_seed={schedule_seed} "
                            f"workers={workers}"
                        ),
                    )
                )
    return result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sanitize",
        description=(
            "re-run a small seeded resolution under permuted "
            "PYTHONHASHSEED values and require byte-identical output"
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=3,
        help="number of non-baseline hash seeds to try (default: 3)",
    )
    parser.add_argument("--persons", type=int, default=40)
    parser.add_argument("--corpus-seed", type=int, default=17)
    parser.add_argument("--ng", type=float, default=3.5)
    parser.add_argument(
        "--communities", nargs="+", default=["italy"],
        help="synthetic-corpus communities (default: italy)",
    )
    parser.add_argument(
        "--no-expert-weighting", action="store_true",
        help="score blocks with uniform Jaccard instead",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel workers for each seeded resolution (default: 1)",
    )
    parser.add_argument(
        "--diff-out", type=Path, default=None,
        help="write the first divergence as a unified diff to this file",
    )
    parser.add_argument(
        "--schedule", action="store_true",
        help="run the adversarial-schedule sanitizer instead: permute "
        "chunk execution order under seeded schedules x worker counts "
        "and require byte-identical ranked output",
    )
    parser.add_argument(
        "--schedule-seeds", type=int, default=3,
        help="number of adversarial schedule seeds to try (default: 3)",
    )
    parser.add_argument(
        "--schedule-workers", default="1,2,4",
        help="comma-separated worker counts to sweep under each "
        "schedule seed (default: 1,2,4)",
    )
    parser.add_argument(
        "--emit", action="store_true",
        help=argparse.SUPPRESS,  # internal: child mode, print CSV and exit
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> SanitizeConfig:
    return SanitizeConfig(
        persons=args.persons,
        communities=tuple(args.communities),
        corpus_seed=args.corpus_seed,
        ng=args.ng,
        expert_weighting=not args.no_expert_weighting,
        hash_seeds=tuple(range(1, args.seeds + 1)),
        workers=args.workers,
    )


def _schedule_config_from_args(args: argparse.Namespace) -> ScheduleConfig:
    try:
        worker_counts = tuple(
            int(token)
            for token in args.schedule_workers.split(",")
            if token.strip()
        )
    except ValueError:
        raise ValueError(
            f"--schedule-workers must be comma-separated integers, "
            f"got {args.schedule_workers!r}"
        ) from None
    return ScheduleConfig(
        persons=args.persons,
        communities=tuple(args.communities),
        corpus_seed=args.corpus_seed,
        ng=args.ng,
        expert_weighting=not args.no_expert_weighting,
        schedule_seeds=tuple(range(1, args.schedule_seeds + 1)),
        worker_counts=worker_counts,
    )


def _main_schedule(args: argparse.Namespace) -> int:
    if args.schedule_seeds < 1:
        print("repro-sanitize: --schedule-seeds must be >= 1", file=sys.stderr)
        return 2
    try:
        config = _schedule_config_from_args(args)
    except ValueError as exc:
        print(f"repro-sanitize: {exc}", file=sys.stderr)
        return 2

    result = run_schedule_sanitize(config)
    n_pairs = result.baseline_output.count("\n") - 1
    print(f"serial baseline: {n_pairs} ranked pairs")
    for run in result.runs:
        status = "identical" if run.matches_baseline else "DIVERGED"
        print(
            f"schedule_seed={run.schedule_seed} workers={run.workers}: "
            f"{status}"
        )
    if args.diff_out is not None:
        result.write_diff(args.diff_out)
        if result.diff:
            print(f"wrote divergence diff to {args.diff_out}")
    if result.ok:
        print(
            f"adversarial-schedule sanitizer: {len(result.runs)} "
            "schedule cells byte-identical to the serial baseline"
        )
        return 0
    print(
        "adversarial-schedule sanitizer: output depends on chunk "
        f"schedule (diverging (seed, workers): {result.divergent_cells})",
        file=sys.stderr,
    )
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.sanitize`` and ``repro sanitize``."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.schedule:
        return _main_schedule(args)
    if args.seeds < 1:
        print("repro-sanitize: --seeds must be >= 1", file=sys.stderr)
        return 2
    try:
        config = _config_from_args(args)
    except ValueError as exc:
        print(f"repro-sanitize: {exc}", file=sys.stderr)
        return 2

    if args.emit:
        sys.stdout.write(emit_resolution(config))
        return 0

    result = run_sanitize(config)
    n_pairs = result.baseline_output.count("\n") - 1
    print(
        f"baseline PYTHONHASHSEED={result.baseline_hash_seed}: "
        f"{n_pairs} ranked pairs"
    )
    for run in result.runs:
        status = "identical" if run.matches_baseline else "DIVERGED"
        print(f"PYTHONHASHSEED={run.hash_seed}: {status}")
    if args.diff_out is not None:
        result.write_diff(args.diff_out)
        if result.diff:
            print(f"wrote divergence diff to {args.diff_out}")
    if result.ok:
        print(f"hash-order sanitizer: {len(result.runs)} seeds byte-identical")
        return 0
    print(
        "hash-order sanitizer: output depends on PYTHONHASHSEED "
        f"(diverging seeds: {result.divergent_seeds})",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
