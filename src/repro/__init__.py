"""repro — multi-source uncertain entity resolution.

A from-scratch reproduction of *"Multi-Source Uncertain Entity
Resolution: Transforming Holocaust Victim Reports into People"*
(Sagi, Gal, Barkol, Bergman, Avram — SIGMOD 2016 / Information Systems
extended version): the MFIBlocks soft-blocking algorithm over an
FP-Growth/FPMax miner, an ADTree pair classifier, ranked
certainty-tunable resolution, a synthetic Names-Project corpus
generator, ten baseline blocking techniques, and the knowledge-graph /
narrative layer the project motivates.

Quickstart::

    from repro import build_corpus, PipelineConfig, UncertainERPipeline

    dataset, persons = build_corpus(n_persons=500, communities=("italy",))
    pipeline = UncertainERPipeline(PipelineConfig(ng=3.5, expert_weighting=True))
    resolution = pipeline.run(dataset)
    for entity in resolution.entities(certainty=0.4):
        print(sorted(entity))
"""

from __future__ import annotations

from repro.blocking import MFIBlocks, MFIBlocksConfig
from repro.classify import ADTreeLearner, ADTreeModel, PairClassifier, render_tree
from repro.core import (
    GranularityLevel,
    PairEvidence,
    PipelineConfig,
    ResolutionResult,
    UncertainERPipeline,
    family_config,
    family_gold_standard,
)
from repro.datagen import (
    ExpertTagger,
    Tag,
    build_corpus,
    build_gazetteer,
    build_italy_set,
    build_random_set,
    simplify_tags,
)
from repro.evaluation import GoldStandard, TaggedGoldStandard
from repro.obs import NULL_TRACER, RunReport, Tracer
from repro.submitters import SubmitterGenerator, dedupe_submitters
from repro.graph import build_knowledge_graph, narrative_for, ranked_narratives
from repro.records import Dataset, VictimRecord
from repro.version import repro_version

__version__ = "1.0.0"

__all__ = [
    "MFIBlocks",
    "MFIBlocksConfig",
    "ADTreeLearner",
    "ADTreeModel",
    "PairClassifier",
    "render_tree",
    "GranularityLevel",
    "PairEvidence",
    "PipelineConfig",
    "ResolutionResult",
    "UncertainERPipeline",
    "family_config",
    "family_gold_standard",
    "ExpertTagger",
    "Tag",
    "build_corpus",
    "build_gazetteer",
    "build_italy_set",
    "build_random_set",
    "simplify_tags",
    "GoldStandard",
    "SubmitterGenerator",
    "dedupe_submitters",
    "TaggedGoldStandard",
    "build_knowledge_graph",
    "narrative_for",
    "ranked_narratives",
    "Dataset",
    "VictimRecord",
    "NULL_TRACER",
    "RunReport",
    "Tracer",
    "repro_version",
    "__version__",
]
