"""Record quarantine: keep the run alive when individual rows are bad.

The paper's corpus — 6.5M reports from >500k heterogeneous sources —
is exactly the regime where malformed rows are the norm, not the
exception. Aborting a multi-hour resolution on the first unparseable
``birth_year`` throws away everything already ingested; silently
dropping the row hides data loss. A :class:`Quarantine` does neither:
ingestion collects every rejected row as a structured
:class:`QuarantineEntry` — 1-based line number, offending field, reason,
raw row — and the run completes on the records that parsed, with the
loss surfaced as counters in the run report and persistable as
``quarantine.jsonl`` for triage.

Three policies (:class:`QuarantinePolicy`):

``FAIL_FAST``
    The pre-resilience behavior: raise on the first bad row, now with
    the line number *and* field name in the message.
``QUARANTINE``
    Collect the bad row and continue; the row contributes nothing.
``REPAIR``
    Blank the unparseable *optional* fields and keep the rest of the
    row; the repair is itself recorded (``repaired=True``) so nothing
    is lost silently. Rows whose required identity fields are bad
    cannot be repaired and fall back to quarantine.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.contracts import deterministic

__all__ = [
    "QuarantinePolicy",
    "QuarantineEntry",
    "Quarantine",
    "RowError",
]

#: Schema version of the ``quarantine.jsonl`` entry layout.
QUARANTINE_SCHEMA = 1


class RowError(ValueError):
    """A row failed to parse; carries the offending field name.

    Raised by row decoders so callers can report *which* column broke
    (satisfying fail-fast diagnostics) and so the repair policy knows
    which cell to blank.
    """

    def __init__(self, field_name: Optional[str], message: str) -> None:
        super().__init__(message)
        self.field = field_name


class QuarantinePolicy(enum.Enum):
    """What ingestion does with a malformed record."""

    FAIL_FAST = "fail-fast"
    QUARANTINE = "quarantine"
    REPAIR = "repair"


@dataclass(frozen=True)
class QuarantineEntry:
    """One rejected (or repaired) row with enough context to triage it.

    ``line_number`` is 1-based in the source file (the CSV header is
    line 1, so the first data row is line 2); for JSON corpora it is the
    1-based ordinal of the record entry instead.
    """

    source: str
    line_number: int
    field: Optional[str]
    reason: str
    row: Mapping[str, Any]
    repaired: bool = False
    repaired_fields: Tuple[str, ...] = ()

    @deterministic
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": QUARANTINE_SCHEMA,
            "source": self.source,
            "line_number": self.line_number,
            "field": self.field,
            "reason": self.reason,
            "repaired": self.repaired,
            "repaired_fields": list(self.repaired_fields),
            "row": dict(self.row),
        }


@dataclass
class Quarantine:
    """Collects quarantine entries across one ingestion run."""

    entries: List[QuarantineEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def record(
        self,
        source: str,
        line_number: int,
        field_name: Optional[str],
        reason: str,
        row: Mapping[str, Any],
        repaired: bool = False,
        repaired_fields: Tuple[str, ...] = (),
    ) -> QuarantineEntry:
        """Append one entry and return it."""
        entry = QuarantineEntry(
            source=source,
            line_number=line_number,
            field=field_name,
            reason=reason,
            row=row,
            repaired=repaired,
            repaired_fields=repaired_fields,
        )
        self.entries.append(entry)
        return entry

    # -- accounting ----------------------------------------------------------

    @property
    def n_quarantined(self) -> int:
        """Rows fully rejected (they contribute no record)."""
        return sum(1 for entry in self.entries if not entry.repaired)

    @property
    def n_repaired(self) -> int:
        """Rows kept after blanking unparseable optional fields."""
        return sum(1 for entry in self.entries if entry.repaired)

    def line_numbers(self, include_repaired: bool = True) -> List[int]:
        """Sorted line numbers of affected rows."""
        return sorted(
            entry.line_number
            for entry in self.entries
            if include_repaired or not entry.repaired
        )

    # -- persistence ---------------------------------------------------------

    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write entries as ``quarantine.jsonl`` (one object per line).

        Keys are sorted so the artifact is byte-deterministic for a
        given ingestion run.
        """
        with open(path, "w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(
                    json.dumps(
                        entry.to_dict(), sort_keys=True, ensure_ascii=False
                    )
                    + "\n"
                )

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "Quarantine":
        """Load a quarantine file written by :meth:`to_jsonl`."""
        quarantine = cls()
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            payload = json.loads(line)
            quarantine.entries.append(
                QuarantineEntry(
                    source=str(payload["source"]),
                    line_number=int(payload["line_number"]),
                    field=payload.get("field"),
                    reason=str(payload["reason"]),
                    row=dict(payload.get("row", {})),
                    repaired=bool(payload.get("repaired", False)),
                    repaired_fields=tuple(
                        payload.get("repaired_fields", ())
                    ),
                )
            )
        return quarantine
