"""Stage budgets: anytime semantics for the expensive pipeline stages.

MFIBlocks' ``minsup`` descent and FP-Growth mining are the stages whose
cost explodes on dirty data (the blocking-survey observation in
PAPERS.md); Galhotra et al.'s progressive blocking shows ER can still
yield useful partial results under a budget. A :class:`StageBudget`
bounds a stage by **iterations** (deterministic: the same corpus always
exhausts at the same point) and/or by a **deadline** in seconds (a
liveness guarantee that trades determinism for bounded latency — the
clock is the tracer's injected :class:`~repro.obs.clock.Clock`, so
tests drive it manually).

When a budget runs out the stage does not raise: it returns the
best-so-far result and marks itself *degraded*. The flag propagates to
:class:`~repro.blocking.base.BlockingResult`,
:class:`~repro.core.resolution.ResolutionResult` and the run report, so
a truncated blocking can never masquerade as a complete one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs.clock import Clock, MonotonicClock

__all__ = ["StageBudget", "BudgetMeter"]


@dataclass(frozen=True)
class StageBudget:
    """Bounds on one stage's work.

    ``max_iterations``
        Units of work the stage may charge before it must stop. An
        iteration is whatever the stage declares it to be: one
        ``minsup`` level for the MFIBlocks descent, one node expansion
        for the FPMax recursion. Deterministic.
    ``deadline_seconds``
        Wall-clock allowance measured from the first budget check.
        Nondeterministic by nature; use for latency guarantees, not for
        reproducible experiments.
    """

    max_iterations: Optional[int] = None
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_iterations is None and self.deadline_seconds is None:
            raise ValueError(
                "a StageBudget needs max_iterations or deadline_seconds"
            )
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )

    def to_echo(self) -> Dict[str, Any]:
        """JSON-safe snapshot for config echoes and fingerprints."""
        return {
            "max_iterations": self.max_iterations,
            "deadline_seconds": self.deadline_seconds,
        }


class BudgetMeter:
    """Tracks one stage's spend against a :class:`StageBudget`.

    A meter with ``budget=None`` never exhausts and costs one attribute
    check per call — stages thread it unconditionally. The deadline
    reading goes through the injected clock (``repro.obs.clock`` is the
    sole wall-clock holder in ``src/``), which is why this class carries
    no determinism contract: with a deadline set, exhaustion depends on
    the machine, and the ``degraded`` flag exists to record exactly
    that.
    """

    __slots__ = ("budget", "_clock", "_iterations", "_started_at", "_degraded")

    def __init__(
        self, budget: Optional[StageBudget], clock: Optional[Clock] = None
    ) -> None:
        self.budget = budget
        if clock is None and budget is not None and budget.deadline_seconds is not None:
            clock = MonotonicClock()
        self._clock = clock
        self._iterations = 0
        self._started_at: Optional[float] = None
        self._degraded = False

    @property
    def enabled(self) -> bool:
        return self.budget is not None

    @property
    def iterations(self) -> int:
        """Units of work charged so far."""
        return self._iterations

    @property
    def degraded(self) -> bool:
        """True once exhaustion has been observed by any caller."""
        return self._degraded

    def charge(self, n: int = 1) -> None:
        """Record ``n`` units of work."""
        self._iterations += n

    def exhausted(self) -> bool:
        """Whether the stage must stop and return best-so-far output.

        The first positive answer latches :attr:`degraded`; callers
        check before each unit of work, so a freshly exhausted meter
        stops the stage *before* it overspends.
        """
        budget = self.budget
        if budget is None:
            return False
        if (
            budget.max_iterations is not None
            and self._iterations >= budget.max_iterations
        ):
            self._degraded = True
            return True
        if budget.deadline_seconds is not None and self._clock is not None:
            now = self._clock.now()
            if self._started_at is None:
                self._started_at = now
            elif now - self._started_at >= budget.deadline_seconds:
                self._degraded = True
                return True
        return False
