"""Versioned, content-hashed pipeline checkpoints.

A killed multi-hour resolution should restart from the last durable
stage, not from scratch — and a *resumed* run must produce output
byte-identical to an uninterrupted one (the determinism tests and the
``repro chaos`` harness enforce this). The store therefore refuses to
serve anything it cannot prove fresh and intact:

* every checkpoint carries a **fingerprint** chaining the corpus
  content hash, the pipeline configuration, and the upstream stage's
  fingerprint (:func:`chain_fingerprint`) — a stale checkpoint from a
  different corpus, config, or code path simply misses;
* the payload is guarded by its own SHA-256, so a truncated or
  hand-edited file is detected and treated as a miss, never trusted;
* writes are atomic (temp file + ``os.replace``), so a crash *during*
  checkpointing leaves either the old checkpoint or none — no torn
  states.

Checkpoint file schema (version :data:`CHECKPOINT_SCHEMA`)::

    {
      "schema": 1,
      "stage": "blocking",
      "fingerprint": "<hex>",     # identity chain, see chain_fingerprint
      "payload_sha256": "<hex>",  # over the canonical payload dump
      "payload": {...}            # stage-specific state (JSON-safe)
    }

Misses are never exceptions: :meth:`CheckpointStore.load` returns
``None`` and records *why* in :attr:`CheckpointStore.misses` so reports
and the chaos harness can distinguish "no checkpoint" from "corrupt
checkpoint".
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.contracts import deterministic, impure

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointMiss",
    "CheckpointStore",
    "GcReport",
    "chain_fingerprint",
    "canonical_digest",
    "gc_checkpoints",
]

#: Version of the on-disk checkpoint layout. Readers reject other
#: versions (treated as a miss), so format evolution can never produce
#: a silently wrong resume.
CHECKPOINT_SCHEMA = 1


@deterministic
def canonical_digest(payload: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``.

    Canonical means sorted keys and no whitespace variance, so the
    digest depends only on content, never on dict insertion order.
    """
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@deterministic
def chain_fingerprint(
    parent: Optional[str], stage: str, context: Mapping[str, Any]
) -> str:
    """Fingerprint of one stage given its upstream fingerprint.

    ``parent`` is the previous stage's fingerprint (``None`` for the
    first stage), ``context`` the JSON-safe identity of everything this
    stage's output depends on besides upstream state — corpus content
    hash, configuration echo, label digests. Chaining means a change
    anywhere upstream invalidates every later checkpoint.
    """
    return canonical_digest(
        {
            "schema": CHECKPOINT_SCHEMA,
            "parent": parent,
            "stage": stage,
            "context": dict(context),
        }
    )


class CheckpointMiss:
    """Why a load returned ``None`` (diagnostic, not an error)."""

    MISSING = "missing"
    UNREADABLE = "unreadable"
    SCHEMA_MISMATCH = "schema-mismatch"
    FINGERPRINT_MISMATCH = "fingerprint-mismatch"
    PAYLOAD_CORRUPT = "payload-corrupt"

    def __init__(self, stage: str, reason: str, detail: str = "") -> None:
        self.stage = stage
        self.reason = reason
        self.detail = detail

    def __repr__(self) -> str:
        return f"CheckpointMiss(stage={self.stage!r}, reason={self.reason!r})"


class CheckpointStore:
    """Durable per-stage checkpoints under one directory.

    One store serves one logical run; stage names map to files
    ``<stage>.ckpt.json``. The store is deliberately dumb about stage
    semantics — the pipeline owns payload encoding and fingerprint
    chaining; the store owns durability and integrity.
    """

    SUFFIX = ".ckpt.json"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Diagnostic trail of failed loads, in load order.
        self.misses: List[CheckpointMiss] = []
        #: Stages served from disk by this store instance.
        self.hits: List[str] = []

    def path_for(self, stage: str) -> Path:
        """The checkpoint file backing ``stage``."""
        if not stage or "/" in stage or os.sep in stage:
            raise ValueError(f"invalid stage name: {stage!r}")
        return self.directory / f"{stage}{self.SUFFIX}"

    # -- write ---------------------------------------------------------------

    def save(
        self, stage: str, fingerprint: str, payload: Mapping[str, Any]
    ) -> Path:
        """Atomically persist ``payload`` as the checkpoint for ``stage``.

        The write goes to a sibling temp file first and is moved into
        place with ``os.replace``, so observers only ever see a
        complete checkpoint (or the previous one).
        """
        path = self.path_for(stage)
        document = {
            "schema": CHECKPOINT_SCHEMA,
            "stage": stage,
            "fingerprint": fingerprint,
            "payload_sha256": canonical_digest(dict(payload)),
            "payload": dict(payload),
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(document, sort_keys=True, indent=1, ensure_ascii=False),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    # -- read ----------------------------------------------------------------

    def load(self, stage: str, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Return the stage payload, or ``None`` with a recorded miss.

        A payload is served only when the file parses, declares the
        supported schema, matches ``fingerprint`` exactly, and its
        content hash verifies — anything else is a miss, because a
        wrong resume is strictly worse than a recompute.
        """
        path = self.path_for(stage)
        if not path.is_file():
            self.misses.append(CheckpointMiss(stage, CheckpointMiss.MISSING))
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            self.misses.append(
                CheckpointMiss(stage, CheckpointMiss.UNREADABLE, str(error))
            )
            return None
        if not isinstance(document, dict) or document.get("schema") != CHECKPOINT_SCHEMA:
            self.misses.append(
                CheckpointMiss(
                    stage,
                    CheckpointMiss.SCHEMA_MISMATCH,
                    f"schema={document.get('schema')!r}"
                    if isinstance(document, dict)
                    else "not an object",
                )
            )
            return None
        if document.get("fingerprint") != fingerprint:
            self.misses.append(
                CheckpointMiss(
                    stage,
                    CheckpointMiss.FINGERPRINT_MISMATCH,
                    f"found {document.get('fingerprint')!r}",
                )
            )
            return None
        payload = document.get("payload")
        if (
            not isinstance(payload, dict)
            or canonical_digest(payload) != document.get("payload_sha256")
        ):
            self.misses.append(
                CheckpointMiss(stage, CheckpointMiss.PAYLOAD_CORRUPT)
            )
            return None
        self.hits.append(stage)
        return payload

    # -- maintenance ---------------------------------------------------------

    def stages_on_disk(self) -> List[str]:
        """Stage names with a checkpoint file present (sorted)."""
        return sorted(
            path.name[: -len(self.SUFFIX)]
            for path in self.directory.glob(f"*{self.SUFFIX}")
        )

    def clear(self) -> int:
        """Delete every checkpoint file; returns how many were removed."""
        removed = 0
        for stage in self.stages_on_disk():
            self.path_for(stage).unlink()
            removed += 1
        return removed

    def miss_counts(self) -> Dict[str, int]:
        """Miss reasons folded into counts (for report counters)."""
        counts: Dict[str, int] = {}
        for miss in self.misses:
            counts[miss.reason] = counts.get(miss.reason, 0) + 1
        return counts

    def summary(self) -> Tuple[int, int]:
        """(hits, misses) so far."""
        return len(self.hits), len(self.misses)


@dataclass(frozen=True)
class GcReport:
    """What a checkpoint GC pass kept, removed, and reclaimed.

    ``dry_run`` records whether the listed removals actually happened;
    a dry-run report is the promise of what a real pass *would* do, so
    the CLI can show it for confirmation first.
    """

    directory: Path
    keep: int
    dry_run: bool
    kept: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()
    orphans_removed: Tuple[str, ...] = ()
    bytes_reclaimed: int = 0

    def to_echo(self) -> Dict[str, Any]:
        """JSON-safe summary for reports and CLI output."""
        return {
            "directory": str(self.directory),
            "keep": self.keep,
            "dry_run": self.dry_run,
            "kept": list(self.kept),
            "removed": list(self.removed),
            "orphans_removed": list(self.orphans_removed),
            "bytes_reclaimed": self.bytes_reclaimed,
        }


@impure(reason="inspects file mtimes and (unless dry-run) unlinks files")
def gc_checkpoints(
    directory: Union[str, Path], keep: int, dry_run: bool = False
) -> GcReport:
    """Prune a checkpoint directory down to its ``keep`` newest stages.

    Two kinds of garbage accumulate under long-lived checkpoint roots:

    * **stale stages** — checkpoints whose fingerprints no longer match
      any live run (a config tweak orphans the whole chain).  GC keeps
      the ``keep`` newest ``*.ckpt.json`` files by modification time
      (name as the deterministic tie-break) and removes the rest;
    * **torn temp files** — ``*.ckpt.json.tmp`` left behind when a
      crash hit between the temp write and ``os.replace``.  These are
      never valid checkpoints and are always removed, regardless of
      ``keep``.

    With ``dry_run`` nothing is unlinked; the report lists what a real
    pass would remove.  ``keep=0`` is allowed and removes every
    checkpoint (``clear`` with a listing).
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"not a checkpoint directory: {root}")
    checkpoints = sorted(
        root.glob(f"*{CheckpointStore.SUFFIX}"),
        key=lambda path: (-path.stat().st_mtime, path.name),
    )
    orphans = sorted(root.glob(f"*{CheckpointStore.SUFFIX}.tmp"))
    kept = checkpoints[:keep]
    doomed = checkpoints[keep:]
    reclaimed = 0
    for path in doomed + orphans:
        reclaimed += path.stat().st_size
        if not dry_run:
            path.unlink()
    return GcReport(
        directory=root,
        keep=keep,
        dry_run=dry_run,
        kept=tuple(path.name for path in kept),
        removed=tuple(path.name for path in doomed),
        orphans_removed=tuple(path.name for path in orphans),
        bytes_reclaimed=reclaimed,
    )
