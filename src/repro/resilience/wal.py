"""Write-ahead log: crash durability for streaming ingestion.

The batch pipeline already restarts from per-stage checkpoints
(:mod:`repro.resilience.checkpoints`); streaming ingestion needs the
complementary guarantee — a crash *mid-batch* must lose at most the
batch in flight, never silently corrupt the live resolution. The
:class:`WriteAheadLog` provides that with the classic two-entry commit
protocol over an append-only, segment-rotating log:

1. ``begin`` — the full serialized batch (its record dicts) is appended
   and fsync'd *before* any in-memory state changes;
2. the resolver applies the batch in memory;
3. ``commit`` — a marker for the same batch id is appended and fsync'd.

A batch is durable iff its ``commit`` marker is on disk. Recovery
(:meth:`WriteAheadLog.__init__` scans on open) replays exactly the
committed prefix and physically truncates everything after the last
commit: a torn final line (the shape a real crash produces), a ``begin``
whose ``commit`` never landed, or any undecodable byte. Dropped data is
*counted and reported*, never silently ignored — the resolver surfaces
the numbers through the run report's ``resilience.wal`` block.

On-disk layout (version :data:`WAL_SCHEMA`) under one directory::

    wal.meta.json        # {"schema": 1, "base_fingerprint": "<hex>"}
    wal-00000000.log     # JSONL entries, rotated by size
    wal-00000001.log     # rotation happens only *before* a begin,
    ...                  # so a batch never spans two segments

Each entry line is canonical JSON carrying its own SHA-256::

    {"batch": 3, "kind": "begin", "payload": {"records": [...]},
     "schema": 1, "seq": 6, "sha256": "<hex over the other fields>"}

``seq`` is strictly consecutive across segments, so a lost or reordered
line is detected even when the bytes themselves decode. The meta file
binds the log to its base snapshot (corpus content hash + config echo
chained through :func:`~repro.resilience.checkpoints.chain_fingerprint`)
and is written atomically (tmp + ``os.replace`` + fsync); replaying a
log against the wrong base corpus is refused, mirroring the checkpoint
store's fingerprint-mismatch-is-a-miss rule.

What is **not** guaranteed (also in ``docs/RESILIENCE.md``): the batch
in flight at the crash is dropped (at-most-once, not exactly-once);
``fsync=False`` trades the power-loss guarantee for throughput (the
process-crash guarantee survives); and the log records *inputs*, not
evidence — replay recomputes scoring, which is deterministic.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Mapping, Optional, Sequence, Tuple, Union

from repro.contracts import deterministic, impure
from repro.resilience.checkpoints import canonical_digest
from repro.resilience.faults import SimulatedCrash

__all__ = [
    "WAL_SCHEMA",
    "DEFAULT_SEGMENT_MAX_BYTES",
    "WalError",
    "WalEntry",
    "WalBatch",
    "WalRecovery",
    "WalFaultPlan",
    "WriteAheadLog",
    "encode_entry",
    "decode_entry",
]

#: Version of the on-disk WAL layout. Readers reject other versions as
#: torn data, so format evolution can never produce a wrong replay.
WAL_SCHEMA = 1

#: Rotate the live segment once it reaches this size. Small enough that
#: recovery scans stay cheap, large enough that rotation is rare.
DEFAULT_SEGMENT_MAX_BYTES = 256 * 1024

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_META_NAME = "wal.meta.json"

KIND_BEGIN = "begin"
KIND_COMMIT = "commit"


class WalError(RuntimeError):
    """A WAL protocol violation or base-fingerprint mismatch."""


@dataclass(frozen=True)
class WalEntry:
    """One decoded, integrity-verified log line."""

    seq: int
    kind: str
    batch_id: int
    payload: Mapping[str, Any]


@dataclass(frozen=True)
class WalBatch:
    """A committed batch as recovered from the log."""

    batch_id: int
    records: Tuple[Mapping[str, Any], ...]


@dataclass
class WalRecovery:
    """What the open-time scan found, kept, and dropped."""

    segments: int = 0
    entries: int = 0
    committed_batches: int = 0
    #: Batch ids whose ``begin`` landed but whose ``commit`` did not.
    uncommitted_batches: List[int] = field(default_factory=list)
    uncommitted_records: int = 0
    #: Bytes physically truncated because they were torn (undecodable,
    #: hash-mismatched, out-of-sequence) or stranded past a tear.
    torn_tail_bytes: int = 0
    #: Segment files removed entirely because they sat past a tear.
    dropped_segments: List[str] = field(default_factory=list)


@dataclass
class WalFaultPlan:
    """Crash the writer immediately after one durable append.

    ``crash_after_append`` is the 0-based index of the append to die
    after; with two entries per batch, even indexes crash between
    ``begin`` and the in-memory apply (the batch must be dropped on
    recovery) and odd indexes crash right after ``commit`` (the batch
    must survive). ``fired`` records whether the fault triggered so
    chaos tests can assert the kill happened.
    """

    crash_after_append: int = 0
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.crash_after_append < 0:
            raise ValueError(
                f"crash_after_append must be >= 0, "
                f"got {self.crash_after_append}"
            )

    def after_append(self, append_index: int) -> None:
        """Injection point: the WAL just fsync'd append ``append_index``."""
        if not self.fired and append_index == self.crash_after_append:
            self.fired = True
            raise SimulatedCrash(f"wal-append-{append_index}")


@deterministic
def encode_entry(
    seq: int, kind: str, batch_id: int, payload: Mapping[str, Any]
) -> bytes:
    """One log line: canonical JSON + trailing newline, self-hashed."""
    body: Dict[str, Any] = {
        "schema": WAL_SCHEMA,
        "seq": seq,
        "kind": kind,
        "batch": batch_id,
        "payload": dict(payload),
    }
    body["sha256"] = canonical_digest(body)
    text = json.dumps(
        body, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    return (text + "\n").encode("utf-8")


@deterministic
def decode_entry(line: bytes) -> WalEntry:
    """Decode and integrity-check one log line; :class:`WalError` if torn."""
    try:
        document = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WalError(f"undecodable WAL line: {error}") from error
    if not isinstance(document, dict):
        raise WalError("WAL line is not an object")
    declared = document.pop("sha256", None)
    if canonical_digest(document) != declared:
        raise WalError("WAL line hash mismatch")
    if document.get("schema") != WAL_SCHEMA:
        raise WalError(f"unsupported WAL schema: {document.get('schema')!r}")
    seq, kind, batch_id = (
        document.get("seq"), document.get("kind"), document.get("batch")
    )
    payload = document.get("payload")
    if (
        not isinstance(seq, int)
        or not isinstance(batch_id, int)
        or kind not in (KIND_BEGIN, KIND_COMMIT)
        or not isinstance(payload, dict)
    ):
        raise WalError("malformed WAL entry fields")
    return WalEntry(seq=seq, kind=kind, batch_id=batch_id, payload=payload)


class WriteAheadLog:
    """Append-only durability log for batched incremental resolution.

    Opening scans every segment, verifies the entry chain, and
    physically truncates anything past the last committed batch (torn
    tails, uncommitted begins, stranded segments); the damage report
    lives in :attr:`recovery`. The surviving committed batches are
    available through :meth:`committed_batches` for replay.

    ``fsync=False`` skips the per-append ``os.fsync`` (the streaming
    benchmark's "without durability" mode): writes still go through the
    OS, so a *process* crash loses nothing, but a power loss may.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        fsync: bool = True,
        fault: Optional[WalFaultPlan] = None,
    ) -> None:
        if segment_max_bytes < 1:
            raise ValueError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync_enabled = fsync
        self.fault = fault
        self.recovery = WalRecovery()
        self._handle: Optional[IO[bytes]] = None
        self._appends = 0
        self._open_batch: Optional[int] = None
        self._committed: List[WalBatch] = []
        self._scan()

    # -- identity ------------------------------------------------------------

    @property
    def meta_path(self) -> Path:
        return self.directory / _META_NAME

    def base_fingerprint(self) -> Optional[str]:
        """The bound base-snapshot fingerprint, or ``None`` if unbound."""
        if not self.meta_path.is_file():
            return None
        try:
            document = json.loads(self.meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise WalError(f"unreadable WAL meta: {error}") from error
        if (
            not isinstance(document, dict)
            or document.get("schema") != WAL_SCHEMA
            or not isinstance(document.get("base_fingerprint"), str)
        ):
            raise WalError(f"malformed WAL meta: {self.meta_path}")
        fingerprint: str = document["base_fingerprint"]
        return fingerprint

    @impure(reason="atomic tmp+rename+fsync write of the WAL meta file")
    def ensure_base(self, fingerprint: str) -> None:
        """Bind the log to its base snapshot, or verify the binding.

        First call on a fresh directory writes ``wal.meta.json``
        atomically; later opens must present the same fingerprint —
        replaying a log against a different corpus or config is refused
        (a wrong replay is strictly worse than no replay).
        """
        existing = self.base_fingerprint()
        if existing is not None:
            if existing != fingerprint:
                raise WalError(
                    f"WAL base fingerprint mismatch: log is bound to "
                    f"{existing[:12]}…, caller presented {fingerprint[:12]}…"
                )
            return
        if self.recovery.entries or self._committed:
            raise WalError(
                "WAL has segments but no meta file; refusing to rebind"
            )
        document = {"schema": WAL_SCHEMA, "base_fingerprint": fingerprint}
        tmp = self.meta_path.with_name(self.meta_path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, indent=1)
            handle.flush()
            if self.fsync_enabled:
                os.fsync(handle.fileno())
        os.replace(tmp, self.meta_path)
        self._fsync_directory()

    # -- write path ----------------------------------------------------------

    @impure(reason="fsync-appends a batch-intent entry to the live segment")
    def append_begin(
        self, batch_id: int, records: Sequence[Mapping[str, Any]]
    ) -> None:
        """Log the full batch payload before any state mutation."""
        if self._open_batch is not None:
            raise WalError(
                f"batch {self._open_batch} is still open; commit it first"
            )
        if self._committed and batch_id <= self._committed[-1].batch_id:
            raise WalError(
                f"batch ids must increase: {batch_id} after "
                f"{self._committed[-1].batch_id}"
            )
        payload = {"records": [dict(record) for record in records]}
        self._rotate_if_needed()
        self._append(KIND_BEGIN, batch_id, payload)
        self._open_batch = batch_id
        self._pending_records = tuple(
            dict(record) for record in records
        )

    @impure(reason="fsync-appends the commit marker to the live segment")
    def append_commit(self, batch_id: int) -> None:
        """Mark the open batch durable; a replay will now include it."""
        if self._open_batch != batch_id:
            raise WalError(
                f"commit for batch {batch_id} but open batch is "
                f"{self._open_batch}"
            )
        self._append(KIND_COMMIT, batch_id, {})
        self._committed.append(WalBatch(batch_id, self._pending_records))
        self._open_batch = None
        self._pending_records = ()

    def close(self) -> None:
        """Release the live segment handle (the log stays replayable)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- read path -----------------------------------------------------------

    def committed_batches(self) -> Tuple[WalBatch, ...]:
        """Every durable batch, in commit order (scan + this session)."""
        return tuple(self._committed)

    @property
    def next_batch_id(self) -> int:
        """The smallest batch id a new ``begin`` may use."""
        if not self._committed:
            return 0
        return self._committed[-1].batch_id + 1

    def counters(self) -> Dict[str, int]:
        """JSON-safe counters for the run report ``resilience.wal`` block."""
        return {
            "segments": len(self._segment_paths()),
            "entries": self.recovery.entries + self._appends,
            "batches_committed": len(self._committed),
            "uncommitted_dropped": len(self.recovery.uncommitted_batches),
            "torn_tail_dropped": self.recovery.torn_tail_bytes,
        }

    # -- internals -----------------------------------------------------------

    def _segment_paths(self) -> List[Path]:
        return sorted(
            self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
        )

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"

    @staticmethod
    def _segment_index(path: Path) -> int:
        stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError as error:
            raise WalError(f"bad segment name: {path.name}") from error

    @impure(reason="scans, truncates, and deletes WAL segments on disk")
    def _scan(self) -> None:
        """Recover the committed prefix; truncate everything after it.

        The keep-point advances only across *committed* batches: after
        the scan, the last surviving byte on disk is the newline of the
        last ``commit`` entry (or byte 0 of the first segment). An
        uncommitted ``begin`` is valid JSON but not durable state — it
        is truncated away exactly like torn bytes, so the next append
        continues a clean, unambiguous history.
        """
        paths = self._segment_paths()
        torn = False
        next_seq = 0
        open_batch: Optional[Tuple[int, Tuple[Mapping[str, Any], ...]]] = None
        # (segment position, byte offset) after the last committed entry.
        keep_segment = 0
        keep_offset = 0
        keep_seq = 0
        kept_entries = 0
        kept_committed = 0
        for position, path in enumerate(paths):
            if torn:
                # Unreachable history past a tear: drop the whole file.
                self.recovery.torn_tail_bytes += path.stat().st_size
                self.recovery.dropped_segments.append(path.name)
                path.unlink()
                continue
            data = path.read_bytes()
            offset = 0
            while offset < len(data):
                newline = data.find(b"\n", offset)
                if newline == -1:
                    torn = True  # unterminated tail (torn final write)
                    break
                line = data[offset:newline + 1]
                try:
                    entry = decode_entry(line)
                except WalError:
                    torn = True
                    break
                if entry.seq != next_seq:
                    torn = True  # lost or reordered line
                    break
                if entry.kind == KIND_BEGIN:
                    if open_batch is not None:
                        torn = True  # begin while a batch is open
                        break
                    records = entry.payload.get("records")
                    if not isinstance(records, list):
                        torn = True
                        break
                    open_batch = (entry.batch_id, tuple(records))
                else:  # KIND_COMMIT
                    if open_batch is None or open_batch[0] != entry.batch_id:
                        torn = True  # commit without a matching begin
                        break
                    self._committed.append(WalBatch(*open_batch))
                    open_batch = None
                    keep_segment, keep_offset = position, newline + 1
                    keep_seq = entry.seq + 1
                    kept_entries = self.recovery.entries + 1
                    kept_committed += 1
                next_seq = entry.seq + 1
                self.recovery.entries += 1
                offset = newline + 1
            if torn or offset < len(data):
                break
        # A dangling begin at the clean end of the log is dropped the
        # same way a torn line is: it never committed.
        if open_batch is not None:
            self.recovery.uncommitted_batches.append(open_batch[0])
            self.recovery.uncommitted_records += len(open_batch[1])
        if torn or open_batch is not None:
            self._truncate_to(paths, keep_segment, keep_offset)
            self.recovery.entries = kept_entries
        self.recovery.segments = len(self._segment_paths())
        self.recovery.committed_batches = kept_committed
        self._next_seq = keep_seq if (torn or open_batch is not None) else next_seq
        self._pending_records: Tuple[Mapping[str, Any], ...] = ()
        remaining = self._segment_paths()
        if remaining:
            self._live_index = self._segment_index(remaining[-1])
            self._live_size = remaining[-1].stat().st_size
        else:
            self._live_index = 0
            self._live_size = 0

    def _truncate_to(
        self, paths: List[Path], keep_segment: int, keep_offset: int
    ) -> None:
        """Physically cut the log back to the last committed byte."""
        for position, path in enumerate(paths):
            if not path.exists():
                continue  # already dropped past an earlier tear
            size = path.stat().st_size
            if position < keep_segment:
                continue
            if position == keep_segment:
                if size > keep_offset:
                    self.recovery.torn_tail_bytes += size - keep_offset
                    with open(path, "r+b") as handle:
                        handle.truncate(keep_offset)
                        handle.flush()
                        if self.fsync_enabled:
                            os.fsync(handle.fileno())
                if keep_offset == 0 and position > 0:
                    # An empty non-first segment carries no history.
                    path.unlink()
                    self.recovery.dropped_segments.append(path.name)
            else:
                self.recovery.torn_tail_bytes += size
                self.recovery.dropped_segments.append(path.name)
                path.unlink()

    def _rotate_if_needed(self) -> None:
        """Start a new segment when the live one is full.

        Called only from :meth:`append_begin`, which is what guarantees
        a batch's ``begin`` and ``commit`` always share a segment.
        """
        if self._live_size < self.segment_max_bytes or self._live_size == 0:
            return
        self.close()
        self._live_index += 1
        self._live_size = 0
        self._fsync_directory()

    @impure(reason="appends and fsyncs one entry; chaos hook may crash here")
    def _append(
        self, kind: str, batch_id: int, payload: Mapping[str, Any]
    ) -> None:
        line = encode_entry(self._next_seq, kind, batch_id, payload)
        if self._handle is None:
            path = self._segment_path(self._live_index)
            created = not path.exists()
            self._handle = open(path, "ab")
            if created:
                self._fsync_directory()
        self._handle.write(line)
        self._handle.flush()
        if self.fsync_enabled:
            os.fsync(self._handle.fileno())
        self._next_seq += 1
        self._live_size += len(line)
        index = self._appends
        self._appends += 1
        if self.fault is not None:
            self.fault.after_append(index)

    @impure(reason="fsyncs the WAL directory after metadata changes")
    def _fsync_directory(self) -> None:
        if not self.fsync_enabled:
            return
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # platforms without directory fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
